package eventbus

import (
	"net"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// TestSlowSubscriberDoesNotStallBus verifies the bounded outbound queue: a
// subscriber that never reads loses events (counted) while a healthy
// subscriber on the same stream receives everything and the publisher never
// blocks.
func TestSlowSubscriberDoesNotStallBus(t *testing.T) {
	b := newBroker(t)
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	// A bulky format so TCP buffers fill quickly.
	f, err := ctx.RegisterSpec("Bulk", []pbio.FieldSpec{
		{Name: "seq", Kind: pbio.Int, CType: machine.CInt},
		{Name: "payload", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]uint64, 4096) // 32 KB per record

	// The stuck subscriber: subscribes, then never reads again.
	stuckConn, err := net.Dial("tcp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuckConn.Close()
	if err := writeFrame(stuckConn, frameSubscribe, putStr(nil, "bulk")); err != nil {
		t.Fatal(err)
	}

	// The healthy subscriber.
	good, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Subscribe("bulk"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "bulk", 2)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const msgs = 600 // ~19 MB: far beyond socket buffers + queue depth
	received := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			ev, err := good.Next()
			if err != nil {
				received <- err
				return
			}
			if _, err := ev.Decode(); err != nil {
				received <- err
				return
			}
		}
		received <- nil
	}()

	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := pub.PublishRecord("bulk", f, pbio.Record{"seq": i, "payload": payload}); err != nil {
			t.Fatal(err)
		}
	}
	publishTime := time.Since(start)

	select {
	case err := <-received:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("healthy subscriber starved behind a stuck one")
	}
	if b.DroppedEvents() == 0 {
		t.Error("no events dropped for the stuck subscriber (queue bound not exercised)")
	}
	t.Logf("published %d records in %v; dropped for stuck subscriber: %d",
		msgs, publishTime, b.DroppedEvents())
}
