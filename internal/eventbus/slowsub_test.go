package eventbus

import (
	"net"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// TestSlowSubscriberDoesNotStallBus verifies the bounded outbound queue: a
// subscriber that never reads loses events (counted) while a healthy
// subscriber on the same stream receives everything and the publisher never
// blocks.
func TestSlowSubscriberDoesNotStallBus(t *testing.T) {
	b := newBroker(t)
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	// A bulky format so TCP buffers fill quickly.
	f, err := ctx.RegisterSpec("Bulk", []pbio.FieldSpec{
		{Name: "seq", Kind: pbio.Int, CType: machine.CInt},
		{Name: "payload", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]uint64, 4096) // 32 KB per record

	// The stuck subscriber: subscribes, then never reads again.
	stuckConn, err := net.Dial("tcp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stuckConn.Close()
	if err := writeFrame(stuckConn, frameSubscribe, putStr(nil, "bulk")); err != nil {
		t.Fatal(err)
	}

	// The healthy subscriber.
	good, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Subscribe("bulk"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "bulk", 2)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const msgs = 600 // ~19 MB: far beyond socket buffers + queue depth
	received := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			ev, err := good.Next()
			if err != nil {
				received <- err
				return
			}
			if _, err := ev.Decode(); err != nil {
				received <- err
				return
			}
		}
		received <- nil
	}()

	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := pub.PublishRecord("bulk", f, pbio.Record{"seq": i, "payload": payload}); err != nil {
			t.Fatal(err)
		}
	}
	publishTime := time.Since(start)

	select {
	case err := <-received:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("healthy subscriber starved behind a stuck one")
	}
	if b.DroppedEvents() == 0 {
		t.Error("no events dropped for the stuck subscriber (queue bound not exercised)")
	}
	t.Logf("published %d records in %v; dropped for stuck subscriber: %d",
		msgs, publishTime, b.DroppedEvents())

	// Regression for the write-only dropped counter: the drop count must be
	// visible through Broker.Stats, agree with DroppedEvents, and the other
	// delivery counters must be coherent with the run.
	stats := b.Stats()
	if stats.Dropped == 0 {
		t.Error("Stats().Dropped = 0 after drops were observed")
	}
	if stats.Dropped != b.DroppedEvents() {
		t.Errorf("Stats().Dropped = %d, DroppedEvents() = %d; want equal",
			stats.Dropped, b.DroppedEvents())
	}
	if stats.Published < msgs {
		t.Errorf("Stats().Published = %d, want >= %d", stats.Published, msgs)
	}
	// The healthy subscriber received every record, so at least msgs event
	// frames were delivered.
	if stats.Delivered < msgs {
		t.Errorf("Stats().Delivered = %d, want >= %d", stats.Delivered, msgs)
	}
}

// TestDroppedCountSurvivesDisconnect verifies the obsv fold-in: drops are
// counted broker-wide, not on the (transient) connection, so tearing the
// stuck subscriber down must not zero the count.
func TestDroppedCountSurvivesDisconnect(t *testing.T) {
	b := newBroker(t)
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Tiny", []pbio.FieldSpec{
		{Name: "seq", Kind: pbio.Int, CType: machine.CInt},
		{Name: "pad", Kind: pbio.Uint, CType: machine.CULong, Count: 512},
	})
	if err != nil {
		t.Fatal(err)
	}

	stuckConn, err := net.Dial("tcp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(stuckConn, frameSubscribe, putStr(nil, "tiny")); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "tiny", 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	before := b.Stats().Dropped
	rec := pbio.Record{"seq": 1}
	deadline := time.Now().Add(20 * time.Second)
	for b.Stats().Dropped == before {
		if time.Now().After(deadline) {
			t.Fatal("no drops observed before deadline")
		}
		if err := pub.PublishRecord("tiny", f, rec); err != nil {
			t.Fatal(err)
		}
	}
	droppedWhileConnected := b.Stats().Dropped

	// Tear the stuck subscriber down; the count must persist.
	_ = stuckConn.Close()
	deadline = time.Now().Add(10 * time.Second)
	for b.SubscriberCount("tiny") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stuck subscriber never unregistered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.Stats().Dropped; got < droppedWhileConnected {
		t.Errorf("Stats().Dropped fell from %d to %d after disconnect", droppedWhileConnected, got)
	}
}
