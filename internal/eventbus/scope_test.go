package eventbus

import (
	"strings"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func TestScopedSubscription(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)

	// One scoped subscriber (sees only cntrID + eta) and one full.
	scoped, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer scoped.Close()
	if err := scoped.SubscribeFields("flights", "cntrID", "eta"); err != nil {
		t.Fatal(err)
	}
	full, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if err := full.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 2)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	rec := pbio.Record{"cntrID": "ZTL", "fltNum": 1842, "eta": []uint64{9, 8}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}

	// Scoped subscriber: the hidden field is absent from both the record
	// and the delivered format.
	ev, err := scoped.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ev.Format.Name, "ASDOffEvent#") {
		t.Errorf("scoped format name = %q", ev.Format.Name)
	}
	if _, ok := ev.Format.FieldByName("fltNum"); ok {
		t.Error("hidden field present in scoped format")
	}
	out, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "ZTL" {
		t.Errorf("cntrID = %v", out["cntrID"])
	}
	if _, present := out["fltNum"]; present {
		t.Error("hidden field value leaked to scoped subscriber")
	}
	if got := out["eta"].([]uint64); len(got) != 2 || got[0] != 9 {
		t.Errorf("eta = %v", out["eta"])
	}
	// The scoped record really is smaller on the wire.
	fullData, _ := f.Encode(rec)
	if len(ev.Data) >= len(fullData) {
		t.Errorf("scoped record %dB, full %dB", len(ev.Data), len(fullData))
	}

	// Full subscriber still sees everything.
	ev2, err := full.Next()
	if err != nil {
		t.Fatal(err)
	}
	out2, err := ev2.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if out2["fltNum"] != int64(1842) {
		t.Errorf("full subscriber fltNum = %v", out2["fltNum"])
	}
}

func TestScopedSubscriptionBadField(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.X86_64)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.SubscribeFields("flights", "noSuchField"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 1}); err != nil {
		t.Fatal(err)
	}
	// The unsatisfiable scope surfaces as a broker error to the subscriber.
	if _, err := sub.Next(); err == nil {
		t.Error("scope referencing a missing field did not error")
	}
}

func TestSubscribeFieldsEmptyFallsBack(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.X86_64)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.SubscribeFields("flights"); err != nil { // no fields = full
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 3}); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Format.Name != "ASDOffEvent" {
		t.Errorf("format = %q, want full format", ev.Format.Name)
	}
}

func TestScopedLateSubscriberGetsScopedFormat(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishRecord("flights", f, pbio.Record{"cntrID": "Z"}); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 0)

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.SubscribeFields("flights", "cntrID"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)
	if err := pub.PublishRecord("flights", f, pbio.Record{"cntrID": "ZNY"}); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if rec["cntrID"] != "ZNY" {
		t.Errorf("cntrID = %v", rec["cntrID"])
	}
	// The scoped format was adopted at subscription time already.
	if len(ev.Format.Fields) != 1 {
		t.Errorf("scoped format fields = %d", len(ev.Format.Fields))
	}
}

func TestScopeLimit(t *testing.T) {
	b := newBroker(t)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	many := make([]string, 300)
	for i := range many {
		many[i] = "f"
	}
	if err := sub.SubscribeFields("s", many...); err == nil {
		t.Error("oversized scope accepted")
	}
}
