package eventbus

import (
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// quietLogger suppresses expected disconnect noise in tests.
func quietLogger(string, ...interface{}) {}

func newBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

func flightFormat(t *testing.T, arch *machine.Arch) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(arch)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("ASDOffEvent", []pbio.FieldSpec{
		{Name: "cntrID", Kind: pbio.String},
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func subCtx(t *testing.T) *pbio.Context {
	t.Helper()
	ctx, err := pbio.NewContext(machine.X86_64)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestPublishSubscribe(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc) // big-endian capture point

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Give the broker a moment to register the subscription before the
	// first publish (subscribe is fire-and-forget).
	waitForStream(t, b, "flights", 1)

	want := pbio.Record{"cntrID": "ZTL", "fltNum": 1842, "eta": []uint64{10, 20}}
	for i := 0; i < 3; i++ {
		if err := pub.PublishRecord("flights", f, want); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ev, err := sub.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Stream != "flights" {
			t.Errorf("stream = %q", ev.Stream)
		}
		rec, err := ev.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if rec["cntrID"] != "ZTL" || rec["fltNum"] != int64(1842) {
			t.Errorf("rec = %v", rec)
		}
		if !reflect.DeepEqual(rec["eta"], []uint64{10, 20}) {
			t.Errorf("eta = %v", rec["eta"])
		}
	}
}

// waitForStream waits until the broker knows the stream and it has exactly
// wantSubs subscribers.
func waitForStream(t *testing.T, b *Broker, name string, wantSubs int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		st, ok := b.streams[name]
		n := 0
		if ok {
			n = len(st.subs)
		}
		b.mu.Unlock()
		if ok && n == wantSubs {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("stream %q never reached %d subscribers", name, wantSubs)
}

func TestLateSubscriberGetsFormats(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// Publish before anyone subscribes: record is lost (no retention), but
	// the stream's format must reach late subscribers.
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 1}); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 0)

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 2}); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if rec["fltNum"] != int64(2) {
		t.Errorf("fltNum = %v", rec["fltNum"])
	}
	// The format arrived at subscription time, so the adopted catalog has it.
	if _, ok := sub.Context().LookupID(f.ID); !ok {
		t.Error("format not adopted at subscription time")
	}
}

func TestMultipleSubscribersAndStreams(t *testing.T) {
	b := newBroker(t)
	flights := flightFormat(t, machine.X86)

	wctx, _ := pbio.NewContext(machine.X86_64)
	weather, err := wctx.RegisterSpec("Weather", []pbio.FieldSpec{
		{Name: "station", Kind: pbio.String},
		{Name: "tempC", Kind: pbio.Float, CType: machine.CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}

	subFlights, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer subFlights.Close()
	subBoth, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer subBoth.Close()

	if err := subFlights.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	if err := subBoth.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	if err := subBoth.Subscribe("weather"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 2)
	waitForStream(t, b, "weather", 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishRecord("flights", flights, pbio.Record{"fltNum": 7}); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishRecord("weather", weather, pbio.Record{"station": "ATL", "tempC": 31.5}); err != nil {
		t.Fatal(err)
	}

	// subFlights sees exactly the flights record.
	ev, err := subFlights.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stream != "flights" || ev.Format.Name != "ASDOffEvent" {
		t.Errorf("ev = %v %v", ev.Stream, ev.Format.Name)
	}

	// subBoth sees both, in publish order.
	ev1, err := subBoth.Next()
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := subBoth.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Stream != "flights" || ev2.Stream != "weather" {
		t.Errorf("order = %q, %q", ev1.Stream, ev2.Stream)
	}
	rec, err := ev2.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if rec["tempC"] != 31.5 {
		t.Errorf("tempC = %v", rec["tempC"])
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.X86_64)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 0)
	if err := pub.PublishRecord("flights", f, pbio.Record{"fltNum": 2}); err != nil {
		t.Fatal(err)
	}
	// Nothing should arrive; closing after a short grace unblocks Next.
	go func() {
		time.Sleep(50 * time.Millisecond)
		sub.Close()
	}()
	if ev, err := sub.Next(); err == nil {
		t.Errorf("received %v after unsubscribe", ev.Stream)
	}
}

func TestStreamsListing(t *testing.T) {
	b := newBroker(t)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Announce("weather"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 0)
	waitForStream(t, b, "weather", 0)
	if got := b.Streams(); !reflect.DeepEqual(got, []string{"flights", "weather"}) {
		t.Errorf("broker streams = %v", got)
	}

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	names, err := sub.Streams()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"flights", "weather"}) {
		t.Errorf("streams = %v", names)
	}
}

func TestPublishUnannouncedFormatRejected(t *testing.T) {
	b := newBroker(t)
	conn, err := net.Dial("tcp", b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Publish referencing a format never sent on this connection.
	payload := putStr(nil, "x")
	payload = append(payload, make([]byte, 8)...)
	if err := writeFrame(conn, framePublish, payload); err != nil {
		t.Fatal(err)
	}
	typ, msg, _, err := readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameError {
		t.Fatalf("frame type = %d, want error", typ)
	}
	if len(msg) == 0 {
		t.Error("empty error message")
	}
}

func TestBrokerRejectsMalformedFrames(t *testing.T) {
	b := newBroker(t)
	cases := [][]byte{
		{99, 0, 0, 0, 0},                // unknown type
		{frameSubscribe, 0, 0, 0, 1, 9}, // truncated string
		{framePublish, 0, 0, 0, 3, 0, 1, 'x'},
		{frameFormat, 0, 0, 0, 2, 'z', 'z'},
	}
	for i, raw := range cases {
		conn, err := net.Dial("tcp", b.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		typ, _, _, err := readFrame(conn, nil)
		if err == nil && typ != frameError {
			t.Errorf("case %d: type = %d, want error frame", i, typ)
		}
		conn.Close()
	}
}

func TestBrokerCloseUnblocksClients(t *testing.T) {
	b := newBroker(t)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("x"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("Next returned nil after broker close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on broker close")
	}
	// Closing twice is fine.
	if err := b.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.X86_64)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)

	const pubs, per = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, pubs)
	for i := 0; i < pubs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pub, err := DialPublisher(b.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer pub.Close()
			for j := 0; j < per; j++ {
				if err := pub.PublishRecord("flights", f,
					pbio.Record{"fltNum": id*1000 + j}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	got := make(map[int64]bool)
	for i := 0; i < pubs*per; i++ {
		ev, err := sub.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		rec, err := ev.Decode()
		if err != nil {
			t.Fatal(err)
		}
		got[rec["fltNum"].(int64)] = true
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != pubs*per {
		t.Errorf("received %d distinct records, want %d", len(got), pubs*per)
	}
}

func TestFrameHelpers(t *testing.T) {
	b := putStr(nil, "hello")
	s, rest, err := getStr(b)
	if err != nil || s != "hello" || len(rest) != 0 {
		t.Errorf("getStr = %q, %v, %v", s, rest, err)
	}
	if _, _, err := getStr([]byte{0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short getStr err = %v", err)
	}
	if _, _, err := getStr([]byte{0, 5, 'a'}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated getStr err = %v", err)
	}
	if err := writeFrame(io.Discard, 1, make([]byte, maxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversize writeFrame err = %v", err)
	}
}

func TestSubscriberErrorSurface(t *testing.T) {
	// A server that answers every frame with an error frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _, _, _ = readFrame(conn, nil)
		_ = writeFrame(conn, frameError, []byte("nope"))
	}()
	ctx, _ := pbio.NewContext(machine.X86_64)
	sub, err := DialSubscriber(ln.Addr().String(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err == nil || !containsStr(err.Error(), "nope") {
		t.Errorf("err = %v", err)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle ||
		len(haystack) > len(needle) && (haystack[:len(needle)] == needle ||
			containsStr(haystack[1:], needle)))
}

func TestEventDataIsOwned(t *testing.T) {
	// Event.Data must remain valid after the next Next call.
	b := newBroker(t)
	f := flightFormat(t, machine.X86_64)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("s"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "s", 1)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 2; i++ {
		if err := pub.PublishRecord("s", f, pbio.Record{"fltNum": i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	ev1, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}
	rec, err := ev1.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if rec["fltNum"] != int64(1) {
		t.Errorf("first event corrupted by second read: %v", rec["fltNum"])
	}
}

func ExamplePublisher() {
	// Compile-only example exercising the API shape.
	var pub *Publisher
	_ = pub
	fmt.Println("eventbus")
	// Output: eventbus
}
