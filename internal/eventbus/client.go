package eventbus

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"openmeta/internal/pbio"
)

// Publisher is a capture point: it announces streams and publishes NDR
// records onto them. Publisher is safe for concurrent use.
type Publisher struct {
	mu          sync.Mutex
	conn        net.Conn
	sentFormats map[pbio.FormatID]bool
	scratch     []byte
}

// DialPublisher connects a publisher to the broker at addr.
func DialPublisher(addr string) (*Publisher, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eventbus: dial publisher: %w", err)
	}
	return &Publisher{conn: conn, sentFormats: make(map[pbio.FormatID]bool)}, nil
}

// Announce declares a stream so it appears in broker listings before the
// first record is published.
func (p *Publisher) Announce(streamName string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return writeFrame(p.conn, frameAnnounce, putStr(nil, streamName))
}

// Publish sends one encoded record of format f onto the stream, announcing
// the format's metadata to the broker the first time.
func (p *Publisher) Publish(streamName string, f *pbio.Format, record []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.sentFormats[f.ID] {
		if err := writeFrame(p.conn, frameFormat, pbio.MarshalMeta(f)); err != nil {
			return err
		}
		p.sentFormats[f.ID] = true
	}
	payload := p.scratch[:0]
	payload = putStr(payload, streamName)
	payload = append(payload, f.ID[:]...)
	payload = append(payload, record...)
	p.scratch = payload
	return writeFrame(p.conn, framePublish, payload)
}

// PublishRecord encodes a generic record and publishes it.
func (p *Publisher) PublishRecord(streamName string, f *pbio.Format, rec pbio.Record) error {
	data, err := f.Encode(rec)
	if err != nil {
		return err
	}
	return p.Publish(streamName, f, data)
}

// Close closes the broker connection.
func (p *Publisher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Close()
}

// Event is one record delivered to a subscriber.
type Event struct {
	// Stream is the stream the record was published on.
	Stream string
	// Format is the record's format, reconstructed from metadata the broker
	// delivered ahead of the record.
	Format *pbio.Format
	// Data is the NDR record. The slice is owned by the caller.
	Data []byte
}

// Decode unmarshals the event's record generically.
func (e *Event) Decode() (pbio.Record, error) { return e.Format.Decode(e.Data) }

// Subscriber is a data access or display point: it subscribes to streams
// and receives their records together with the metadata needed to decode
// them. Next must be called from a single goroutine; control methods
// (Subscribe, Unsubscribe, Streams issued before the Next loop starts) and
// Close are safe to call from others.
type Subscriber struct {
	conn net.Conn
	ctx  *pbio.Context
	wmu  sync.Mutex
	buf  []byte
}

// DialSubscriber connects a subscriber to the broker at addr, adopting
// incoming format metadata into ctx.
func DialSubscriber(addr string, ctx *pbio.Context) (*Subscriber, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eventbus: dial subscriber: %w", err)
	}
	return &Subscriber{conn: conn, ctx: ctx}, nil
}

// Context returns the pbio context formats are adopted into.
func (s *Subscriber) Context() *pbio.Context { return s.ctx }

// Subscribe joins a stream. Records published after the subscription (and
// the formats needed to decode them) will be delivered via Next.
func (s *Subscriber) Subscribe(streamName string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.conn, frameSubscribe, putStr(nil, streamName))
}

// SubscribeFields joins a stream scoped to a slice of its fields — the
// paper's §4.4 format-scoping. The broker derives a subset format, converts
// every record before delivery, and the hidden fields never reach this
// subscriber. Count fields of kept dynamic arrays are included
// automatically.
func (s *Subscriber) SubscribeFields(streamName string, fields ...string) error {
	if len(fields) == 0 {
		return s.Subscribe(streamName)
	}
	if len(fields) > 255 {
		return fmt.Errorf("eventbus: scope of %d fields exceeds protocol limit", len(fields))
	}
	payload := putStr(nil, streamName)
	payload = append(payload, byte(len(fields)))
	for _, f := range fields {
		payload = putStr(payload, f)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.conn, frameSubscribe, payload)
}

// Unsubscribe leaves a stream. Records already in flight may still arrive.
func (s *Subscriber) Unsubscribe(streamName string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.conn, frameUnsub, putStr(nil, streamName))
}

// Streams asks the broker for the current stream list. It must not be
// interleaved with Next (both read from the connection); call it before
// entering the receive loop.
func (s *Subscriber) Streams() ([]string, error) {
	s.wmu.Lock()
	err := writeFrame(s.conn, frameList, nil)
	s.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	for {
		typ, payload, buf, err := readFrame(s.conn, s.buf)
		if err != nil {
			return nil, err
		}
		s.buf = buf
		switch typ {
		case frameStreams:
			if len(payload) == 0 {
				return nil, nil
			}
			return strings.Split(string(payload), "\x00"), nil
		case frameFormat:
			if err := s.adoptFormat(payload); err != nil {
				return nil, err
			}
		case frameError:
			return nil, fmt.Errorf("eventbus: broker: %s", payload)
		default:
			return nil, fmt.Errorf("%w: unexpected frame %d awaiting stream list", ErrBadFrame, typ)
		}
	}
}

// Next blocks until the next record arrives and returns it. Format frames
// are absorbed transparently. Returns io.EOF when the broker closes the
// connection.
func (s *Subscriber) Next() (Event, error) {
	for {
		typ, payload, buf, err := readFrame(s.conn, s.buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return Event{}, io.EOF
			}
			return Event{}, err
		}
		s.buf = buf
		switch typ {
		case frameFormat:
			if err := s.adoptFormat(payload); err != nil {
				return Event{}, err
			}
		case frameEvent:
			name, rest, err := getStr(payload)
			if err != nil {
				return Event{}, err
			}
			if len(rest) < 8 {
				return Event{}, fmt.Errorf("%w: event without format id", ErrBadFrame)
			}
			var id pbio.FormatID
			copy(id[:], rest)
			f, ok := s.ctx.LookupID(id)
			if !ok {
				return Event{}, fmt.Errorf("eventbus: event references unknown format %s", id)
			}
			data := append([]byte(nil), rest[8:]...)
			return Event{Stream: name, Format: f, Data: data}, nil
		case frameError:
			return Event{}, fmt.Errorf("eventbus: broker: %s", payload)
		case frameStreams:
			// Stale answer to a Streams call; ignore.
		default:
			return Event{}, fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, typ)
		}
	}
}

func (s *Subscriber) adoptFormat(meta []byte) error {
	f, err := pbio.UnmarshalMeta(meta)
	if err != nil {
		return err
	}
	_, err = s.ctx.Adopt(f)
	return err
}

// Close closes the broker connection; a blocked Next returns io.EOF.
func (s *Subscriber) Close() error { return s.conn.Close() }
