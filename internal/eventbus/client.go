package eventbus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
)

// Client-side reconnect instruments on the default registry, created at
// init so the eventbus.pub.* / eventbus.sub.* names exist (zero-valued) in
// openmeta.Stats() from process start.
var (
	pubReconnects   = obsv.Default().Counter("eventbus.pub.reconnects")
	pubRedialErrors = obsv.Default().Counter("eventbus.pub.redial_errors")
	subReconnects   = obsv.Default().Counter("eventbus.sub.reconnects")
	subRedialErrors = obsv.Default().Counter("eventbus.sub.redial_errors")
)

// DialFunc dials the broker. Tests substitute one (via WithDialFunc) that
// wraps the connection in a faultnet schedule.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// clientConfig is shared by Publisher and Subscriber dialing.
type clientConfig struct {
	dial        DialFunc
	dialTimeout time.Duration
	reconnect   bool
	policy      retry.Policy
	tracer      *trace.Tracer
	rec         *flight.Recorder
}

func defaultClientConfig() clientConfig {
	return clientConfig{
		dialTimeout: 10 * time.Second,
		policy: retry.Policy{
			MaxAttempts: 5,
			Initial:     100 * time.Millisecond,
			Max:         5 * time.Second,
		},
		tracer: trace.Default(),
		rec:    flight.Default(),
	}
}

// flightReconnect records one reconnect-path event (redial attempt outcome)
// against the given connection id.
func (c *clientConfig) flightReconnect(conn uint64, detail string) {
	c.rec.Record(flight.KindReconnect, conn, "", 0, 0, detail)
}

// helloTimeout bounds how long a client waits for the broker's frameHello
// reply before concluding the peer speaks only the base protocol.
const helloTimeout = 3 * time.Second

// helloExchange negotiates capabilities on a fresh connection: it sends a
// frameHello and waits for the reply. legacy=true means the peer is an
// old-protocol build (it answered with frameError, closed the connection,
// or stayed silent past the hello deadline); the caller should redial and
// speak the base protocol. A write failure is a real network error.
func helloExchange(conn net.Conn) (caps uint32, legacy bool, err error) {
	if err := writeFrame(conn, frameHello, helloPayload(localCaps)); err != nil {
		return 0, false, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	typ, payload, _, rerr := readFrame(conn, nil)
	if rerr != nil || typ != frameHello {
		return 0, true, nil
	}
	if _, caps, err = parseHello(payload); err != nil {
		return 0, true, nil
	}
	return caps, false, nil
}

// harvestBrokerError makes a bounded attempt to read a frameError the
// broker may have sent just before the connection died, so a rejected
// publish surfaces as a typed *BrokerError instead of a bare write failure.
func harvestBrokerError(conn net.Conn) *BrokerError {
	_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	defer func() { _ = conn.SetReadDeadline(time.Time{}) }()
	var buf []byte
	for i := 0; i < 4; i++ {
		typ, payload, newBuf, err := readFrame(conn, buf)
		if err != nil {
			return nil
		}
		buf = newBuf
		if typ == frameError {
			return &BrokerError{Msg: string(payload)}
		}
	}
	return nil
}

// dialContext applies the configured dial function and timeout.
func (c *clientConfig) dialContext(ctx context.Context, addr string) (net.Conn, error) {
	if c.dialTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.dialTimeout)
		defer cancel()
	}
	if c.dial != nil {
		return c.dial(ctx, "tcp", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// ClientOption configures how publishers and subscribers dial the broker
// and whether they survive broken connections.
type ClientOption func(*clientConfig)

// WithDialFunc substitutes the dialer — how tests interpose
// fault-injection wrappers, and how deployments add TLS or proxies.
func WithDialFunc(f DialFunc) ClientOption {
	return func(c *clientConfig) { c.dial = f }
}

// WithDialTimeout bounds each dial attempt (default 10s; 0 disables).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.dialTimeout = d }
}

// WithClientTracer directs the client's spans (pub.publish, pbio.encode,
// pbio.decode) into t instead of the process default tracer. While t is
// enabled, connections negotiate the trace capability with the broker so
// sampled records carry their trace context across the wire; against an
// old-protocol broker the client falls back to the base protocol untraced.
func WithClientTracer(t *trace.Tracer) ClientOption {
	return func(c *clientConfig) {
		if t != nil {
			c.tracer = t
		}
	}
}

// WithClientFlightRecorder directs the client's flight events (connection
// churn, reconnect attempts, frame and format traffic) into r instead of the
// process-default recorder served at /debug/flight.
func WithClientFlightRecorder(r *flight.Recorder) ClientOption {
	return func(c *clientConfig) {
		if r != nil {
			c.rec = r
		}
	}
}

// WithReconnect enables automatic reconnection under the given retry
// policy: when the broker connection breaks, the client redials with
// backoff, re-announces its streams (publishers) or re-subscribes with
// scopes intact (subscribers), resets its format-metadata dedup state so
// metadata is re-sent on the fresh connection, and retries the failed
// operation. A zero Policy uses the retry package defaults (four attempts,
// 50ms initial backoff doubling to 5s).
func WithReconnect(p retry.Policy) ClientOption {
	return func(c *clientConfig) {
		c.reconnect = true
		c.policy = p
	}
}

// Publisher is a capture point: it announces streams and publishes NDR
// records onto them. Publisher is safe for concurrent use. With
// WithReconnect it transparently survives broken broker connections,
// re-sending stream announcements and format metadata on the new
// connection.
type Publisher struct {
	addr string
	cfg  clientConfig

	mu          sync.Mutex
	conn        net.Conn
	connID      uint64 // flight connection id of the live conn (guarded by mu)
	closed      bool
	lastErr     error
	sentFormats map[pbio.FormatID]bool
	announced   map[string]bool
	scratch     []byte
	// traced reports whether the current connection negotiated capTrace;
	// peerLegacy remembers a broker that rejected the hello, so reconnects
	// skip the doomed exchange.
	traced     bool
	peerLegacy bool
}

// DialPublisher connects a publisher to the broker at addr.
func DialPublisher(addr string, opts ...ClientOption) (*Publisher, error) {
	return DialPublisherContext(context.Background(), addr, opts...)
}

// DialPublisherContext connects a publisher to the broker at addr under
// ctx. With WithReconnect the initial dial also retries under the policy.
func DialPublisherContext(ctx context.Context, addr string, opts ...ClientOption) (*Publisher, error) {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	p := &Publisher{
		addr:        addr,
		cfg:         cfg,
		sentFormats: make(map[pbio.FormatID]bool),
		announced:   make(map[string]bool),
	}
	dial := func(ctx context.Context) error { return p.connectLocked(ctx) }
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if cfg.reconnect {
		err = retry.Do(ctx, cfg.policy, dial)
	} else {
		err = dial(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("eventbus: dial publisher: %w", err)
	}
	return p, nil
}

// connectLocked dials a fresh broker connection and replays the
// publisher's announced streams onto it. The format-metadata dedup map is
// reset so the next Publish of each format re-sends its metadata — the new
// broker connection has never seen it. Caller holds p.mu.
func (p *Publisher) connectLocked(ctx context.Context) error {
	reconnecting := p.conn != nil || p.lastErr != nil
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	conn, err := p.cfg.dialContext(ctx, p.addr)
	if err != nil {
		if reconnecting {
			pubRedialErrors.Add(1)
			p.cfg.flightReconnect(p.connID, "publisher redial failed: "+err.Error())
		}
		return err
	}
	p.traced = false
	if p.cfg.tracer.Enabled() && !p.peerLegacy {
		caps, legacy, herr := helloExchange(conn)
		switch {
		case herr != nil:
			_ = conn.Close()
			if reconnecting {
				pubRedialErrors.Add(1)
				p.cfg.flightReconnect(p.connID, "publisher redial failed: "+herr.Error())
			}
			return herr
		case legacy:
			// Old broker: it answered the hello with an error and closed.
			// Remember and redial speaking the base protocol.
			_ = conn.Close()
			p.peerLegacy = true
			if conn, err = p.cfg.dialContext(ctx, p.addr); err != nil {
				if reconnecting {
					pubRedialErrors.Add(1)
					p.cfg.flightReconnect(p.connID, "publisher redial failed: "+err.Error())
				}
				return err
			}
		default:
			p.traced = caps&capTrace != 0
		}
	}
	p.sentFormats = make(map[pbio.FormatID]bool)
	for name := range p.announced {
		if err := writeFrame(conn, frameAnnounce, putStr(nil, name)); err != nil {
			_ = conn.Close()
			if reconnecting {
				pubRedialErrors.Add(1)
				p.cfg.flightReconnect(p.connID, "publisher redial failed: "+err.Error())
			}
			return err
		}
	}
	p.conn = conn
	p.connID = flight.NextConnID()
	p.cfg.rec.Record(flight.KindConnOpen, p.connID, "", 0, 0, "publisher "+p.addr)
	if p.cfg.tracer.Enabled() && !p.peerLegacy {
		p.cfg.rec.Record(flight.KindHello, p.connID, "", 0, boolCaps(p.traced), "negotiated")
	}
	p.lastErr = nil
	if reconnecting {
		pubReconnects.Add(1)
		p.cfg.flightReconnect(p.connID, "publisher reconnected")
	}
	return nil
}

// boolCaps renders the negotiated-trace flag as the flight event's byte
// field, matching the broker-side hello event's caps value.
func boolCaps(traced bool) int64 {
	if traced {
		return int64(capTrace)
	}
	return 0
}

// withConn runs op against a healthy connection, holding p.mu across the
// network write (records from concurrent Publish calls must not interleave
// mid-frame). On failure the connection is torn down; with reconnect
// enabled the publisher redials under its retry policy and re-runs op.
func (p *Publisher) withConn(op func(conn net.Conn) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("eventbus: publisher: %w", ErrClosed)
	}
	attempt := func(ctx context.Context) error {
		if p.conn == nil {
			if !p.cfg.reconnect {
				return retry.Permanent(fmt.Errorf("eventbus: publisher connection lost: %w (%v)", ErrClosed, p.lastErr))
			}
			if err := p.connectLocked(ctx); err != nil {
				return err
			}
		}
		if err := op(p.conn); err != nil {
			// The broker reports why it is rejecting us before closing; fold
			// that diagnostic into the failure as a typed *BrokerError.
			if be := harvestBrokerError(p.conn); be != nil {
				err = fmt.Errorf("%w (%w)", be, err)
			}
			p.teardownLocked(err)
			return err
		}
		return nil
	}
	if !p.cfg.reconnect {
		return attempt(context.Background())
	}
	return retry.Do(context.Background(), p.cfg.policy, attempt)
}

// teardownLocked abandons the current connection after a write failure; a
// partially written frame leaves the stream unframeable, so the connection
// can never be reused. Caller holds p.mu.
func (p *Publisher) teardownLocked(err error) {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
		p.cfg.rec.Record(flight.KindConnClose, p.connID, "", 0, 0, err.Error())
	}
	p.lastErr = err
}

// Announce declares a stream so it appears in broker listings before the
// first record is published. Announced streams are re-announced
// automatically after a reconnect.
func (p *Publisher) Announce(streamName string) error {
	err := p.withConn(func(conn net.Conn) error {
		return writeFrame(conn, frameAnnounce, putStr(nil, streamName))
	})
	if err == nil {
		p.mu.Lock()
		p.announced[streamName] = true
		p.mu.Unlock()
	}
	return err
}

// Publish sends one encoded record of format f onto the stream, announcing
// the format's metadata to the broker the first time (and again after any
// reconnect — the fresh broker connection has no memory of it). When the
// client's tracer samples the record and the connection negotiated the
// trace capability, the record travels with its trace context so every
// downstream stage links into one span tree.
func (p *Publisher) Publish(streamName string, f *pbio.Format, record []byte) error {
	tc := p.cfg.tracer.Start("pub.publish")
	defer tc.FinishDetail(streamName)
	return p.publish(tc, streamName, f, record)
}

// publish sends one publish frame under the given root span.
func (p *Publisher) publish(tc trace.Ctx, streamName string, f *pbio.Format, record []byte) error {
	return p.withConn(func(conn net.Conn) error {
		if !p.sentFormats[f.ID] {
			meta := pbio.MarshalMeta(f)
			if err := writeFrame(conn, frameFormat, meta); err != nil {
				return err
			}
			p.sentFormats[f.ID] = true
			p.cfg.rec.Record(flight.KindFormatSend, p.connID, streamName, fid64(f.ID), int64(len(meta)), f.Name)
		}
		typ := framePublish
		payload := p.scratch[:0]
		payload = putStr(payload, streamName)
		if tc.Sampled() && p.traced {
			typ = framePublishTrace
			payload = putTraceCtx(payload, tc.Trace(), tc.Span())
		}
		payload = append(payload, f.ID[:]...)
		payload = append(payload, record...)
		p.scratch = payload
		if err := writeFrame(conn, typ, payload); err != nil {
			return err
		}
		p.cfg.rec.Record(flight.KindFrameSend, p.connID, streamName, fid64(f.ID), int64(len(record)), "")
		return nil
	})
}

// PublishRecord encodes a generic record and publishes it. A sampled record
// gets a pbio.encode child span around the encode.
func (p *Publisher) PublishRecord(streamName string, f *pbio.Format, rec pbio.Record) error {
	tc := p.cfg.tracer.Start("pub.publish")
	defer tc.FinishDetail(streamName)
	data, err := f.EncodeCtx(tc, rec)
	if err != nil {
		return err
	}
	return p.publish(tc, streamName, f, data)
}

// Close closes the broker connection. Further operations return ErrClosed.
func (p *Publisher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn == nil {
		return nil
	}
	err := p.conn.Close()
	p.conn = nil
	p.cfg.rec.Record(flight.KindConnClose, p.connID, "", 0, 0, "closed")
	return err
}

// Event is one record delivered to a subscriber.
type Event struct {
	// Stream is the stream the record was published on.
	Stream string
	// Format is the record's format, reconstructed from metadata the broker
	// delivered ahead of the record.
	Format *pbio.Format
	// Data is the NDR record. The slice is owned by the caller.
	Data []byte
	// Trace is the record's trace handle when it arrived in a traced frame
	// and the subscriber's tracer is enabled: Decode records a pbio.decode
	// child span, and callers can hang their own processing spans off it
	// with Trace.Child. The zero value (untraced record) is a no-op.
	Trace trace.Ctx
}

// Decode unmarshals the event's record generically. For a traced event the
// decode is recorded as a pbio.decode span linked under the broker's
// routing span.
func (e *Event) Decode() (pbio.Record, error) { return e.Format.DecodeCtx(e.Trace, e.Data) }

// Subscriber is a data access or display point: it subscribes to streams
// and receives their records together with the metadata needed to decode
// them. Next must be called from a single goroutine; control methods
// (Subscribe, Unsubscribe, Streams issued before the Next loop starts) and
// Close are safe to call from others. With WithReconnect a subscriber
// whose broker connection breaks redials with backoff and re-subscribes to
// every stream (scopes intact); the broker re-sends format metadata on the
// new connection, so Next keeps delivering decodable events.
type Subscriber struct {
	addr string
	cfg  clientConfig
	ctx  *pbio.Context

	wmu     sync.Mutex
	conn    net.Conn
	closed  bool
	lastErr error
	// connID is the flight connection id of the live conn. Atomic because
	// Next's receive loop reads it while control calls may be reconnecting.
	connID atomic.Uint64
	// traced reports whether the current connection negotiated capTrace;
	// peerLegacy remembers a broker that rejected the hello.
	traced     bool
	peerLegacy bool
	// subs maps stream name to its field scope (nil = full format), the
	// state replayed onto a fresh connection after reconnect.
	subs map[string][]string

	buf []byte
}

// DialSubscriber connects a subscriber to the broker at addr, adopting
// incoming format metadata into ctx.
func DialSubscriber(addr string, ctx *pbio.Context, opts ...ClientOption) (*Subscriber, error) {
	return DialSubscriberContext(context.Background(), addr, ctx, opts...)
}

// DialSubscriberContext connects a subscriber to the broker at addr under
// dialCtx, adopting incoming format metadata into ctx.
func DialSubscriberContext(dialCtx context.Context, addr string, ctx *pbio.Context, opts ...ClientOption) (*Subscriber, error) {
	cfg := defaultClientConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Subscriber{
		addr: addr,
		cfg:  cfg,
		ctx:  ctx,
		subs: make(map[string][]string),
	}
	dial := func(ctx context.Context) error { return s.connectLocked(ctx) }
	s.wmu.Lock()
	defer s.wmu.Unlock()
	var err error
	if cfg.reconnect {
		err = retry.Do(dialCtx, cfg.policy, dial)
	} else {
		err = dial(dialCtx)
	}
	if err != nil {
		return nil, fmt.Errorf("eventbus: dial subscriber: %w", err)
	}
	return s, nil
}

// Context returns the pbio context formats are adopted into.
func (s *Subscriber) Context() *pbio.Context { return s.ctx }

// connectLocked dials a fresh broker connection and replays every
// subscription (with its scope) onto it. Caller holds s.wmu.
func (s *Subscriber) connectLocked(ctx context.Context) error {
	reconnecting := s.conn != nil || s.lastErr != nil
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
	conn, err := s.cfg.dialContext(ctx, s.addr)
	if err != nil {
		if reconnecting {
			subRedialErrors.Add(1)
			s.cfg.flightReconnect(s.connID.Load(), "subscriber redial failed: "+err.Error())
		}
		return err
	}
	s.traced = false
	if s.cfg.tracer.Enabled() && !s.peerLegacy {
		caps, legacy, herr := helloExchange(conn)
		switch {
		case herr != nil:
			_ = conn.Close()
			if reconnecting {
				subRedialErrors.Add(1)
				s.cfg.flightReconnect(s.connID.Load(), "subscriber redial failed: "+herr.Error())
			}
			return herr
		case legacy:
			// Old broker: redial speaking the base protocol.
			_ = conn.Close()
			s.peerLegacy = true
			if conn, err = s.cfg.dialContext(ctx, s.addr); err != nil {
				if reconnecting {
					subRedialErrors.Add(1)
					s.cfg.flightReconnect(s.connID.Load(), "subscriber redial failed: "+err.Error())
				}
				return err
			}
		default:
			s.traced = caps&capTrace != 0
		}
	}
	for name, scope := range s.subs {
		if err := writeFrame(conn, frameSubscribe, subscribePayload(name, scope)); err != nil {
			_ = conn.Close()
			if reconnecting {
				subRedialErrors.Add(1)
				s.cfg.flightReconnect(s.connID.Load(), "subscriber redial failed: "+err.Error())
			}
			return err
		}
	}
	s.conn = conn
	s.connID.Store(flight.NextConnID())
	s.cfg.rec.Record(flight.KindConnOpen, s.connID.Load(), "", 0, 0, "subscriber "+s.addr)
	if s.cfg.tracer.Enabled() && !s.peerLegacy {
		s.cfg.rec.Record(flight.KindHello, s.connID.Load(), "", 0, boolCaps(s.traced), "negotiated")
	}
	s.lastErr = nil
	if reconnecting {
		subReconnects.Add(1)
		s.cfg.flightReconnect(s.connID.Load(), "subscriber reconnected")
	}
	return nil
}

// subscribePayload encodes a subscribe frame for name with an optional
// field scope.
func subscribePayload(name string, fields []string) []byte {
	payload := putStr(nil, name)
	if len(fields) > 0 {
		payload = append(payload, byte(len(fields)))
		for _, f := range fields {
			payload = putStr(payload, f)
		}
	}
	return payload
}

// writeControl sends one control frame, redialing under the retry policy
// when reconnect is enabled.
func (s *Subscriber) writeControl(typ byte, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		return fmt.Errorf("eventbus: subscriber: %w", ErrClosed)
	}
	attempt := func(ctx context.Context) error {
		if s.conn == nil {
			if !s.cfg.reconnect {
				return retry.Permanent(fmt.Errorf("eventbus: subscriber connection lost: %w (%v)", ErrClosed, s.lastErr))
			}
			if err := s.connectLocked(ctx); err != nil {
				return err
			}
		}
		if err := writeFrame(s.conn, typ, payload); err != nil {
			s.teardownLocked(err)
			return err
		}
		return nil
	}
	if !s.cfg.reconnect {
		return attempt(context.Background())
	}
	return retry.Do(context.Background(), s.cfg.policy, attempt)
}

// teardownLocked abandons the current connection. Caller holds s.wmu.
func (s *Subscriber) teardownLocked(err error) {
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
		s.cfg.rec.Record(flight.KindConnClose, s.connID.Load(), "", 0, 0, err.Error())
	}
	s.lastErr = err
}

// Subscribe joins a stream. Records published after the subscription (and
// the formats needed to decode them) will be delivered via Next.
// Subscriptions are replayed automatically after a reconnect.
func (s *Subscriber) Subscribe(streamName string) error {
	err := s.writeControl(frameSubscribe, subscribePayload(streamName, nil))
	if err == nil {
		s.wmu.Lock()
		s.subs[streamName] = nil
		s.wmu.Unlock()
	}
	return err
}

// SubscribeFields joins a stream scoped to a slice of its fields — the
// paper's §4.4 format-scoping. The broker derives a subset format, converts
// every record before delivery, and the hidden fields never reach this
// subscriber. Count fields of kept dynamic arrays are included
// automatically.
func (s *Subscriber) SubscribeFields(streamName string, fields ...string) error {
	if len(fields) == 0 {
		return s.Subscribe(streamName)
	}
	if len(fields) > 255 {
		return fmt.Errorf("eventbus: scope of %d fields exceeds protocol limit", len(fields))
	}
	err := s.writeControl(frameSubscribe, subscribePayload(streamName, fields))
	if err == nil {
		s.wmu.Lock()
		s.subs[streamName] = append([]string(nil), fields...)
		s.wmu.Unlock()
	}
	return err
}

// Unsubscribe leaves a stream. Records already in flight may still arrive.
func (s *Subscriber) Unsubscribe(streamName string) error {
	err := s.writeControl(frameUnsub, putStr(nil, streamName))
	if err == nil {
		s.wmu.Lock()
		delete(s.subs, streamName)
		s.wmu.Unlock()
	}
	return err
}

// currentConn snapshots the live connection (nil when torn down) and the
// closed flag.
func (s *Subscriber) currentConn() (net.Conn, bool) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.conn, s.closed
}

// reconnect redials and re-subscribes after prev broke with cause, unless
// another goroutine already replaced it.
func (s *Subscriber) reconnect(prev net.Conn, cause error) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		return io.EOF
	}
	if s.conn != nil && s.conn != prev {
		return nil // someone else already reconnected
	}
	if s.conn == prev && s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
		s.lastErr = cause
		detail := "connection lost"
		if cause != nil {
			detail = cause.Error()
		}
		s.cfg.rec.Record(flight.KindConnClose, s.connID.Load(), "", 0, 0, detail)
	}
	return retry.Do(context.Background(), s.cfg.policy, s.connectLocked)
}

// Streams asks the broker for the current stream list. It must not be
// interleaved with Next (both read from the connection); call it before
// entering the receive loop.
func (s *Subscriber) Streams() ([]string, error) {
	if err := s.writeControl(frameList, nil); err != nil {
		return nil, err
	}
	conn, closed := s.currentConn()
	if closed || conn == nil {
		return nil, fmt.Errorf("eventbus: subscriber: %w", ErrClosed)
	}
	for {
		typ, payload, buf, err := readFrame(conn, s.buf)
		if err != nil {
			return nil, err
		}
		s.buf = buf
		switch typ {
		case frameStreams:
			if len(payload) == 0 {
				return nil, nil
			}
			return strings.Split(string(payload), "\x00"), nil
		case frameFormat:
			if err := s.adoptFormat(payload); err != nil {
				return nil, err
			}
		case frameError:
			return nil, &BrokerError{Msg: string(payload)}
		default:
			return nil, fmt.Errorf("%w: unexpected frame %d awaiting stream list", ErrBadFrame, typ)
		}
	}
}

// Next blocks until the next record arrives and returns it. Format frames
// are absorbed transparently. Returns io.EOF when the subscriber is closed
// — or, without reconnect, when the broker closes the connection. With
// reconnect enabled a broken connection is redialed under the retry policy
// and the receive loop continues on the new connection.
func (s *Subscriber) Next() (Event, error) {
	for {
		conn, closed := s.currentConn()
		if closed {
			return Event{}, io.EOF
		}
		if conn == nil {
			if !s.cfg.reconnect {
				return Event{}, fmt.Errorf("eventbus: subscriber connection lost: %w", ErrClosed)
			}
			if err := s.reconnect(nil, nil); err != nil {
				return Event{}, err
			}
			continue
		}
		typ, payload, buf, err := readFrame(conn, s.buf)
		if err != nil {
			if _, closedNow := s.currentConn(); closedNow {
				return Event{}, io.EOF // our own Close raced the read
			}
			if !s.cfg.reconnect {
				if errors.Is(err, net.ErrClosed) {
					return Event{}, io.EOF
				}
				return Event{}, err
			}
			if rerr := s.reconnect(conn, err); rerr != nil {
				if errors.Is(rerr, io.EOF) {
					return Event{}, io.EOF
				}
				return Event{}, fmt.Errorf("eventbus: reconnect: %w", rerr)
			}
			continue
		}
		s.buf = buf
		switch typ {
		case frameFormat:
			if err := s.adoptFormat(payload); err != nil {
				return Event{}, err
			}
		case frameEvent, frameEventTrace:
			name, rest, err := getStr(payload)
			if err != nil {
				return Event{}, err
			}
			var etc trace.Ctx
			if typ == frameEventTrace {
				var tid trace.TraceID
				var parent trace.SpanID
				if tid, parent, rest, err = getTraceCtx(rest); err != nil {
					return Event{}, err
				}
				etc = s.cfg.tracer.Join(tid, parent)
			}
			if len(rest) < 8 {
				return Event{}, fmt.Errorf("%w: event without format id", ErrBadFrame)
			}
			var id pbio.FormatID
			copy(id[:], rest)
			f, ok := s.ctx.LookupID(id)
			if !ok {
				return Event{}, fmt.Errorf("eventbus: event references unknown format %s", id)
			}
			data := append([]byte(nil), rest[8:]...)
			s.cfg.rec.Record(flight.KindFrameRecv, s.connID.Load(), name, fid64(id), int64(len(data)), "")
			return Event{Stream: name, Format: f, Data: data, Trace: etc}, nil
		case frameError:
			return Event{}, &BrokerError{Msg: string(payload)}
		case frameStreams, frameHello:
			// Stale answer to a Streams call, or a late hello; ignore.
		default:
			return Event{}, fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, typ)
		}
	}
}

func (s *Subscriber) adoptFormat(meta []byte) error {
	f, err := pbio.UnmarshalMeta(meta)
	if err != nil {
		return err
	}
	s.cfg.rec.Record(flight.KindFormatRecv, s.connID.Load(), "", fid64(f.ID), int64(len(meta)), f.Name)
	_, err = s.ctx.Adopt(f)
	return err
}

// Close closes the broker connection; a blocked Next returns io.EOF.
func (s *Subscriber) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.closed = true
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	s.cfg.rec.Record(flight.KindConnClose, s.connID.Load(), "", 0, 0, "closed")
	return err
}
