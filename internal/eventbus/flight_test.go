package eventbus

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"openmeta/internal/faultnet"
	"openmeta/internal/flight"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
)

// chronological reverses a newest-first snapshot.
func chronological(evs []flight.Event) []flight.Event {
	out := make([]flight.Event, len(evs))
	for i, e := range evs {
		out[len(evs)-1-i] = e
	}
	return out
}

// TestFlightRecordsReconnectSequence is the ISSUE's flight-recorder
// acceptance scenario: a fault-injected connection dies mid-frame during a
// publish, and the black box must show the whole recovery — connection
// close, reconnect, metadata re-send, record re-send — as ordered events,
// retrievable through the /debug/flight handler.
func TestFlightRecordsReconnectSequence(t *testing.T) {
	rec := flight.New(512)
	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	f := flightFormat(t, machine.Sparc)

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)

	// Byte budget expiring 3 bytes into the second publish frame: announce,
	// format metadata and the first record flow, then the wire dies
	// mid-frame-header.
	rec1 := encodeFlight(t, f, 1001)
	meta := pbio.MarshalMeta(f)
	stream := "flights"
	budget := (5 + 2 + len(stream)) +
		(5 + len(meta)) +
		(5 + 2 + len(stream) + 8 + len(rec1)) +
		3
	dialFn, _ := faultyFirstDial(faultnet.NewSchedule(
		faultnet.Fault{Kind: faultnet.DropAfter, N: budget}))

	pub, err := DialPublisherContext(context.Background(), b.Addr().String(),
		WithDialFunc(dialFn), WithReconnect(fastReconnect()), WithClientFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Announce(stream); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(stream, f, rec1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(stream, f, encodeFlight(t, f, 2002)); err != nil {
		t.Fatalf("Publish across the fault = %v", err)
	}

	// Reduce the black box to the publisher's own story: find its connection
	// ids from the conn_open events, then keep only events on those ids.
	evs := chronological(rec.Snapshot())
	pubConns := make(map[uint64]bool)
	for _, e := range evs {
		if e.Kind == "conn_open" && strings.HasPrefix(e.Detail, "publisher ") {
			pubConns[e.Conn] = true
		}
	}
	if len(pubConns) != 2 {
		t.Fatalf("publisher connection ids = %d, want 2 (original + reconnect)", len(pubConns))
	}
	var story []string
	for _, e := range evs {
		if pubConns[e.Conn] {
			story = append(story, e.Kind)
		}
	}
	// The ordered recovery: open, metadata, record, death mid-frame,
	// reconnect, metadata re-send, record retry.
	want := []string{"conn_open", "format_send", "frame_send", "conn_close",
		"conn_open", "reconnect", "format_send", "frame_send"}
	if got := strings.Join(story, " "); got != strings.Join(want, " ") {
		t.Fatalf("publisher flight story:\n got %s\nwant %s", got, strings.Join(want, " "))
	}

	// The same story must come out of the /debug/flight HTTP handler,
	// newest-first and filterable by connection.
	var newConn uint64
	for _, e := range evs {
		if e.Kind == "reconnect" && pubConns[e.Conn] {
			newConn = e.Conn
		}
	}
	req := httptest.NewRequest("GET", fmt.Sprintf("/debug/flight?conn=%d", newConn), nil)
	w := httptest.NewRecorder()
	flight.Handler(rec).ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("/debug/flight = HTTP %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Events []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range chronological(resp.Events) {
		kinds = append(kinds, e.Kind)
	}
	if got := strings.Join(kinds, " "); got != "conn_open reconnect format_send frame_send" {
		t.Fatalf("/debug/flight?conn=%d story = %q", newConn, got)
	}
}

// TestBrokerWireAccounting checks the labeled per-stream × per-format
// families on the broker: published and delivered records/bytes plus
// metadata bytes must land under {stream, format} children.
func TestBrokerWireAccounting(t *testing.T) {
	reg := obsv.New()
	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	f := flightFormat(t, machine.Sparc)

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	data := encodeFlight(t, f, 7)
	if err := pub.Publish("flights", f, data); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	labels := `{stream="flights",format="ASDOffEvent"}`
	if got := snap["eventbus.wire.records"+labels]; got != 1 {
		t.Errorf("wire.records%s = %d, want 1", labels, got)
	}
	if got := snap["eventbus.wire.bytes"+labels]; got != int64(len(data)) {
		t.Errorf("wire.bytes%s = %d, want %d", labels, got, len(data))
	}
	if got := snap["eventbus.wire.delivered.records"+labels]; got != 1 {
		t.Errorf("wire.delivered.records%s = %d, want 1", labels, got)
	}
	if got := snap["eventbus.wire.delivered.bytes"+labels]; got == 0 {
		t.Errorf("wire.delivered.bytes%s = 0, want > 0", labels)
	}
	meta := pbio.MarshalMeta(f)
	if got := snap["eventbus.wire.meta.bytes"+labels]; got != int64(len(meta)) {
		t.Errorf("wire.meta.bytes%s = %d, want %d", labels, got, len(meta))
	}
}
