package eventbus

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmeta/internal/dcg"
	"openmeta/internal/flight"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// Broker is the event backbone: it accepts publisher and subscriber
// connections, tracks which streams exist and who subscribes to them, and
// routes published records — without decoding them — to every subscriber,
// preceding each record with its format metadata the first time that format
// travels to that subscriber.
type Broker struct {
	ln            net.Listener
	log           *slog.Logger
	wg            sync.WaitGroup
	closed        chan struct{}
	queueDepth    int
	writeDeadline time.Duration

	obs    obsv.Scope
	m      brokerMetrics
	tracer *trace.Tracer
	rec    *flight.Recorder
	// legacy makes the broker behave like a pre-hello build: frames 10+ are
	// rejected with a frameError. Exists so interop tests can prove that a
	// new client falls back cleanly against an old peer.
	legacy bool

	// mu guards conns/streams/scoped. Tracked (eventbus.broker_mu.wait_ns /
	// .hold_ns) because it is the routing hot path's one global lock — the
	// contention evidence ROADMAP item 1 (broker sharding) needs.
	mu      *obsv.TrackedMutex
	conns   map[*brokerConn]bool
	streams map[string]*stream

	// plans memoizes conversion programs for format scoping (§4.4 of the
	// paper: exposing "slices" of a stream to particular subscribers).
	plans  *dcg.Cache
	scoped map[scopeKey]*scopedFormat
}

// brokerMetrics bundles the broker-wide instruments. Brokers sharing a
// registry (the default unless WithObserver is given) share counters.
type brokerMetrics struct {
	published   *obsv.Counter // records accepted from publishers
	delivered   *obsv.Counter // event frames enqueued to subscribers
	dropped     *obsv.Counter // frames discarded on full subscriber queues
	formatsSent *obsv.Counter // format-metadata frames sent to subscribers
	slowStalls  *obsv.Counter // must-send stalls on slow subscribers

	// routeNS times publish-to-fanout routing (parse, stream bookkeeping,
	// every subscriber delivery). Traced publishes stamp their TraceID onto
	// the bucket as its exemplar, so a routing p99 spike names a real trace.
	routeNS *obsv.Histogram // route_ns

	// queueWaitNS times enqueue→wire per outbound frame across all
	// subscribers, exemplar-stamped for traced frames; queueWaitVec splits
	// the same measurement per subscriber connection (label "conn"), so one
	// stalled subscriber is distinguishable from fleet-wide backpressure.
	// Connection ids churn with reconnects; the registry's label-children
	// bound clamps runaway cardinality onto the overflow child.
	queueWaitNS  *obsv.Histogram    // queue_wait_ns
	queueWaitVec *obsv.HistogramVec // subscriber.queue_wait_ns{conn}

	// Labeled per-stream × per-format wire accounting. Children are resolved
	// once per (stream, format) pair when the pair first appears (see
	// stream.wireFor), so the routing hot path only touches counters.
	wireRecVec  *obsv.CounterVec // wire.records{stream,format}: records published
	wireByteVec *obsv.CounterVec // wire.bytes{stream,format}: record bytes published
	delRecVec   *obsv.CounterVec // wire.delivered.records{stream,format}
	delByteVec  *obsv.CounterVec // wire.delivered.bytes{stream,format}
	metaByteVec *obsv.CounterVec // wire.meta.bytes{stream,format}: metadata bytes sent
}

func newBrokerMetrics(s obsv.Scope) brokerMetrics {
	return brokerMetrics{
		published:   s.Counter("published"),
		delivered:   s.Counter("delivered"),
		dropped:     s.Counter("dropped"),
		formatsSent: s.Counter("formats_sent"),
		slowStalls:  s.Counter("slow_subscriber_stalls"),
		routeNS:     s.Histogram("route_ns"),
		queueWaitNS: s.Histogram("queue_wait_ns"),
		queueWaitVec: s.HistogramVec("subscriber.queue_wait_ns", "conn"),
		wireRecVec:  s.CounterVec("wire.records", "stream", "format"),
		wireByteVec: s.CounterVec("wire.bytes", "stream", "format"),
		delRecVec:   s.CounterVec("wire.delivered.records", "stream", "format"),
		delByteVec:  s.CounterVec("wire.delivered.bytes", "stream", "format"),
		metaByteVec: s.CounterVec("wire.meta.bytes", "stream", "format"),
	}
}

// Package-level default instruments, created at init so the eventbus.*
// metric names exist (zero-valued) in openmeta.Stats() from process start.
var defaultBrokerMetrics = newBrokerMetrics(obsv.Default().Scope("eventbus"))

// scopeKey identifies one slice of one concrete format.
type scopeKey struct {
	id    pbio.FormatID
	scope string // canonical comma-joined field list
}

// scopedFormat pairs a derived subset format with the conversion plan that
// projects full records onto it.
type scopedFormat struct {
	format *pbio.Format
	meta   []byte
	plan   *dcg.Plan
}

type stream struct {
	name string
	// formats holds the metadata of every format seen on the stream, in
	// arrival order, so late subscribers receive them on subscription.
	formats []formatMeta
	subs    map[*brokerConn]bool

	// Per-stream instruments (eventbus.stream.<name>.published|delivered|
	// dropped), resolved once when the stream is created.
	published *obsv.Counter
	delivered *obsv.Counter
	dropped   *obsv.Counter

	// wire resolves the labeled (stream, format) counter children once per
	// format seen on the stream. Guarded by the broker mutex.
	wire map[pbio.FormatID]*streamWire
}

// streamWire carries one (stream, format) pair's resolved labeled counters
// plus the identifiers flight events need, so the fanout hot path touches no
// maps or label vectors.
type streamWire struct {
	stream string
	fname  string
	id     uint64 // big-endian view of the pbio.FormatID, as flight reports it

	recs      *obsv.Counter
	bytes     *obsv.Counter
	delRecs   *obsv.Counter
	delBytes  *obsv.Counter
	metaBytes *obsv.Counter
}

// wireFor returns (resolving and memoizing on first use) the pair's counters.
// Caller holds the broker mutex.
func (st *stream) wireFor(m *brokerMetrics, fm formatMeta) *streamWire {
	if w, ok := st.wire[fm.id]; ok {
		return w
	}
	name, err := pbio.MetaRootName(fm.meta)
	if err != nil || name == "" {
		name = fm.id.String() // undecodable metadata: fall back to the hex id
	}
	w := &streamWire{
		stream:    st.name,
		fname:     name,
		id:        fid64(fm.id),
		recs:      m.wireRecVec.With(st.name, name),
		bytes:     m.wireByteVec.With(st.name, name),
		delRecs:   m.delRecVec.With(st.name, name),
		delBytes:  m.delByteVec.With(st.name, name),
		metaBytes: m.metaByteVec.With(st.name, name),
	}
	st.wire[fm.id] = w
	return w
}

// fid64 renders a format ID as the uint64 flight events and /debug/flight
// filters use.
func fid64(id pbio.FormatID) uint64 { return binary.BigEndian.Uint64(id[:]) }

type formatMeta struct {
	id   pbio.FormatID
	meta []byte
}

type brokerConn struct {
	conn net.Conn
	// id is the process-unique connection id flight events carry, allocated
	// from the same sequence clients use so /debug/flight never aliases.
	id uint64

	// out is the bounded outbound queue; a dedicated writer goroutine
	// drains it so one slow subscriber cannot stall publishers. Event
	// frames are dropped (and counted in the broker's obsv registry) when
	// the queue is full; format frames are never dropped, because later
	// records are undecodable without them.
	out        chan outFrame
	outClose   chan struct{} // closed when the connection is being torn down
	writerDone chan struct{} // closed when the writer goroutine has exited
	dropped    *obsv.Counter // broker-wide drop counter (persists past the conn)

	// caps holds the capabilities negotiated in the connection's hello
	// exchange (0 until one happens). Written by the connection's reader
	// goroutine, read by publishers' fanout goroutines.
	caps atomic.Uint32

	wmu sync.Mutex // guards sentFormats ordering decisions

	// sentFormats tracks which format IDs this (subscriber) connection has
	// already received metadata for.
	sentFormats map[pbio.FormatID]bool
	// knownFormats maps IDs announced by this (publisher) connection.
	knownFormats map[pbio.FormatID][]byte
	// scopes maps stream name to the field slice this subscriber may see
	// (nil = the full format).
	scopes map[string][]string

	// queueWait is this connection's child of the broker's
	// subscriber.queue_wait_ns vec, resolved once at accept so the writer
	// loop's dequeue path never touches the label map.
	queueWait *obsv.Histogram
}

// outFrame is one queued outbound frame. The payload is owned by the queue.
type outFrame struct {
	typ     byte
	payload []byte
	// enq stamps when the frame entered the queue; the writer loop turns it
	// into the enqueue→wire queue-wait observation at dequeue.
	enq time.Time
	// tid/parent/stream carry a traced event's context so the dequeue can
	// record a retroactive broker.queue span (zero tid = untraced frame).
	tid    trace.TraceID
	parent trace.SpanID
	stream string
}

// outQueueDepth is the default per-subscriber backlog bound (override with
// WithQueueDepth). At 1 KB records this is a quarter-megabyte of tolerated
// lag before events drop.
const outQueueDepth = 256

// BrokerOption configures a Broker.
type BrokerOption func(*Broker)

// WithSlog directs broker diagnostics to l (default: slog.Default()). A
// component=eventbus.broker attribute is appended either way.
func WithSlog(l *slog.Logger) BrokerOption {
	return func(b *Broker) {
		if l != nil {
			b.log = l
		}
	}
}

// WithLogger directs broker diagnostics to a printf-style sink. Retained for
// compatibility with pre-slog callers; new code should use WithSlog.
func WithLogger(logf func(format string, args ...interface{})) BrokerOption {
	return func(b *Broker) {
		if logf != nil {
			b.log = slog.New(printfHandler{logf: logf})
		}
	}
}

// WithFlightRecorder directs the broker's protocol events (connection churn,
// hello outcomes, frame and format traffic, slow-subscriber drops, errors)
// into r instead of the process-default recorder served at /debug/flight.
func WithFlightRecorder(r *flight.Recorder) BrokerOption {
	return func(b *Broker) {
		if r != nil {
			b.rec = r
		}
	}
}

// WithQueueDepth bounds each subscriber's outbound frame queue to n frames
// (default 256). Smaller queues drop sooner under slow consumers; larger
// queues tolerate more lag at the cost of memory.
func WithQueueDepth(n int) BrokerOption {
	return func(b *Broker) {
		if n > 0 {
			b.queueDepth = n
		}
	}
}

// WithWriteDeadline bounds how long the broker spends flushing a closing
// connection's queued frames (default 2s). Shorter deadlines free writer
// goroutines faster under churn; longer ones give slow peers more chance to
// receive final error frames.
func WithWriteDeadline(d time.Duration) BrokerOption {
	return func(b *Broker) {
		if d > 0 {
			b.writeDeadline = d
		}
	}
}

// WithObserver directs the broker's metrics (published/delivered/dropped,
// per-stream counters, queue depth, slow-subscriber stalls) into r instead
// of the process default registry.
func WithObserver(r *obsv.Registry) BrokerOption {
	return func(b *Broker) {
		b.obs = r.Scope("eventbus")
		b.m = newBrokerMetrics(b.obs)
	}
}

// WithPlanCache substitutes the conversion-plan cache used for format
// scoping — share one cache across brokers, or bound it with
// dcg.WithMaxEntries.
func WithPlanCache(c *dcg.Cache) BrokerOption {
	return func(b *Broker) {
		if c != nil {
			b.plans = c
		}
	}
}

// WithTracer directs the broker's spans (broker.route, dcg.compile,
// dcg.convert) into t instead of the process default tracer. Spans are only
// recorded for records whose publisher sampled them and while t is enabled.
func WithTracer(t *trace.Tracer) BrokerOption {
	return func(b *Broker) {
		if t != nil {
			b.tracer = t
		}
	}
}

// WithLegacyProtocol makes the broker speak only the base protocol,
// rejecting frameHello and the traced frame variants exactly like a
// pre-extension build (frameError + close). It exists so interoperability
// tests can prove new clients fall back cleanly against old peers.
func WithLegacyProtocol() BrokerOption {
	return func(b *Broker) { b.legacy = true }
}

// NewBroker starts a broker on the given listener. The broker owns the
// listener and closes it on Close.
func NewBroker(ln net.Listener, opts ...BrokerOption) *Broker {
	b := &Broker{
		ln:            ln,
		log:           slog.Default(),
		closed:        make(chan struct{}),
		queueDepth:    outQueueDepth,
		writeDeadline: 2 * time.Second,
		obs:           obsv.Default().Scope("eventbus"),
		m:             defaultBrokerMetrics,
		tracer:        trace.Default(),
		rec:           flight.Default(),
		conns:         make(map[*brokerConn]bool),
		streams:       make(map[string]*stream),
		plans:         dcg.NewCache(),
		scoped:        make(map[scopeKey]*scopedFormat),
	}
	for _, opt := range opts {
		opt(b)
	}
	b.log = b.log.With("component", "eventbus.broker")
	// The tracked lock is built after options so WithObserver's registry
	// owns the wait/hold histograms and lists the lock in /debug/contention.
	b.mu = obsv.NewTrackedMutex("broker_mu", b.obs)
	// Queue depth is observable at snapshot time; with a shared registry the
	// most recent broker wins the name, which is the common one-broker case.
	b.obs.Func("queue_depth", b.queuedFrames)
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// queuedFrames sums the frames currently queued to all subscribers.
func (b *Broker) queuedFrames() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for c := range b.conns {
		n += int64(len(c.out))
	}
	return n
}

// Listen starts a broker on a fresh TCP listener at addr (e.g.
// "127.0.0.1:0").
func Listen(addr string, opts ...BrokerOption) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eventbus: listen: %w", err)
	}
	return NewBroker(ln, opts...), nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() net.Addr { return b.ln.Addr() }

// Close shuts the broker down: stops accepting, closes every connection and
// waits for all handlers to exit.
func (b *Broker) Close() error {
	select {
	case <-b.closed:
		return nil
	default:
	}
	close(b.closed)
	err := b.ln.Close()
	b.mu.Lock()
	for c := range b.conns {
		_ = c.conn.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

// SubscriberCount reports how many connections currently subscribe to the
// named stream.
func (b *Broker) SubscriberCount(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.streams[name]
	if !ok {
		return 0
	}
	return len(st.subs)
}

// Streams lists the streams that have been announced or published to.
func (b *Broker) Streams() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.streams))
	for name := range b.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			select {
			case <-b.closed:
				return
			default:
			}
			b.log.Error("accept failed", "err", err)
			return
		}
		id := flight.NextConnID()
		bc := &brokerConn{
			conn:         conn,
			id:           id,
			queueWait:    b.m.queueWaitVec.With(strconv.FormatUint(id, 10)),
			out:          make(chan outFrame, b.queueDepth),
			outClose:     make(chan struct{}),
			writerDone:   make(chan struct{}),
			dropped:      b.m.dropped,
			sentFormats:  make(map[pbio.FormatID]bool),
			knownFormats: make(map[pbio.FormatID][]byte),
			scopes:       make(map[string][]string),
		}
		b.mu.Lock()
		b.conns[bc] = true
		b.mu.Unlock()
		b.rec.Record(flight.KindConnOpen, bc.id, "", 0, 0, conn.RemoteAddr().String())
		b.wg.Add(2)
		go b.writeLoop(bc)
		go b.handle(bc)
	}
}

func (b *Broker) handle(bc *brokerConn) {
	defer b.wg.Done()
	defer b.drop(bc)
	var buf []byte
	for {
		typ, payload, newBuf, err := readFrame(bc.conn, buf)
		if err != nil {
			// io.EOF is a clean disconnect and net.ErrClosed our own
			// shutdown; anything else is diagnostic.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				b.log.Warn("read failed", "conn", bc.id, "remote", bc.conn.RemoteAddr().String(), "err", err)
				b.rec.Record(flight.KindConnClose, bc.id, "", 0, 0, err.Error())
			} else {
				b.rec.Record(flight.KindConnClose, bc.id, "", 0, 0, "")
			}
			return
		}
		buf = newBuf
		if err := b.dispatch(bc, typ, payload); err != nil {
			b.log.Warn("dispatch failed", "conn", bc.id, "remote", bc.conn.RemoteAddr().String(), "err", err)
			b.rec.Record(flight.KindBrokerError, bc.id, "", 0, 0, err.Error())
			_ = bc.send(frameError, []byte(err.Error()))
			return
		}
	}
}

func (b *Broker) dispatch(bc *brokerConn, typ byte, payload []byte) error {
	if b.legacy && typ >= frameHello {
		return fmt.Errorf("%w: type %d", ErrBadFrame, typ)
	}
	switch typ {
	case frameHello:
		_, caps, err := parseHello(payload)
		if err != nil {
			return err
		}
		bc.caps.Store(caps & localCaps)
		b.rec.Record(flight.KindHello, bc.id, "", 0, int64(caps&localCaps), "negotiated")
		return bc.sendMust(frameHello, helloPayload(localCaps))

	case frameAnnounce:
		name, _, err := getStr(payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		b.ensureStream(name)
		b.mu.Unlock()
		return nil

	case frameFormat:
		f, err := pbio.UnmarshalMeta(payload)
		if err != nil {
			return err
		}
		bc.knownFormats[f.ID] = append([]byte(nil), payload...)
		b.rec.Record(flight.KindFormatRecv, bc.id, "", fid64(f.ID), int64(len(payload)), f.Name)
		return nil

	case frameSubscribe:
		name, rest, err := getStr(payload)
		if err != nil {
			return err
		}
		var scope []string
		if len(rest) > 0 {
			n := int(rest[0])
			rest = rest[1:]
			for i := 0; i < n; i++ {
				var field string
				if field, rest, err = getStr(rest); err != nil {
					return err
				}
				scope = append(scope, field)
			}
		}
		b.mu.Lock()
		st := b.ensureStream(name)
		st.subs[bc] = true
		if scope != nil {
			bc.scopes[name] = scope
		} else {
			delete(bc.scopes, name)
		}
		formats := append([]formatMeta(nil), st.formats...)
		wires := make([]*streamWire, len(formats))
		for i, fm := range formats {
			wires[i] = st.wireFor(&b.m, fm)
		}
		b.mu.Unlock()
		// Deliver the stream's known formats (sliced if scoped) so the
		// subscriber can decode records that arrive immediately.
		for i, fm := range formats {
			if err := b.deliverFormat(bc, name, fm, wires[i]); err != nil {
				return err
			}
		}
		return nil

	case frameUnsub:
		name, _, err := getStr(payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		if st, ok := b.streams[name]; ok {
			delete(st.subs, bc)
		}
		b.mu.Unlock()
		return nil

	case framePublish:
		return b.publish(bc, payload, false)

	case framePublishTrace:
		if bc.caps.Load()&capTrace == 0 {
			return fmt.Errorf("%w: traced publish without trace capability", ErrBadFrame)
		}
		return b.publish(bc, payload, true)

	case frameList:
		names := b.Streams()
		var out []byte
		for i, n := range names {
			if i > 0 {
				out = append(out, 0)
			}
			out = append(out, n...)
		}
		return bc.send(frameStreams, out)

	default:
		return fmt.Errorf("%w: type %d", ErrBadFrame, typ)
	}
}

// ensureStream returns the stream record, creating it if new. Caller holds
// b.mu.
func (b *Broker) ensureStream(name string) *stream {
	st, ok := b.streams[name]
	if !ok {
		sc := b.obs.Counter // eventbus.stream.<name>.*
		st = &stream{
			name:      name,
			subs:      make(map[*brokerConn]bool),
			published: sc("stream." + name + ".published"),
			delivered: sc("stream." + name + ".delivered"),
			dropped:   sc("stream." + name + ".dropped"),
			wire:      make(map[pbio.FormatID]*streamWire),
		}
		b.streams[name] = st
	}
	return st
}

// delivery carries one published record through the fanout loop: the parsed
// pieces, the payload variants (built lazily, shared across subscribers) and
// the trace context when the record arrived in a traced frame.
type delivery struct {
	st     *stream
	fm     formatMeta
	w      *streamWire
	record []byte // NDR record bytes (after the format id)
	plain  []byte // frameEvent payload: stream || id || record
	traced []byte // frameEventTrace payload: stream || trace ctx || id || record

	isTraced bool
	tid      trace.TraceID
	parent   trace.SpanID // outgoing parent: broker route span, or upstream's
	route    trace.Ctx    // parents dcg.compile / dcg.convert child spans
}

// tracedPayload lazily builds the frameEventTrace payload.
func (d *delivery) tracedPayload() []byte {
	if d.traced == nil {
		p := putStr(nil, d.st.name)
		p = putTraceCtx(p, d.tid, d.parent)
		p = append(p, d.fm.id[:]...)
		p = append(p, d.record...)
		d.traced = p
	}
	return d.traced
}

func (b *Broker) publish(bc *brokerConn, payload []byte, isTraced bool) error {
	start := time.Now()
	name, rest, err := getStr(payload)
	if err != nil {
		return err
	}
	var tid trace.TraceID
	var parent trace.SpanID
	if isTraced {
		if tid, parent, rest, err = getTraceCtx(rest); err != nil {
			return err
		}
	}
	if len(rest) < 8 {
		return fmt.Errorf("%w: publish without format id", ErrBadFrame)
	}
	var id pbio.FormatID
	copy(id[:], rest)

	meta, ok := bc.knownFormats[id]
	if !ok {
		return fmt.Errorf("eventbus: publish on %q references unannounced format %s", name, id)
	}

	// Exemplar-capable acquisition: a traced publish that suffers a long
	// wait stamps its TraceID onto the wait histogram's bucket.
	b.mu.LockExemplar(tid)
	st := b.ensureStream(name)
	if !st.hasFormat(id) {
		st.formats = append(st.formats, formatMeta{id: id, meta: meta})
	}
	w := st.wireFor(&b.m, formatMeta{id: id, meta: meta})
	subs := make([]*brokerConn, 0, len(st.subs))
	for s := range st.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	b.m.published.Add(1)
	st.published.Add(1)
	w.recs.Add(1)
	w.bytes.Add(int64(len(rest) - 8))
	b.rec.Record(flight.KindFrameRecv, bc.id, name, w.id, int64(len(rest)-8), "")

	d := delivery{
		st:       st,
		fm:       formatMeta{id: id, meta: meta},
		w:        w,
		record:   rest[8:],
		isTraced: isTraced,
		tid:      tid,
		parent:   parent,
	}
	if isTraced {
		// Record this hop's routing span. If the broker's tracer is off the
		// record still carries the upstream context downstream, so
		// subscriber-side spans keep linking into the trace.
		d.route = b.tracer.Join(tid, parent).Child("broker.route")
		if d.route.Sampled() {
			d.parent = d.route.Span()
		}
		// The incoming payload embeds the publisher's parent id; rebuild the
		// plain variant for subscribers that did not negotiate tracing.
		p := putStr(nil, name)
		p = append(p, id[:]...)
		d.plain = append(p, d.record...)
	} else {
		d.plain = payload
	}

	for _, sub := range subs {
		if err := b.deliver(sub, &d); err != nil {
			b.log.Warn("dropping subscriber", "conn", sub.id,
				"remote", sub.conn.RemoteAddr().String(), "stream", name, "err", err)
			b.rec.Record(flight.KindBrokerError, sub.id, name, w.id, 0, err.Error())
			b.drop(sub)
		}
	}
	d.route.FinishDetail(st.name)
	// Traced publishes stamp their TraceID onto the routing histogram bucket;
	// untraced ones still count (trace.TraceID zero value short-circuits).
	b.m.routeNS.ObserveExemplar(time.Since(start).Nanoseconds(), tid)
	return nil
}

// deliver routes one record to one subscriber, projecting it onto the
// subscriber's scope when one is set. Subscribers that negotiated capTrace
// receive traced records as frameEventTrace with this broker's route span as
// the parent link; everyone else receives plain frameEvent.
func (b *Broker) deliver(sub *brokerConn, d *delivery) error {
	b.mu.Lock()
	scope := sub.scopes[d.st.name]
	b.mu.Unlock()
	subTraced := d.isTraced && sub.caps.Load()&capTrace != 0
	if scope == nil {
		if err := b.sendFormat(sub, d.fm, d.w); err != nil {
			return err
		}
		if subTraced {
			return b.sendEvent(sub, d, frameEventTrace, d.tracedPayload())
		}
		return b.sendEvent(sub, d, frameEvent, d.plain)
	}
	sf, err := b.scopedFor(d.fm, scope, d.route)
	if err != nil {
		// A scope the format cannot satisfy is the subscriber's error.
		return fmt.Errorf("scope %v: %w", scope, err)
	}
	converted, err := sf.plan.ConvertCtx(d.route, d.record)
	if err != nil {
		return fmt.Errorf("scope projection: %w", err)
	}
	if err := b.sendFormat(sub, formatMeta{id: sf.format.ID, meta: sf.meta}, d.w); err != nil {
		return err
	}
	payload := putStr(nil, d.st.name)
	typ := frameEvent
	if subTraced {
		typ = frameEventTrace
		payload = putTraceCtx(payload, d.tid, d.parent)
	}
	payload = append(payload, sf.format.ID[:]...)
	payload = append(payload, converted...)
	return b.sendEvent(sub, d, typ, payload)
}

// sendEvent enqueues one event frame, counting delivery or the per-stream
// drop, in both the aggregate and the labeled (stream, format) families.
func (b *Broker) sendEvent(sub *brokerConn, d *delivery, typ byte, payload []byte) error {
	f := outFrame{typ: typ, payload: append([]byte(nil), payload...), enq: time.Now()}
	if d.isTraced {
		f.tid, f.parent, f.stream = d.tid, d.parent, d.st.name
	}
	queued, err := sub.trySendFrame(f)
	if err != nil {
		return err
	}
	if queued {
		b.m.delivered.Add(1)
		d.st.delivered.Add(1)
		d.w.delRecs.Add(1)
		d.w.delBytes.Add(int64(len(payload)))
		b.rec.Record(flight.KindFrameSend, sub.id, d.st.name, d.w.id, int64(len(payload)), "")
	} else {
		d.st.dropped.Add(1)
		b.rec.Record(flight.KindSlowSubDrop, sub.id, d.st.name, d.w.id, int64(len(payload)), "queue full")
	}
	return nil
}

// deliverFormat sends a stream format (or its scoped slice) to a subscriber.
func (b *Broker) deliverFormat(sub *brokerConn, streamName string, fm formatMeta, w *streamWire) error {
	b.mu.Lock()
	scope := sub.scopes[streamName]
	b.mu.Unlock()
	if scope == nil {
		return b.sendFormat(sub, fm, w)
	}
	sf, err := b.scopedFor(fm, scope, trace.Ctx{})
	if err != nil {
		return fmt.Errorf("scope %v: %w", scope, err)
	}
	return b.sendFormat(sub, formatMeta{id: sf.format.ID, meta: sf.meta}, w)
}

// scopedFor returns (building and memoizing if needed) the slice of the
// format fm restricted to the given fields, with its conversion plan. A
// first-use compilation records a dcg.compile child span of tc.
func (b *Broker) scopedFor(fm formatMeta, scope []string, tc trace.Ctx) (*scopedFormat, error) {
	key := scopeKey{id: fm.id, scope: strings.Join(scope, ",")}
	b.mu.Lock()
	sf, ok := b.scoped[key]
	b.mu.Unlock()
	if ok {
		return sf, nil
	}
	full, err := pbio.UnmarshalMeta(fm.meta)
	if err != nil {
		return nil, err
	}
	subset, err := pbio.DeriveSubset(full, scope)
	if err != nil {
		return nil, err
	}
	plan, err := b.plans.PlanCtx(tc, full, subset)
	if err != nil {
		return nil, err
	}
	sf = &scopedFormat{format: subset, meta: pbio.MarshalMeta(subset), plan: plan}
	b.mu.Lock()
	if prev, ok := b.scoped[key]; ok {
		sf = prev
	} else {
		b.scoped[key] = sf
	}
	b.mu.Unlock()
	return sf, nil
}

func (st *stream) hasFormat(id pbio.FormatID) bool {
	for _, fm := range st.formats {
		if fm.id == id {
			return true
		}
	}
	return false
}

// sendFormat sends format metadata to a subscriber once. The decision and
// the enqueue happen under one lock so the format frame is queued before
// any event frame that needs it. Metadata bytes count against the parent
// (stream, format) wire pair when one is known — a scoped slice's bytes are
// attributed to the full format it was derived from.
func (b *Broker) sendFormat(sub *brokerConn, fm formatMeta, w *streamWire) error {
	sub.wmu.Lock()
	defer sub.wmu.Unlock()
	if sub.sentFormats[fm.id] {
		return nil
	}
	if err := sub.sendMust(frameFormat, fm.meta); err != nil {
		if errors.Is(err, ErrSlowSubscriber) {
			b.m.slowStalls.Add(1)
			b.rec.Record(flight.KindSlowSubDrop, sub.id, "", fid64(fm.id), int64(len(fm.meta)), "format frame stalled")
		}
		return err
	}
	b.m.formatsSent.Add(1)
	if w != nil {
		w.metaBytes.Add(int64(len(fm.meta)))
		b.rec.Record(flight.KindFormatSend, sub.id, w.stream, fid64(fm.id), int64(len(fm.meta)), w.fname)
	} else {
		b.rec.Record(flight.KindFormatSend, sub.id, "", fid64(fm.id), int64(len(fm.meta)), "")
	}
	sub.sentFormats[fm.id] = true
	return nil
}

// writeLoop drains the outbound queue onto the socket. On teardown it
// flushes frames already queued (bounded by a write deadline) so error
// frames and final events reach the peer.
func (b *Broker) writeLoop(bc *brokerConn) {
	defer b.wg.Done()
	defer close(bc.writerDone)
	for {
		select {
		case f := <-bc.out:
			b.observeQueueWait(bc, &f)
			if err := writeFrame(bc.conn, f.typ, f.payload); err != nil {
				// Socket is dead: unregister and let the reader notice.
				b.unregister(bc)
				_ = bc.conn.Close()
				return
			}
		case <-bc.outClose:
			_ = bc.conn.SetWriteDeadline(time.Now().Add(b.writeDeadline))
			for {
				select {
				case f := <-bc.out:
					b.observeQueueWait(bc, &f)
					if err := writeFrame(bc.conn, f.typ, f.payload); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// observeQueueWait turns a dequeued frame's enqueue timestamp into the
// queue-wait observations: the broker-wide histogram (exemplar-stamped when
// the frame is traced), the per-subscriber labeled child, and — for traced
// event frames — a retroactive broker.queue span starting at the enqueue, so
// omload's trace-derived stage shares gain an explicit queue stage. Measured
// at dequeue, before the socket write, so a stalled-but-draining subscriber
// still records its waits.
func (b *Broker) observeQueueWait(bc *brokerConn, f *outFrame) {
	if f.enq.IsZero() {
		return
	}
	wait := time.Since(f.enq)
	b.m.queueWaitNS.ObserveExemplar(wait.Nanoseconds(), f.tid)
	bc.queueWait.Observe(wait.Nanoseconds())
	b.tracer.RecordSpan(f.tid, f.parent, "broker.queue", f.stream, f.enq, wait)
}

// send enqueues a droppable frame (events, stream listings, errors). When
// the subscriber's queue is full the frame is discarded and counted — a
// slow consumer loses records, never stalls the bus.
func (bc *brokerConn) send(typ byte, payload []byte) error {
	_, err := bc.trySend(typ, payload)
	return err
}

// trySend enqueues a droppable frame, reporting whether it was queued
// (false: discarded on a full queue, counted in the broker's drop counter).
func (bc *brokerConn) trySend(typ byte, payload []byte) (bool, error) {
	return bc.trySendFrame(outFrame{typ: typ, payload: append([]byte(nil), payload...), enq: time.Now()})
}

// trySendFrame is trySend for a caller-built frame (sendEvent builds frames
// carrying trace context for the dequeue-side broker.queue span).
func (bc *brokerConn) trySendFrame(f outFrame) (bool, error) {
	select {
	case bc.out <- f:
		return true, nil
	case <-bc.outClose:
		return false, ErrClosed
	default:
		bc.dropped.Add(1)
		return false, nil
	}
}

// sendMust enqueues a frame that may not be dropped (format metadata),
// waiting for queue space up to a drop deadline.
func (bc *brokerConn) sendMust(typ byte, payload []byte) error {
	f := outFrame{typ: typ, payload: append([]byte(nil), payload...), enq: time.Now()}
	t := time.NewTimer(5 * time.Second)
	defer t.Stop()
	select {
	case bc.out <- f:
		return nil
	case <-bc.outClose:
		return ErrClosed
	case <-t.C:
		return fmt.Errorf("%w: write queue stalled for 5s", ErrSlowSubscriber)
	}
}

// unregister removes a connection from routing state; it reports whether
// this call was the one that removed it.
func (b *Broker) unregister(bc *brokerConn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.conns[bc] {
		return false
	}
	delete(b.conns, bc)
	for _, st := range b.streams {
		delete(st.subs, bc)
	}
	return true
}

// drop tears a connection down: unregisters it, lets the writer flush its
// queued frames, then closes the socket.
func (b *Broker) drop(bc *brokerConn) {
	first := b.unregister(bc)
	select {
	case <-bc.outClose:
	default:
		if first {
			close(bc.outClose)
		}
	}
	select {
	case <-bc.writerDone:
	case <-time.After(3 * time.Second):
	}
	_ = bc.conn.Close()
}

// BrokerStats is a point-in-time view of the broker's delivery health.
type BrokerStats struct {
	// Streams and Subscribers describe current routing state.
	Streams     int
	Subscribers int
	// QueuedFrames is the total outbound backlog across subscriber queues.
	QueuedFrames int64
	// Cumulative counters (shared with other brokers on the same obsv
	// registry; pass WithObserver for per-broker isolation).
	Published            int64
	Delivered            int64
	Dropped              int64
	FormatsSent          int64
	SlowSubscriberStalls int64
}

// Stats reports the broker's delivery health. Unlike the pre-obsv dropped
// counter, drop counts persist after the dropping connection closes.
func (b *Broker) Stats() BrokerStats {
	s := BrokerStats{
		Published:            b.m.published.Load(),
		Delivered:            b.m.delivered.Load(),
		Dropped:              b.m.dropped.Load(),
		FormatsSent:          b.m.formatsSent.Load(),
		SlowSubscriberStalls: b.m.slowStalls.Load(),
		QueuedFrames:         b.queuedFrames(),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s.Streams = len(b.streams)
	seen := make(map[*brokerConn]bool)
	for _, st := range b.streams {
		for c := range st.subs {
			seen[c] = true
		}
	}
	s.Subscribers = len(seen)
	return s
}

// DroppedEvents reports how many event frames the broker has discarded
// because subscriber queues were full.
//
// Deprecated: use Stats().Dropped, which also survives connection teardown.
func (b *Broker) DroppedEvents() int64 { return b.m.dropped.Load() }

// Healthy reports nil while the broker is accepting connections. It is shaped
// as a readiness probe for obsv.RegisterProbe.
func (b *Broker) Healthy() error {
	select {
	case <-b.closed:
		return errors.New("broker closed")
	default:
		return nil
	}
}

// PlanCacheLen reports how many scoped-conversion plans are currently
// memoized, for bounding probes against dcg.WithMaxEntries caches.
func (b *Broker) PlanCacheLen() int { return b.plans.Len() }

// printfHandler adapts a printf-style sink to slog, backing the WithLogger
// compatibility shim. Attributes render as trailing key=value pairs.
type printfHandler struct {
	logf  func(format string, args ...interface{})
	attrs []slog.Attr
}

func (h printfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h printfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString("eventbus: ")
	sb.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.logf("%s", sb.String())
	return nil
}

func (h printfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h printfHandler) WithGroup(string) slog.Handler { return h }
