package eventbus

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmeta/internal/dcg"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// Broker is the event backbone: it accepts publisher and subscriber
// connections, tracks which streams exist and who subscribes to them, and
// routes published records — without decoding them — to every subscriber,
// preceding each record with its format metadata the first time that format
// travels to that subscriber.
type Broker struct {
	ln            net.Listener
	logf          func(format string, args ...interface{})
	wg            sync.WaitGroup
	closed        chan struct{}
	queueDepth    int
	writeDeadline time.Duration

	obs    obsv.Scope
	m      brokerMetrics
	tracer *trace.Tracer
	// legacy makes the broker behave like a pre-hello build: frames 10+ are
	// rejected with a frameError. Exists so interop tests can prove that a
	// new client falls back cleanly against an old peer.
	legacy bool

	mu      sync.Mutex
	conns   map[*brokerConn]bool
	streams map[string]*stream

	// plans memoizes conversion programs for format scoping (§4.4 of the
	// paper: exposing "slices" of a stream to particular subscribers).
	plans  *dcg.Cache
	scoped map[scopeKey]*scopedFormat
}

// brokerMetrics bundles the broker-wide instruments. Brokers sharing a
// registry (the default unless WithObserver is given) share counters.
type brokerMetrics struct {
	published   *obsv.Counter // records accepted from publishers
	delivered   *obsv.Counter // event frames enqueued to subscribers
	dropped     *obsv.Counter // frames discarded on full subscriber queues
	formatsSent *obsv.Counter // format-metadata frames sent to subscribers
	slowStalls  *obsv.Counter // must-send stalls on slow subscribers
}

func newBrokerMetrics(s obsv.Scope) brokerMetrics {
	return brokerMetrics{
		published:   s.Counter("published"),
		delivered:   s.Counter("delivered"),
		dropped:     s.Counter("dropped"),
		formatsSent: s.Counter("formats_sent"),
		slowStalls:  s.Counter("slow_subscriber_stalls"),
	}
}

// Package-level default instruments, created at init so the eventbus.*
// metric names exist (zero-valued) in openmeta.Stats() from process start.
var defaultBrokerMetrics = newBrokerMetrics(obsv.Default().Scope("eventbus"))

// scopeKey identifies one slice of one concrete format.
type scopeKey struct {
	id    pbio.FormatID
	scope string // canonical comma-joined field list
}

// scopedFormat pairs a derived subset format with the conversion plan that
// projects full records onto it.
type scopedFormat struct {
	format *pbio.Format
	meta   []byte
	plan   *dcg.Plan
}

type stream struct {
	name string
	// formats holds the metadata of every format seen on the stream, in
	// arrival order, so late subscribers receive them on subscription.
	formats []formatMeta
	subs    map[*brokerConn]bool

	// Per-stream instruments (eventbus.stream.<name>.published|delivered|
	// dropped), resolved once when the stream is created.
	published *obsv.Counter
	delivered *obsv.Counter
	dropped   *obsv.Counter
}

type formatMeta struct {
	id   pbio.FormatID
	meta []byte
}

type brokerConn struct {
	conn net.Conn

	// out is the bounded outbound queue; a dedicated writer goroutine
	// drains it so one slow subscriber cannot stall publishers. Event
	// frames are dropped (and counted in the broker's obsv registry) when
	// the queue is full; format frames are never dropped, because later
	// records are undecodable without them.
	out        chan outFrame
	outClose   chan struct{} // closed when the connection is being torn down
	writerDone chan struct{} // closed when the writer goroutine has exited
	dropped    *obsv.Counter // broker-wide drop counter (persists past the conn)

	// caps holds the capabilities negotiated in the connection's hello
	// exchange (0 until one happens). Written by the connection's reader
	// goroutine, read by publishers' fanout goroutines.
	caps atomic.Uint32

	wmu sync.Mutex // guards sentFormats ordering decisions

	// sentFormats tracks which format IDs this (subscriber) connection has
	// already received metadata for.
	sentFormats map[pbio.FormatID]bool
	// knownFormats maps IDs announced by this (publisher) connection.
	knownFormats map[pbio.FormatID][]byte
	// scopes maps stream name to the field slice this subscriber may see
	// (nil = the full format).
	scopes map[string][]string
}

// outFrame is one queued outbound frame. The payload is owned by the queue.
type outFrame struct {
	typ     byte
	payload []byte
}

// outQueueDepth is the default per-subscriber backlog bound (override with
// WithQueueDepth). At 1 KB records this is a quarter-megabyte of tolerated
// lag before events drop.
const outQueueDepth = 256

// BrokerOption configures a Broker.
type BrokerOption func(*Broker)

// WithLogger directs broker diagnostics to logf (default: log.Printf).
func WithLogger(logf func(format string, args ...interface{})) BrokerOption {
	return func(b *Broker) { b.logf = logf }
}

// WithQueueDepth bounds each subscriber's outbound frame queue to n frames
// (default 256). Smaller queues drop sooner under slow consumers; larger
// queues tolerate more lag at the cost of memory.
func WithQueueDepth(n int) BrokerOption {
	return func(b *Broker) {
		if n > 0 {
			b.queueDepth = n
		}
	}
}

// WithWriteDeadline bounds how long the broker spends flushing a closing
// connection's queued frames (default 2s). Shorter deadlines free writer
// goroutines faster under churn; longer ones give slow peers more chance to
// receive final error frames.
func WithWriteDeadline(d time.Duration) BrokerOption {
	return func(b *Broker) {
		if d > 0 {
			b.writeDeadline = d
		}
	}
}

// WithObserver directs the broker's metrics (published/delivered/dropped,
// per-stream counters, queue depth, slow-subscriber stalls) into r instead
// of the process default registry.
func WithObserver(r *obsv.Registry) BrokerOption {
	return func(b *Broker) {
		b.obs = r.Scope("eventbus")
		b.m = newBrokerMetrics(b.obs)
	}
}

// WithPlanCache substitutes the conversion-plan cache used for format
// scoping — share one cache across brokers, or bound it with
// dcg.WithMaxEntries.
func WithPlanCache(c *dcg.Cache) BrokerOption {
	return func(b *Broker) {
		if c != nil {
			b.plans = c
		}
	}
}

// WithTracer directs the broker's spans (broker.route, dcg.compile,
// dcg.convert) into t instead of the process default tracer. Spans are only
// recorded for records whose publisher sampled them and while t is enabled.
func WithTracer(t *trace.Tracer) BrokerOption {
	return func(b *Broker) {
		if t != nil {
			b.tracer = t
		}
	}
}

// WithLegacyProtocol makes the broker speak only the base protocol,
// rejecting frameHello and the traced frame variants exactly like a
// pre-extension build (frameError + close). It exists so interoperability
// tests can prove new clients fall back cleanly against old peers.
func WithLegacyProtocol() BrokerOption {
	return func(b *Broker) { b.legacy = true }
}

// NewBroker starts a broker on the given listener. The broker owns the
// listener and closes it on Close.
func NewBroker(ln net.Listener, opts ...BrokerOption) *Broker {
	b := &Broker{
		ln:            ln,
		logf:          log.Printf,
		closed:        make(chan struct{}),
		queueDepth:    outQueueDepth,
		writeDeadline: 2 * time.Second,
		obs:           obsv.Default().Scope("eventbus"),
		m:             defaultBrokerMetrics,
		tracer:        trace.Default(),
		conns:         make(map[*brokerConn]bool),
		streams:       make(map[string]*stream),
		plans:         dcg.NewCache(),
		scoped:        make(map[scopeKey]*scopedFormat),
	}
	for _, opt := range opts {
		opt(b)
	}
	// Queue depth is observable at snapshot time; with a shared registry the
	// most recent broker wins the name, which is the common one-broker case.
	b.obs.Func("queue_depth", b.queuedFrames)
	b.wg.Add(1)
	go b.acceptLoop()
	return b
}

// queuedFrames sums the frames currently queued to all subscribers.
func (b *Broker) queuedFrames() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for c := range b.conns {
		n += int64(len(c.out))
	}
	return n
}

// Listen starts a broker on a fresh TCP listener at addr (e.g.
// "127.0.0.1:0").
func Listen(addr string, opts ...BrokerOption) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eventbus: listen: %w", err)
	}
	return NewBroker(ln, opts...), nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() net.Addr { return b.ln.Addr() }

// Close shuts the broker down: stops accepting, closes every connection and
// waits for all handlers to exit.
func (b *Broker) Close() error {
	select {
	case <-b.closed:
		return nil
	default:
	}
	close(b.closed)
	err := b.ln.Close()
	b.mu.Lock()
	for c := range b.conns {
		_ = c.conn.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return err
}

// SubscriberCount reports how many connections currently subscribe to the
// named stream.
func (b *Broker) SubscriberCount(name string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.streams[name]
	if !ok {
		return 0
	}
	return len(st.subs)
}

// Streams lists the streams that have been announced or published to.
func (b *Broker) Streams() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.streams))
	for name := range b.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			select {
			case <-b.closed:
				return
			default:
			}
			b.logf("eventbus: accept: %v", err)
			return
		}
		bc := &brokerConn{
			conn:         conn,
			out:          make(chan outFrame, b.queueDepth),
			outClose:     make(chan struct{}),
			writerDone:   make(chan struct{}),
			dropped:      b.m.dropped,
			sentFormats:  make(map[pbio.FormatID]bool),
			knownFormats: make(map[pbio.FormatID][]byte),
			scopes:       make(map[string][]string),
		}
		b.mu.Lock()
		b.conns[bc] = true
		b.mu.Unlock()
		b.wg.Add(2)
		go b.writeLoop(bc)
		go b.handle(bc)
	}
}

func (b *Broker) handle(bc *brokerConn) {
	defer b.wg.Done()
	defer b.drop(bc)
	var buf []byte
	for {
		typ, payload, newBuf, err := readFrame(bc.conn, buf)
		if err != nil {
			// io.EOF is a clean disconnect and net.ErrClosed our own
			// shutdown; anything else is diagnostic.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				b.logf("eventbus: conn %s: %v", bc.conn.RemoteAddr(), err)
			}
			return
		}
		buf = newBuf
		if err := b.dispatch(bc, typ, payload); err != nil {
			b.logf("eventbus: conn %s: %v", bc.conn.RemoteAddr(), err)
			_ = bc.send(frameError, []byte(err.Error()))
			return
		}
	}
}

func (b *Broker) dispatch(bc *brokerConn, typ byte, payload []byte) error {
	if b.legacy && typ >= frameHello {
		return fmt.Errorf("%w: type %d", ErrBadFrame, typ)
	}
	switch typ {
	case frameHello:
		_, caps, err := parseHello(payload)
		if err != nil {
			return err
		}
		bc.caps.Store(caps & localCaps)
		return bc.sendMust(frameHello, helloPayload(localCaps))

	case frameAnnounce:
		name, _, err := getStr(payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		b.ensureStream(name)
		b.mu.Unlock()
		return nil

	case frameFormat:
		f, err := pbio.UnmarshalMeta(payload)
		if err != nil {
			return err
		}
		bc.knownFormats[f.ID] = append([]byte(nil), payload...)
		return nil

	case frameSubscribe:
		name, rest, err := getStr(payload)
		if err != nil {
			return err
		}
		var scope []string
		if len(rest) > 0 {
			n := int(rest[0])
			rest = rest[1:]
			for i := 0; i < n; i++ {
				var field string
				if field, rest, err = getStr(rest); err != nil {
					return err
				}
				scope = append(scope, field)
			}
		}
		b.mu.Lock()
		st := b.ensureStream(name)
		st.subs[bc] = true
		if scope != nil {
			bc.scopes[name] = scope
		} else {
			delete(bc.scopes, name)
		}
		formats := append([]formatMeta(nil), st.formats...)
		b.mu.Unlock()
		// Deliver the stream's known formats (sliced if scoped) so the
		// subscriber can decode records that arrive immediately.
		for _, fm := range formats {
			if err := b.deliverFormat(bc, name, fm); err != nil {
				return err
			}
		}
		return nil

	case frameUnsub:
		name, _, err := getStr(payload)
		if err != nil {
			return err
		}
		b.mu.Lock()
		if st, ok := b.streams[name]; ok {
			delete(st.subs, bc)
		}
		b.mu.Unlock()
		return nil

	case framePublish:
		return b.publish(bc, payload, false)

	case framePublishTrace:
		if bc.caps.Load()&capTrace == 0 {
			return fmt.Errorf("%w: traced publish without trace capability", ErrBadFrame)
		}
		return b.publish(bc, payload, true)

	case frameList:
		names := b.Streams()
		var out []byte
		for i, n := range names {
			if i > 0 {
				out = append(out, 0)
			}
			out = append(out, n...)
		}
		return bc.send(frameStreams, out)

	default:
		return fmt.Errorf("%w: type %d", ErrBadFrame, typ)
	}
}

// ensureStream returns the stream record, creating it if new. Caller holds
// b.mu.
func (b *Broker) ensureStream(name string) *stream {
	st, ok := b.streams[name]
	if !ok {
		sc := b.obs.Counter // eventbus.stream.<name>.*
		st = &stream{
			name:      name,
			subs:      make(map[*brokerConn]bool),
			published: sc("stream." + name + ".published"),
			delivered: sc("stream." + name + ".delivered"),
			dropped:   sc("stream." + name + ".dropped"),
		}
		b.streams[name] = st
	}
	return st
}

// delivery carries one published record through the fanout loop: the parsed
// pieces, the payload variants (built lazily, shared across subscribers) and
// the trace context when the record arrived in a traced frame.
type delivery struct {
	st     *stream
	fm     formatMeta
	record []byte // NDR record bytes (after the format id)
	plain  []byte // frameEvent payload: stream || id || record
	traced []byte // frameEventTrace payload: stream || trace ctx || id || record

	isTraced bool
	tid      trace.TraceID
	parent   trace.SpanID // outgoing parent: broker route span, or upstream's
	route    trace.Ctx    // parents dcg.compile / dcg.convert child spans
}

// tracedPayload lazily builds the frameEventTrace payload.
func (d *delivery) tracedPayload() []byte {
	if d.traced == nil {
		p := putStr(nil, d.st.name)
		p = putTraceCtx(p, d.tid, d.parent)
		p = append(p, d.fm.id[:]...)
		p = append(p, d.record...)
		d.traced = p
	}
	return d.traced
}

func (b *Broker) publish(bc *brokerConn, payload []byte, isTraced bool) error {
	name, rest, err := getStr(payload)
	if err != nil {
		return err
	}
	var tid trace.TraceID
	var parent trace.SpanID
	if isTraced {
		if tid, parent, rest, err = getTraceCtx(rest); err != nil {
			return err
		}
	}
	if len(rest) < 8 {
		return fmt.Errorf("%w: publish without format id", ErrBadFrame)
	}
	var id pbio.FormatID
	copy(id[:], rest)

	meta, ok := bc.knownFormats[id]
	if !ok {
		return fmt.Errorf("eventbus: publish on %q references unannounced format %s", name, id)
	}

	b.mu.Lock()
	st := b.ensureStream(name)
	if !st.hasFormat(id) {
		st.formats = append(st.formats, formatMeta{id: id, meta: meta})
	}
	subs := make([]*brokerConn, 0, len(st.subs))
	for s := range st.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	b.m.published.Add(1)
	st.published.Add(1)

	d := delivery{
		st:       st,
		fm:       formatMeta{id: id, meta: meta},
		record:   rest[8:],
		isTraced: isTraced,
		tid:      tid,
		parent:   parent,
	}
	if isTraced {
		// Record this hop's routing span. If the broker's tracer is off the
		// record still carries the upstream context downstream, so
		// subscriber-side spans keep linking into the trace.
		d.route = b.tracer.Join(tid, parent).Child("broker.route")
		if d.route.Sampled() {
			d.parent = d.route.Span()
		}
		// The incoming payload embeds the publisher's parent id; rebuild the
		// plain variant for subscribers that did not negotiate tracing.
		p := putStr(nil, name)
		p = append(p, id[:]...)
		d.plain = append(p, d.record...)
	} else {
		d.plain = payload
	}

	for _, sub := range subs {
		if err := b.deliver(sub, &d); err != nil {
			b.logf("eventbus: drop subscriber %s: %v", sub.conn.RemoteAddr(), err)
			b.drop(sub)
		}
	}
	d.route.FinishDetail(st.name)
	return nil
}

// deliver routes one record to one subscriber, projecting it onto the
// subscriber's scope when one is set. Subscribers that negotiated capTrace
// receive traced records as frameEventTrace with this broker's route span as
// the parent link; everyone else receives plain frameEvent.
func (b *Broker) deliver(sub *brokerConn, d *delivery) error {
	b.mu.Lock()
	scope := sub.scopes[d.st.name]
	b.mu.Unlock()
	subTraced := d.isTraced && sub.caps.Load()&capTrace != 0
	if scope == nil {
		if err := b.sendFormat(sub, d.fm); err != nil {
			return err
		}
		if subTraced {
			return b.sendEvent(sub, d.st, frameEventTrace, d.tracedPayload())
		}
		return b.sendEvent(sub, d.st, frameEvent, d.plain)
	}
	sf, err := b.scopedFor(d.fm, scope, d.route)
	if err != nil {
		// A scope the format cannot satisfy is the subscriber's error.
		return fmt.Errorf("scope %v: %w", scope, err)
	}
	converted, err := sf.plan.ConvertCtx(d.route, d.record)
	if err != nil {
		return fmt.Errorf("scope projection: %w", err)
	}
	if err := b.sendFormat(sub, formatMeta{id: sf.format.ID, meta: sf.meta}); err != nil {
		return err
	}
	payload := putStr(nil, d.st.name)
	typ := frameEvent
	if subTraced {
		typ = frameEventTrace
		payload = putTraceCtx(payload, d.tid, d.parent)
	}
	payload = append(payload, sf.format.ID[:]...)
	payload = append(payload, converted...)
	return b.sendEvent(sub, d.st, typ, payload)
}

// sendEvent enqueues one event frame, counting delivery or the per-stream
// drop.
func (b *Broker) sendEvent(sub *brokerConn, st *stream, typ byte, payload []byte) error {
	queued, err := sub.trySend(typ, payload)
	if err != nil {
		return err
	}
	if queued {
		b.m.delivered.Add(1)
		st.delivered.Add(1)
	} else {
		st.dropped.Add(1)
	}
	return nil
}

// deliverFormat sends a stream format (or its scoped slice) to a subscriber.
func (b *Broker) deliverFormat(sub *brokerConn, streamName string, fm formatMeta) error {
	b.mu.Lock()
	scope := sub.scopes[streamName]
	b.mu.Unlock()
	if scope == nil {
		return b.sendFormat(sub, fm)
	}
	sf, err := b.scopedFor(fm, scope, trace.Ctx{})
	if err != nil {
		return fmt.Errorf("scope %v: %w", scope, err)
	}
	return b.sendFormat(sub, formatMeta{id: sf.format.ID, meta: sf.meta})
}

// scopedFor returns (building and memoizing if needed) the slice of the
// format fm restricted to the given fields, with its conversion plan. A
// first-use compilation records a dcg.compile child span of tc.
func (b *Broker) scopedFor(fm formatMeta, scope []string, tc trace.Ctx) (*scopedFormat, error) {
	key := scopeKey{id: fm.id, scope: strings.Join(scope, ",")}
	b.mu.Lock()
	sf, ok := b.scoped[key]
	b.mu.Unlock()
	if ok {
		return sf, nil
	}
	full, err := pbio.UnmarshalMeta(fm.meta)
	if err != nil {
		return nil, err
	}
	subset, err := pbio.DeriveSubset(full, scope)
	if err != nil {
		return nil, err
	}
	plan, err := b.plans.PlanCtx(tc, full, subset)
	if err != nil {
		return nil, err
	}
	sf = &scopedFormat{format: subset, meta: pbio.MarshalMeta(subset), plan: plan}
	b.mu.Lock()
	if prev, ok := b.scoped[key]; ok {
		sf = prev
	} else {
		b.scoped[key] = sf
	}
	b.mu.Unlock()
	return sf, nil
}

func (st *stream) hasFormat(id pbio.FormatID) bool {
	for _, fm := range st.formats {
		if fm.id == id {
			return true
		}
	}
	return false
}

// sendFormat sends format metadata to a subscriber once. The decision and
// the enqueue happen under one lock so the format frame is queued before
// any event frame that needs it.
func (b *Broker) sendFormat(sub *brokerConn, fm formatMeta) error {
	sub.wmu.Lock()
	defer sub.wmu.Unlock()
	if sub.sentFormats[fm.id] {
		return nil
	}
	if err := sub.sendMust(frameFormat, fm.meta); err != nil {
		if errors.Is(err, ErrSlowSubscriber) {
			b.m.slowStalls.Add(1)
		}
		return err
	}
	b.m.formatsSent.Add(1)
	sub.sentFormats[fm.id] = true
	return nil
}

// writeLoop drains the outbound queue onto the socket. On teardown it
// flushes frames already queued (bounded by a write deadline) so error
// frames and final events reach the peer.
func (b *Broker) writeLoop(bc *brokerConn) {
	defer b.wg.Done()
	defer close(bc.writerDone)
	for {
		select {
		case f := <-bc.out:
			if err := writeFrame(bc.conn, f.typ, f.payload); err != nil {
				// Socket is dead: unregister and let the reader notice.
				b.unregister(bc)
				_ = bc.conn.Close()
				return
			}
		case <-bc.outClose:
			_ = bc.conn.SetWriteDeadline(time.Now().Add(b.writeDeadline))
			for {
				select {
				case f := <-bc.out:
					if err := writeFrame(bc.conn, f.typ, f.payload); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// send enqueues a droppable frame (events, stream listings, errors). When
// the subscriber's queue is full the frame is discarded and counted — a
// slow consumer loses records, never stalls the bus.
func (bc *brokerConn) send(typ byte, payload []byte) error {
	_, err := bc.trySend(typ, payload)
	return err
}

// trySend enqueues a droppable frame, reporting whether it was queued
// (false: discarded on a full queue, counted in the broker's drop counter).
func (bc *brokerConn) trySend(typ byte, payload []byte) (bool, error) {
	f := outFrame{typ: typ, payload: append([]byte(nil), payload...)}
	select {
	case bc.out <- f:
		return true, nil
	case <-bc.outClose:
		return false, ErrClosed
	default:
		bc.dropped.Add(1)
		return false, nil
	}
}

// sendMust enqueues a frame that may not be dropped (format metadata),
// waiting for queue space up to a drop deadline.
func (bc *brokerConn) sendMust(typ byte, payload []byte) error {
	f := outFrame{typ: typ, payload: append([]byte(nil), payload...)}
	t := time.NewTimer(5 * time.Second)
	defer t.Stop()
	select {
	case bc.out <- f:
		return nil
	case <-bc.outClose:
		return ErrClosed
	case <-t.C:
		return fmt.Errorf("%w: write queue stalled for 5s", ErrSlowSubscriber)
	}
}

// unregister removes a connection from routing state; it reports whether
// this call was the one that removed it.
func (b *Broker) unregister(bc *brokerConn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.conns[bc] {
		return false
	}
	delete(b.conns, bc)
	for _, st := range b.streams {
		delete(st.subs, bc)
	}
	return true
}

// drop tears a connection down: unregisters it, lets the writer flush its
// queued frames, then closes the socket.
func (b *Broker) drop(bc *brokerConn) {
	first := b.unregister(bc)
	select {
	case <-bc.outClose:
	default:
		if first {
			close(bc.outClose)
		}
	}
	select {
	case <-bc.writerDone:
	case <-time.After(3 * time.Second):
	}
	_ = bc.conn.Close()
}

// BrokerStats is a point-in-time view of the broker's delivery health.
type BrokerStats struct {
	// Streams and Subscribers describe current routing state.
	Streams     int
	Subscribers int
	// QueuedFrames is the total outbound backlog across subscriber queues.
	QueuedFrames int64
	// Cumulative counters (shared with other brokers on the same obsv
	// registry; pass WithObserver for per-broker isolation).
	Published            int64
	Delivered            int64
	Dropped              int64
	FormatsSent          int64
	SlowSubscriberStalls int64
}

// Stats reports the broker's delivery health. Unlike the pre-obsv dropped
// counter, drop counts persist after the dropping connection closes.
func (b *Broker) Stats() BrokerStats {
	s := BrokerStats{
		Published:            b.m.published.Load(),
		Delivered:            b.m.delivered.Load(),
		Dropped:              b.m.dropped.Load(),
		FormatsSent:          b.m.formatsSent.Load(),
		SlowSubscriberStalls: b.m.slowStalls.Load(),
		QueuedFrames:         b.queuedFrames(),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s.Streams = len(b.streams)
	seen := make(map[*brokerConn]bool)
	for _, st := range b.streams {
		for c := range st.subs {
			seen[c] = true
		}
	}
	s.Subscribers = len(seen)
	return s
}

// DroppedEvents reports how many event frames the broker has discarded
// because subscriber queues were full.
//
// Deprecated: use Stats().Dropped, which also survives connection teardown.
func (b *Broker) DroppedEvents() int64 { return b.m.dropped.Load() }
