package eventbus

import (
	"strings"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// TestQueueWaitObservability proves the writeLoop's enqueue→wire timing
// lands everywhere the tentpole routes it: the broker-wide queue_wait_ns
// histogram, the per-subscriber labeled child, a broker.queue span under the
// publish's trace, and the tracked broker_mu lock snapshot.
func TestQueueWaitObservability(t *testing.T) {
	tr := trace.NewTracer(1024)
	tr.SetSampling(1)
	reg := obsv.New()

	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithTracer(tr), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Close() })
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(b.Addr().String(), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	waitForStream(t, b, "flights", 1)

	f := flightFormat(t, machine.Sparc)
	rec := pbio.Record{"cntrID": "ZTL", "fltNum": 7, "eta": []uint64{1, 2}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}

	// The retroactive queue span: same trace as the route span, parented
	// under it, with the enqueue as its start.
	spans := spansByName(t, tr, "broker.route", "broker.queue")
	route, queue := spans["broker.route"], spans["broker.queue"]
	if queue.Trace != route.Trace {
		t.Fatalf("broker.queue trace %s != broker.route trace %s", queue.Trace, route.Trace)
	}
	if queue.Parent != route.ID {
		t.Fatalf("broker.queue parent %s, want the route span %s", queue.Parent, route.ID)
	}
	if queue.Detail != "flights" {
		t.Fatalf("broker.queue detail = %q, want the stream name", queue.Detail)
	}
	if queue.Dur < 0 {
		t.Fatalf("broker.queue dur = %v", queue.Dur)
	}

	// Metrics: the event frame's dequeue must be observed in the aggregate
	// histogram and a per-connection labeled child (format frames count
	// too, so >= 1 is the floor). The writer observes before the socket
	// write, so by the time the subscriber saw the event it is recorded.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := reg.Snapshot()
		agg := snap["eventbus.queue_wait_ns.count"]
		labeled := int64(0)
		for k, v := range snap {
			if strings.HasPrefix(k, `eventbus.subscriber.queue_wait_ns{conn="`) && strings.HasSuffix(k, ".count") {
				labeled += v
			}
		}
		if agg >= 1 && labeled >= 1 {
			if agg != labeled {
				t.Fatalf("aggregate queue-wait count %d != summed labeled children %d", agg, labeled)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue-wait metrics never appeared; agg=%d labeled=%d", agg, labeled)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The tracked routing lock is registered and has recorded acquisitions.
	var found bool
	for _, l := range reg.LockSnapshots() {
		if l.Name == "eventbus.broker_mu" {
			found = true
			if l.Wait.Count == 0 || l.Hold.Count == 0 {
				t.Fatalf("broker_mu wait/hold counts = %d/%d, want > 0", l.Wait.Count, l.Hold.Count)
			}
		}
	}
	if !found {
		t.Fatalf("eventbus.broker_mu missing from lock snapshots: %+v", reg.LockSnapshots())
	}
}
