package eventbus

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openmeta/internal/faultnet"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
)

// fastReconnect keeps redial backoff negligible in tests.
func fastReconnect() retry.Policy {
	return retry.Policy{
		MaxAttempts: 6,
		Initial:     time.Millisecond,
		Max:         10 * time.Millisecond,
		Seed:        1,
	}
}

// faultyFirstDial returns a DialFunc whose first connection is wrapped in
// the given schedule; later dials are clean. It also reports how many
// dials happened.
func faultyFirstDial(sched *faultnet.Schedule) (DialFunc, *atomic.Int64) {
	var dials atomic.Int64
	fn := func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return faultnet.Wrap(conn, sched), nil
		}
		return conn, nil
	}
	return fn, &dials
}

func encodeFlight(t *testing.T, f *pbio.Format, flt int) []byte {
	t.Helper()
	data, err := f.Encode(pbio.Record{"cntrID": "ZTL", "fltNum": flt, "eta": []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func wantFlt(t *testing.T, rec pbio.Record, want int) {
	t.Helper()
	if rec["fltNum"] != int64(want) {
		t.Fatalf("fltNum = %v, want %d", rec["fltNum"], want)
	}
}

// TestPublisherReconnectMidStream is the ISSUE's acceptance scenario: the
// publisher's broker connection dies mid-frame partway through a stream,
// the publisher reconnects with backoff, re-announces and re-sends its
// format metadata on the fresh connection (the broker rejects publishes
// referencing formats it has not seen on that connection, so delivery
// proves the re-send), and the subscriber keeps decoding records.
func TestPublisherReconnectMidStream(t *testing.T) {
	before := obsv.Default().Snapshot()
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)

	// Byte budget that expires 3 bytes into the second publish frame:
	// announce + format metadata + the first record flow, then the wire
	// dies mid-frame-header.
	rec1 := encodeFlight(t, f, 1001)
	meta := pbio.MarshalMeta(f)
	stream := "flights"
	budget := (5 + 2 + len(stream)) + // announce frame
		(5 + len(meta)) + // format frame
		(5 + 2 + len(stream) + 8 + len(rec1)) + // first publish frame
		3 // then die mid-header of the next frame
	dialFn, dials := faultyFirstDial(faultnet.NewSchedule(
		faultnet.Fault{Kind: faultnet.DropAfter, N: budget}))

	pub, err := DialPublisherContext(context.Background(), b.Addr().String(),
		WithDialFunc(dialFn), WithReconnect(fastReconnect()))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if err := pub.Announce(stream); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(stream, f, rec1); err != nil {
		t.Fatalf("first Publish = %v", err)
	}
	// This publish crosses the byte budget: the connection breaks mid-frame
	// and the reconnect layer must redial, re-announce, re-send the format
	// metadata (sentFormats was reset) and deliver the record.
	rec2 := encodeFlight(t, f, 2002)
	if err := pub.Publish(stream, f, rec2); err != nil {
		t.Fatalf("Publish across the fault = %v", err)
	}
	if got := dials.Load(); got < 2 {
		t.Fatalf("dials = %d, want >= 2 (a reconnect happened)", got)
	}

	for i, want := range []int{1001, 2002} {
		ev, err := sub.Next()
		if err != nil {
			t.Fatalf("Next %d = %v", i, err)
		}
		rec, err := ev.Decode()
		if err != nil {
			t.Fatalf("Decode %d = %v", i, err)
		}
		wantFlt(t, rec, want)
		if !reflect.DeepEqual(rec["eta"], []uint64{1, 2}) {
			t.Fatalf("record %d eta = %v", i, rec["eta"])
		}
	}

	d := obsv.Delta(before, obsv.Default().Snapshot())
	if d["eventbus.pub.reconnects"] < 1 {
		t.Errorf("eventbus.pub.reconnects delta = %d, want >= 1", d["eventbus.pub.reconnects"])
	}
}

// TestPublisherMidWriteResetNoDeadlock is the lock-path satellite: Publish
// holds p.mu across the network write; a mid-write connection reset must
// surface as an error and leave the publisher usable (further calls return
// promptly with errors, no deadlock) when reconnect is off.
func TestPublisherMidWriteResetNoDeadlock(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)

	// The first write of the first frame dies after 2 bytes.
	sched := faultnet.NewSchedule(faultnet.Fault{Kind: faultnet.PartialWrite, N: 2})
	dialFn := func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return faultnet.Wrap(conn, sched), nil
	}
	pub, err := DialPublisherContext(context.Background(), b.Addr().String(), WithDialFunc(dialFn))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	rec := encodeFlight(t, f, 7)
	done := make(chan struct{})
	var pubErr, againErr, annErr error
	go func() {
		defer close(done)
		pubErr = pub.Publish("flights", f, rec)
		againErr = pub.Publish("flights", f, rec)
		annErr = pub.Announce("flights")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher deadlocked after mid-write reset")
	}
	if !errors.Is(pubErr, faultnet.ErrInjected) {
		t.Fatalf("Publish during reset = %v, want ErrInjected", pubErr)
	}
	if !errors.Is(againErr, ErrClosed) {
		t.Fatalf("Publish after reset = %v, want wraps ErrClosed", againErr)
	}
	if !errors.Is(annErr, ErrClosed) {
		t.Fatalf("Announce after reset = %v, want wraps ErrClosed", annErr)
	}
	if err := pub.Close(); err != nil {
		t.Fatalf("Close after reset = %v", err)
	}
	if err := pub.Publish("flights", f, rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after Close = %v, want ErrClosed", err)
	}
}

// publishUntil republishes rec every few milliseconds until the subscriber
// goroutine reports a result — records published while the subscriber's
// replacement connection is still registering with the broker are lost (no
// retention), so a single post-reconnect publish would race.
func publishUntil(t *testing.T, pub *Publisher, stream string, f *pbio.Format, rec []byte, done <-chan struct{}) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := pub.Publish(stream, f, rec); err != nil {
			t.Errorf("republish: %v", err)
			return
		}
		select {
		case <-done:
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestSubscriberReconnect kills the subscriber's connection after the
// first record (exact byte budget: subscribe out, format + one event in);
// the subscriber redials, replays its subscription, receives the stream's
// format metadata again from the broker, and decodes the next record.
func TestSubscriberReconnect(t *testing.T) {
	before := obsv.Default().Snapshot()
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)

	rec1 := encodeFlight(t, f, 11)
	meta := pbio.MarshalMeta(f)
	stream := "flights"
	budget := (5 + 2 + len(stream)) + // subscribe frame out
		(5 + len(meta)) + // format frame in
		(5 + 2 + len(stream) + 8 + len(rec1)) // first event frame in
	dialFn, dials := faultyFirstDial(faultnet.NewSchedule(
		faultnet.Fault{Kind: faultnet.DropAfter, N: budget}))

	sub, err := DialSubscriberContext(context.Background(), b.Addr().String(), subCtx(t),
		WithDialFunc(dialFn), WithReconnect(fastReconnect()))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(stream); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, stream, 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(stream, f, rec1); err != nil {
		t.Fatal(err)
	}

	ev, err := sub.Next()
	if err != nil {
		t.Fatalf("first Next = %v", err)
	}
	rec, err := ev.Decode()
	if err != nil {
		t.Fatalf("first Decode = %v", err)
	}
	wantFlt(t, rec, 11)

	// The next read crosses the byte budget and the connection dies; Next
	// must transparently reconnect and replay the subscription.
	type result struct {
		rec pbio.Record
		err error
	}
	got := make(chan result, 1)
	done := make(chan struct{})
	go func() {
		ev, err := sub.Next()
		r := result{err: err}
		if err == nil {
			r.rec, r.err = ev.Decode()
		}
		close(done)
		got <- r
	}()
	publishUntil(t, pub, stream, f, encodeFlight(t, f, 22), done)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("Next across reconnect = %v", r.err)
		}
		wantFlt(t, r.rec, 22)
	case <-time.After(5 * time.Second):
		t.Fatal("no record after reconnect")
	}
	if got := dials.Load(); got < 2 {
		t.Fatalf("dials = %d, want >= 2", got)
	}

	d := obsv.Delta(before, obsv.Default().Snapshot())
	if d["eventbus.sub.reconnects"] < 1 {
		t.Errorf("eventbus.sub.reconnects delta = %d, want >= 1", d["eventbus.sub.reconnects"])
	}
}

// TestSubscriberScopeSurvivesReconnect: a field-scoped subscription is
// replayed with its scope intact, so post-reconnect records still arrive
// projected. The first connection is killed from the test side after the
// first delivery.
func TestSubscriberScopeSurvivesReconnect(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)
	stream := "flights"

	var mu sync.Mutex
	var conns []net.Conn
	var dials atomic.Int64
	dialFn := func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		dials.Add(1)
		mu.Lock()
		conns = append(conns, conn)
		mu.Unlock()
		return conn, nil
	}

	sub, err := DialSubscriberContext(context.Background(), b.Addr().String(), subCtx(t),
		WithDialFunc(dialFn), WithReconnect(fastReconnect()))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.SubscribeFields(stream, "fltNum"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, stream, 1)

	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(stream, f, encodeFlight(t, f, 31)); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatalf("first Next = %v", err)
	}
	rec, err := ev.Decode()
	if err != nil {
		t.Fatalf("Decode = %v", err)
	}
	if _, leaked := rec["cntrID"]; leaked {
		t.Fatal("scope leaked cntrID before reconnect")
	}
	wantFlt(t, rec, 31)

	// Kill the first connection out from under the subscriber.
	mu.Lock()
	_ = conns[0].Close()
	mu.Unlock()

	type result struct {
		rec pbio.Record
		err error
	}
	got := make(chan result, 1)
	done := make(chan struct{})
	go func() {
		ev, err := sub.Next()
		r := result{err: err}
		if err == nil {
			r.rec, r.err = ev.Decode()
		}
		close(done)
		got <- r
	}()
	publishUntil(t, pub, stream, f, encodeFlight(t, f, 32), done)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("Next across reconnect = %v", r.err)
		}
		if _, leaked := r.rec["cntrID"]; leaked {
			t.Fatal("scope leaked cntrID after reconnect: subscription replay lost its field scope")
		}
		wantFlt(t, r.rec, 32)
	case <-time.After(5 * time.Second):
		t.Fatal("no record after reconnect")
	}
	if got := dials.Load(); got < 2 {
		t.Fatalf("dials = %d, want >= 2", got)
	}
}

// TestPublisherNoReconnectStaysDown: without WithReconnect a broken
// publisher does not silently redial.
func TestPublisherNoReconnectStaysDown(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)
	dialFn, dials := faultyFirstDial(faultnet.NewSchedule(faultnet.Fault{Kind: faultnet.Reset}))
	pub, err := DialPublisherContext(context.Background(), b.Addr().String(), WithDialFunc(dialFn))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	rec := encodeFlight(t, f, 1)
	if err := pub.Publish("flights", f, rec); !errors.Is(err, faultnet.ErrInjected) {
		t.Fatalf("Publish = %v, want injected reset", err)
	}
	if err := pub.Publish("flights", f, rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Publish = %v, want ErrClosed", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (no auto-redial without WithReconnect)", got)
	}
}

// TestBrokerWriteDeadlineOption exercises the new option end to end: a
// broker with a short flush deadline still delivers cleanly.
func TestBrokerWriteDeadlineOption(t *testing.T) {
	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithWriteDeadline(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.writeDeadline != 50*time.Millisecond {
		t.Fatalf("writeDeadline = %v", b.writeDeadline)
	}
	f := flightFormat(t, machine.Sparc)
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	waitForStream(t, b, "flights", 1)
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("flights", f, encodeFlight(t, f, 5)); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	wantFlt(t, rec, 5)
}

// TestFaultnetDialer exercises faultnet.Dialer's DialFunc shape directly
// against the broker.
func TestFaultnetDialer(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)
	var dial DialFunc = faultnet.Dialer(faultnet.NewSchedule(
		faultnet.Fault{Kind: faultnet.Latency, Delay: time.Millisecond}))
	pub, err := DialPublisherContext(context.Background(), b.Addr().String(), WithDialFunc(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("flights", f, encodeFlight(t, f, 9)); err != nil {
		t.Fatalf("Publish through faultnet dialer = %v", err)
	}
}
