// Package eventbus implements the system-wide event backbone of the
// paper's application scenario (Figures 1 and 3): capture points publish
// structured information streams, consumers subscribe by stream name, and
// records travel in PBIO NDR form with format metadata exchanged once per
// connection.
//
// The broker routes records without decoding them — NDR means the bytes on
// the wire are already in the producer's natural representation, and only
// final consumers pay conversion, and only when their representation
// actually differs.
//
// # Capability negotiation (frameHello)
//
// The base protocol (frames 1-9) is what every peer speaks. Extensions ride
// behind an explicit capability exchange: a client that wants one sends a
// frameHello — version(1) || caps(u32 BE) — as the first frame of the
// connection and waits for the broker's frameHello reply before sending
// anything else. A new broker answers with its own capabilities and
// remembers the client's; the intersection governs the connection. An old
// broker answers frameHello the way it answers any unknown frame type — a
// frameError followed by connection close — which the client treats as "no
// capabilities": it redials plain and speaks the base protocol. A client
// that wants no extensions (or an old client) never sends a hello, so old
// peers in either role keep working untouched.
//
// The only capability so far is capTrace: sampled records travel in
// framePublishTrace/frameEventTrace variants that prepend a 24-byte trace
// context — TraceID(16) || parent SpanID(8) — to the standard payload, so a
// record's journey (publisher encode, broker route, subscriber decode,
// conversions) is recoverable as one parent-linked span tree from
// /debug/trace on each hop. Untraced subscribers of a traced publish
// receive plain frameEvent frames; the trace context never reaches peers
// that did not negotiate it.
package eventbus

import (
	"errors"
	"fmt"
	"io"

	"openmeta/internal/trace"
)

// Frame types of the backbone protocol. Every frame is
// type(1) || length(u32 BE) || payload.
const (
	frameAnnounce  byte = 1 // publisher -> broker: stream(str)
	frameSubscribe byte = 2 // subscriber -> broker: stream(str)
	frameUnsub     byte = 3 // subscriber -> broker: stream(str)
	frameFormat    byte = 4 // any -> any: format metadata bytes
	framePublish   byte = 5 // publisher -> broker: stream(str) || id(8) || record
	frameEvent     byte = 6 // broker -> subscriber: stream(str) || id(8) || record
	frameList      byte = 7 // subscriber -> broker: empty
	frameStreams   byte = 8 // broker -> subscriber: stream names, NUL-separated
	frameError     byte = 9 // broker -> any: message(str)

	// Negotiated extension frames (see the package comment). A peer may only
	// send these after a successful frameHello exchange.
	frameHello        byte = 10 // both ways: version(1) || caps(u32 BE)
	framePublishTrace byte = 11 // publisher -> broker: stream(str) || TraceID(16) || SpanID(8) || id(8) || record
	frameEventTrace   byte = 12 // broker -> subscriber: same layout as framePublishTrace
)

// protoVersion is the hello frame's version byte.
const protoVersion byte = 1

// Capability bits exchanged in frameHello.
const (
	capTrace uint32 = 1 << 0 // trace-context-bearing publish/event frames
)

// localCaps is the full capability set this build supports.
const localCaps = capTrace

// traceCtxLen is the wire size of a trace context: TraceID || parent SpanID.
const traceCtxLen = 16 + 8

// helloPayload encodes a frameHello body.
func helloPayload(caps uint32) []byte {
	return []byte{protoVersion, byte(caps >> 24), byte(caps >> 16), byte(caps >> 8), byte(caps)}
}

// parseHello decodes a frameHello body. Unknown future versions are accepted
// (capabilities are a bit set; unknown bits are ignored by both sides).
func parseHello(payload []byte) (version byte, caps uint32, err error) {
	if len(payload) < 5 {
		return 0, 0, fmt.Errorf("%w: hello of %d bytes", ErrBadFrame, len(payload))
	}
	caps = uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	return payload[0], caps, nil
}

// putTraceCtx appends the 24-byte wire trace context.
func putTraceCtx(b []byte, tid trace.TraceID, parent trace.SpanID) []byte {
	b = append(b, tid[:]...)
	return append(b, parent[:]...)
}

// getTraceCtx splits the 24-byte wire trace context off the front of b.
func getTraceCtx(b []byte) (tid trace.TraceID, parent trace.SpanID, rest []byte, err error) {
	if len(b) < traceCtxLen {
		return tid, parent, nil, fmt.Errorf("%w: truncated trace context", ErrBadFrame)
	}
	copy(tid[:], b)
	copy(parent[:], b[16:])
	return tid, parent, b[traceCtxLen:], nil
}

// maxFrame bounds one frame (64 MiB leaves room for large records while
// rejecting corrupt lengths).
const maxFrame = 64 << 20

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("eventbus: frame exceeds maximum size")
	ErrBadFrame    = errors.New("eventbus: malformed frame")
	ErrClosed      = errors.New("eventbus: connection closed")
	// ErrSlowSubscriber reports a subscriber whose outbound queue stayed
	// full past the must-send deadline for an undroppable (format) frame;
	// the broker disconnects such subscribers rather than stall the bus.
	ErrSlowSubscriber = errors.New("eventbus: slow subscriber")
	// ErrBroker matches (via errors.Is) any *BrokerError — a frameError
	// payload the broker sent before closing the connection.
	ErrBroker = errors.New("eventbus: broker error")
)

// BrokerError is a broker-reported protocol failure, carried to the client
// in a frameError payload. It surfaces from Subscriber.Next/Streams and —
// when the broker rejects a publish and the error frame arrives before the
// connection dies — from Publisher operations. errors.Is(err, ErrBroker)
// matches it.
type BrokerError struct {
	// Msg is the broker's diagnostic, e.g. `publish on "s" references
	// unannounced format <id>`.
	Msg string
}

func (e *BrokerError) Error() string { return "eventbus: broker: " + e.Msg }

// Is reports ErrBroker as a match so callers can branch without the type.
func (e *BrokerError) Is(target error) bool { return target == ErrBroker }

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(payload))
	}
	hdr := [5]byte{typ,
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("eventbus: write frame: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("eventbus: write frame: %w", err)
		}
	}
	return nil
}

func readFrame(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("eventbus: read frame: %w", err)
	}
	n := int(hdr[1])<<24 | int(hdr[2])<<16 | int(hdr[3])<<8 | int(hdr[4])
	if n < 0 || n > maxFrame {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n+n/2)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("eventbus: read frame: %w", err)
	}
	return hdr[0], payload, buf, nil
}

// putStr appends a length-prefixed string.
func putStr(b []byte, s string) []byte {
	b = append(b, byte(len(s)>>8), byte(len(s)))
	return append(b, s...)
}

// getStr reads a length-prefixed string, returning the remainder.
func getStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return "", nil, ErrBadFrame
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
