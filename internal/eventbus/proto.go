// Package eventbus implements the system-wide event backbone of the
// paper's application scenario (Figures 1 and 3): capture points publish
// structured information streams, consumers subscribe by stream name, and
// records travel in PBIO NDR form with format metadata exchanged once per
// connection.
//
// The broker routes records without decoding them — NDR means the bytes on
// the wire are already in the producer's natural representation, and only
// final consumers pay conversion, and only when their representation
// actually differs.
package eventbus

import (
	"errors"
	"fmt"
	"io"
)

// Frame types of the backbone protocol. Every frame is
// type(1) || length(u32 BE) || payload.
const (
	frameAnnounce  byte = 1 // publisher -> broker: stream(str)
	frameSubscribe byte = 2 // subscriber -> broker: stream(str)
	frameUnsub     byte = 3 // subscriber -> broker: stream(str)
	frameFormat    byte = 4 // any -> any: format metadata bytes
	framePublish   byte = 5 // publisher -> broker: stream(str) || id(8) || record
	frameEvent     byte = 6 // broker -> subscriber: stream(str) || id(8) || record
	frameList      byte = 7 // subscriber -> broker: empty
	frameStreams   byte = 8 // broker -> subscriber: stream names, NUL-separated
	frameError     byte = 9 // broker -> any: message(str)
)

// maxFrame bounds one frame (64 MiB leaves room for large records while
// rejecting corrupt lengths).
const maxFrame = 64 << 20

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("eventbus: frame exceeds maximum size")
	ErrBadFrame    = errors.New("eventbus: malformed frame")
	ErrClosed      = errors.New("eventbus: connection closed")
	// ErrSlowSubscriber reports a subscriber whose outbound queue stayed
	// full past the must-send deadline for an undroppable (format) frame;
	// the broker disconnects such subscribers rather than stall the bus.
	ErrSlowSubscriber = errors.New("eventbus: slow subscriber")
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(payload))
	}
	hdr := [5]byte{typ,
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("eventbus: write frame: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("eventbus: write frame: %w", err)
		}
	}
	return nil
}

func readFrame(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("eventbus: read frame: %w", err)
	}
	n := int(hdr[1])<<24 | int(hdr[2])<<16 | int(hdr[3])<<8 | int(hdr[4])
	if n < 0 || n > maxFrame {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n+n/2)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("eventbus: read frame: %w", err)
	}
	return hdr[0], payload, buf, nil
}

// putStr appends a length-prefixed string.
func putStr(b []byte, s string) []byte {
	b = append(b, byte(len(s)>>8), byte(len(s)))
	return append(b, s...)
}

// getStr reads a length-prefixed string, returning the remainder.
func getStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrBadFrame
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return "", nil, ErrBadFrame
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
