package eventbus

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// tracedTrio dials a broker, publisher, a full subscriber and a scoped
// subscriber, all recording into one tracer sampling every trace.
func tracedTrio(t *testing.T) (*trace.Tracer, *Broker, *Publisher, *Subscriber, *Subscriber) {
	t.Helper()
	tr := trace.NewTracer(1024)
	tr.SetSampling(1)

	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })

	full, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = full.Close() })
	if err := full.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}

	scoped, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = scoped.Close() })
	if err := scoped.SubscribeFields("flights", "fltNum"); err != nil {
		t.Fatal(err)
	}

	pub, err := DialPublisher(b.Addr().String(), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })

	waitForStream(t, b, "flights", 2)
	return tr, b, pub, full, scoped
}

// spansByName waits until the tracer has recorded at least one span per
// wanted name and returns the latest span for each.
func spansByName(t *testing.T, tr *trace.Tracer, names ...string) map[string]trace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := map[string]trace.Span{}
		for _, sp := range tr.Snapshot() {
			got[sp.Name] = sp
		}
		missing := ""
		for _, n := range names {
			if _, ok := got[n]; !ok {
				missing = n
				break
			}
		}
		if missing == "" {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("span %q never recorded; have %v", missing, keysOfSpans(got))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func keysOfSpans(m map[string]trace.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceEndToEnd is the acceptance test for the tracing tentpole: one
// published record produces one TraceID shared by the publisher's encode,
// the broker's route (and the scoped subscriber's conversion), and the
// subscriber's decode — all parent-linked into one tree, recoverable over
// the /debug/trace HTTP handler.
func TestTraceEndToEnd(t *testing.T) {
	tr, _, pub, full, scoped := tracedTrio(t)

	want := pbio.Record{"cntrID": "ZTL", "fltNum": 1842, "eta": []uint64{10, 20}}
	f := flightFormat(t, machine.Sparc)
	if err := pub.PublishRecord("flights", f, want); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []*Subscriber{full, scoped} {
		ev, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ev.Trace.Sampled() {
			t.Fatal("event arrived without trace context")
		}
		if _, err := ev.Decode(); err != nil {
			t.Fatal(err)
		}
	}

	spans := spansByName(t, tr,
		"pub.publish", "pbio.encode", "broker.route", "dcg.compile", "dcg.convert", "pbio.decode")

	root := spans["pub.publish"]
	if root.Trace == (trace.TraceID{}) {
		t.Fatal("root span has zero trace id")
	}
	// Every stage shares the root's TraceID: the context crossed two
	// connections (publisher->broker, broker->subscriber) on the wire.
	for name, sp := range spans {
		if sp.Trace != root.Trace {
			t.Errorf("span %s trace = %s, want %s", name, sp.Trace, root.Trace)
		}
	}
	// Parent links form the expected tree.
	if got := spans["pbio.encode"].Parent; got != root.ID {
		t.Errorf("pbio.encode parent = %s, want pub.publish %s", got, root.ID)
	}
	route := spans["broker.route"]
	if route.Parent != root.ID {
		t.Errorf("broker.route parent = %s, want pub.publish %s", route.Parent, root.ID)
	}
	for _, name := range []string{"dcg.compile", "dcg.convert", "pbio.decode"} {
		if got := spans[name].Parent; got != route.ID {
			t.Errorf("%s parent = %s, want broker.route %s", name, got, route.ID)
		}
	}

	// The same tree must be recoverable over HTTP the way an operator sees
	// it: GET /debug/trace, one trace id, >= 4 parent-linked spans.
	srv := httptest.NewServer(trace.Handler(tr))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Spans []struct {
			Trace  string `json:"trace"`
			Span   string `json:"span"`
			Parent string `json:"parent"`
			Name   string `json:"name"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	inTrace := 0
	for _, sp := range body.Spans {
		if sp.Trace == root.Trace.String() {
			inTrace++
			ids[sp.Span] = true
		}
	}
	if inTrace < 4 {
		t.Fatalf("/debug/trace returned %d spans for trace %s, want >= 4", inTrace, root.Trace)
	}
	linked := 0
	for _, sp := range body.Spans {
		if sp.Trace == root.Trace.String() && ids[sp.Parent] {
			linked++
		}
	}
	if linked < 3 {
		t.Fatalf("only %d spans parent-link inside the trace, want >= 3", linked)
	}
}

// TestTraceUnsampledRecordsNothing proves the 1-in-N contract end to end: a
// tracer that samples nothing negotiates the capability but never emits
// traced frames, and no spans are recorded anywhere.
func TestTraceUnsampledRecordsNothing(t *testing.T) {
	tr := trace.NewTracer(64)
	tr.SetSampling(1 << 30) // enabled, but effectively never samples

	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(b.Addr().String(), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	waitForStream(t, b, "flights", 1)

	f := flightFormat(t, machine.Sparc)
	rec := pbio.Record{"cntrID": "ZTL", "fltNum": 7, "eta": []uint64{1}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Trace.Sampled() {
		t.Fatal("unsampled record arrived with trace context")
	}
	if _, err := ev.Decode(); err != nil {
		t.Fatal(err)
	}
	if n := tr.Recorded(); n != 0 {
		t.Fatalf("recorded %d spans for unsampled traffic", n)
	}
}

// TestTraceInteropLegacyBroker proves the fallback: a tracing client
// against an old-protocol broker redials, speaks the base protocol, and
// records still flow (untraced).
func TestTraceInteropLegacyBroker(t *testing.T) {
	tr := trace.NewTracer(64)
	tr.SetSampling(1)

	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithLegacyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := DialSubscriber(b.Addr().String(), subCtx(t), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(b.Addr().String(), WithClientTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if !pub.peerLegacy || pub.traced {
		t.Fatalf("publisher should have fallen back: peerLegacy=%v traced=%v", pub.peerLegacy, pub.traced)
	}
	if !sub.peerLegacy || sub.traced {
		t.Fatalf("subscriber should have fallen back: peerLegacy=%v traced=%v", sub.peerLegacy, sub.traced)
	}
	waitForStream(t, b, "flights", 1)

	f := flightFormat(t, machine.Sparc)
	rec := pbio.Record{"cntrID": "ZTL", "fltNum": 9, "eta": []uint64{3}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Trace.Sampled() {
		t.Fatal("legacy broker cannot carry trace context")
	}
	got, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got["fltNum"] != int64(9) {
		t.Fatalf("record corrupted through legacy fallback: %v", got)
	}
}

// TestTraceInteropLegacyClient proves the other direction: an old-protocol
// client (tracer disabled, so it never sends a hello) works unchanged
// against a tracing broker.
func TestTraceInteropLegacyClient(t *testing.T) {
	tr := trace.NewTracer(64)
	tr.SetSampling(1)
	b, err := Listen("127.0.0.1:0", WithLogger(quietLogger), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Default client tracer is the process tracer, which is disabled in
	// tests — exactly an old client's wire behaviour.
	sub, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	waitForStream(t, b, "flights", 1)

	f := flightFormat(t, machine.Sparc)
	rec := pbio.Record{"cntrID": "ZTL", "fltNum": 11, "eta": []uint64{4}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got["fltNum"] != int64(11) {
		t.Fatalf("record corrupted: %v", got)
	}
}

// TestBrokerErrorTypedOnSubscriber proves a broker rejection reaches the
// subscriber as a typed *BrokerError instead of a silent disconnect: a
// scope naming a field the stream's format does not have fails at
// subscribe time (the format is already known on the stream).
func TestBrokerErrorTypedOnSubscriber(t *testing.T) {
	b := newBroker(t)
	f := flightFormat(t, machine.Sparc)

	// Publish once so the stream already carries the format.
	seed, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if err := seed.Subscribe("flights"); err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	waitForStream(t, b, "flights", 1)
	rec := pbio.Record{"cntrID": "A", "fltNum": 1, "eta": []uint64{1}}
	if err := pub.PublishRecord("flights", f, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Next(); err != nil {
		t.Fatal(err)
	}

	bad, err := DialSubscriber(b.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.SubscribeFields("flights", "no_such_field"); err != nil {
		t.Fatal(err)
	}
	_, err = bad.Next()
	if err == nil {
		t.Fatal("expected broker error for impossible scope")
	}
	if !errors.Is(err, ErrBroker) {
		t.Fatalf("error not typed: %v (%T)", err, err)
	}
	var be *BrokerError
	if !errors.As(err, &be) || be.Msg == "" {
		t.Fatalf("no BrokerError with message in %v", err)
	}
}

// TestBrokerErrorHarvestedByPublisher proves the publisher folds a pending
// frameError into the write failure that follows it.
func TestBrokerErrorHarvestedByPublisher(t *testing.T) {
	// A fake broker that answers everything with frameError and closes —
	// the behaviour of a real broker rejecting a request.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _, _, _ = readFrame(conn, nil)
		_ = writeFrame(conn, frameError, []byte("publish on \"x\" references unannounced format"))
		_ = conn.Close()
	}()

	pub, err := DialPublisher(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	f := flightFormat(t, machine.Sparc)
	rec := []byte{0, 0, 0, 0}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err = pub.Publish("x", f, rec)
		if err != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err == nil {
		t.Fatal("publish against rejecting broker never failed")
	}
	if !errors.Is(err, ErrBroker) {
		t.Fatalf("write failure not annotated with broker error: %v", err)
	}
}

// TestStreamsSurfacesBrokerError covers the Streams call's error path.
func TestStreamsSurfacesBrokerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _, _, _ = readFrame(conn, nil) // the frameList request
		_ = writeFrame(conn, frameError, []byte("listing disabled"))
		_ = conn.Close()
	}()
	sub, err := DialSubscriber(ln.Addr().String(), subCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	_, err = sub.Streams()
	if !errors.Is(err, ErrBroker) {
		t.Fatalf("Streams error not typed: %v", err)
	}
	if err != nil && err.Error() != "eventbus: broker: listing disabled" {
		t.Fatalf("unexpected message: %v", err)
	}
}

// TestBrokerErrorIs pins the errors.Is contract.
func TestBrokerErrorIs(t *testing.T) {
	var err error = &BrokerError{Msg: "nope"}
	if !errors.Is(err, ErrBroker) {
		t.Fatal("BrokerError must match ErrBroker")
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("BrokerError must not match unrelated sentinels")
	}
	wrapped := errorsJoin(err)
	if !errors.Is(wrapped, ErrBroker) {
		t.Fatal("wrapped BrokerError must still match")
	}
}

func errorsJoin(err error) error { return &wrapErr{err} }

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }
