package dcg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// structureB registers the paper's Structure B for the given arch.
func structureB(t *testing.T, arch *machine.Arch) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(arch)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("ASDOffEvent", []pbio.FieldSpec{
		{Name: "cntrID", Kind: pbio.String},
		{Name: "arln", Kind: pbio.String},
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "equip", Kind: pbio.String},
		{Name: "org", Kind: pbio.String},
		{Name: "dest", Kind: pbio.String},
		{Name: "off", Kind: pbio.Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func sampleRecord() pbio.Record {
	return pbio.Record{
		"cntrID": "ZTL", "arln": "DL", "fltNum": int64(1842),
		"equip": "B757", "org": "ATL", "dest": "MCO",
		"off": []uint64{10, 20, 30, 40, 50},
		"eta": []uint64{1000, 2000, 3000},
	}
}

func TestIdentityPlanIsMemcpy(t *testing.T) {
	f := structureB(t, machine.X86_64)
	p, err := Compile(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Identity || p.Ops() != 0 {
		t.Errorf("same-format plan: Identity=%v Ops=%d", p.Identity, p.Ops())
	}
	src, err := f.Encode(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Error("identity conversion changed bytes")
	}
}

func TestCrossArchConversion(t *testing.T) {
	arches := []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc,
		machine.Sparc64, machine.Legacy16}
	for _, srcArch := range arches {
		for _, dstArch := range arches {
			t.Run(srcArch.Name+"->"+dstArch.Name, func(t *testing.T) {
				srcF := structureB(t, srcArch)
				dstF := structureB(t, dstArch)
				p, err := Compile(srcF, dstF)
				if err != nil {
					t.Fatal(err)
				}
				data, err := srcF.Encode(sampleRecord())
				if err != nil {
					t.Fatal(err)
				}
				conv, err := p.Convert(data)
				if err != nil {
					t.Fatal(err)
				}
				out, err := dstF.Decode(conv)
				if err != nil {
					t.Fatal(err)
				}
				want := sampleRecord()
				for _, k := range []string{"cntrID", "arln", "equip", "org", "dest"} {
					if out[k] != want[k] {
						t.Errorf("%s = %v", k, out[k])
					}
				}
				if out["fltNum"] != int64(1842) {
					t.Errorf("fltNum = %v", out["fltNum"])
				}
				if !reflect.DeepEqual(out["off"], []uint64{10, 20, 30, 40, 50}) {
					t.Errorf("off = %v", out["off"])
				}
				if !reflect.DeepEqual(out["eta"], []uint64{1000, 2000, 3000}) {
					t.Errorf("eta = %v", out["eta"])
				}
			})
		}
	}
}

func TestSameRepDifferentNameNotIdentity(t *testing.T) {
	// Same arch but different formats (field added) must not be identity.
	ctx, _ := pbio.NewContext(machine.X86_64)
	f1, err := ctx.RegisterSpec("V1", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ctx.RegisterSpec("V2", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CInt},
		{Name: "b", Kind: pbio.Float, CType: machine.CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Identity {
		t.Fatal("different formats reported identity")
	}
	src, _ := f1.Encode(pbio.Record{"a": 5})
	conv, err := p.Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f2.Decode(conv)
	if err != nil {
		t.Fatal(err)
	}
	if out["a"] != int64(5) || out["b"] != 0.0 {
		t.Errorf("evolved conversion: %v", out)
	}
}

func TestEvolutionDropField(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	f2, err := ctx.RegisterSpec("V2", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CInt},
		{Name: "b", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, _ := pbio.NewContext(machine.X86_64)
	f1, err := ctx2.RegisterSpec("V1", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(f2, f1)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := f2.Encode(pbio.Record{"a": -3, "b": "dropme"})
	conv, err := p.Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f1.Decode(conv)
	if err != nil {
		t.Fatal(err)
	}
	if out["a"] != int64(-3) {
		t.Errorf("a = %v", out["a"])
	}
	if _, present := out["b"]; present {
		t.Error("dropped field survived")
	}
}

func TestCompileIncompatible(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	fInt, _ := ctx.RegisterSpec("A", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Int, CType: machine.CInt},
	})
	fStr, _ := ctx.RegisterSpec("B", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.String},
	})
	if _, err := Compile(fInt, fStr); err == nil {
		t.Error("int->string compile: want error")
	}
	fArr, _ := ctx.RegisterSpec("C", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Int, CType: machine.CInt, Count: 3},
	})
	if _, err := Compile(fInt, fArr); err == nil {
		t.Error("scalar->array compile: want error")
	}
}

func TestCoalescedPrefixCopy(t *testing.T) {
	// Two same-arch formats that differ only in a trailing field: the shared
	// prefix must collapse to a single copy instruction.
	ctx, _ := pbio.NewContext(machine.X86_64)
	f1, _ := ctx.RegisterSpec("P1", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "b", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "c", Kind: pbio.Float, CType: machine.CDouble},
	})
	f2, _ := ctx.RegisterSpec("P2", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "b", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "c", Kind: pbio.Float, CType: machine.CDouble},
		{Name: "d", Kind: pbio.Int, CType: machine.CInt},
	})
	p, err := Compile(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 1 {
		t.Errorf("ops = %d, want 1 (coalesced prefix copy)", p.Ops())
	}
	src, _ := f1.Encode(pbio.Record{"a": 1, "b": 2, "c": 3.5})
	conv, err := p.Convert(src)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := f2.Decode(conv)
	if out["a"] != int64(1) || out["c"] != 3.5 || out["d"] != int64(0) {
		t.Errorf("out = %v", out)
	}
}

func TestNestedConversion(t *testing.T) {
	build := func(arch *machine.Arch) *pbio.Format {
		ctx, _ := pbio.NewContext(arch)
		_, err := ctx.RegisterSpec("Point", []pbio.FieldSpec{
			{Name: "x", Kind: pbio.Float, CType: machine.CDouble},
			{Name: "label", Kind: pbio.String},
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := ctx.RegisterSpec("Path", []pbio.FieldSpec{
			{Name: "id", Kind: pbio.Int, CType: machine.CLong},
			{Name: "start", Kind: pbio.Nested, NestedName: "Point"},
			{Name: "pts", Kind: pbio.Nested, NestedName: "Point", Dynamic: true, CountField: "n"},
			{Name: "n", Kind: pbio.Int, CType: machine.CInt},
			{Name: "corners", Kind: pbio.Nested, NestedName: "Point", Count: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	src := build(machine.Sparc)
	dst := build(machine.X86_64)
	p, err := Compile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := pbio.Record{
		"id":    int64(12),
		"start": pbio.Record{"x": 0.5, "label": "s"},
		"pts": []interface{}{
			pbio.Record{"x": 1.0, "label": "p0"},
			pbio.Record{"x": 2.0, "label": "p1"},
			pbio.Record{"x": 3.0, "label": "p2"},
		},
		"corners": []interface{}{
			pbio.Record{"x": 9.0, "label": "c0"},
			pbio.Record{"x": 8.0, "label": "c1"},
		},
	}
	data, err := src.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := p.Convert(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dst.Decode(conv)
	if err != nil {
		t.Fatal(err)
	}
	if out["id"] != int64(12) {
		t.Errorf("id = %v", out["id"])
	}
	pts, ok := out["pts"].([]pbio.Record)
	if !ok || len(pts) != 3 || pts[2]["label"] != "p2" || pts[1]["x"] != 2.0 {
		t.Errorf("pts = %v", out["pts"])
	}
	corners, ok := out["corners"].([]pbio.Record)
	if !ok || len(corners) != 2 || corners[1]["label"] != "c1" {
		t.Errorf("corners = %v", out["corners"])
	}
}

func TestNaiveMatchesPlan(t *testing.T) {
	src := structureB(t, machine.Sparc)
	dst := structureB(t, machine.X86)
	data, err := src.Encode(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := p.Convert(data)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(src, dst, data)
	if err != nil {
		t.Fatal(err)
	}
	// Decoded views must agree (byte layouts may differ in var-region
	// ordering, so compare semantically).
	a, err := dst.Decode(planned)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Decode(naive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("plan and naive disagree:\n%v\n%v", a, b)
	}
}

func TestConvertRejectsBadRecords(t *testing.T) {
	src := structureB(t, machine.Sparc)
	dst := structureB(t, machine.X86_64)
	p, err := Compile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Convert(make([]byte, 3)); err == nil {
		t.Error("short record: want error")
	}
	good, _ := src.Encode(sampleRecord())
	// Corrupt the eta pointer slot.
	eta, _ := src.FieldByName("eta")
	bad := append([]byte(nil), good...)
	machine.PutUint(bad[eta.Offset:], machine.BigEndian, 4, uint64(len(bad)+5))
	if _, err := p.Convert(bad); err == nil {
		t.Error("bad array ref: want error")
	}
	// Corrupt a string pointer slot.
	bad2 := append([]byte(nil), good...)
	machine.PutUint(bad2[0:], machine.BigEndian, 4, uint64(len(bad2)-1))
	bad2[len(bad2)-1] = 'x' // remove final NUL
	if _, err := p.Convert(bad2); err == nil {
		t.Error("unterminated string: want error")
	}
}

func TestCache(t *testing.T) {
	src := structureB(t, machine.Sparc)
	dst := structureB(t, machine.X86_64)
	c := NewCache()
	p1, err := c.Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache returned a different plan")
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d", c.Len())
	}
	if _, err := c.Plan(dst, src); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("cache len = %d", c.Len())
	}
}

// Property: conversion preserves decoded semantics for random records across
// random arch pairs.
func TestConversionSemanticsProperty(t *testing.T) {
	arches := []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc,
		machine.Sparc64, machine.Legacy16}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		srcF := structureBQuick(arches[rng.Intn(len(arches))])
		dstF := structureBQuick(arches[rng.Intn(len(arches))])
		n := rng.Intn(8)
		eta := make([]uint64, n)
		for i := range eta {
			eta[i] = uint64(uint16(rng.Uint64())) // fits 2-byte longs on legacy16
		}
		in := pbio.Record{
			"cntrID": "Z", "fltNum": int64(int16(rng.Uint64())),
			"off": []uint64{1, 2, 3, 4, 5}, "eta": eta,
		}
		data, err := srcF.Encode(in)
		if err != nil {
			return false
		}
		p, err := Compile(srcF, dstF)
		if err != nil {
			return false
		}
		conv, err := p.Convert(data)
		if err != nil {
			return false
		}
		out, err := dstF.Decode(conv)
		if err != nil {
			return false
		}
		if n == 0 {
			return out["fltNum"] == in["fltNum"] && len(out["eta"].([]uint64)) == 0
		}
		return out["fltNum"] == in["fltNum"] && reflect.DeepEqual(out["eta"], eta)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func structureBQuick(arch *machine.Arch) *pbio.Format {
	ctx, err := pbio.NewContext(arch)
	if err != nil {
		panic(err)
	}
	f, err := ctx.RegisterSpec("ASDOffEvent", []pbio.FieldSpec{
		{Name: "cntrID", Kind: pbio.String},
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "off", Kind: pbio.Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		panic(err)
	}
	return f
}
