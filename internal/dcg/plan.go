// Package dcg compiles record conversion plans — the role dynamic code
// generation plays in the paper's system.
//
// When an NDR record arrives, the receiver may hold a different native
// representation: other byte order, other integer sizes, other alignment and
// therefore other field offsets. PBIO generates custom conversion routines
// on the fly for each (source format, destination format) pair so that the
// per-message cost is a straight run of the generated code rather than a
// per-field interpretation of metadata. Go has no runtime code generation,
// so this package compiles the same analysis into a flat instruction program
// executed by a tight loop — the analysis cost is paid once per pair, the
// per-message cost is bounded by the program length, and the homogeneous
// case degenerates to a single memory copy, preserving NDR's "no conversion
// when representations match" property.
//
// For the ablation benchmark the package also provides Naive, which performs
// the same conversion by full metadata interpretation on every record.
package dcg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// Plan is a compiled conversion program from records of one format to
// records of another. Plans are immutable and safe for concurrent use.
type Plan struct {
	// Src is the format of input records.
	Src *pbio.Format
	// Dst is the format of output records.
	Dst *pbio.Format
	// Identity reports that source and destination representations are
	// byte-identical, so conversion is a single copy.
	Identity bool

	prog []op
}

type opcode int

const (
	opCopy    opcode = iota + 1 // raw byte copy (identical representation)
	opSwap                      // same-size element, opposite byte order: reverse bytes
	opInt                       // integer resize (and byte swap)
	opFloat                     // float convert (4 <-> 8, byte swap)
	opBool                      // 1-byte boolean
	opString                    // string reference: copy bytes to dst var region
	opNested                    // nested record(s): run child program
	opDynamic                   // dynamic array: loop an element op over var region
)

// op is one instruction. Offsets are relative to the current fixed-region
// base on each side; var-region references are relative to record start.
type op struct {
	code   opcode
	srcOff int
	dstOff int

	size    int  // element size on the source side
	dstSize int  // element size on the destination side
	count   int  // static element count
	signed  bool // sign-extend integers

	child *Plan // nested record program

	// Dynamic array support: where to read the element count on the source
	// side, and how the destination element data must be aligned.
	countOff    int
	countSize   int
	countSigned bool
	elem        *op // element conversion (size/dstSize/child reused)
	elemAlign   int
}

// Compile errors.
var (
	ErrIncompatible = errors.New("dcg: source and destination fields are incompatible")
)

// Compile builds the conversion program from src records to dst records.
// Fields are matched by name: destination fields absent from the source are
// left zero (format evolution), source fields absent from the destination
// are skipped. Matched fields must have the same kind and array shape.
func Compile(src, dst *pbio.Format) (*Plan, error) {
	p := &Plan{Src: src, Dst: dst}
	if src.ID == dst.ID {
		p.Identity = true
		return p, nil
	}
	sameRep := src.Arch.Order == dst.Arch.Order
	for di := range dst.Fields {
		dfl := &dst.Fields[di]
		sfl, ok := src.FieldByName(dfl.Name)
		if !ok {
			continue
		}
		o, err := compileField(src, dst, sfl, dfl, sameRep)
		if err != nil {
			return nil, err
		}
		if o != nil {
			p.prog = append(p.prog, *o)
		}
	}
	p.coalesceCopies()
	return p, nil
}

func compileField(src, dst *pbio.Format, sfl, dfl *pbio.Field, sameRep bool) (*op, error) {
	if sfl.Kind != dfl.Kind || sfl.Dynamic != dfl.Dynamic {
		return nil, fmt.Errorf("%w: field %q is %s/%v in source, %s/%v in destination",
			ErrIncompatible, dfl.Name, sfl.Kind, sfl.Dynamic, dfl.Kind, dfl.Dynamic)
	}
	if !sfl.Dynamic && sfl.Count != dfl.Count {
		return nil, fmt.Errorf("%w: field %q has %d elements in source, %d in destination",
			ErrIncompatible, dfl.Name, sfl.Count, dfl.Count)
	}

	elem, err := elementOp(src, dst, sfl, dfl, sameRep)
	if err != nil {
		return nil, err
	}

	if sfl.Dynamic {
		cf, ok := src.FieldByName(sfl.CountField)
		if !ok {
			return nil, fmt.Errorf("%w: field %q count field %q missing in source",
				ErrIncompatible, sfl.Name, sfl.CountField)
		}
		align := dst.Arch.Align(dfl.ElemSize)
		if dfl.Kind == pbio.Nested {
			align = dfl.Nested.Align
		}
		return &op{
			code:        opDynamic,
			srcOff:      sfl.Offset,
			dstOff:      dfl.Offset,
			countOff:    cf.Offset,
			countSize:   cf.ElemSize,
			countSigned: cf.Kind == pbio.Int,
			elem:        elem,
			elemAlign:   align,
		}, nil
	}

	o := *elem
	o.srcOff = sfl.Offset
	o.dstOff = dfl.Offset
	o.count = sfl.Count
	// A run of elements with identical representation collapses into one
	// copy covering the whole slot.
	if o.code == opCopy {
		o.size *= o.count
		o.dstSize = o.size
		o.count = 1
	}
	return &o, nil
}

// elementOp builds the per-element instruction with offsets left at zero.
func elementOp(src, dst *pbio.Format, sfl, dfl *pbio.Field, sameRep bool) (*op, error) {
	switch dfl.Kind {
	case pbio.Int, pbio.Uint, pbio.Char:
		if sfl.ElemSize == dfl.ElemSize {
			if sameRep || sfl.ElemSize == 1 {
				return &op{code: opCopy, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
			}
			// Byte reversal is exactly the endianness conversion for a
			// two's-complement integer of unchanged width.
			return &op{code: opSwap, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
		}
		return &op{
			code: opInt, size: sfl.ElemSize, dstSize: dfl.ElemSize,
			signed: dfl.Kind != pbio.Uint,
		}, nil
	case pbio.Float:
		if sfl.ElemSize == dfl.ElemSize {
			if sameRep {
				return &op{code: opCopy, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
			}
			// IEEE 754 bit patterns swap bytes like integers.
			return &op{code: opSwap, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
		}
		return &op{code: opFloat, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
	case pbio.Bool:
		return &op{code: opBool, size: 1, dstSize: 1}, nil
	case pbio.String:
		return &op{code: opString, size: sfl.ElemSize, dstSize: dfl.ElemSize}, nil
	case pbio.Nested:
		child, err := Compile(sfl.Nested, dfl.Nested)
		if err != nil {
			return nil, err
		}
		if child.Identity && sameRep {
			return &op{code: opCopy, size: sfl.Nested.Size, dstSize: dfl.Nested.Size}, nil
		}
		return &op{code: opNested, size: sfl.Nested.Size, dstSize: dfl.Nested.Size, child: child}, nil
	default:
		return nil, fmt.Errorf("%w: field %q has kind %v", ErrIncompatible, dfl.Name, dfl.Kind)
	}
}

// coalesceCopies merges adjacent opCopy instructions that cover contiguous
// ranges on both sides, so a same-representation prefix becomes one copy.
func (p *Plan) coalesceCopies() {
	out := p.prog[:0]
	for _, o := range p.prog {
		if o.code == opCopy && len(out) > 0 {
			last := &out[len(out)-1]
			if last.code == opCopy &&
				last.srcOff+last.size == o.srcOff &&
				last.dstOff+last.size == o.dstOff {
				last.size += o.size
				last.dstSize = last.size
				continue
			}
		}
		out = append(out, o)
	}
	p.prog = out
}

// Ops reports the number of instructions in the compiled program; the
// identity plan has zero. Exposed for tests and benchmarks.
func (p *Plan) Ops() int { return len(p.prog) }

// Convert translates one NDR record of the source format into a fresh NDR
// record of the destination format.
func (p *Plan) Convert(src []byte) ([]byte, error) {
	return p.AppendConvert(make([]byte, 0, len(src)+p.Dst.Size), src)
}

// ConvertCtx is Convert with tracing: when tc is sampled the conversion is
// recorded as a dcg.convert child span naming the format pair, timed into
// the dcg.convert_ns histogram with the TraceID as the bucket's exemplar.
func (p *Plan) ConvertCtx(tc trace.Ctx, src []byte) ([]byte, error) {
	if !tc.Sampled() {
		return p.Convert(src)
	}
	sp := tc.Child("dcg.convert")
	start := time.Now()
	out, err := p.Convert(src)
	convertNS.ObserveExemplar(time.Since(start).Nanoseconds(), tc.Trace())
	sp.FinishDetail(p.Src.Name + "->" + p.Dst.Name)
	return out, err
}

// AppendConvert appends the converted record to out for buffer reuse.
func (p *Plan) AppendConvert(out, src []byte) ([]byte, error) {
	if len(src) < p.Src.Size {
		return nil, fmt.Errorf("dcg: record of %d bytes, source fixed region needs %d",
			len(src), p.Src.Size)
	}
	conversions.Add(1)
	if p.Identity {
		return append(out, src...), nil
	}
	base := len(out)
	out = append(out, make([]byte, p.Dst.Size)...)
	return p.run(out, base, base, src, 0)
}

// run executes the program for one (possibly nested) fixed region.
func (p *Plan) run(out []byte, recBase, dstFixed int, src []byte, srcFixed int) ([]byte, error) {
	srcOrder := p.Src.Arch.Order
	dstOrder := p.Dst.Arch.Order
	var err error
	for i := range p.prog {
		o := &p.prog[i]
		sOff := srcFixed + o.srcOff
		dOff := dstFixed + o.dstOff
		switch o.code {
		case opCopy:
			copy(out[dOff:dOff+o.size], src[sOff:sOff+o.size])
		case opSwap:
			swapBytes(out[dOff:dOff+o.count*o.size], src[sOff:sOff+o.count*o.size], o.size)
		case opInt:
			for e := 0; e < o.count; e++ {
				raw := machine.Uint(src[sOff+e*o.size:], srcOrder, o.size)
				if o.signed {
					raw = machine.TruncInt(machine.SignExtend(raw, o.size), o.dstSize)
				}
				machine.PutUint(out[dOff+e*o.dstSize:], dstOrder, o.dstSize, raw)
			}
		case opFloat:
			for e := 0; e < o.count; e++ {
				v := machine.Float(src[sOff+e*o.size:], srcOrder, o.size)
				machine.PutFloat(out[dOff+e*o.dstSize:], dstOrder, o.dstSize, v)
			}
		case opBool:
			for e := 0; e < o.count; e++ {
				if src[sOff+e] != 0 {
					out[dOff+e] = 1
				} else {
					out[dOff+e] = 0
				}
			}
		case opString:
			for e := 0; e < o.count; e++ {
				out, err = p.convertString(out, recBase, dOff+e*o.dstSize, src, sOff+e*o.size)
				if err != nil {
					return nil, err
				}
			}
		case opNested:
			for e := 0; e < o.count; e++ {
				out, err = o.child.run(out, recBase, dOff+e*o.dstSize, src, sOff+e*o.size)
				if err != nil {
					return nil, err
				}
			}
		case opDynamic:
			out, err = p.convertDynamic(out, recBase, dstFixed, src, srcFixed, o)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (p *Plan) convertString(out []byte, recBase, dstSlot int, src []byte, srcSlot int) ([]byte, error) {
	ref := machine.Uint(src[srcSlot:], p.Src.Arch.Order, p.Src.Arch.PointerSize)
	if ref == 0 {
		return out, nil
	}
	if ref >= uint64(len(src)) {
		return nil, fmt.Errorf("dcg: string reference %d outside %d-byte record", ref, len(src))
	}
	start := int(ref)
	end := -1
	for i := start; i < len(src); i++ {
		if src[i] == 0 {
			end = i
			break
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("dcg: unterminated string at %d", ref)
	}
	newRef := len(out) - recBase
	out = append(out, src[start:end+1]...)
	machine.PutUint(out[dstSlot:], p.Dst.Arch.Order, p.Dst.Arch.PointerSize, uint64(newRef))
	return out, nil
}

func (p *Plan) convertDynamic(out []byte, recBase, dstFixed int, src []byte, srcFixed int, o *op) ([]byte, error) {
	raw := machine.Uint(src[srcFixed+o.countOff:], p.Src.Arch.Order, o.countSize)
	n := int64(raw)
	if o.countSigned {
		n = machine.SignExtend(raw, o.countSize)
	}
	if n < 0 {
		return nil, fmt.Errorf("dcg: negative dynamic count %d", n)
	}
	if n == 0 {
		return out, nil
	}
	if n*int64(o.elem.size) > int64(len(src)) {
		return nil, fmt.Errorf("dcg: dynamic count %d x %d exceeds record size %d",
			n, o.elem.size, len(src))
	}
	ref := machine.Uint(src[srcFixed+o.srcOff:], p.Src.Arch.Order, p.Src.Arch.PointerSize)
	if ref == 0 || ref >= uint64(len(src)) {
		return nil, fmt.Errorf("dcg: dynamic array reference %d outside %d-byte record", ref, len(src))
	}
	sStart := int(ref)
	if sStart+int(n)*o.elem.size > len(src) {
		return nil, fmt.Errorf("dcg: dynamic array escapes record")
	}

	pad := alignUp(len(out)-recBase, o.elemAlign) - (len(out) - recBase)
	out = append(out, make([]byte, pad)...)
	newRef := len(out) - recBase
	dStart := len(out)
	out = append(out, make([]byte, int(n)*o.elem.dstSize)...)

	elem := *o.elem
	elem.srcOff, elem.dstOff = 0, 0
	var err error
	switch elem.code {
	case opNested, opString:
		// Reference-bearing elements need per-element variable-region work.
		elem.count = 1
		sub := Plan{Src: p.Src, Dst: p.Dst, prog: []op{elem}}
		for e := 0; e < int(n); e++ {
			out, err = sub.run(out, recBase, dStart+e*elem.dstSize, src, sStart+e*elem.size)
			if err != nil {
				return nil, err
			}
		}
	case opCopy:
		// One bulk copy covers the whole array.
		elem.size = int(n) * o.elem.size
		elem.dstSize = elem.size
		sub := Plan{Src: p.Src, Dst: p.Dst, prog: []op{elem}}
		if out, err = sub.run(out, recBase, dStart, src, sStart); err != nil {
			return nil, err
		}
	default:
		// Scalar conversions run as one instruction with the array count —
		// a single tight loop, no per-element dispatch.
		elem.count = int(n)
		sub := Plan{Src: p.Src, Dst: p.Dst, prog: []op{elem}}
		if out, err = sub.run(out, recBase, dStart, src, sStart); err != nil {
			return nil, err
		}
	}
	machine.PutUint(out[dstFixed+o.dstOff:], p.Dst.Arch.Order, p.Dst.Arch.PointerSize, uint64(newRef))
	return out, nil
}

// swapBytes reverses the byte order of each size-byte element while copying
// src to dst. This is the whole of an endianness conversion for fixed-width
// integers and IEEE floats, so it is the hottest instruction in
// heterogeneous plans; the common widths use single loads plus a reverse.
func swapBytes(dst, src []byte, size int) {
	switch size {
	case 2:
		for i := 0; i+2 <= len(src); i += 2 {
			binary.LittleEndian.PutUint16(dst[i:],
				bits.ReverseBytes16(binary.LittleEndian.Uint16(src[i:])))
		}
	case 4:
		for i := 0; i+4 <= len(src); i += 4 {
			binary.LittleEndian.PutUint32(dst[i:],
				bits.ReverseBytes32(binary.LittleEndian.Uint32(src[i:])))
		}
	case 8:
		for i := 0; i+8 <= len(src); i += 8 {
			binary.LittleEndian.PutUint64(dst[i:],
				bits.ReverseBytes64(binary.LittleEndian.Uint64(src[i:])))
		}
	default:
		for i := 0; i+size <= len(src); i += size {
			for k := 0; k < size; k++ {
				dst[i+k] = src[i+size-1-k]
			}
		}
	}
}

func alignUp(n, align int) int {
	if align <= 1 {
		return n
	}
	if rem := n % align; rem != 0 {
		return n + align - rem
	}
	return n
}

// Naive converts by full metadata interpretation on every record — decode to
// a generic record, re-encode in the destination format. It exists as the
// ablation baseline quantifying what plan compilation buys.
func Naive(src, dst *pbio.Format, data []byte) ([]byte, error) {
	rec, err := src.Decode(data)
	if err != nil {
		return nil, err
	}
	return dst.Encode(rec)
}
