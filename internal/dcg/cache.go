package dcg

import (
	"time"

	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/trace"
)

// Cache memoizes compiled plans per (source, destination) format pair, the
// way PBIO caches its generated conversion routines: the first record of a
// new pairing pays the compilation cost, every later record reuses the
// program. Cache is safe for concurrent use.
//
// A cache can be bounded with WithMaxEntries, in which case the oldest
// pairing is evicted (FIFO) when a new one would exceed the bound — long-
// running brokers that see an unbounded stream of format pairs stay at a
// fixed memory footprint and merely pay recompilation for evicted pairs.
type Cache struct {
	// mu guards plans/order. Tracked (dcg.plan_cache_mu.wait_ns/.hold_ns/
	// .rwait_ns) because every scoped delivery takes the read lock and a
	// compile storm serializes on the write lock.
	mu    *obsv.TrackedRWMutex
	plans map[pairKey]*Plan
	order []pairKey // insertion order, drives FIFO eviction
	max   int       // 0 = unbounded

	obs cacheMetrics
}

type pairKey struct {
	src pbio.FormatID
	dst pbio.FormatID
}

// cacheMetrics bundles the cache's instruments; zero value is no-op. reg
// keeps the owning registry so NewCache can build the tracked lock against
// whatever registry WithObserver selected.
type cacheMetrics struct {
	reg       *obsv.Registry
	hits      *obsv.Counter
	misses    *obsv.Counter
	evictions *obsv.Counter
	compileNS *obsv.Histogram
}

func newCacheMetrics(r *obsv.Registry) cacheMetrics {
	s := r.Scope("dcg")
	return cacheMetrics{
		reg:       r,
		hits:      s.Counter("plan_cache.hits"),
		misses:    s.Counter("plan_cache.misses"),
		evictions: s.Counter("plan_cache.evictions"),
		compileNS: s.Histogram("plan.compile_ns"),
	}
}

// Package-level instruments on the default registry, created at init so the
// dcg.* metric names exist (zero-valued) from process start.
var (
	defaultCacheMetrics = newCacheMetrics(obsv.Default())
	conversions         = obsv.Default().Counter("dcg.conversions")

	// convertNS times traced conversions (Plan.ConvertCtx), stamping the
	// TraceID onto the bucket as its exemplar. The untraced Convert hot path
	// stays untimed, like the other codec microbenchmark subjects.
	convertNS = obsv.Default().Histogram("dcg.convert_ns")
)

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithMaxEntries bounds the cache to n memoized plans (0 = unbounded, the
// default). When full, the oldest pairing is evicted.
func WithMaxEntries(n int) CacheOption {
	return func(c *Cache) { c.max = n }
}

// WithObserver directs the cache's hit/miss/eviction counters and the
// plan-compilation-time histogram into r instead of the default registry.
func WithObserver(r *obsv.Registry) CacheOption {
	return func(c *Cache) { c.obs = newCacheMetrics(r) }
}

// NewCache returns an empty plan cache.
func NewCache(opts ...CacheOption) *Cache {
	c := &Cache{
		plans: make(map[pairKey]*Plan),
		obs:   defaultCacheMetrics,
	}
	for _, opt := range opts {
		opt(c)
	}
	// Built after options so the lock's histograms land in the registry
	// WithObserver selected. Caches sharing a registry share the histograms
	// (first registration wins the lock-table entry), not the mutex.
	c.mu = obsv.NewTrackedRWMutex("plan_cache_mu", c.obs.reg.Scope("dcg"))
	return c
}

// Plan returns the compiled plan from src to dst, compiling and memoizing it
// on first use.
func (c *Cache) Plan(src, dst *pbio.Format) (*Plan, error) {
	return c.PlanCtx(trace.Ctx{}, src, dst)
}

// PlanCtx is Plan with tracing: when the lookup misses and tc is sampled,
// the compilation is recorded as a dcg.compile child span (cache hits record
// nothing — they are the fast path the span exists to contrast against).
func (c *Cache) PlanCtx(tc trace.Ctx, src, dst *pbio.Format) (*Plan, error) {
	key := pairKey{src.ID, dst.ID}
	c.mu.RLock()
	p, ok := c.plans[key]
	c.mu.RUnlock()
	if ok {
		c.obs.hits.Add(1)
		return p, nil
	}
	c.obs.misses.Add(1)
	sp := tc.Child("dcg.compile")
	start := time.Now()
	p, err := Compile(src, dst)
	if err != nil {
		return nil, err
	}
	c.obs.compileNS.Observe(time.Since(start).Nanoseconds())
	sp.FinishDetail(src.Name + "->" + dst.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.plans[key]; ok {
		return prev, nil
	}
	c.plans[key] = p
	c.order = append(c.order, key)
	for c.max > 0 && len(c.plans) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.plans, oldest)
		c.obs.evictions.Add(1)
	}
	return p, nil
}

// Len reports the number of memoized plans.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}

// Stats reports the cache's cumulative hit/miss/eviction counts. Note that
// caches sharing a registry (all caches built without WithObserver share the
// default registry) share these counters.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.obs.hits.Load(), c.obs.misses.Load(), c.obs.evictions.Load()
}
