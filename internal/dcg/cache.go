package dcg

import (
	"sync"

	"openmeta/internal/pbio"
)

// Cache memoizes compiled plans per (source, destination) format pair, the
// way PBIO caches its generated conversion routines: the first record of a
// new pairing pays the compilation cost, every later record reuses the
// program. Cache is safe for concurrent use.
type Cache struct {
	mu    sync.RWMutex
	plans map[pairKey]*Plan
}

type pairKey struct {
	src pbio.FormatID
	dst pbio.FormatID
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{plans: make(map[pairKey]*Plan)}
}

// Plan returns the compiled plan from src to dst, compiling and memoizing it
// on first use.
func (c *Cache) Plan(src, dst *pbio.Format) (*Plan, error) {
	key := pairKey{src.ID, dst.ID}
	c.mu.RLock()
	p, ok := c.plans[key]
	c.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := Compile(src, dst)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.plans[key]; ok {
		return prev, nil
	}
	c.plans[key] = p
	return p, nil
}

// Len reports the number of memoized plans.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}
