package flight

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRecordSnapshotRoundTrip(t *testing.T) {
	r := New(16)
	r.Record(KindConnOpen, 7, "", 0, 0, "127.0.0.1:9")
	r.Record(KindFrameRecv, 7, "flights", 0xdeadbeef, 42, "")
	r.Record(KindConnClose, 7, "", 0, 0, "EOF")

	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(evs))
	}
	// Newest first.
	if evs[0].Kind != "conn_close" || evs[1].Kind != "frame_recv" || evs[2].Kind != "conn_open" {
		t.Fatalf("order = %s,%s,%s", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	fr := evs[1]
	if fr.Conn != 7 || fr.Stream != "flights" || fr.Format != 0xdeadbeef || fr.Bytes != 42 {
		t.Fatalf("frame_recv event = %+v", fr)
	}
	if evs[2].Detail != "127.0.0.1:9" {
		t.Fatalf("detail = %q", evs[2].Detail)
	}
	if !evs[0].Time.After(evs[2].Time) && !evs[0].Time.Equal(evs[2].Time) {
		t.Fatalf("timestamps not monotone: %v then %v", evs[2].Time, evs[0].Time)
	}
}

func TestRingWraps(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(KindFrameSend, uint64(i), "s", 0, int64(i), "")
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(evs))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if evs[i].Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
}

func TestStringTruncation(t *testing.T) {
	r := New(2)
	long := strings.Repeat("s", 100)
	r.Record(KindBrokerError, 1, long, 0, 0, strings.Repeat("d", 100))
	ev := r.Snapshot()[0]
	if len(ev.Stream) != streamWords*8 || !strings.HasPrefix(long, ev.Stream) {
		t.Fatalf("stream truncated to %d bytes: %q", len(ev.Stream), ev.Stream)
	}
	if len(ev.Detail) != detailWords*8 {
		t.Fatalf("detail truncated to %d bytes", len(ev.Detail))
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindConnOpen, 1, "s", 0, 0, "d") // must not panic
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil recorder not empty")
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindConnOpen; k < kindMax; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindFromString(name); got != k {
			t.Fatalf("KindFromString(%q) = %d, want %d", name, got, k)
		}
	}
	if Kind(0).String() != "unknown" || KindFromString("nope") != 0 {
		t.Fatal("zero/unknown kind mishandled")
	}
}

// TestRecordAllocationFree is the acceptance gate: the record path must not
// allocate, even with both string fields populated.
func TestRecordAllocationFree(t *testing.T) {
	r := New(64)
	stream := "orders.us-east"
	detail := "write tcp 127.0.0.1:1->127.0.0.1:2: connection reset"
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindFrameSend, 3, stream, 0x1234, 512, detail)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(32)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(id uint64) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				r.Record(KindFrameRecv, id, "stream-name-here", uint64(i), int64(i), "some detail text")
			}
		}(uint64(g))
	}
	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()
	for {
		for _, ev := range r.Snapshot() {
			if ev.Kind != "frame_recv" || ev.Stream != "stream-name-here" {
				t.Fatalf("torn event: %+v", ev)
			}
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestNextConnIDUnique(t *testing.T) {
	a, b := NextConnID(), NextConnID()
	if a == b || a == 0 || b == 0 {
		t.Fatalf("NextConnID not unique/nonzero: %d %d", a, b)
	}
}

func TestHandlerFilters(t *testing.T) {
	r := New(32)
	r.Record(KindConnOpen, 1, "", 0, 0, "a")
	r.Record(KindFrameSend, 1, "alpha", 10, 100, "")
	r.Record(KindFrameSend, 2, "beta", 20, 200, "")
	r.Record(KindConnClose, 2, "", 0, 0, "bye")

	get := func(q string) (uint64, []Event) {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/flight"+q, nil)
		rec := httptest.NewRecorder()
		Handler(r).ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", q, rec.Code, rec.Body.String())
		}
		var body struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", q, err)
		}
		return body.Total, body.Events
	}

	total, evs := get("")
	if total != 4 || len(evs) != 4 {
		t.Fatalf("unfiltered: total=%d len=%d", total, len(evs))
	}
	if evs[0].Kind != "conn_close" {
		t.Fatalf("not newest-first: %+v", evs[0])
	}
	if _, evs = get("?conn=2"); len(evs) != 2 {
		t.Fatalf("conn=2: %d events", len(evs))
	}
	if _, evs = get("?stream=alpha"); len(evs) != 1 || evs[0].Format != 10 {
		t.Fatalf("stream=alpha: %+v", evs)
	}
	if _, evs = get("?kind=frame_send"); len(evs) != 2 {
		t.Fatalf("kind=frame_send: %d events", len(evs))
	}
	if _, evs = get("?n=1"); len(evs) != 1 || evs[0].Kind != "conn_close" {
		t.Fatalf("n=1: %+v", evs)
	}
	if _, evs = get("?kind=frame_send&conn=1&stream=alpha"); len(evs) != 1 {
		t.Fatalf("combined filters: %d events", len(evs))
	}

	// Incremental-scrape cursor: since_seq=N returns only events recorded
	// after the cursor, so a collector never re-downloads ring contents.
	if _, evs = get("?since_seq=2"); len(evs) != 2 || evs[len(evs)-1].Seq != 3 {
		t.Fatalf("since_seq=2: %+v", evs)
	}
	if total, evs = get("?since_seq=4"); len(evs) != 0 || total != 4 {
		t.Fatalf("since_seq=4 (caught up): total=%d %+v", total, evs)
	}
	r.Record(KindReconnect, 3, "", 0, 0, "redial ok")
	if _, evs = get("?since_seq=4"); len(evs) != 1 || evs[0].Kind != "reconnect" {
		t.Fatalf("since_seq=4 after new event: %+v", evs)
	}
	if _, evs = get("?since_seq=3&kind=conn_close"); len(evs) != 1 {
		t.Fatalf("since_seq composes with kind filter: %+v", evs)
	}

	for _, bad := range []string{"?kind=bogus", "?conn=x", "?n=0", "?since_seq=x"} {
		req := httptest.NewRequest("GET", "/debug/flight"+bad, nil)
		rec := httptest.NewRecorder()
		Handler(r).ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Fatalf("GET %s: status %d, want 400", bad, rec.Code)
		}
	}
}

// TestAlertEventsRoundTrip covers the alert event kinds: severity and rule
// name ride the existing packed string slots (rule name in the stream words,
// severity + condition in the detail words) and the observed value in bytes.
func TestAlertEventsRoundTrip(t *testing.T) {
	r := New(16)
	r.Record(KindAlertFired, 0, "queue-depth", 0, 412, "critical eventbus.queue_depth > 256")
	r.Record(KindAlertResolved, 0, "queue-depth", 0, 3, "critical eventbus.queue_depth > 256")

	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(evs))
	}
	res, fired := evs[0], evs[1] // newest first
	if fired.Kind != "alert_fired" || res.Kind != "alert_resolved" {
		t.Fatalf("kinds = %s, %s", fired.Kind, res.Kind)
	}
	if fired.Stream != "queue-depth" || fired.Bytes != 412 {
		t.Fatalf("fired event = %+v", fired)
	}
	if res.Detail != "critical eventbus.queue_depth > 256" {
		t.Fatalf("resolved detail = %q", res.Detail)
	}
	if fired.Seq >= res.Seq {
		t.Fatalf("fired seq %d not before resolved seq %d", fired.Seq, res.Seq)
	}
}

func TestKindsWithPrefix(t *testing.T) {
	got := KindsWithPrefix("alert")
	if len(got) != 2 || got[0] != KindAlertFired || got[1] != KindAlertResolved {
		t.Fatalf("KindsWithPrefix(alert) = %v", got)
	}
	if got := KindsWithPrefix("conn"); len(got) != 2 {
		t.Fatalf("KindsWithPrefix(conn) = %v", got)
	}
	if KindsWithPrefix("zzz") != nil || KindsWithPrefix("") != nil {
		t.Fatal("non-matching prefixes must return nil")
	}
}

// TestHandlerKindFamilyFilter: ?kind=alert must select both alert kinds and
// nothing else; exact names keep working.
func TestHandlerKindFamilyFilter(t *testing.T) {
	r := New(16)
	r.Record(KindConnOpen, 1, "", 0, 0, "")
	r.Record(KindAlertFired, 0, "rule-a", 0, 10, "warn x > 5")
	r.Record(KindFrameSend, 1, "s", 1, 1, "")
	r.Record(KindAlertResolved, 0, "rule-a", 0, 1, "warn x > 5")

	get := func(q string) []Event {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/flight"+q, nil)
		rec := httptest.NewRecorder()
		Handler(r).ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", q, rec.Code, rec.Body.String())
		}
		var body struct {
			Events []Event `json:"events"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", q, err)
		}
		return body.Events
	}

	evs := get("?kind=alert")
	if len(evs) != 2 || evs[0].Kind != "alert_resolved" || evs[1].Kind != "alert_fired" {
		t.Fatalf("kind=alert: %+v", evs)
	}
	if evs := get("?kind=alert_fired"); len(evs) != 1 || evs[0].Stream != "rule-a" {
		t.Fatalf("kind=alert_fired: %+v", evs)
	}
}
