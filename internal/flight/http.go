package flight

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the recorder's contents as JSON, newest first — the
// /debug/flight endpoint on the DebugMux. Query parameters filter the dump:
//
//	?conn=N        only events for connection id N
//	?stream=NAME   only events whose stream equals NAME
//	?kind=NAME     only events of that kind (snake_case, e.g. frame_send);
//	               a prefix matches a family: kind=alert selects both
//	               alert_fired and alert_resolved
//	?n=N           at most N events (default 256, capped at ring capacity)
//	?since_seq=N   only events with a sequence number greater than N — the
//	               incremental-scrape parameter: a collector passes the max
//	               seq of its previous scrape and never re-downloads or
//	               double-counts ring contents
//
// The response object carries the filtered events plus the recorder's total
// event count, so a caller can tell whether the ring has wrapped past the
// history it wanted (and, after a process restart, that the sequence counter
// reset: total below a previously seen cursor).
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit := 256
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "flight: bad n", http.StatusBadRequest)
				return
			}
			limit = n
		}
		var sinceSeq uint64
		if v := q.Get("since_seq"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "flight: bad since_seq", http.StatusBadRequest)
				return
			}
			sinceSeq = n
		}
		var connFilter uint64
		hasConn := false
		if v := q.Get("conn"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "flight: bad conn", http.StatusBadRequest)
				return
			}
			connFilter, hasConn = n, true
		}
		var kindFilter map[string]bool
		if v := q.Get("kind"); v != "" {
			kinds := KindsWithPrefix(v)
			if k := KindFromString(v); k != 0 {
				kinds = []Kind{k}
			}
			if len(kinds) == 0 {
				http.Error(w, "flight: unknown kind "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
			kindFilter = make(map[string]bool, len(kinds))
			for _, k := range kinds {
				kindFilter[k.String()] = true
			}
		}
		streamFilter := q.Get("stream")

		all := r.Snapshot() // newest first
		events := make([]Event, 0, min(limit, len(all)))
		for _, ev := range all {
			if ev.Seq <= sinceSeq {
				// Snapshot is seq-descending: everything from here back was
				// already scraped.
				break
			}
			if hasConn && ev.Conn != connFilter {
				continue
			}
			if streamFilter != "" && ev.Stream != streamFilter {
				continue
			}
			if kindFilter != nil && !kindFilter[ev.Kind] {
				continue
			}
			events = append(events, ev)
			if len(events) >= limit {
				break
			}
		}

		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{Total: r.total(), Events: events})
	})
}

// total reports how many events have ever been recorded (including those the
// ring has already overwritten).
func (r *Recorder) total() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}
