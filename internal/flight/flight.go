// Package flight is a black-box flight recorder for the openmeta wire
// protocol: a fixed-capacity, lock-free ring of typed protocol events that
// components record into at essentially zero cost and operators dump after
// the fact via /debug/flight. It answers the question logs cannot — "what
// were the last N things that happened on this connection before it died?" —
// without requiring that logging was turned up beforehand.
//
// The recorder is always on. Recording takes no locks and performs no
// allocations (guarded by testing.AllocsPerRun in the package tests), so the
// broker and clients call Record on their per-frame hot paths. Events carry
// a kind, an optional connection id, stream name, format id, byte count and
// a short free-text detail; string fields are truncated to fixed inline
// capacities rather than allocated.
//
// Concurrency model: each slot in the ring is guarded by its own sequence
// lock made of atomics — a writer bumps the guard to an odd value, stores
// the fields (every field is itself an atomic; string bytes are packed into
// uint64 words), then bumps the guard back to even. Readers retry a slot
// whose guard is odd or changes across the read. If two writers lap each
// other onto the same slot the loser's data may be replaced mid-write; the
// guard discipline keeps readers from observing a torn record in any
// realistic schedule (a reader would have to stall for a full ring cycle),
// and a diagnostics ring prefers losing one event to taking a lock.
package flight

import (
	"strings"
	"sync/atomic"
	"time"
)

// Kind classifies a protocol event.
type Kind uint8

// Event kinds recorded by the eventbus broker and clients, the discovery
// client and the retry helper. The zero Kind marks an empty slot and is
// never recorded.
const (
	KindConnOpen      Kind = iota + 1 // connection established (detail: remote addr / role)
	KindConnClose                     // connection torn down (detail: cause)
	KindHello                         // frameHello negotiation outcome (bytes: peer caps, detail: outcome)
	KindFrameSend                     // event frame sent (stream, format, payload bytes)
	KindFrameRecv                     // event frame received (stream, format, payload bytes)
	KindFormatSend                    // format metadata sent (format, meta bytes)
	KindFormatRecv                    // format metadata received (format, meta bytes)
	KindBrokerError                   // broker-side protocol error (detail: error)
	KindReconnect                     // client reconnect attempt (detail: outcome or redial error)
	KindSlowSubDrop                   // event dropped / subscriber declared slow (stream)
	KindDiscovery                     // discovery fetch outcome (stream: schema name, detail: outcome)
	KindRetryGiveUp                   // retry.Do exhausted its attempts or budget (detail: last error)
	KindAlertFired                    // alert rule began firing (stream: rule name, bytes: observed value, detail: severity + condition)
	KindAlertResolved                 // alert rule resolved after hysteresis (stream: rule name, bytes: observed value, detail: severity + condition)
	kindMax
)

var kindNames = [kindMax]string{
	KindConnOpen:      "conn_open",
	KindConnClose:     "conn_close",
	KindHello:         "hello",
	KindFrameSend:     "frame_send",
	KindFrameRecv:     "frame_recv",
	KindFormatSend:    "format_send",
	KindFormatRecv:    "format_recv",
	KindBrokerError:   "broker_error",
	KindReconnect:     "reconnect",
	KindSlowSubDrop:   "slow_sub_drop",
	KindDiscovery:     "discovery",
	KindRetryGiveUp:   "retry_giveup",
	KindAlertFired:    "alert_fired",
	KindAlertResolved: "alert_resolved",
}

// String returns the wire-stable snake_case name used in /debug/flight JSON
// and its ?kind= filter.
func (k Kind) String() string {
	if k == 0 || k >= kindMax {
		return "unknown"
	}
	return kindNames[k]
}

// KindFromString resolves the snake_case name back to a Kind (0 if unknown).
func KindFromString(s string) Kind {
	for k, n := range kindNames {
		if n == s {
			return Kind(k)
		}
	}
	return 0
}

// KindsWithPrefix returns every kind whose name starts with prefix — how the
// /debug/flight?kind= filter matches a family like "alert" (alert_fired +
// alert_resolved) or "conn" (conn_open + conn_close) as well as exact names.
func KindsWithPrefix(prefix string) []Kind {
	if prefix == "" {
		return nil
	}
	var out []Kind
	for k := int(KindConnOpen); k < int(kindMax); k++ {
		if strings.HasPrefix(kindNames[k], prefix) {
			out = append(out, Kind(k))
		}
	}
	return out
}

// Inline string capacities. Stream names beyond streamWords*8 bytes and
// details beyond detailWords*8 bytes are truncated; both bounds comfortably
// hold the repo's stream names and one-line error strings.
const (
	streamWords = 4 // 32 bytes
	detailWords = 8 // 64 bytes
)

// slot is one ring entry. Every field is an atomic so concurrent writers and
// readers are race-detector clean without locks; guard is the per-slot
// seqlock (odd while a writer is inside).
type slot struct {
	guard  atomic.Uint64
	seq    atomic.Uint64 // global event number, 1-based
	unixNS atomic.Int64
	kind   atomic.Uint32
	conn   atomic.Uint64
	format atomic.Uint64
	bytes  atomic.Int64
	slen   atomic.Uint32
	dlen   atomic.Uint32
	stream [streamWords]atomic.Uint64
	detail [detailWords]atomic.Uint64
}

// Event is the decoded, stable view of one recorded slot, as served by
// Snapshot and /debug/flight.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Conn   uint64    `json:"conn,omitempty"`
	Stream string    `json:"stream,omitempty"`
	Format uint64    `json:"format,omitempty"`
	Bytes  int64     `json:"bytes,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Recorder is the fixed-capacity event ring. A nil *Recorder is a no-op, so
// instrumented components can hold one unconditionally.
type Recorder struct {
	slots  []slot
	cursor atomic.Uint64
}

// DefaultCapacity is the ring size of the process-wide Default recorder:
// large enough to hold the full connection history of a mid-frame failure
// plus the reconnect storm that follows, small enough (~300 KiB) to leave
// running everywhere.
const DefaultCapacity = 2048

// New returns a recorder holding the last capacity events (minimum 1).
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{slots: make([]slot, capacity)}
}

var defaultRecorder = New(DefaultCapacity)

// Default returns the process-wide recorder that instrumented components use
// unless handed a recorder of their own via their WithFlightRecorder option.
func Default() *Recorder { return defaultRecorder }

// connIDs hands out process-unique connection ids so broker-side and
// client-side events about different sockets never collide in the ring.
var connIDs atomic.Uint64

// NextConnID allocates a fresh process-unique connection id.
func NextConnID() uint64 { return connIDs.Add(1) }

// Record appends one event to the ring. It is safe from any goroutine, takes
// no locks, performs no allocations, and is a no-op on a nil recorder.
// stream and detail are truncated to their inline capacities.
func (r *Recorder) Record(k Kind, conn uint64, stream string, format uint64, bytes int64, detail string) {
	if r == nil || len(r.slots) == 0 || k == 0 || k >= kindMax {
		return
	}
	n := r.cursor.Add(1)
	s := &r.slots[(n-1)%uint64(len(r.slots))]
	s.guard.Add(1) // odd: writer inside
	s.seq.Store(n)
	s.unixNS.Store(time.Now().UnixNano())
	s.kind.Store(uint32(k))
	s.conn.Store(conn)
	s.format.Store(format)
	s.bytes.Store(bytes)
	s.slen.Store(packString(s.stream[:], stream))
	s.dlen.Store(packString(s.detail[:], detail))
	s.guard.Add(1) // even: stable
}

// packString stores up to len(words)*8 bytes of v into the uint64 words
// (little-endian within each word) and returns the stored length. It never
// allocates: bytes are folded into words with shifts, indexing the string
// directly.
func packString(words []atomic.Uint64, v string) uint32 {
	if len(v) > len(words)*8 {
		v = v[:len(words)*8]
	}
	for w := 0; w*8 < len(v); w++ {
		var acc uint64
		end := w*8 + 8
		if end > len(v) {
			end = len(v)
		}
		for i := w * 8; i < end; i++ {
			acc |= uint64(v[i]) << (8 * uint(i-w*8))
		}
		words[w].Store(acc)
	}
	return uint32(len(v))
}

// unpackString is the snapshot-time inverse of packString.
func unpackString(words []uint64, n uint32) string {
	if n == 0 {
		return ""
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(words[i/8] >> (8 * uint(i%8)))
	}
	return string(buf)
}

// Len reports the number of events currently readable (at most the ring
// capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the stable events in the ring, newest first. Slots with a
// writer mid-store are retried briefly and skipped if still unstable.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev, ok := r.slots[i].read(); ok {
			out = append(out, ev)
		}
	}
	// Newest first: the per-slot global sequence numbers give a total order
	// regardless of ring position.
	sortEventsDesc(out)
	return out
}

// read extracts a consistent Event from the slot, or ok=false if the slot is
// empty or a writer kept it unstable across a few retries.
func (s *slot) read() (Event, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		g1 := s.guard.Load()
		if g1&1 == 1 {
			continue // writer inside
		}
		seq := s.seq.Load()
		if seq == 0 {
			return Event{}, false // never written
		}
		k := Kind(s.kind.Load())
		ev := Event{
			Seq:    seq,
			Time:   time.Unix(0, s.unixNS.Load()),
			Kind:   k.String(),
			Conn:   s.conn.Load(),
			Format: s.format.Load(),
			Bytes:  s.bytes.Load(),
		}
		var sw [streamWords]uint64
		for i := range sw {
			sw[i] = s.stream[i].Load()
		}
		var dw [detailWords]uint64
		for i := range dw {
			dw[i] = s.detail[i].Load()
		}
		slen, dlen := s.slen.Load(), s.dlen.Load()
		if s.guard.Load() != g1 {
			continue // torn read; retry
		}
		ev.Stream = unpackString(sw[:], slen)
		ev.Detail = unpackString(dw[:], dlen)
		return ev, true
	}
	return Event{}, false
}

// sortEventsDesc sorts by Seq descending (insertion-friendly shell sort — the
// slice is nearly sorted already because the ring is written in order).
func sortEventsDesc(evs []Event) {
	for gap := len(evs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(evs); i++ {
			e := evs[i]
			j := i
			for ; j >= gap && evs[j-gap].Seq < e.Seq; j -= gap {
				evs[j] = evs[j-gap]
			}
			evs[j] = e
		}
	}
}
