package discovery

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPublishAndUnpublish(t *testing.T) {
	repo := NewRepository()
	repo.SetWritable(true)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	c, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Create.
	if err := c.Publish(ctx, "Weather", docWeather); err != nil {
		t.Fatal(err)
	}
	s, err := c.Schema(ctx, "Weather")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Name != "Weather" {
		t.Errorf("schema = %q", s.Types[0].Name)
	}

	// Replace (evolution from the stream's side).
	changed := strings.Replace(docWeather, "tempC", "tempF", 1)
	if err := c.Publish(ctx, "Weather", changed); err != nil {
		t.Fatal(err)
	}
	s2, err := c.Schema(ctx, "Weather")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Types[0].Elements[1].Name != "tempF" {
		t.Errorf("replace not visible: %+v", s2.Types[0].Elements[1])
	}

	// Delete.
	if err := c.Unpublish(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schema(ctx, "Weather"); !errors.Is(err, ErrNotFound) {
		t.Errorf("after unpublish err = %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	repo := NewRepository()
	repo.SetWritable(true)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	c, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Client-side validation rejects before any network traffic.
	if err := c.Publish(context.Background(), "Bad", "<junk/>"); err == nil {
		t.Error("invalid document published")
	}
	// Server-side validation also rejects raw uploads.
	req, err := http.NewRequest(http.MethodPut, srv.URL+SchemaPathPrefix+"Bad",
		strings.NewReader("<junk/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("raw invalid PUT status = %d", resp.StatusCode)
	}
}

func TestPublishReadOnlyRepository(t *testing.T) {
	repo := NewRepository() // writes not enabled
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	c, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Publish(context.Background(), "Weather", docWeather)
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("err = %v, want read-only rejection", err)
	}
}

func TestPublishStatusCodes(t *testing.T) {
	repo := NewRepository()
	repo.SetWritable(true)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()

	put := func(name string) int {
		req, err := http.NewRequest(http.MethodPut, srv.URL+SchemaPathPrefix+name,
			strings.NewReader(docWeather))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := put("W"); got != http.StatusCreated {
		t.Errorf("first PUT = %d, want 201", got)
	}
	if got := put("W"); got != http.StatusNoContent {
		t.Errorf("second PUT = %d, want 204", got)
	}
	// Empty name.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+SchemaPathPrefix, strings.NewReader(docWeather))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-name PUT = %d", resp.StatusCode)
	}
}
