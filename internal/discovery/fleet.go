package discovery

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file extends the metadata-discovery layer from schemas to *fleet
// membership*: the paper's "publicly known intranet server" (§4.4) is already
// the rendezvous every process knows, so daemons self-register their debug
// endpoint under a well-known subject here and a collector (cmd/omcollect)
// discovers what to scrape the same way clients discover formats — over HTTP
// against the metaserver, with TTL expiry standing in for liveness.

// InstancePathPrefix is the URL prefix under which fleet members register and
// are listed on the metaserver.
const InstancePathPrefix = "/instances/"

// DefaultInstanceTTL is how long a registration stays listed without a
// refresh. Heartbeats at a third of this keep live members listed through
// two missed beats.
const DefaultInstanceTTL = 30 * time.Second

// Instance is one self-registered fleet member: a process serving the
// observability surface (/stats, /debug/trace, /debug/flight, /debug/history)
// on DebugAddr.
type Instance struct {
	Name      string    `json:"name"`                // unique instance name, e.g. "eventbusd-host-1234"
	Component string    `json:"component,omitempty"` // binary: eventbusd, ompub, omsub, metaserver
	DebugAddr string    `json:"debug_addr"`          // host:port of the -debug-addr listener
	LastSeen  time.Time `json:"last_seen,omitempty"` // server-stamped on each (re-)registration
}

// InstanceRegistry is the server-side store of registered fleet members,
// TTL-expired so crashed processes fall out of the list without explicit
// deregistration. Safe for concurrent use.
type InstanceRegistry struct {
	mu  sync.Mutex
	m   map[string]Instance
	ttl time.Duration
	now func() time.Time // test hook
}

// NewInstanceRegistry returns an empty registry expiring entries after ttl
// (ttl <= 0 uses DefaultInstanceTTL).
func NewInstanceRegistry(ttl time.Duration) *InstanceRegistry {
	if ttl <= 0 {
		ttl = DefaultInstanceTTL
	}
	return &InstanceRegistry{m: make(map[string]Instance), ttl: ttl, now: time.Now}
}

// Register adds or refreshes one member, stamping LastSeen.
func (r *InstanceRegistry) Register(inst Instance) error {
	if inst.Name == "" {
		return fmt.Errorf("discovery: instance name required")
	}
	if inst.DebugAddr == "" {
		return fmt.Errorf("discovery: instance %q: debug_addr required", inst.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.LastSeen = r.now()
	r.m[inst.Name] = inst
	return nil
}

// Deregister removes a member by name.
func (r *InstanceRegistry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, name)
}

// List returns the live (unexpired) members sorted by name, pruning expired
// entries as a side effect.
func (r *InstanceRegistry) List() []Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	cut := r.now().Add(-r.ttl)
	out := make([]Instance, 0, len(r.m))
	for name, inst := range r.m {
		if inst.LastSeen.Before(cut) {
			delete(r.m, name)
			continue
		}
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler serves the registry over HTTP:
//
//	GET    /instances/          {"instances":[...]} live members, sorted
//	PUT    /instances/<name>    register/refresh; body {"component","debug_addr"}
//	DELETE /instances/<name>    deregister
func (r *InstanceRegistry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := strings.TrimPrefix(req.URL.Path, InstancePathPrefix)
		switch req.Method {
		case http.MethodGet, http.MethodHead:
			if name != "" {
				http.NotFound(w, req)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Instances []Instance `json:"instances"`
			}{Instances: r.List()})
		case http.MethodPut:
			if name == "" {
				http.Error(w, "instance name required", http.StatusBadRequest)
				return
			}
			var inst Instance
			if err := json.NewDecoder(req.Body).Decode(&inst); err != nil {
				http.Error(w, "bad registration body: "+err.Error(), http.StatusBadRequest)
				return
			}
			inst.Name = name
			if err := r.Register(inst); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if name == "" {
				http.Error(w, "instance name required", http.StatusBadRequest)
				return
			}
			r.Deregister(name)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// RegisterInstance registers inst against the metaserver at baseURL
// ("http://host:port", scheme optional) once.
func RegisterInstance(ctx context.Context, baseURL string, inst Instance) error {
	body, err := json.Marshal(inst)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		instanceURL(baseURL, inst.Name), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("discovery: register %q: %w", inst.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("discovery: register %q: %s", inst.Name, resp.Status)
	}
	return nil
}

// AnnounceInstance registers inst immediately and keeps re-registering every
// interval (interval <= 0 uses a third of DefaultInstanceTTL) until the
// returned stop function is called, which also best-effort deregisters. The
// first registration's error is returned; later heartbeat failures are
// retried on the next beat — the TTL covers the gap.
func AnnounceInstance(baseURL string, inst Instance, interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		interval = DefaultInstanceTTL / 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := RegisterInstance(ctx, baseURL, inst); err != nil {
		cancel()
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				_ = RegisterInstance(ctx, baseURL, inst)
			}
		}
	}()
	return func() {
		cancel()
		<-done
		dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer dcancel()
		req, err := http.NewRequestWithContext(dctx, http.MethodDelete,
			instanceURL(baseURL, inst.Name), nil)
		if err == nil {
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}, nil
}

// ListInstances fetches the live fleet members from the metaserver at
// baseURL.
func ListInstances(ctx context.Context, baseURL string) ([]Instance, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		instanceURL(baseURL, ""), nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("discovery: list instances: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("discovery: list instances: %s", resp.Status)
	}
	var body struct {
		Instances []Instance `json:"instances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("discovery: list instances: %w", err)
	}
	return body.Instances, nil
}

// DefaultInstanceName builds the conventional instance name daemons register
// under when -instance is not given: component-hostname-pid, unique per
// process and stable for its lifetime.
func DefaultInstanceName(component string) string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	return fmt.Sprintf("%s-%s-%d", component, host, os.Getpid())
}

func instanceURL(baseURL, name string) string {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return strings.TrimRight(baseURL, "/") + InstancePathPrefix + name
}
