package discovery

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"openmeta/internal/xmlschema"
)

func nextUpdate(t *testing.T, w *Watcher) Update {
	t.Helper()
	select {
	case u, ok := <-w.Updates():
		if !ok {
			t.Fatal("updates channel closed")
		}
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("no update within deadline")
	}
	panic("unreachable")
}

func TestWatcherDeliversInitialAndChangedVersions(t *testing.T) {
	repo := newRepo(t)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	client, err := NewClient(srv.URL, WithTTL(0)) // revalidate every poll
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(client, 10*time.Millisecond)
	defer w.Close()
	w.Add("Weather")

	first := nextUpdate(t, w)
	if first.Err != nil || first.Name != "Weather" {
		t.Fatalf("first update = %+v", first)
	}
	if first.Schema.Types[0].Elements[1].Name != "tempC" {
		t.Errorf("initial schema wrong: %+v", first.Schema.Types[0])
	}

	// Change the document on the repository.
	changed := strings.Replace(docWeather, "tempC", "tempF", 1)
	if err := repo.Put("Weather", changed); err != nil {
		t.Fatal(err)
	}
	second := nextUpdate(t, w)
	if second.Err != nil {
		t.Fatalf("second update err = %v", second.Err)
	}
	if second.Schema.Types[0].Elements[1].Name != "tempF" {
		t.Errorf("changed schema not delivered: %+v", second.Schema.Types[0])
	}

	// No further updates while nothing changes.
	select {
	case u := <-w.Updates():
		t.Fatalf("spurious update: %+v", u)
	case <-time.After(80 * time.Millisecond):
	}
}

func TestWatcherReportsFailuresOnce(t *testing.T) {
	repo := newRepo(t)
	srv := httptest.NewServer(repo.Handler())
	client, err := NewClient(srv.URL, WithTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(client, 10*time.Millisecond)
	defer w.Close()
	w.Add("Weather")
	if u := nextUpdate(t, w); u.Err != nil {
		t.Fatal(u.Err)
	}

	srv.Close() // repository goes away
	u := nextUpdate(t, w)
	if u.Err == nil {
		t.Fatalf("expected failure update, got %+v", u)
	}
	// Failure is not re-reported every poll.
	select {
	case u2 := <-w.Updates():
		t.Fatalf("failure re-reported: %+v", u2)
	case <-time.After(80 * time.Millisecond):
	}
}

func TestWatcherRecoveryRedelivers(t *testing.T) {
	repo := newRepo(t)
	flaky := &togglingSource{inner: StaticSource{"Weather": docWeather}}
	_ = repo
	w := NewWatcher(flaky, 10*time.Millisecond)
	defer w.Close()
	flaky.setFail(true)
	w.Add("Weather")
	if u := nextUpdate(t, w); u.Err == nil {
		t.Fatalf("expected failure first, got %+v", u)
	}
	flaky.setFail(false)
	u := nextUpdate(t, w)
	if u.Err != nil || u.Schema == nil {
		t.Fatalf("recovery update = %+v", u)
	}
}

func TestWatcherRemoveAndClose(t *testing.T) {
	src := StaticSource{"Weather": docWeather}
	w := NewWatcher(src, 10*time.Millisecond)
	w.Add("Weather")
	if u := nextUpdate(t, w); u.Err != nil {
		t.Fatal(u.Err)
	}
	w.Remove("Weather")
	select {
	case u := <-w.Updates():
		t.Fatalf("update after Remove: %+v", u)
	case <-time.After(60 * time.Millisecond):
	}
	w.Close()
	w.Close() // idempotent
	if _, ok := <-w.Updates(); ok {
		t.Error("updates channel not closed after Close")
	}
	if w.Dropped() != 0 {
		t.Errorf("dropped = %d", w.Dropped())
	}
}

type togglingSource struct {
	inner Source
	mu    sync.Mutex
	fail  bool
}

func (s *togglingSource) setFail(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fail = v
}

func (s *togglingSource) Schema(ctx context.Context, name string) (*xmlschema.Schema, error) {
	s.mu.Lock()
	fail := s.fail
	s.mu.Unlock()
	if fail {
		return nil, errors.New("toggled off")
	}
	return s.inner.Schema(ctx, name)
}

func (s *togglingSource) Describe() string { return "toggling" }
