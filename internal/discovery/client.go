package discovery

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/obsv"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
	"openmeta/internal/xmlschema"
)

// ErrStale reports a schema that exists in the client's cache but is older
// than the configured stale-serve window while the repository is
// unreachable: the client refuses to serve it, and the error wraps both
// ErrStale and the underlying fetch failure.
var ErrStale = errors.New("discovery: cached schema too stale to serve")

// clientMetrics bundles the discovery client's instruments.
type clientMetrics struct {
	fetches       *obsv.Counter   // HTTP requests issued
	cacheHits     *obsv.Counter   // served from cache within the TTL
	revalidations *obsv.Counter   // 304 Not Modified responses
	fetchErrors   *obsv.Counter   // failed fetches (network or HTTP status)
	staleServed   *obsv.Counter   // stale cache entries served while the repo was down
	fetchNS       *obsv.Histogram // HTTP round-trip latency
}

func newClientMetrics(r *obsv.Registry) clientMetrics {
	s := r.Scope("discovery")
	return clientMetrics{
		fetches:       s.Counter("fetches"),
		cacheHits:     s.Counter("cache_hits"),
		revalidations: s.Counter("revalidations"),
		fetchErrors:   s.Counter("fetch_errors"),
		staleServed:   s.Counter("stale_served"),
		fetchNS:       s.Histogram("fetch_ns"),
	}
}

// Package-level defaults created at init so the discovery.* metric names are
// present (zero-valued) from process start.
var (
	defaultClientMetrics = newClientMetrics(obsv.Default())

	watcherRefires = obsv.Default().Counter("discovery.watch.refires")
	watcherDropped = obsv.Default().Counter("discovery.watch.dropped")
)

// Source is one way of discovering the schema document for a format name.
// The paper's point about orthogonality is embodied here: any Source can
// feed the same binding pipeline.
type Source interface {
	// Schema retrieves and parses the schema document for name.
	Schema(ctx context.Context, name string) (*xmlschema.Schema, error)
	// Describe names the source for diagnostics ("http://host/schemas/",
	// "dir /etc/schemas", "compiled-in").
	Describe() string
}

// Client fetches schema documents from a remote repository over HTTP,
// caching them with ETag revalidation so repeated discovery of an unchanged
// format costs one conditional request (or nothing, within the TTL).
type Client struct {
	base    *url.URL
	http    *http.Client
	ttl     time.Duration
	timeout time.Duration
	retry   retry.Policy
	// staleFor is how far past the TTL a cached schema may still be served
	// when every fetch attempt fails (0 disables stale serving; negative
	// serves stale entries of any age).
	staleFor time.Duration
	now      func() time.Time
	obs      clientMetrics
	rec      *flight.Recorder

	mu    sync.Mutex
	cache map[string]*clientEntry
}

type clientEntry struct {
	schema  *xmlschema.Schema
	etag    string
	fetched time.Time
}

var _ Source = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the HTTP client (tests, timeouts).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithTTL sets how long a fetched document is reused without revalidation.
// Zero revalidates on every Fetch.
func WithTTL(ttl time.Duration) ClientOption {
	return func(c *Client) { c.ttl = ttl }
}

// WithTimeout bounds each HTTP request (default 10s). It applies to the
// default HTTP client or one supplied with WithHTTPClient, regardless of
// option order.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetry makes every fetch retry transport errors and 5xx responses
// under the given policy (exponential backoff with jitter; see
// retry.Policy). The default performs no retries, preserving one-request-
// per-fetch semantics. 4xx responses and unparseable documents are
// permanent and never retried.
func WithRetry(p retry.Policy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithStaleServe enables graceful degradation: when the repository is
// unreachable (every attempt failed) but a previously fetched schema is
// cached, the client serves the stale schema — counting it in
// discovery.stale_served — as long as the entry is no more than max past
// its TTL. A negative max serves stale entries regardless of age. Entries
// older than the window fail with an error wrapping ErrStale. This is the
// paper's §3.3 degraded mode, applied to the cache instead of compiled-in
// metadata.
func WithStaleServe(max time.Duration) ClientOption {
	return func(c *Client) { c.staleFor = max }
}

// withClock substitutes the time source in tests.
func withClock(now func() time.Time) ClientOption {
	return func(c *Client) { c.now = now }
}

// WithObserver directs the client's metrics (fetches, cache hits,
// revalidations, fetch latency) into r instead of the default registry.
func WithObserver(r *obsv.Registry) ClientOption {
	return func(c *Client) { c.obs = newClientMetrics(r) }
}

// WithFlightRecorder directs the client's flight events (fetch outcomes,
// stale serves) into r instead of the process-default recorder served at
// /debug/flight.
func WithFlightRecorder(r *flight.Recorder) ClientOption {
	return func(c *Client) {
		if r != nil {
			c.rec = r
		}
	}
}

// NewClient returns a client for the repository rooted at baseURL (e.g.
// "http://metadata.example.com"; the /schemas/ prefix is appended).
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("discovery: base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("discovery: base URL %q: unsupported scheme", baseURL)
	}
	c := &Client{
		base:  u,
		http:  &http.Client{},
		ttl:   time.Minute,
		retry: retry.Policy{MaxAttempts: 1},
		now:   time.Now,
		obs:   defaultClientMetrics,
		rec:   flight.Default(),
		cache: make(map[string]*clientEntry),
	}
	for _, opt := range opts {
		opt(c)
	}
	// Apply the request timeout without mutating a caller-owned client.
	if c.timeout == 0 && c.http.Timeout == 0 {
		c.timeout = 10 * time.Second
	}
	if c.timeout > 0 && c.http.Timeout != c.timeout {
		clone := *c.http
		clone.Timeout = c.timeout
		c.http = &clone
	}
	return c, nil
}

// Describe implements Source.
func (c *Client) Describe() string { return c.base.String() + SchemaPathPrefix }

// Schema implements Source with caching, ETag revalidation, optional
// retries (WithRetry) and optional stale-serve degradation (WithStaleServe).
func (c *Client) Schema(ctx context.Context, name string) (*xmlschema.Schema, error) {
	c.mu.Lock()
	entry := c.cache[name]
	if entry != nil && c.now().Sub(entry.fetched) < c.ttl {
		s := entry.schema
		c.mu.Unlock()
		c.obs.cacheHits.Add(1)
		return s, nil
	}
	var etag string
	if entry != nil {
		etag = entry.etag
	}
	c.mu.Unlock()

	// A sampled caller (trace.NewContext) sees the whole fetch — retries and
	// all — as one discovery.fetch child span; cache hits above record
	// nothing.
	sp := trace.FromContext(ctx).Child("discovery.fetch")
	var out *xmlschema.Schema
	err := retry.Do(ctx, c.retry, func(ctx context.Context) error {
		s, ferr := c.fetchOnce(ctx, name, etag, sp.Trace())
		if ferr != nil {
			return ferr
		}
		out = s
		return nil
	})
	sp.FinishDetail(name)
	if err == nil {
		c.rec.Record(flight.KindDiscovery, 0, "", 0, 0, "fetch "+name+" ok")
		return out, nil
	}
	c.rec.Record(flight.KindDiscovery, 0, "", 0, 0, "fetch "+name+" failed: "+err.Error())
	if errors.Is(err, ErrNotFound) {
		// Absence is an answer, not an outage; never mask it with a stale
		// copy (the repository may have deliberately unpublished it).
		return nil, err
	}
	return c.serveStale(name, err)
}

// serveStale is the degraded path after every fetch attempt failed: serve
// the cached schema if stale serving is enabled and the entry is within the
// window, otherwise surface the fetch error (wrapping ErrStale when a
// too-old entry exists).
func (c *Client) serveStale(name string, fetchErr error) (*xmlschema.Schema, error) {
	if c.staleFor == 0 {
		return nil, fetchErr
	}
	c.mu.Lock()
	entry := c.cache[name]
	if entry == nil {
		c.mu.Unlock()
		return nil, fetchErr
	}
	age := c.now().Sub(entry.fetched)
	s := entry.schema
	c.mu.Unlock()
	if c.staleFor > 0 && age > c.ttl+c.staleFor {
		return nil, fmt.Errorf("%w: %q cached %v ago (window %v): %w",
			ErrStale, name, age.Round(time.Millisecond), c.ttl+c.staleFor, fetchErr)
	}
	c.obs.staleServed.Add(1)
	c.rec.Record(flight.KindDiscovery, 0, "", 0, 0, "stale served: "+name)
	return s, nil
}

// fetchOnce performs one conditional GET for name. Errors marked
// retry.Permanent (4xx, unparseable documents) stop a retrying caller
// immediately; everything else (transport errors, 5xx) is retryable. tid is
// the caller's TraceID (zero when unsampled), stamped onto the fetch-latency
// histogram bucket as its exemplar.
func (c *Client) fetchOnce(ctx context.Context, name, etag string, tid trace.TraceID) (*xmlschema.Schema, error) {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + SchemaPathPrefix + url.PathEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("discovery: %w", err))
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	c.obs.fetches.Add(1)
	start := c.now()
	resp, err := c.http.Do(req)
	c.obs.fetchNS.ObserveExemplar(c.now().Sub(start).Nanoseconds(), tid)
	if err != nil {
		c.obs.fetchErrors.Add(1)
		return nil, fmt.Errorf("discovery: fetch %q: %w", name, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusNotModified:
		c.obs.revalidations.Add(1)
		c.mu.Lock()
		defer c.mu.Unlock()
		if entry := c.cache[name]; entry != nil {
			entry.fetched = c.now()
			return entry.schema, nil
		}
		return nil, retry.Permanent(fmt.Errorf("discovery: fetch %q: 304 without cache entry", name))
	case http.StatusNotFound:
		c.obs.fetchErrors.Add(1)
		return nil, retry.Permanent(fmt.Errorf("%w: %q at %s", ErrNotFound, name, c.Describe()))
	case http.StatusOK:
		// fall through
	default:
		c.obs.fetchErrors.Add(1)
		err := fmt.Errorf("discovery: fetch %q: HTTP %d", name, resp.StatusCode)
		if resp.StatusCode >= 500 {
			return nil, err // server-side trouble: worth retrying
		}
		return nil, retry.Permanent(err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("discovery: fetch %q: %w", name, err)
	}
	s, err := xmlschema.ParseString(string(body))
	if err != nil {
		// A document the parser rejects will be rejected again; don't
		// hammer the repository for it.
		return nil, retry.Permanent(fmt.Errorf("discovery: fetch %q: %w", name, err))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[name] = &clientEntry{
		schema:  s,
		etag:    resp.Header.Get("ETag"),
		fetched: c.now(),
	}
	return s, nil
}

// Publish validates a schema document locally and uploads it to the
// repository (PUT). This is how a newly created stream makes its metadata
// available (§4.4); the repository must have writes enabled.
func (c *Client) Publish(ctx context.Context, name, doc string) error {
	if _, err := xmlschema.ParseString(doc); err != nil {
		return fmt.Errorf("discovery: publish %q: %w", name, err)
	}
	resp, err := c.write(ctx, http.MethodPut, name, strings.NewReader(doc))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated, http.StatusNoContent, http.StatusOK:
		c.Invalidate(name)
		return nil
	case http.StatusForbidden:
		return fmt.Errorf("discovery: publish %q: repository is read-only", name)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("discovery: publish %q: HTTP %d: %s", name, resp.StatusCode,
			strings.TrimSpace(string(msg)))
	}
}

// Unpublish removes a schema document from the repository (DELETE).
func (c *Client) Unpublish(ctx context.Context, name string) error {
	resp, err := c.write(ctx, http.MethodDelete, name, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("discovery: unpublish %q: HTTP %d", name, resp.StatusCode)
	}
	c.Invalidate(name)
	return nil
}

func (c *Client) write(ctx context.Context, method, name string, body io.Reader) (*http.Response, error) {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + SchemaPathPrefix + url.PathEscape(name)
	req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("discovery: %s %q: %w", method, name, err)
	}
	return resp, nil
}

// ProbeReachable returns a readiness probe (shaped for obsv.RegisterProbe)
// reporting whether the repository answers HTTP at all. Any response — even
// an error status — proves reachability; only transport failures fail the
// probe.
func (c *Client) ProbeReachable() func() error {
	return func() error {
		u := *c.base
		u.Path = strings.TrimSuffix(u.Path, "/") + SchemaPathPrefix
		req, err := http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("repository unreachable: %w", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil
	}
}

// Invalidate drops the cached entry for name (all entries when name is "").
func (c *Client) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		c.cache = make(map[string]*clientEntry)
		return
	}
	delete(c.cache, name)
}

// FetchURL retrieves and parses a schema document from an arbitrary URL —
// the mode the paper sketches where "a Uniform Resource Locator can be used
// instead" of a compiled-in definition.
func FetchURL(ctx context.Context, h *http.Client, rawURL string) (*xmlschema.Schema, error) {
	if h == nil {
		h = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	resp, err := h.Do(req)
	if err != nil {
		return nil, fmt.Errorf("discovery: fetch %s: %w", rawURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("discovery: fetch %s: HTTP %d", rawURL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("discovery: fetch %s: %w", rawURL, err)
	}
	return xmlschema.ParseString(string(body))
}

// DirSource serves schemas from a local directory of <name>.xsd files — the
// discovery mode of the paper's prototype ("XML documents are processed by
// specifying their location in the local file system").
type DirSource struct {
	// Dir is the directory holding <name>.xsd documents.
	Dir string
}

var _ Source = DirSource{}

// Describe implements Source.
func (d DirSource) Describe() string { return "dir " + d.Dir }

// Schema implements Source.
func (d DirSource) Schema(_ context.Context, name string) (*xmlschema.Schema, error) {
	if strings.ContainsAny(name, `/\`) || name == "" || strings.Contains(name, "..") {
		return nil, fmt.Errorf("discovery: invalid schema name %q", name)
	}
	path := filepath.Join(d.Dir, name+".xsd")
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, name, d.Dir)
		}
		return nil, fmt.Errorf("discovery: %w", err)
	}
	return xmlschema.ParseString(string(raw))
}

// StaticSource serves compiled-in schema documents — the degraded-mode
// fallback of §3.3 ("compiled-in information as a fault-tolerant discovery
// method").
type StaticSource map[string]string

var _ Source = StaticSource{}

// Describe implements Source.
func (s StaticSource) Describe() string { return "compiled-in" }

// Schema implements Source.
func (s StaticSource) Schema(_ context.Context, name string) (*xmlschema.Schema, error) {
	doc, ok := s[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (compiled-in)", ErrNotFound, name)
	}
	return xmlschema.ParseString(doc)
}

// Resolver tries a chain of sources in order, so remote discovery can fall
// back to local files and finally to compiled-in metadata.
type Resolver struct {
	sources []Source
}

// NewResolver builds a resolver over the given sources, primary first.
func NewResolver(sources ...Source) *Resolver {
	return &Resolver{sources: sources}
}

// Schema returns the first source's schema for name, falling through on any
// error; if all fail, the errors are joined.
func (r *Resolver) Schema(ctx context.Context, name string) (*xmlschema.Schema, error) {
	if len(r.sources) == 0 {
		return nil, errors.New("discovery: resolver has no sources")
	}
	var errs []error
	for _, src := range r.sources {
		s, err := src.Schema(ctx, name)
		if err == nil {
			return s, nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", src.Describe(), err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("discovery: all sources failed for %q: %w", name, errors.Join(errs...))
}

// Describe implements Source, so resolvers nest.
func (r *Resolver) Describe() string {
	parts := make([]string, len(r.sources))
	for i, s := range r.sources {
		parts[i] = s.Describe()
	}
	return "chain(" + strings.Join(parts, " -> ") + ")"
}

var _ Source = (*Resolver)(nil)
