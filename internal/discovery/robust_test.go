package discovery

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"openmeta/internal/faultnet"
	"openmeta/internal/obsv"
	"openmeta/internal/retry"
)

// fastRetry is a policy with negligible sleeps for tests.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{
		MaxAttempts: attempts,
		Initial:     time.Microsecond,
		Max:         100 * time.Microsecond,
		Seed:        1,
	}
}

// flakyRepo serves the repository but fails the first failN requests with
// failCode.
type flakyRepo struct {
	repo     http.Handler
	requests atomic.Int64
	failN    int64
	failCode int
	// down, when set, fails every request regardless of failN.
	down atomic.Bool
}

func (f *flakyRepo) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.requests.Add(1)
	if f.down.Load() || n <= f.failN {
		http.Error(w, "synthetic outage", f.failCode)
		return
	}
	f.repo.ServeHTTP(w, r)
}

func TestClientRetriesOn5xx(t *testing.T) {
	before := obsv.Default().Snapshot()
	fr := &flakyRepo{repo: newRepo(t).Handler(), failN: 2, failCode: http.StatusServiceUnavailable}
	srv := httptest.NewServer(fr)
	defer srv.Close()

	c, err := NewClient(srv.URL, WithRetry(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Schema(context.Background(), "ASDOffEvent")
	if err != nil {
		t.Fatalf("Schema with retries = %v", err)
	}
	if len(s.Types) == 0 || s.Types[0].Name != "ASDOffEvent" {
		t.Fatalf("unexpected schema %+v", s)
	}
	if got := fr.requests.Load(); got != 3 {
		t.Errorf("repository saw %d requests, want 3 (two failures + success)", got)
	}
	d := obsv.Delta(before, obsv.Default().Snapshot())
	if d["retry.attempts"] < 3 {
		t.Errorf("retry.attempts delta = %d, want >= 3", d["retry.attempts"])
	}
	if d["retry.retries"] < 2 {
		t.Errorf("retry.retries delta = %d, want >= 2", d["retry.retries"])
	}
}

func TestClientRetriesExhaustedSurfaced(t *testing.T) {
	fr := &flakyRepo{repo: newRepo(t).Handler(), failCode: http.StatusInternalServerError}
	fr.down.Store(true)
	srv := httptest.NewServer(fr)
	defer srv.Close()

	c, err := NewClient(srv.URL, WithRetry(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Schema(context.Background(), "ASDOffEvent")
	if !errors.Is(err, retry.ErrExhausted) {
		t.Fatalf("err = %v, want wraps retry.ErrExhausted", err)
	}
	if got := fr.requests.Load(); got != 3 {
		t.Errorf("repository saw %d requests, want 3", got)
	}
}

func TestClientDoesNotRetryNotFound(t *testing.T) {
	fr := &flakyRepo{repo: newRepo(t).Handler()}
	srv := httptest.NewServer(fr)
	defer srv.Close()

	c, err := NewClient(srv.URL, WithRetry(fastRetry(5)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Schema(context.Background(), "NoSuchFormat")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := fr.requests.Load(); got != 1 {
		t.Errorf("repository saw %d requests for a 404, want 1 (permanent, no retries)", got)
	}
}

// TestClientStaleServe is the ISSUE's acceptance scenario: the repository
// returns only errors, and the client degrades to serving the cached schema
// with discovery.stale_served counting every degraded answer.
func TestClientStaleServe(t *testing.T) {
	fr := &flakyRepo{repo: newRepo(t).Handler(), failCode: http.StatusBadGateway}
	srv := httptest.NewServer(fr)
	defer srv.Close()

	reg := obsv.New()
	now := time.Unix(1000, 0)
	c, err := NewClient(srv.URL,
		WithTTL(time.Minute),
		WithRetry(fastRetry(2)),
		WithStaleServe(time.Hour),
		WithObserver(reg),
		withClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	// Healthy first fetch fills the cache.
	if _, err := c.Schema(context.Background(), "ASDOffEvent"); err != nil {
		t.Fatalf("initial Schema = %v", err)
	}
	// The repository goes down and the TTL expires.
	fr.down.Store(true)
	now = now.Add(5 * time.Minute)

	defaultBefore := obsv.Default().Snapshot()
	s, err := c.Schema(context.Background(), "ASDOffEvent")
	if err != nil {
		t.Fatalf("Schema during outage = %v, want stale-served schema", err)
	}
	if s.Types[0].Name != "ASDOffEvent" {
		t.Fatalf("stale schema = %+v", s)
	}
	snap := reg.Snapshot()
	if snap["discovery.stale_served"] != 1 {
		t.Errorf("discovery.stale_served = %d, want 1", snap["discovery.stale_served"])
	}
	if snap["discovery.fetch_errors"] < 1 {
		t.Errorf("discovery.fetch_errors = %d, want >= 1", snap["discovery.fetch_errors"])
	}
	// The acceptance criterion: retry.attempts and discovery.stale_served
	// are visible in the default registry openmeta.Stats() snapshots.
	defaultSnap := obsv.Default().Snapshot()
	if _, ok := defaultSnap["discovery.stale_served"]; !ok {
		t.Error("discovery.stale_served missing from the default registry snapshot")
	}
	if obsv.Delta(defaultBefore, defaultSnap)["retry.attempts"] < 2 {
		t.Error("retry.attempts did not advance in the default registry")
	}

	// Recovery: the repository comes back and the next fetch repopulates.
	fr.down.Store(false)
	fr.failN = 0
	now = now.Add(time.Minute)
	if _, err := c.Schema(context.Background(), "ASDOffEvent"); err != nil {
		t.Fatalf("Schema after recovery = %v", err)
	}
	if got := reg.Snapshot()["discovery.stale_served"]; got != 1 {
		t.Errorf("stale_served advanced to %d after recovery, want still 1", got)
	}
}

func TestClientStaleWindowExceeded(t *testing.T) {
	fr := &flakyRepo{repo: newRepo(t).Handler(), failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(fr)
	defer srv.Close()

	now := time.Unix(1000, 0)
	c, err := NewClient(srv.URL,
		WithTTL(time.Minute),
		WithStaleServe(10*time.Minute),
		WithObserver(obsv.New()),
		withClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schema(context.Background(), "ASDOffEvent"); err != nil {
		t.Fatal(err)
	}
	fr.down.Store(true)
	now = now.Add(12 * time.Minute) // past TTL + stale window
	_, err = c.Schema(context.Background(), "ASDOffEvent")
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want wraps ErrStale", err)
	}
}

func TestClientStaleServeUnlimitedWindow(t *testing.T) {
	fr := &flakyRepo{repo: newRepo(t).Handler(), failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(fr)
	defer srv.Close()

	now := time.Unix(1000, 0)
	reg := obsv.New()
	c, err := NewClient(srv.URL,
		WithTTL(time.Minute),
		WithStaleServe(-1),
		WithObserver(reg),
		withClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schema(context.Background(), "ASDOffEvent"); err != nil {
		t.Fatal(err)
	}
	fr.down.Store(true)
	now = now.Add(1000 * time.Hour)
	if _, err := c.Schema(context.Background(), "ASDOffEvent"); err != nil {
		t.Fatalf("unlimited stale window refused: %v", err)
	}
	if got := reg.Snapshot()["discovery.stale_served"]; got != 1 {
		t.Errorf("stale_served = %d, want 1", got)
	}
}

// TestClientFaultnetTransport drives the client through the fault-injection
// transport: a torn connection, then a synthetic 503, then a clean round
// trip — the retry layer should absorb all of it.
func TestClientFaultnetTransport(t *testing.T) {
	srv := httptest.NewServer(newRepo(t).Handler())
	defer srv.Close()

	sched := faultnet.NewSchedule(
		faultnet.Fault{Kind: faultnet.Reset},
		faultnet.Fault{Kind: faultnet.HTTPStatus, N: http.StatusServiceUnavailable},
	)
	h := &http.Client{Transport: &faultnet.Transport{Sched: sched}}
	c, err := NewClient(srv.URL,
		WithHTTPClient(h),
		WithRetry(fastRetry(4)),
		WithObserver(obsv.New()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Schema(context.Background(), "Weather")
	if err != nil {
		t.Fatalf("Schema through faultnet = %v", err)
	}
	if s.Types[0].Name != "Weather" {
		t.Fatalf("schema = %+v", s)
	}
	if sched.Remaining() != 0 {
		t.Errorf("%d scheduled faults never fired", sched.Remaining())
	}
}
