// Package discovery implements the remote metadata discovery architecture
// of the paper's §3.3 and §4.4: schema documents live in a repository
// reachable over HTTP ("newly created streams can make their metadata
// available as XML Schema documents on a publicly known intranet server"),
// clients retrieve and cache them at run time, and a fallback chain lets an
// application degrade to compiled-in metadata when the repository is
// unreachable — "a system that uses remote discovery as a primary discovery
// method and compiled-in information as a fault-tolerant discovery method".
package discovery

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"openmeta/internal/xmlschema"
)

// Repository is the server-side store of schema documents, keyed by format
// name. Documents are validated on insertion so clients never receive
// unparseable metadata. Repository is safe for concurrent use.
type Repository struct {
	mu       sync.RWMutex
	docs     map[string]repoEntry
	gens     map[string]Generator
	writable bool
}

type repoEntry struct {
	doc  string
	etag string
}

// Generator produces a schema document on demand, enabling the dynamic
// metadata generation of §4.4 (e.g. scoping the format by requestor
// attributes). The returned document is validated before it is served.
type Generator func(r *http.Request) (string, error)

// Repository errors.
var (
	ErrNotFound = errors.New("discovery: no such schema")
)

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		docs: make(map[string]repoEntry),
		gens: make(map[string]Generator),
	}
}

// Put validates and stores a schema document under the given name,
// replacing any previous version — this is how a format evolves without any
// subscriber recompiling.
func (repo *Repository) Put(name, doc string) error {
	if _, err := xmlschema.ParseString(doc); err != nil {
		return fmt.Errorf("discovery: put %q: %w", name, err)
	}
	repo.mu.Lock()
	defer repo.mu.Unlock()
	repo.docs[name] = repoEntry{doc: doc, etag: etagOf(doc)}
	return nil
}

// PutSchema stores an in-memory schema model, serializing it to XML.
func (repo *Repository) PutSchema(name string, s *xmlschema.Schema) error {
	return repo.Put(name, xmlschema.MarshalString(s))
}

// SetWritable controls whether the HTTP handler accepts PUT and DELETE —
// the mode in which "newly created streams can make their metadata
// available as XML Schema documents" (§4.4) by publishing it themselves.
// Repositories are read-only over HTTP by default.
func (repo *Repository) SetWritable(writable bool) {
	repo.mu.Lock()
	defer repo.mu.Unlock()
	repo.writable = writable
}

// SetGenerator installs a dynamic generator for the given name. Generators
// take precedence over stored documents.
func (repo *Repository) SetGenerator(name string, g Generator) {
	repo.mu.Lock()
	defer repo.mu.Unlock()
	repo.gens[name] = g
}

// Delete removes a stored document (generators are unaffected).
func (repo *Repository) Delete(name string) {
	repo.mu.Lock()
	defer repo.mu.Unlock()
	delete(repo.docs, name)
}

// Names lists stored and generated schema names in sorted order.
func (repo *Repository) Names() []string {
	repo.mu.RLock()
	defer repo.mu.RUnlock()
	seen := make(map[string]bool, len(repo.docs)+len(repo.gens))
	for n := range repo.docs {
		seen[n] = true
	}
	for n := range repo.gens {
		seen[n] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the stored document for name.
func (repo *Repository) Get(name string) (doc, etag string, err error) {
	repo.mu.RLock()
	defer repo.mu.RUnlock()
	e, ok := repo.docs[name]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.doc, e.etag, nil
}

// SchemaPathPrefix is the URL prefix under which documents are served.
const SchemaPathPrefix = "/schemas/"

// Handler returns the HTTP handler serving the repository:
//
//	GET /schemas/          -> newline-separated schema names
//	GET /schemas/<name>    -> the schema document (ETag / If-None-Match)
func (repo *Repository) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(SchemaPathPrefix, repo.serveSchema)
	return mux
}

func (repo *Repository) serveSchema(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		// read path below
	case http.MethodPut, http.MethodDelete:
		repo.serveWrite(w, r)
		return
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, SchemaPathPrefix)
	if name == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range repo.Names() {
			fmt.Fprintln(w, n)
		}
		return
	}
	name = strings.TrimSuffix(name, ".xsd")

	repo.mu.RLock()
	gen := repo.gens[name]
	entry, stored := repo.docs[name]
	repo.mu.RUnlock()

	if gen != nil {
		doc, err := gen(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if _, err := xmlschema.ParseString(doc); err != nil {
			http.Error(w, "generated document invalid: "+err.Error(), http.StatusInternalServerError)
			return
		}
		entry = repoEntry{doc: doc, etag: etagOf(doc)}
		stored = true
	}
	if !stored {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Header().Set("ETag", entry.etag)
	if match := r.Header.Get("If-None-Match"); match != "" && match == entry.etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(entry.doc)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = fmt.Fprint(w, entry.doc)
}

// serveWrite handles PUT (publish/replace a document) and DELETE.
func (repo *Repository) serveWrite(w http.ResponseWriter, r *http.Request) {
	repo.mu.RLock()
	writable := repo.writable
	repo.mu.RUnlock()
	if !writable {
		http.Error(w, "repository is read-only", http.StatusForbidden)
		return
	}
	name := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, SchemaPathPrefix), ".xsd")
	if name == "" {
		http.Error(w, "schema name required", http.StatusBadRequest)
		return
	}
	if r.Method == http.MethodDelete {
		repo.Delete(name)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_, _, getErr := repo.Get(name)
	existed := getErr == nil
	if err := repo.Put(name, string(body)); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if existed {
		w.WriteHeader(http.StatusNoContent)
	} else {
		w.WriteHeader(http.StatusCreated)
	}
}

func etagOf(doc string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(doc))
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}
