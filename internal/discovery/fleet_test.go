package discovery

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func TestInstanceRegistryTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := NewInstanceRegistry(30 * time.Second)
	reg.now = func() time.Time { return now }

	if err := reg.Register(Instance{Name: "a", DebugAddr: "127.0.0.1:1", Component: "eventbusd"}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(20 * time.Second)
	if err := reg.Register(Instance{Name: "b", DebugAddr: "127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.List(); len(got) != 2 {
		t.Fatalf("both live: got %v", got)
	}
	// 15s later, a (35s old) has expired, b (15s old) has not.
	now = now.Add(15 * time.Second)
	got := reg.List()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("after TTL: got %v, want only b", got)
	}
	// a re-registering resurrects it.
	if err := reg.Register(Instance{Name: "a", DebugAddr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.List(); len(got) != 2 {
		t.Fatalf("after refresh: got %v", got)
	}

	if err := reg.Register(Instance{Name: "", DebugAddr: "x"}); err == nil {
		t.Fatal("nameless registration must fail")
	}
	if err := reg.Register(Instance{Name: "x"}); err == nil {
		t.Fatal("addrless registration must fail")
	}
}

func TestInstanceRegistryHTTPRoundTrip(t *testing.T) {
	reg := NewInstanceRegistry(0)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	ctx := context.Background()

	if err := RegisterInstance(ctx, srv.URL, Instance{
		Name: "broker-1", Component: "eventbusd", DebugAddr: "127.0.0.1:8781",
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterInstance(ctx, srv.URL, Instance{
		Name: "pub-1", Component: "ompub", DebugAddr: "127.0.0.1:8782",
	}); err != nil {
		t.Fatal(err)
	}
	got, err := ListInstances(ctx, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "broker-1" || got[1].Name != "pub-1" {
		t.Fatalf("list = %+v", got)
	}
	if got[0].Component != "eventbusd" || got[0].DebugAddr != "127.0.0.1:8781" {
		t.Fatalf("broker entry = %+v", got[0])
	}
	if got[0].LastSeen.IsZero() {
		t.Fatal("LastSeen not stamped by the server")
	}

	// Bare host:port base URLs work too (daemon flag convenience).
	if _, err := ListInstances(ctx, srv.Listener.Addr().String()); err != nil {
		t.Fatalf("bare-host list: %v", err)
	}
}

func TestAnnounceInstanceHeartbeatAndDeregister(t *testing.T) {
	reg := NewInstanceRegistry(0)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	stop, err := AnnounceInstance(srv.URL, Instance{
		Name: "sub-1", Component: "omsub", DebugAddr: "127.0.0.1:8783",
	}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	first := reg.List()
	if len(first) != 1 {
		t.Fatalf("not registered: %v", first)
	}
	// Wait for at least one heartbeat to refresh LastSeen.
	deadline := time.Now().Add(2 * time.Second)
	for {
		cur := reg.List()
		if len(cur) == 1 && cur[0].LastSeen.After(first[0].LastSeen) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never refreshed LastSeen")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	if got := reg.List(); len(got) != 0 {
		t.Fatalf("stop must deregister: %v", got)
	}
}

func TestAnnounceInstanceFirstRegistrationError(t *testing.T) {
	if _, err := AnnounceInstance("127.0.0.1:1", Instance{Name: "x", DebugAddr: "y"}, time.Second); err == nil {
		t.Fatal("unreachable metaserver must fail the initial announce")
	}
}
