package discovery

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const docB = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

const docWeather = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="Weather">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="tempC" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>`

func newRepo(t *testing.T) *Repository {
	t.Helper()
	repo := NewRepository()
	if err := repo.Put("ASDOffEvent", docB); err != nil {
		t.Fatal(err)
	}
	if err := repo.Put("Weather", docWeather); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestRepositoryPutValidates(t *testing.T) {
	repo := NewRepository()
	if err := repo.Put("Bad", "<garbage/>"); err == nil {
		t.Error("invalid document accepted")
	}
	if err := repo.Put("Good", docB); err != nil {
		t.Fatal(err)
	}
	doc, etag, err := repo.Get("Good")
	if err != nil || doc != docB || etag == "" {
		t.Errorf("Get = %q, %q, %v", doc[:20], etag, err)
	}
	if _, _, err := repo.Get("Missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(Missing) err = %v", err)
	}
}

func TestRepositoryNamesAndDelete(t *testing.T) {
	repo := newRepo(t)
	repo.SetGenerator("Dyn", func(*http.Request) (string, error) { return docB, nil })
	names := repo.Names()
	want := []string{"ASDOffEvent", "Dyn", "Weather"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("Names = %v, want %v", names, want)
	}
	repo.Delete("Weather")
	if len(repo.Names()) != 2 {
		t.Errorf("after delete: %v", repo.Names())
	}
}

func TestHTTPServeAndClient(t *testing.T) {
	repo := newRepo(t)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()

	c, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Schema(context.Background(), "ASDOffEvent")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Name != "ASDOffEvent" || len(s.Types[0].Elements) != 3 {
		t.Errorf("schema = %+v", s.Types[0])
	}
	if _, err := c.Schema(context.Background(), "Nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing schema err = %v", err)
	}

	// Index listing.
	resp, err := http.Get(srv.URL + SchemaPathPrefix)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Weather") {
		t.Errorf("index = %q", body)
	}

	// Non-GET rejected.
	resp, err = http.Post(srv.URL+SchemaPathPrefix+"X", "text/xml", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}

	// .xsd suffix also resolves.
	resp, err = http.Get(srv.URL + SchemaPathPrefix + "Weather.xsd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET Weather.xsd = %d", resp.StatusCode)
	}
}

func TestClientCachingAndRevalidation(t *testing.T) {
	repo := newRepo(t)
	var hits atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		repo.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(counting)
	defer srv.Close()

	now := time.Unix(1000, 0)
	c, err := NewClient(srv.URL, WithTTL(time.Minute), withClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Schema(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schema(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d, want 1 (TTL cache)", hits.Load())
	}

	// TTL expiry triggers a conditional request answered 304.
	now = now.Add(2 * time.Minute)
	if _, err := c.Schema(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Errorf("hits = %d, want 2", hits.Load())
	}

	// Changing the document serves new content after expiry.
	changed := strings.Replace(docWeather, "tempC", "tempF", 1)
	if err := repo.Put("Weather", changed); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	s, err := c.Schema(ctx, "Weather")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Elements[1].Name != "tempF" {
		t.Errorf("stale schema after update: %+v", s.Types[0].Elements[1])
	}

	// Invalidate forces a refetch.
	c.Invalidate("Weather")
	if _, err := c.Schema(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("")
	if _, err := c.Schema(ctx, "Weather"); err != nil {
		t.Fatal(err)
	}
}

func TestClientRejectsBadBaseURL(t *testing.T) {
	if _, err := NewClient("ftp://nope"); err == nil {
		t.Error("ftp scheme accepted")
	}
	if _, err := NewClient("://"); err == nil {
		t.Error("malformed URL accepted")
	}
}

func TestClientRejectsInvalidDocument(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<not-a-schema/>")
	}))
	defer srv.Close()
	c, _ := NewClient(srv.URL)
	if _, err := c.Schema(context.Background(), "X"); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestGenerator(t *testing.T) {
	repo := NewRepository()
	repo.SetGenerator("PerCaller", func(r *http.Request) (string, error) {
		// Scope the format by a request attribute (§4.4 format-scoping).
		if r.URL.Query().Get("full") == "1" {
			return docB, nil
		}
		return docWeather, nil
	})
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()

	get := func(q string) string {
		resp, err := http.Get(srv.URL + SchemaPathPrefix + "PerCaller" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("?full=1"), "ASDOffEvent") {
		t.Error("full variant wrong")
	}
	if !strings.Contains(get(""), "Weather") {
		t.Error("restricted variant wrong")
	}

	repo.SetGenerator("Broken", func(*http.Request) (string, error) {
		return "", errors.New("boom")
	})
	resp, err := http.Get(srv.URL + SchemaPathPrefix + "Broken")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("broken generator status = %d", resp.StatusCode)
	}

	repo.SetGenerator("Invalid", func(*http.Request) (string, error) {
		return "<junk/>", nil
	})
	resp, err = http.Get(srv.URL + SchemaPathPrefix + "Invalid")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("invalid generator status = %d", resp.StatusCode)
	}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Weather.xsd"), []byte(docWeather), 0o644); err != nil {
		t.Fatal(err)
	}
	src := DirSource{Dir: dir}
	s, err := src.Schema(context.Background(), "Weather")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Name != "Weather" {
		t.Errorf("schema = %v", s.Types[0].Name)
	}
	if _, err := src.Schema(context.Background(), "Missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	for _, bad := range []string{"", "../etc/passwd", "a/b", `a\b`} {
		if _, err := src.Schema(context.Background(), bad); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
}

func TestStaticSource(t *testing.T) {
	src := StaticSource{"Weather": docWeather}
	if _, err := src.Schema(context.Background(), "Weather"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Schema(context.Background(), "X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestResolverFallback(t *testing.T) {
	// Primary remote source is down; the compiled-in fallback must serve —
	// the degraded mode of §3.3.
	dead, err := NewClient("http://127.0.0.1:1",
		WithHTTPClient(&http.Client{Timeout: 200 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	res := NewResolver(dead, StaticSource{"Weather": docWeather})
	s, err := res.Schema(context.Background(), "Weather")
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if s.Types[0].Name != "Weather" {
		t.Errorf("schema = %v", s.Types[0].Name)
	}

	// All sources failing joins the errors.
	res2 := NewResolver(dead, StaticSource{})
	if _, err := res2.Schema(context.Background(), "Weather"); err == nil {
		t.Error("want error when all sources fail")
	} else if !strings.Contains(err.Error(), "compiled-in") {
		t.Errorf("error should mention each source: %v", err)
	}

	if _, err := NewResolver().Schema(context.Background(), "X"); err == nil {
		t.Error("empty resolver: want error")
	}

	if !strings.HasPrefix(res.Describe(), "chain(") {
		t.Errorf("Describe = %q", res.Describe())
	}
}

func TestResolverPrefersPrimary(t *testing.T) {
	repo := newRepo(t)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	c, _ := NewClient(srv.URL)
	stale := StaticSource{"Weather": docB} // wrong on purpose
	res := NewResolver(c, stale)
	s, err := res.Schema(context.Background(), "Weather")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Name != "Weather" {
		t.Error("resolver did not prefer the primary source")
	}
}

func TestFetchURL(t *testing.T) {
	repo := newRepo(t)
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	s, err := FetchURL(context.Background(), nil, srv.URL+SchemaPathPrefix+"ASDOffEvent")
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Name != "ASDOffEvent" {
		t.Errorf("schema = %v", s.Types[0].Name)
	}
	if _, err := FetchURL(context.Background(), nil, srv.URL+"/nope"); err == nil {
		t.Error("404 accepted")
	}
	if _, err := FetchURL(context.Background(), nil, "http://127.0.0.1:1/x"); err == nil {
		t.Error("dead host accepted")
	}
}
