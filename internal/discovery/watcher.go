package discovery

import (
	"context"
	"hash/fnv"
	"sync"
	"time"

	"openmeta/internal/xmlschema"
)

// Update is one change notification from a Watcher: either a new schema
// version for a watched name, or a (de-duplicated) discovery failure.
type Update struct {
	// Name is the watched schema name.
	Name string
	// Schema is the new version (nil when Err is set).
	Schema *xmlschema.Schema
	// Err reports a discovery failure; delivered once per failure episode,
	// not once per poll.
	Err error
}

// Watcher polls a discovery source and reports schema changes, implementing
// the paper's §7 plan to "explore dynamic incorporation of new message
// formats into applications at run-time": an application drains Updates and
// re-registers formats as their metadata evolves, without restarting.
type Watcher struct {
	src      Source
	interval time.Duration
	updates  chan Update

	mu      sync.Mutex
	names   map[string]*watchState
	dropped int

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

type watchState struct {
	hash    uint64
	failing bool
}

// NewWatcher starts a watcher polling src every interval. Close it when
// done.
func NewWatcher(src Source, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = time.Minute
	}
	w := &Watcher{
		src:      src,
		interval: interval,
		updates:  make(chan Update, 16),
		names:    make(map[string]*watchState),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

// Updates delivers change notifications. The channel is buffered; if the
// consumer falls behind, newer updates are dropped (see Dropped) rather
// than stalling the poller — the next poll re-detects any missed change.
func (w *Watcher) Updates() <-chan Update { return w.updates }

// Dropped reports how many updates were discarded because the consumer was
// not draining Updates.
func (w *Watcher) Dropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Add starts watching a schema name. The current version (or the current
// failure) is delivered as the first update at the next poll.
func (w *Watcher) Add(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.names[name]; !ok {
		w.names[name] = &watchState{}
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// Remove stops watching a name.
func (w *Watcher) Remove(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.names, name)
}

// Close stops the poller and waits for it to exit. Updates is closed.
func (w *Watcher) Close() {
	select {
	case <-w.stop:
		return
	default:
	}
	close(w.stop)
	<-w.done
}

func (w *Watcher) loop() {
	defer close(w.done)
	defer close(w.updates)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	w.pollAll() // immediate first poll so Add before first tick is prompt
	for {
		select {
		case <-ticker.C:
			w.pollAll()
		case <-w.kick:
			w.pollAll()
		case <-w.stop:
			return
		}
	}
}

func (w *Watcher) pollAll() {
	w.mu.Lock()
	names := make([]string, 0, len(w.names))
	for n := range w.names {
		names = append(names, n)
	}
	w.mu.Unlock()
	for _, name := range names {
		w.pollOne(name)
	}
}

func (w *Watcher) pollOne(name string) {
	ctx, cancel := context.WithTimeout(context.Background(), w.interval)
	s, err := w.src.Schema(ctx, name)
	cancel()

	w.mu.Lock()
	st, ok := w.names[name]
	if !ok { // removed while polling
		w.mu.Unlock()
		return
	}
	var send *Update
	if err != nil {
		if !st.failing {
			st.failing = true
			send = &Update{Name: name, Err: err}
		}
	} else {
		h := schemaHash(s)
		if st.failing || h != st.hash {
			st.failing = false
			st.hash = h
			send = &Update{Name: name, Schema: s}
		}
	}
	w.mu.Unlock()

	if send == nil {
		return
	}
	select {
	case w.updates <- *send:
		// A refire is one delivered change/failure notification — the
		// paper's "dynamic incorporation of new message formats" firing.
		watcherRefires.Add(1)
	default:
		watcherDropped.Add(1)
		w.mu.Lock()
		w.dropped++
		w.mu.Unlock()
	}
}

func schemaHash(s *xmlschema.Schema) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(xmlschema.MarshalString(s)))
	return h.Sum64()
}
