package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

// fastPolicy keeps test sleeps negligible.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		Initial:     time.Microsecond,
		Max:         50 * time.Microsecond,
		Multiplier:  2,
		Jitter:      0.5,
		Seed:        1,
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want nil after 1", err, calls)
	}
}

// A zero-value Policy has no Seed, so Do must seed its own jitter source;
// this used to nil-dereference the rng on the first retry sleep.
func TestDoZeroPolicyRetries(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Initial: time.Microsecond, Max: 10 * time.Microsecond}, func(context.Context) error {
		calls++
		if calls < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("Do = %v after %d calls, want nil after 2", err, calls)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	before := obsv.Default().Snapshot()
	calls := 0
	base := errors.New("still down")
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return base
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, base) {
		t.Fatalf("err = %v, want wraps ErrExhausted and the last error", err)
	}
	d := obsv.Delta(before, obsv.Default().Snapshot())
	if d["retry.attempts"] < 4 {
		t.Errorf("retry.attempts delta = %d, want >= 4", d["retry.attempts"])
	}
	if d["retry.giveups"] < 1 {
		t.Errorf("retry.giveups delta = %d, want >= 1", d["retry.giveups"])
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	base := errors.New("schema is garbage")
	err := Do(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, base) || errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want the permanent error without ErrExhausted", err)
	}
	if IsPermanent(err) {
		t.Errorf("returned error should be unwrapped from the permanent marker")
	}
	if !IsPermanent(Permanent(base)) {
		t.Errorf("IsPermanent(Permanent(err)) = false")
	}
	if Permanent(nil) != nil {
		t.Errorf("Permanent(nil) != nil")
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, fastPolicy(), func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancel)", calls)
	}
}

func TestAttemptTimeout(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 2
	p.AttemptTimeout = 5 * time.Millisecond
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (deadline per attempt, not per call)", calls)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrExhausted wrapping DeadlineExceeded", err)
	}
}

func TestBudgetSuppressesRetries(t *testing.T) {
	b := NewBudget(1, 0) // one token, never refills
	p := fastPolicy()
	p.Budget = b
	calls := 0
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return errors.New("down")
	})
	// First attempt free, one budgeted retry, then the empty budget stops it.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted wrapping ErrBudgetExhausted", err)
	}
}

func TestBudgetRefills(t *testing.T) {
	b := NewBudget(2, 1000)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.last = now
	if !b.withdraw() || !b.withdraw() {
		t.Fatal("fresh budget should allow burst withdrawals")
	}
	if b.withdraw() {
		t.Fatal("empty budget should refuse")
	}
	now = now.Add(10 * time.Millisecond) // 10 tokens at 1000/s, capped at burst 2
	if !b.withdraw() {
		t.Fatal("refilled budget should allow a withdrawal")
	}
	if b.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", b.Remaining())
	}
}

func TestNotifyObservesRetries(t *testing.T) {
	p := fastPolicy()
	var seen []time.Duration
	p.Notify = func(err error, sleep time.Duration) { seen = append(seen, sleep) }
	_ = Do(context.Background(), p, func(context.Context) error { return errors.New("x") })
	if len(seen) != 3 {
		t.Fatalf("Notify called %d times, want 3 (MaxAttempts-1)", len(seen))
	}
}

// TestBackoffScheduleMonotoneProperty is the ISSUE's property test: for any
// seed, the jittered schedule is monotone non-decreasing up to the point
// where the un-jittered base reaches the cap, provided Multiplier >= 1 +
// Jitter (the documented requirement, satisfied by the defaults).
func TestBackoffScheduleMonotoneProperty(t *testing.T) {
	policies := []Policy{
		{}, // all defaults
		{Initial: time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5},
		{Initial: 10 * time.Millisecond, Max: 2 * time.Second, Multiplier: 3, Jitter: 1},
		{Initial: time.Millisecond, Max: 100 * time.Millisecond, Multiplier: 1.5, Jitter: 0.25},
	}
	seedRng := rand.New(rand.NewSource(42))
	for pi, p := range policies {
		norm := p.withDefaults()
		// First retry index whose base has saturated at the cap.
		capAt := 0
		for norm.Backoff(capAt) < norm.Max {
			capAt++
		}
		for trial := 0; trial < 200; trial++ {
			seed := seedRng.Int63()
			if seed == 0 {
				seed = 1
			}
			sched := p.Schedule(seed, capAt+4)
			for i := 1; i < capAt && i < len(sched); i++ {
				if sched[i] < sched[i-1] {
					t.Fatalf("policy %d seed %d: schedule decreases below cap at %d: %v < %v",
						pi, seed, i, sched[i], sched[i-1])
				}
			}
			// Jittered sleeps never exceed cap*(1+Jitter).
			limit := time.Duration(float64(norm.Max) * (1 + norm.Jitter))
			for i, s := range sched {
				if s > limit {
					t.Fatalf("policy %d seed %d: sleep %d = %v exceeds jittered cap %v", pi, seed, i, s, limit)
				}
			}
		}
	}
}

// TestScheduleDeterministic: same seed, same schedule; different seeds,
// (almost surely) different schedules.
func TestScheduleDeterministic(t *testing.T) {
	p := Policy{}
	a := p.Schedule(7, 10)
	b := p.Schedule(7, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := p.Schedule(8, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBackoffSaturatesAtMax(t *testing.T) {
	p := Policy{Initial: time.Millisecond, Max: 100 * time.Millisecond}
	for i := 0; i < 64; i++ {
		if b := p.Backoff(i); b > 100*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v exceeds cap", i, b)
		}
	}
	if p.Backoff(1000) != 100*time.Millisecond {
		t.Fatalf("Backoff(1000) = %v, want the cap (overflow must clamp)", p.Backoff(1000))
	}
}

func ExampleDo() {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 3, Initial: time.Microsecond, Seed: 1},
		func(context.Context) error {
			calls++
			if calls < 2 {
				return errors.New("transient")
			}
			return nil
		})
	fmt.Println(err, calls)
	// Output: <nil> 2
}
