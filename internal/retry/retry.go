// Package retry is a small context-aware retry engine for the transport
// layers: exponential backoff with deterministic jitter, per-attempt
// timeouts, optional cross-call retry budgets, and a Permanent escape hatch
// for errors no amount of retrying can fix.
//
// The paper's discovery and event-backbone designs both assume metadata and
// records travel over real networks ("a Uniform Resource Locator can be
// used instead" of compiled-in metadata, §3.3); this package is where the
// repo's transports acquire the corresponding tolerance for transient
// failure. Every attempt and every give-up is counted in the default obsv
// registry (retry.attempts, retry.retries, retry.giveups) so the cost of a
// flaky link shows up in openmeta.Stats().
package retry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/obsv"
)

// ErrExhausted reports that every attempt a Policy allows failed. Errors
// returned by Do wrap both ErrExhausted and the last attempt's error, so
// callers can branch on either.
var ErrExhausted = errors.New("retry: retries exhausted")

// ErrBudgetExhausted reports a retry suppressed because the shared Budget
// had no tokens left; it is wrapped alongside the last attempt error.
var ErrBudgetExhausted = errors.New("retry: retry budget exhausted")

// Package-level instruments on the default registry, created at init so the
// retry.* metric names exist (zero-valued) in openmeta.Stats() from process
// start.
var (
	attemptsCounter = obsv.Default().Counter("retry.attempts")
	retriesCounter  = obsv.Default().Counter("retry.retries")
	giveupsCounter  = obsv.Default().Counter("retry.giveups")
	sleepNS         = obsv.Default().Histogram("retry.sleep_ns")
)

// Policy describes how Do retries an operation. The zero value is usable
// and means "four attempts, 50ms initial backoff doubling to a 5s cap, half
// a backoff of jitter"; set MaxAttempts to 1 to disable retries entirely.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 4; 1 disables retries; negative is treated as 1).
	MaxAttempts int
	// Initial is the backoff before the first retry (default 50ms).
	Initial time.Duration
	// Max caps the un-jittered backoff (default 5s).
	Max time.Duration
	// Multiplier grows the backoff between retries (default 2). For the
	// jittered schedule to stay monotone non-decreasing below the cap,
	// keep Multiplier >= 1+Jitter (the defaults satisfy this).
	Multiplier float64
	// Jitter is the fraction of the base backoff added as randomness: each
	// sleep is drawn uniformly from [base, base*(1+Jitter)] (default 0.5).
	// Zero Jitter with a non-zero Multiplier still jitters by the default;
	// set Jitter negative for a fully deterministic schedule.
	Jitter float64
	// AttemptTimeout bounds each attempt with a child context deadline
	// (0 = attempts share the caller's context deadline only).
	AttemptTimeout time.Duration
	// Budget, when non-nil, is consulted before every retry; exhausted
	// budgets convert retryable failures into immediate give-ups so retry
	// storms cannot amplify an outage.
	Budget *Budget
	// Seed makes the jittered schedule deterministic (tests). Zero seeds
	// from the global random source.
	Seed int64
	// Notify, when non-nil, observes each scheduled retry: the error that
	// caused it and the sleep about to be taken.
	Notify func(err error, sleep time.Duration)
}

// withDefaults returns p with zero fields replaced by the documented
// defaults.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Initial <= 0 {
		p.Initial = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.5
	}
	return p
}

// Backoff returns the un-jittered base backoff before retry number retry
// (0-based): min(Initial * Multiplier^retry, Max). The base schedule is
// monotone non-decreasing and saturates at Max.
func (p Policy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	if retry < 0 {
		retry = 0
	}
	b := float64(p.Initial) * math.Pow(p.Multiplier, float64(retry))
	if b > float64(p.Max) || math.IsInf(b, 1) || math.IsNaN(b) {
		return p.Max
	}
	return time.Duration(b)
}

// Schedule returns the first n jittered sleeps Do would take, derived
// deterministically from seed. Tests use it to assert schedule properties
// without sleeping.
func (p Policy) Schedule(seed int64, n int) []time.Duration {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.jittered(i, rng)
	}
	return out
}

// jittered draws the sleep before retry i from [base, base*(1+Jitter)].
func (p Policy) jittered(retry int, rng *rand.Rand) time.Duration {
	base := p.Backoff(retry)
	if p.Jitter <= 0 {
		return base
	}
	span := float64(base) * p.Jitter
	return base + time.Duration(rng.Float64()*span)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns it unwrapped-able
// via errors.Is/As as usual. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs op until it succeeds, is marked Permanent, exhausts the policy's
// attempts or budget, or ctx is done. Each attempt receives a child context
// carrying the policy's per-attempt timeout. The returned error wraps
// ErrExhausted (plus the final attempt's error) on give-up, or the
// permanent/context error directly.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return ctxError(err, lastErr)
		}
		attemptsCounter.Add(1)
		lastErr = runAttempt(ctx, p.AttemptTimeout, op)
		if lastErr == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(lastErr, &pe) {
			return pe.err
		}
		if errors.Is(lastErr, context.Canceled) && ctx.Err() != nil {
			return ctxError(ctx.Err(), lastErr)
		}
		if attempt+1 >= p.MaxAttempts {
			giveupsCounter.Add(1)
			flight.Default().Record(flight.KindRetryGiveUp, 0, "", 0, int64(attempt+1), lastErr.Error())
			return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempt+1, lastErr)
		}
		if p.Budget != nil && !p.Budget.withdraw() {
			giveupsCounter.Add(1)
			flight.Default().Record(flight.KindRetryGiveUp, 0, "", 0, int64(attempt+1), "budget exhausted: "+lastErr.Error())
			return fmt.Errorf("%w: %w: %w", ErrExhausted, ErrBudgetExhausted, lastErr)
		}
		sleep := p.jittered(attempt, rng)
		if p.Notify != nil {
			p.Notify(lastErr, sleep)
		}
		retriesCounter.Add(1)
		sleepNS.Observe(sleep.Nanoseconds())
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctxError(ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}

// runAttempt invokes op under the per-attempt timeout, if any.
func runAttempt(ctx context.Context, timeout time.Duration, op func(ctx context.Context) error) error {
	if timeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	return op(actx)
}

// ctxError folds the context error together with the last attempt error so
// neither diagnostic is lost.
func ctxError(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return fmt.Errorf("%w (last attempt: %w)", ctxErr, lastErr)
}

// Budget is a token bucket shared between many Do calls: each retry (not
// first attempts) withdraws one token, and tokens refill at a steady rate.
// Under a hard outage the budget drains and callers fail fast instead of
// multiplying load on the struggling peer. The zero value is unusable; use
// NewBudget. Budget is safe for concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time
}

// NewBudget returns a budget holding at most burst tokens, refilling at
// perSecond tokens per second. A nil *Budget (no budget) never suppresses a
// retry.
func NewBudget(burst int, perSecond float64) *Budget {
	if burst < 1 {
		burst = 1
	}
	b := &Budget{tokens: float64(burst), burst: float64(burst), rate: perSecond, now: time.Now}
	b.last = b.now()
	return b
}

// withdraw takes one token, reporting false when the bucket is empty.
func (b *Budget) withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Remaining reports the whole tokens currently available (diagnostics).
func (b *Budget) Remaining() int {
	if b == nil {
		return math.MaxInt
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	return int(b.tokens)
}
