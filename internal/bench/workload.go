// Package bench is the harness that regenerates the paper's evaluation:
// workload generators, parameter sweeps, timing helpers and table
// formatting shared by cmd/benchtab (which prints the paper's tables) and
// the repository's testing.B benchmarks.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// Workload is a format plus a generator of records matching it, the unit
// every experiment sweeps over.
type Workload struct {
	// Name identifies the workload in tables ("mixed-1KB").
	Name string
	// Format is the registered message format.
	Format *pbio.Format
	// Record is a representative record for the format.
	Record pbio.Record
}

// MixedSpec parameterizes a synthetic record format with the field mix the
// paper's application domain uses: identifiers (strings), counters
// (integers) and measurements (doubles), plus one dynamic array.
type MixedSpec struct {
	Name    string
	Ints    int // 4-byte integers
	Doubles int
	Strings int
	StrLen  int
	// ArrayLen is the length of the dynamic double array (0 omits it).
	ArrayLen int
}

// Build registers the format described by the spec and produces a matching
// record with deterministic contents.
func (s MixedSpec) Build(ctx *pbio.Context, seed int64) (Workload, error) {
	specs := make([]pbio.FieldSpec, 0, s.Ints+s.Doubles+s.Strings+2)
	for i := 0; i < s.Ints; i++ {
		specs = append(specs, pbio.FieldSpec{
			Name: fmt.Sprintf("i%d", i), Kind: pbio.Int, CType: machine.CInt,
		})
	}
	for i := 0; i < s.Doubles; i++ {
		specs = append(specs, pbio.FieldSpec{
			Name: fmt.Sprintf("d%d", i), Kind: pbio.Float, CType: machine.CDouble,
		})
	}
	for i := 0; i < s.Strings; i++ {
		specs = append(specs, pbio.FieldSpec{
			Name: fmt.Sprintf("s%d", i), Kind: pbio.String,
		})
	}
	if s.ArrayLen > 0 {
		specs = append(specs,
			pbio.FieldSpec{Name: "samples", Kind: pbio.Float, CType: machine.CDouble,
				Dynamic: true, CountField: "n"},
			pbio.FieldSpec{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		)
	}
	f, err := ctx.RegisterSpec(s.Name, specs)
	if err != nil {
		return Workload{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	rec := make(pbio.Record, len(specs))
	for i := 0; i < s.Ints; i++ {
		rec[fmt.Sprintf("i%d", i)] = int64(rng.Int31())
	}
	for i := 0; i < s.Doubles; i++ {
		rec[fmt.Sprintf("d%d", i)] = rng.NormFloat64() * 1e3
	}
	for i := 0; i < s.Strings; i++ {
		rec[fmt.Sprintf("s%d", i)] = randomString(rng, s.StrLen)
	}
	if s.ArrayLen > 0 {
		arr := make([]float64, s.ArrayLen)
		for i := range arr {
			arr[i] = rng.Float64() * 100
		}
		rec["samples"] = arr
	}
	return Workload{Name: s.Name, Format: f, Record: rec}, nil
}

func randomString(rng *rand.Rand, n int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return sb.String()
}

// SizeSweep returns the standard workload sweep used by the wire-format
// experiments: payloads from ~100 bytes to ~100 KB of mixed field content,
// the span the paper's application scenario covers (small control events to
// bulk scientific data).
func SizeSweep(ctx *pbio.Context, seed int64) ([]Workload, error) {
	specs := []MixedSpec{
		{Name: "mixed100B", Ints: 4, Doubles: 4, Strings: 2, StrLen: 8},
		{Name: "mixed1KB", Ints: 10, Doubles: 10, Strings: 4, StrLen: 16, ArrayLen: 100},
		{Name: "mixed10KB", Ints: 20, Doubles: 20, Strings: 8, StrLen: 32, ArrayLen: 1200},
		{Name: "mixed100KB", Ints: 20, Doubles: 20, Strings: 8, StrLen: 32, ArrayLen: 12500},
	}
	out := make([]Workload, 0, len(specs))
	for i, s := range specs {
		w, err := s.Build(ctx, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
