package bench

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"time"

	"openmeta/internal/core"
	"openmeta/internal/dcg"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xdr"
	"openmeta/internal/xmlwire"
)

// --- Table 4: end-to-end latency over loopback TCP -------------------------

// Table4 supplies the measurement the paper promised for its final version:
// end-to-end latency of communication between two endpoints, per wire
// format, including the xml2wire variant to show that XML-based metadata
// adds no per-message cost.
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 4",
		Caption: fmt.Sprintf("End-to-end round-trip per message over loopback TCP (%d messages)", cfg.Messages),
		Headers: []string{"Workload", "Pipeline", "RTT/msg", "vs NDR"},
		Notes: []string{
			"NDR+xml2wire uses a format registered from XML metadata: per-message cost must equal plain NDR",
			"the XML-text pipeline pays ASCII conversion and 6-8x larger messages on the same socket",
		},
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	works, err := SizeSweep(ctx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// An xml2wire-registered flavor of the 1KB workload: same shape, format
	// discovered from an XML document instead of compiled-in specs.
	xmlCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	xmlSet, err := core.RegisterDocument(xmlCtx, []byte(mixed1KBSchema))
	if err != nil {
		return nil, err
	}
	xmlRegistered := xmlSet.Root()

	for _, w := range works[:2] { // 100B and 1KB keep the table fast
		var ndrRTT time.Duration
		pipelines := []struct {
			name string
			run  func() (time.Duration, error)
		}{
			{"NDR", func() (time.Duration, error) {
				return runNDRPingPong(w.Format, w.Record, cfg.Messages, false)
			}},
			{"NDR + xml2wire metadata", func() (time.Duration, error) {
				if w.Name != "mixed1KB" {
					return 0, errSkipRow
				}
				rec, err := recordFor(xmlRegistered, w.Record)
				if err != nil {
					return 0, err
				}
				return runNDRPingPong(xmlRegistered, rec, cfg.Messages, false)
			}},
			{"NDR, metadata every msg", func() (time.Duration, error) {
				return runNDRPingPong(w.Format, w.Record, cfg.Messages, true)
			}},
			{"XDR", func() (time.Duration, error) {
				return runCodecPingPong(w.Format, w.Record, cfg.Messages,
					xdr.EncodeRecord, xdr.DecodeRecord)
			}},
			{"XML text", func() (time.Duration, error) {
				return runCodecPingPong(w.Format, w.Record, cfg.Messages,
					xmlwire.EncodeRecord, xmlwire.DecodeRecord)
			}},
		}
		for _, p := range pipelines {
			rtt, err := p.run()
			if err == errSkipRow {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", w.Name, p.name, err)
			}
			if p.name == "NDR" {
				ndrRTT = rtt
			}
			t.AddRow(w.Name, p.name, rtt, Ratio(rtt, ndrRTT))
		}
	}
	return t, nil
}

var errSkipRow = fmt.Errorf("bench: skip row")

// mixed1KBSchema is the XML metadata equivalent of the mixed1KB workload.
var mixed1KBSchema = func() string {
	doc := `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="mixed1KB">`
	for i := 0; i < 10; i++ {
		doc += fmt.Sprintf("\n    <xsd:element name=\"i%d\" type=\"xsd:integer\" />", i)
	}
	for i := 0; i < 10; i++ {
		doc += fmt.Sprintf("\n    <xsd:element name=\"d%d\" type=\"xsd:double\" />", i)
	}
	for i := 0; i < 4; i++ {
		doc += fmt.Sprintf("\n    <xsd:element name=\"s%d\" type=\"xsd:string\" />", i)
	}
	doc += `
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="n" />
    <xsd:element name="n" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>`
	return doc
}()

// recordFor re-keys a workload record onto another format with the same
// field names (dropping fields the format lacks).
func recordFor(f *pbio.Format, rec pbio.Record) (pbio.Record, error) {
	out := make(pbio.Record, len(rec))
	for k, v := range rec {
		if _, ok := f.FieldByName(k); ok {
			out[k] = v
		}
	}
	return out, nil
}

// runNDRPingPong measures request/ack round trips using the PBIO wire
// protocol; resend forces format metadata onto every message (the
// format-cache ablation).
func runNDRPingPong(f *pbio.Format, rec pbio.Record, msgs int, resend bool) (time.Duration, error) {
	data, err := f.Encode(rec)
	if err != nil {
		return 0, err
	}
	return pingPong(msgs, func(conn net.Conn) (func() error, error) {
		w := pbio.NewWriter(conn)
		w.SetResendMetadata(resend)
		return func() error { return w.WriteRecord(f, data) }, nil
	}, func(conn net.Conn) func() error {
		rctx, err := pbio.NewContext(machine.Native)
		if err != nil {
			return func() error { return err }
		}
		r := pbio.NewReader(conn, rctx)
		return func() error {
			gf, gdata, err := r.ReadRecord()
			if err != nil {
				return err
			}
			_, err = gf.Decode(gdata)
			return err
		}
	})
}

// runCodecPingPong measures round trips for a plain framed codec (XDR or
// XML text): length-prefixed messages, full decode on the receiver.
func runCodecPingPong(f *pbio.Format, rec pbio.Record, msgs int,
	enc func(*pbio.Format, pbio.Record) ([]byte, error),
	dec func(*pbio.Format, []byte) (pbio.Record, error),
) (time.Duration, error) {
	return pingPong(msgs, func(conn net.Conn) (func() error, error) {
		var hdr [4]byte
		return func() error {
			payload, err := enc(f, rec)
			if err != nil {
				return err
			}
			n := len(payload)
			hdr[0], hdr[1], hdr[2], hdr[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
			if _, err := conn.Write(hdr[:]); err != nil {
				return err
			}
			_, err = conn.Write(payload)
			return err
		}, nil
	}, func(conn net.Conn) func() error {
		var hdr [4]byte
		var buf []byte
		return func() error {
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return err
			}
			n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			if _, err := io.ReadFull(conn, buf[:n]); err != nil {
				return err
			}
			_, err := dec(f, buf[:n])
			return err
		}
	})
}

// pingPong wires a sender and receiver over loopback TCP: the sender emits
// one message, the receiver processes it and acks one byte; the reported
// duration is the mean round trip.
func pingPong(msgs int,
	mkSend func(net.Conn) (func() error, error),
	mkRecv func(net.Conn) func() error,
) (time.Duration, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		recv := mkRecv(conn)
		ack := []byte{0}
		for i := 0; i < msgs; i++ {
			if err := recv(); err != nil {
				srvErr <- err
				return
			}
			if _, err := conn.Write(ack); err != nil {
				srvErr <- err
				return
			}
		}
		srvErr <- nil
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	send, err := mkSend(conn)
	if err != nil {
		return 0, err
	}
	ack := make([]byte, 1)
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := send(); err != nil {
			return 0, err
		}
		if _, err := io.ReadFull(conn, ack); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if err := <-srvErr; err != nil {
		return 0, err
	}
	return elapsed / time.Duration(msgs), nil
}

// --- Table 5: discovery cost amortization ----------------------------------

// Table5 quantifies the paper's amortization argument (§5): discovery and
// registration happen once per format, so the extra cost of XML metadata
// vanishes as message count grows.
func Table5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 5",
		Caption: "xml2wire discovery overhead amortized over message count (Structure B)",
		Headers: []string{"Messages", "PBIO total", "xml2wire total", "Overhead/msg", "Overhead %"},
		Notes: []string{
			"total = registration + N x (encode + decode); overhead = xml2wire total - PBIO total",
			"expected shape: overhead per message decays ~1/N toward zero",
		},
	}
	c := StructureBCase()
	doc := []byte(c.Schema)
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		nMsgs := n
		regAndRun := func(register func(ctx *pbio.Context) (*pbio.Format, error)) (time.Duration, error) {
			samples := make([]time.Duration, 0, cfg.Trials)
			for trial := 0; trial < cfg.Trials; trial++ {
				// The measured loops allocate per message; start each trial
				// from a clean heap so GC debt from one path is not billed
				// to the other.
				runtime.GC()
				start := time.Now()
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					return 0, err
				}
				f, err := register(ctx)
				if err != nil {
					return 0, err
				}
				var buf []byte
				for i := 0; i < nMsgs; i++ {
					buf, err = f.AppendEncode(buf[:0], c.Record)
					if err != nil {
						return 0, err
					}
					if _, err := f.Decode(buf); err != nil {
						return 0, err
					}
				}
				samples = append(samples, time.Since(start))
			}
			return Median(samples), nil
		}
		tPBIO, err := regAndRun(func(ctx *pbio.Context) (*pbio.Format, error) {
			return ctx.Register(c.Formats[0].Name, c.Formats[0].Fields)
		})
		if err != nil {
			return nil, err
		}
		tXML, err := regAndRun(func(ctx *pbio.Context) (*pbio.Format, error) {
			set, err := core.RegisterDocument(ctx, doc)
			if err != nil {
				return nil, err
			}
			return set.Root(), nil
		})
		if err != nil {
			return nil, err
		}
		overhead := tXML - tPBIO
		perMsg := overhead / time.Duration(nMsgs)
		pct := 100 * float64(overhead) / float64(tPBIO)
		t.AddRow(nMsgs, tPBIO, tXML, FormatDuration(perMsg), fmt.Sprintf("%.1f%%", pct))
	}
	return t, nil
}

// --- Table 6: receiver-side conversion -------------------------------------

// Table6 reproduces the reader-makes-right discussion (§6): receive cost
// when representations match (NDR's no-op), when they differ (compiled
// plan), and what naive per-message metadata interpretation would cost —
// the ablation justifying conversion-plan compilation (the paper's dynamic
// code generation).
func Table6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 6",
		Caption: "Receiver-side cost per message: identity vs compiled plan vs interpretation",
		Headers: []string{"Workload", "Receive path", "Cost/msg", "vs identity"},
		Notes: []string{
			"identity: source and destination representations match (the common homogeneous case)",
			"plan: big-endian source converted by the compiled conversion program",
			"naive: full generic decode + re-encode per message (no plan compilation)",
		},
	}
	srcCtx, err := pbio.NewContext(machine.Sparc64)
	if err != nil {
		return nil, err
	}
	srcWorks, err := SizeSweep(srcCtx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dstCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	dstWorks, err := SizeSweep(dstCtx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cache := dcg.NewCache()
	for i, sw := range srcWorks {
		data, err := sw.Format.Encode(sw.Record)
		if err != nil {
			return nil, err
		}
		idPlan, err := cache.Plan(sw.Format, sw.Format)
		if err != nil {
			return nil, err
		}
		convPlan, err := cache.Plan(sw.Format, dstWorks[i].Format)
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, len(data)+64)

		tIdentity, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			var err error
			out, err = idPlan.AppendConvert(out[:0], data)
			return err
		})
		if err != nil {
			return nil, err
		}
		tPlan, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			var err error
			out, err = convPlan.AppendConvert(out[:0], data)
			return err
		})
		if err != nil {
			return nil, err
		}
		tNaive, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			_, err := dcg.Naive(sw.Format, dstWorks[i].Format, data)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sw.Name, "identity (homogeneous)", tIdentity, "1.0x")
		t.AddRow(sw.Name, "compiled plan (heterogeneous)", tPlan, Ratio(tPlan, tIdentity))
		t.AddRow(sw.Name, "naive interpretation", tNaive, Ratio(tNaive, tIdentity))
	}
	return t, nil
}

// --- Table 7: format-cache ablation on the wire -----------------------------

// Table7 measures what the once-per-connection format cache saves in bytes
// on the wire — the design choice that makes self-describing NDR streams
// affordable.
func Table7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 7",
		Caption: fmt.Sprintf("Wire bytes per message with and without the format cache (%d messages)", cfg.Messages),
		Headers: []string{"Workload", "Cached B/msg", "Uncached B/msg", "Metadata tax"},
		Notes: []string{
			"cached: metadata once per connection; uncached: metadata with every record",
		},
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	works, err := SizeSweep(ctx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, w := range works {
		data, err := w.Format.Encode(w.Record)
		if err != nil {
			return nil, err
		}
		count := func(resend bool) (int, error) {
			var sink countWriter
			pw := pbio.NewWriter(&sink)
			pw.SetResendMetadata(resend)
			for i := 0; i < cfg.Messages; i++ {
				if err := pw.WriteRecord(w.Format, data); err != nil {
					return 0, err
				}
			}
			return sink.n / cfg.Messages, nil
		}
		cached, err := count(false)
		if err != nil {
			return nil, err
		}
		uncached, err := count(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, cached, uncached,
			fmt.Sprintf("+%.1f%%", 100*float64(uncached-cached)/float64(cached)))
	}
	return t, nil
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Table, error) {
	type gen struct {
		name string
		fn   func(Config) (*Table, error)
	}
	gens := []gen{
		{"table1", Table1}, {"table2", Table2}, {"table3", Table3},
		{"table4", Table4}, {"table5", Table5}, {"table6", Table6},
		{"table7", Table7}, {"table8", Table8}, {"table9", Table9},
	}
	out := make([]*Table, 0, len(gens))
	for _, g := range gens {
		tbl, err := g.fn(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID returns the experiment generator for a table number (1-7).
func ByID(n int) (func(Config) (*Table, error), bool) {
	switch n {
	case 1:
		return Table1, true
	case 2:
		return Table2, true
	case 3:
		return Table3, true
	case 4:
		return Table4, true
	case 5:
		return Table5, true
	case 6:
		return Table6, true
	case 7:
		return Table7, true
	case 8:
		return Table8, true
	case 9:
		return Table9, true
	default:
		return nil, false
	}
}
