package bench

import (
	"fmt"
	"time"

	"openmeta/internal/core"
	"openmeta/internal/dcg"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/xdr"
	"openmeta/internal/xmlwire"
)

// Config scales the experiments. Quick settings keep cmd/benchtab under a
// few seconds; Full settings tighten the medians.
type Config struct {
	// Trials is the number of repetitions whose median is reported.
	Trials int
	// Inner is the number of operations per repetition.
	Inner int
	// Messages is the message count for end-to-end experiments.
	Messages int
	// Seed drives all workload generation.
	Seed int64
}

// Quick returns a configuration sized for interactive runs.
func Quick() Config { return Config{Trials: 5, Inner: 50, Messages: 200, Seed: 1} }

// Full returns a configuration sized for stable numbers.
func Full() Config { return Config{Trials: 15, Inner: 200, Messages: 2000, Seed: 1} }

// --- Table 1: format registration costs ------------------------------------

// Appendix A structures as both native PBIO metadata (Figures 5, 8, 11 with
// the 32-bit big-endian layout of the paper's SPARC evaluation machine) and
// XML Schema documents (Figures 6, 9, 12).
// RegistrationCase is one Table 1 row: a structure expressed as native
// PBIO metadata, as an XML Schema document, and a sample record.
type RegistrationCase struct {
	Name    string
	Formats []NamedIOFields // registered in order; last is the structure
	Schema  string
	Record  pbio.Record
}

// NamedIOFields is a named, paper-style IOField list.
type NamedIOFields struct {
	Name   string
	Fields []pbio.IOField
}

// StructureACase is Appendix A Structure A (Figures 4-6).
func StructureACase() RegistrationCase {
	return RegistrationCase{
		Name: "A (no arrays, no nesting)",
		Formats: []NamedIOFields{{"ASDOffEvent", []pbio.IOField{
			{Name: "cntrID", Type: "string", Size: 4, Offset: 0},
			{Name: "arln", Type: "string", Size: 4, Offset: 4},
			{Name: "fltNum", Type: "integer", Size: 4, Offset: 8},
			{Name: "equip", Type: "string", Size: 4, Offset: 12},
			{Name: "org", Type: "string", Size: 4, Offset: 16},
			{Name: "dest", Type: "string", Size: 4, Offset: 20},
			{Name: "off", Type: "unsigned integer", Size: 4, Offset: 24},
			{Name: "eta", Type: "unsigned integer", Size: 4, Offset: 28},
		}}},
		Schema: `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" />
    <xsd:element name="eta" type="xsd:unsigned-long" />
  </xsd:complexType>
</xsd:schema>`,
		// The string contents total 40 bytes with NUL terminators, which
		// reproduces the paper's encoded size of 72 bytes exactly
		// (32-byte fixed region + 40 bytes of string data).
		Record: pbio.Record{
			"cntrID": "ZTL-SECTOR-038", "arln": "DAL", "fltNum": 1842,
			"equip": "B757-232ER", "org": "KATL", "dest": "KMCO",
			"off": uint64(35000), "eta": uint64(39000),
		},
	}
}

// StructureBCase is Appendix A Structure B (Figures 7-9).
func StructureBCase() RegistrationCase {
	return RegistrationCase{
		Name: "B (static + dynamic arrays)",
		Formats: []NamedIOFields{{"ASDOffEvent", []pbio.IOField{
			{Name: "cntrID", Type: "string", Size: 4, Offset: 0},
			{Name: "arln", Type: "string", Size: 4, Offset: 4},
			{Name: "fltNum", Type: "integer", Size: 4, Offset: 8},
			{Name: "equip", Type: "string", Size: 4, Offset: 12},
			{Name: "org", Type: "string", Size: 4, Offset: 16},
			{Name: "dest", Type: "string", Size: 4, Offset: 20},
			{Name: "off", Type: "unsigned integer[5]", Size: 4, Offset: 24},
			{Name: "eta", Type: "unsigned integer[eta_count]", Size: 4, Offset: 44},
			{Name: "eta_count", Type: "integer", Size: 4, Offset: 48},
		}}},
		Schema: `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`,
		// Same 40 bytes of strings plus a 3-element dynamic array of 4-byte
		// unsigned longs: 52 + 40 + 12 = 104 encoded bytes, the paper's
		// Table 1 value for this row.
		Record: pbio.Record{
			"cntrID": "ZTL-SECTOR-038", "arln": "DAL", "fltNum": 1842,
			"equip": "B757-232ER", "org": "KATL", "dest": "KMCO",
			"off": []uint64{1, 2, 3, 4, 5}, "eta": []uint64{10, 20, 30},
		},
	}
}

// StructureCDCase is Appendix A Structures C and D (Figures 10-12).
func StructureCDCase() RegistrationCase {
	b := StructureBCase()
	three := NamedIOFields{Name: "threeASDOffs", Fields: []pbio.IOField{
		{Name: "one", Type: "ASDOffEvent", Size: 52, Offset: 0},
		{Name: "bart", Type: "double", Size: 8, Offset: 56},
		{Name: "two", Type: "ASDOffEvent", Size: 52, Offset: 64},
		{Name: "lisa", Type: "double", Size: 8, Offset: 120},
		{Name: "three", Type: "ASDOffEvent", Size: 52, Offset: 128},
	}}
	inner := b.Record
	return RegistrationCase{
		Name:    "C+D (arrays + nesting)",
		Formats: []NamedIOFields{b.Formats[0], three},
		Schema: b.Schema[:len(b.Schema)-len("</xsd:schema>")] + `
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEvent" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEvent" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEvent" />
  </xsd:complexType>
</xsd:schema>`,
		Record: pbio.Record{
			"one": inner, "bart": 1.5, "two": inner, "lisa": 2.5, "three": inner,
		},
	}
}

// RegistrationCases returns the three Table 1 structures in paper order.
func RegistrationCases() []RegistrationCase {
	return []RegistrationCase{StructureACase(), StructureBCase(), StructureCDCase()}
}

// Table1 reproduces the paper's Table 1: structure size, encoded size under
// both registration paths, and format registration time for native PBIO
// metadata versus xml2wire.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 1",
		Caption: "Format registration costs using xml2wire and PBIO (arch: sparc, as in the paper)",
		Headers: []string{"Structure", "Struct Size (B)",
			"Encoded PBIO (B)", "Encoded xml2wire (B)",
			"Reg Time PBIO", "Reg Time xml2wire", "xml2wire/PBIO", "Live Counters Δ"},
		Notes: []string{
			"paper reports 32/52/180 struct bytes and identical encoded sizes for both paths",
			"paper's C+D row reports the unpadded extent (180); conforming sizeof is 184",
			"expected shape: xml2wire ~2-3x PBIO registration, both growing with field count",
			"Live Counters Δ cross-checks each row against the obsv registry: pbio.formats.registered and pbio.encode.calls deltas over the row's work (timing loops included)",
		},
	}
	for _, c := range RegistrationCases() {
		statsBefore := obsv.Default().Snapshot()
		// Resolve once for sizes and encoded sizes.
		ctx, err := pbio.NewContext(machine.Sparc)
		if err != nil {
			return nil, err
		}
		var last *pbio.Format
		for _, nf := range c.Formats {
			if last, err = ctx.Register(nf.Name, nf.Fields); err != nil {
				return nil, fmt.Errorf("table1 %s: %w", c.Name, err)
			}
		}
		encNative, err := last.Encode(c.Record)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", c.Name, err)
		}
		xctx, err := pbio.NewContext(machine.Sparc)
		if err != nil {
			return nil, err
		}
		set, err := core.RegisterDocument(xctx, []byte(c.Schema))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", c.Name, err)
		}
		encXML, err := set.Root().Encode(c.Record)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", c.Name, err)
		}

		// Native registration timing: fresh context per inner op so the
		// catalog fast path cannot short-circuit.
		caseCopy := c
		tPBIO, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			ctx, err := pbio.NewContext(machine.Sparc)
			if err != nil {
				return err
			}
			for _, nf := range caseCopy.Formats {
				if _, err := ctx.Register(nf.Name, nf.Fields); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// xml2wire: parse the XML description and register, as the paper
		// measures ("includes the time necessary to parse the XML
		// description of the format and register the format with PBIO").
		doc := []byte(c.Schema)
		tXML, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			ctx, err := pbio.NewContext(machine.Sparc)
			if err != nil {
				return err
			}
			_, err = core.RegisterDocument(ctx, doc)
			return err
		})
		if err != nil {
			return nil, err
		}
		sd := obsv.Delta(statsBefore, obsv.Default().Snapshot())
		statsCol := fmt.Sprintf("regs +%d, encodes +%d",
			sd["pbio.formats.registered"], sd["pbio.encode.calls"])
		t.AddRow(c.Name, last.Size, len(encNative), len(encXML), tPBIO, tXML,
			Ratio(tXML, tPBIO), statsCol)
	}
	return t, nil
}

// --- Table 2: wire format comparison (NDR vs XDR vs XML text) --------------

// Table2 quantifies the paper's headline comparison: per-message marshal +
// unmarshal cost and encoded size for NDR, XDR and XML-text wire formats
// over the standard size sweep.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 2",
		Caption: "Wire format cost per message (encode + decode) and encoded sizes",
		Headers: []string{"Workload", "Format", "Encode", "Decode", "Total",
			"Size (B)", "vs NDR time", "vs NDR size"},
		Notes: []string{
			"paper claims ~an order of magnitude over text-based XML and >50% over XDR",
			"paper cites 6-8x ASCII expansion for numeric data (mixed workloads include strings)",
		},
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	works, err := SizeSweep(ctx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, w := range works {
		ndrData, err := w.Format.Encode(w.Record)
		if err != nil {
			return nil, err
		}
		xdrData, err := xdr.EncodeRecord(w.Format, w.Record)
		if err != nil {
			return nil, err
		}
		xmlData, err := xmlwire.EncodeRecord(w.Format, w.Record)
		if err != nil {
			return nil, err
		}

		type fmtCase struct {
			name string
			enc  func() error
			dec  func() error
			size int
		}
		buf := make([]byte, 0, len(ndrData)*2)
		cases := []fmtCase{
			{"NDR", func() error {
				var err error
				buf, err = w.Format.AppendEncode(buf[:0], w.Record)
				return err
			}, func() error {
				_, err := w.Format.Decode(ndrData)
				return err
			}, len(ndrData)},
			{"XDR", func() error {
				_, err := xdr.EncodeRecord(w.Format, w.Record)
				return err
			}, func() error {
				_, err := xdr.DecodeRecord(w.Format, xdrData)
				return err
			}, len(xdrData)},
			{"XML", func() error {
				_, err := xmlwire.EncodeRecord(w.Format, w.Record)
				return err
			}, func() error {
				_, err := xmlwire.DecodeRecord(w.Format, xmlData)
				return err
			}, len(xmlData)},
		}
		var ndrTotal time.Duration
		for _, fc := range cases {
			encT, err := TimeOp(cfg.Trials, cfg.Inner, fc.enc)
			if err != nil {
				return nil, err
			}
			decT, err := TimeOp(cfg.Trials, cfg.Inner, fc.dec)
			if err != nil {
				return nil, err
			}
			total := encT + decT
			if fc.name == "NDR" {
				ndrTotal = total
			}
			t.AddRow(w.Name, fc.name, encT, decT, total, fc.size,
				Ratio(total, ndrTotal),
				fmt.Sprintf("%.1fx", float64(fc.size)/float64(len(ndrData))))
		}
	}
	return t, nil
}

// --- Table 3: NDR vs XDR with hetero/homogeneous receivers ------------------

// Table3 isolates the transmission-pipeline comparison: sender marshal plus
// receiver make-right cost, for NDR between identical machines (no
// conversion: the case XDR cannot exploit), NDR between different machines
// (compiled conversion plan) and XDR (canonical form both ways).
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 3",
		Caption: "Sender + receiver CPU cost per message: NDR vs XDR, homo- and heterogeneous",
		Headers: []string{"Workload", "Pipeline", "Cost/msg", "Gain vs XDR"},
		Notes: []string{
			"NDR homogeneous receive is a bounds-checked copy; XDR converts on both sides regardless",
			"expected shape: NDR-homo >> XDR; NDR-hetero still ahead (single conversion, no wire canonicalization)",
		},
	}
	sender, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	works, err := SizeSweep(ctx64(sender), cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A big-endian receiver context with the same formats.
	recvCtx, err := pbio.NewContext(machine.Sparc64)
	if err != nil {
		return nil, err
	}
	recvWorks, err := SizeSweep(recvCtx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cache := dcg.NewCache()
	for i, w := range works {
		data, err := w.Format.Encode(w.Record)
		if err != nil {
			return nil, err
		}
		homoPlan, err := cache.Plan(w.Format, w.Format)
		if err != nil {
			return nil, err
		}
		heteroPlan, err := cache.Plan(w.Format, recvWorks[i].Format)
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, len(data)+64)
		buf := make([]byte, 0, len(data))

		ndrHomo, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			var err error
			buf, err = w.Format.AppendEncode(buf[:0], w.Record)
			if err != nil {
				return err
			}
			out, err = homoPlan.AppendConvert(out[:0], buf)
			return err
		})
		if err != nil {
			return nil, err
		}
		ndrHetero, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			var err error
			buf, err = w.Format.AppendEncode(buf[:0], w.Record)
			if err != nil {
				return err
			}
			out, err = heteroPlan.AppendConvert(out[:0], buf)
			return err
		})
		if err != nil {
			return nil, err
		}
		xdrBoth, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			enc, err := xdr.EncodeRecord(w.Format, w.Record)
			if err != nil {
				return err
			}
			_, err = xdr.DecodeRecord(w.Format, enc)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, "NDR homogeneous", ndrHomo, Ratio(xdrBoth, ndrHomo))
		t.AddRow(w.Name, "NDR heterogeneous", ndrHetero, Ratio(xdrBoth, ndrHetero))
		t.AddRow(w.Name, "XDR (both sides)", xdrBoth, "1.0x")
	}
	return t, nil
}

// ctx64 returns its argument; it exists to keep call sites explicit about
// which context a sweep was built in.
func ctx64(c *pbio.Context) *pbio.Context { return c }
