package bench

import (
	"strings"
	"testing"
	"time"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// tinyConfig keeps experiment smoke tests fast on CI hardware.
func tinyConfig() Config {
	return Config{Trials: 2, Inner: 3, Messages: 10, Seed: 1}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	tables, err := All(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Headers) {
				t.Errorf("%s: row %v has %d cells, want %d", tbl.ID, row, len(row), len(tbl.Headers))
			}
		}
		var sb strings.Builder
		if err := tbl.Write(&sb); err != nil {
			t.Errorf("%s: write: %v", tbl.ID, err)
		}
		if !strings.Contains(sb.String(), tbl.ID) {
			t.Errorf("%s: caption missing from output", tbl.ID)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Structure sizes 32 / 52 / 184 and encoded-size parity between paths.
	wantSizes := []string{"32", "52", "184"}
	for i, row := range tbl.Rows {
		if row[1] != wantSizes[i] {
			t.Errorf("row %d struct size = %s, want %s", i, row[1], wantSizes[i])
		}
		if row[2] != row[3] {
			t.Errorf("row %d: encoded sizes differ between PBIO (%s) and xml2wire (%s)",
				i, row[2], row[3])
		}
	}
}

func TestTable7MetadataTaxPositive(t *testing.T) {
	tbl, err := Table7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[3], "+") {
			t.Errorf("workload %s: metadata tax %q not positive", row[0], row[3])
		}
	}
}

func TestSizeSweepShapes(t *testing.T) {
	cfg := tinyConfig()
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	works, err := SizeSweep(ctx, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(works) != 4 {
		t.Fatalf("workloads = %d", len(works))
	}
	var prev int
	for _, w := range works {
		data, err := w.Format.Encode(w.Record)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(data) <= prev {
			t.Errorf("%s: size %d not larger than previous %d", w.Name, len(data), prev)
		}
		prev = len(data)
		if _, err := w.Format.Decode(data); err != nil {
			t.Fatalf("%s: decode: %v", w.Name, err)
		}
	}
}

func TestMedianAndRatio(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if got := Median([]time.Duration{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]time.Duration{1, 3}); got != 2 {
		t.Errorf("Median even = %v", got)
	}
	if Ratio(10, 0) != "inf" {
		t.Error("Ratio by zero")
	}
	if Ratio(100, 10) != "10.0x" {
		t.Errorf("Ratio = %s", Ratio(100, 10))
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Nanosecond: "1.500us",
		2 * time.Millisecond:   "2.000ms",
		3 * time.Second:        "3.000s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTimeOpPropagatesError(t *testing.T) {
	wantErr := errSkipRow
	if _, err := TimeOp(0, 0, func() error { return wantErr }); err != wantErr {
		t.Errorf("err = %v", err)
	}
	n := 0
	if _, err := TimeOp(2, 3, func() error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("fn called %d times, want 6", n)
	}
}
