package bench

import (
	"fmt"
	"sync"
	"time"

	"openmeta/internal/core"
	"openmeta/internal/eventbus"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlwire"
)

// --- Table 8: event backbone fan-out ----------------------------------------

// Table8 measures the scalability claim of the paper's introduction:
// "scalability to many information clients and sources implies the need to
// reduce per-client or per-source processing and transmission requirements
// ... single servers must provide information to large numbers of clients."
// One publisher pushes records through the broker to N subscribers; NDR
// relay (the broker never decodes) is compared against an XML-text relay
// simulated by encoding text once per delivery.
func Table8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 8",
		Caption: fmt.Sprintf("Broker fan-out: delivery cost per record per subscriber (%d records)", cfg.Messages),
		Headers: []string{"Subscribers", "NDR relay/rec/sub", "NDR total/rec", "XML-text equiv/rec/sub"},
		Notes: []string{
			"NDR relay: the broker forwards bytes without decoding; cost grows only with copies",
			"XML-text equiv: CPU a text backbone would spend re-serializing per delivery (same records)",
		},
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	works, err := SizeSweep(ctx, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w := works[1] // mixed1KB
	record, err := w.Format.Encode(w.Record)
	if err != nil {
		return nil, err
	}
	// Cost an XML backbone would pay per delivery: one text encode.
	xmlPer, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
		_, err := xmlwire.EncodeRecord(w.Format, w.Record)
		return err
	})
	if err != nil {
		return nil, err
	}

	for _, nSubs := range []int{1, 2, 4, 8} {
		perRec, err := fanout(w.Format, record, nSubs, cfg.Messages)
		if err != nil {
			return nil, fmt.Errorf("table8 n=%d: %w", nSubs, err)
		}
		perSub := perRec / time.Duration(nSubs)
		t.AddRow(nSubs, perSub, perRec, xmlPer)
	}
	return t, nil
}

// fanout runs one publisher and nSubs draining subscribers through a real
// broker over loopback TCP, returning the wall time per published record.
func fanout(f *pbio.Format, record []byte, nSubs, msgs int) (time.Duration, error) {
	broker, err := eventbus.Listen("127.0.0.1:0", eventbus.WithLogger(func(string, ...interface{}) {}))
	if err != nil {
		return 0, err
	}
	defer broker.Close()

	var wg sync.WaitGroup
	errs := make(chan error, nSubs+1)
	for i := 0; i < nSubs; i++ {
		rctx, err := pbio.NewContext(machine.Native)
		if err != nil {
			return 0, err
		}
		sub, err := eventbus.DialSubscriber(broker.Addr().String(), rctx)
		if err != nil {
			return 0, err
		}
		defer sub.Close()
		if err := sub.Subscribe("bench"); err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(sub *eventbus.Subscriber) {
			defer wg.Done()
			for n := 0; n < msgs; n++ {
				if _, err := sub.Next(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(sub)
	}
	// Wait for the subscriptions to land before timing.
	deadline := time.Now().Add(5 * time.Second)
	for len(broker.Streams()) == 0 || !brokerHasSubs(broker, "bench", nSubs) {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("subscriptions did not register")
		}
		time.Sleep(time.Millisecond)
	}

	pub, err := eventbus.DialPublisher(broker.Addr().String())
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	start := time.Now()
	for n := 0; n < msgs; n++ {
		if err := pub.Publish("bench", f, record); err != nil {
			return 0, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(msgs), nil
}

// brokerHasSubs reports whether the named stream has at least n subscribers.
func brokerHasSubs(b *eventbus.Broker, name string, n int) bool {
	return b.SubscriberCount(name) >= n
}

// --- Table 9: xml2wire registration scaling ---------------------------------

// Table9 extends Table 1's observation — "the time required to parse
// metadata grows proportionally to the structure size" — with a direct
// scaling sweep over field count, separating the XML-parse and PBIO-register
// components.
func Table9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Table 9",
		Caption: "Registration cost vs field count (xml2wire decomposed)",
		Headers: []string{"Fields", "Schema bytes", "Parse+register", "Register only", "Parse share"},
		Notes: []string{
			"expected shape: both components linear in field count; parsing dominates xml2wire",
		},
	}
	for _, nFields := range []int{4, 8, 16, 32, 64, 128} {
		doc := syntheticSchema(nFields)
		specs, err := syntheticSpecs(nFields)
		if err != nil {
			return nil, err
		}
		full, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			ctx, err := pbio.NewContext(machine.Sparc)
			if err != nil {
				return err
			}
			_, err = core.RegisterDocument(ctx, doc)
			return err
		})
		if err != nil {
			return nil, err
		}
		regOnly, err := TimeOp(cfg.Trials, cfg.Inner, func() error {
			ctx, err := pbio.NewContext(machine.Sparc)
			if err != nil {
				return err
			}
			_, err = ctx.RegisterSpec("S", specs)
			return err
		})
		if err != nil {
			return nil, err
		}
		share := 100 * float64(full-regOnly) / float64(full)
		t.AddRow(nFields, len(doc), full, regOnly, fmt.Sprintf("%.0f%%", share))
	}
	return t, nil
}

// SyntheticSchema builds a schema document with nFields elements of mixed
// primitive types; exposed for the root benchmarks.
func SyntheticSchema(nFields int) []byte { return syntheticSchema(nFields) }

func syntheticSchema(nFields int) []byte {
	doc := `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="S">`
	for i := 0; i < nFields; i++ {
		switch i % 3 {
		case 0:
			doc += fmt.Sprintf("\n    <xsd:element name=\"f%d\" type=\"xsd:integer\" />", i)
		case 1:
			doc += fmt.Sprintf("\n    <xsd:element name=\"f%d\" type=\"xsd:double\" />", i)
		default:
			doc += fmt.Sprintf("\n    <xsd:element name=\"f%d\" type=\"xsd:string\" />", i)
		}
	}
	doc += "\n  </xsd:complexType>\n</xsd:schema>"
	return []byte(doc)
}

func syntheticSpecs(nFields int) ([]pbio.FieldSpec, error) {
	specs := make([]pbio.FieldSpec, nFields)
	for i := range specs {
		name := fmt.Sprintf("f%d", i)
		switch i % 3 {
		case 0:
			specs[i] = pbio.FieldSpec{Name: name, Kind: pbio.Int, CType: machine.CInt}
		case 1:
			specs[i] = pbio.FieldSpec{Name: name, Kind: pbio.Float, CType: machine.CDouble}
		default:
			specs[i] = pbio.FieldSpec{Name: name, Kind: pbio.String}
		}
	}
	return specs, nil
}
