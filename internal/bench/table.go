package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is one reproduced evaluation artifact: a caption, column headers
// and rows, printed the way the paper lays its tables out.
type Table struct {
	ID      string // "Table 1", "E4", ...
	Caption string
	Headers []string
	Rows    [][]string
	// Notes records shape expectations and caveats, printed under the
	// table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s. %s\n", t.ID, t.Caption)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// FormatDuration renders a duration with the precision the tables need
// (microseconds with three decimals, matching the paper's milliseconds with
// three decimals at 1000x our resolution).
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fus", float64(d.Nanoseconds())/1000)
	}
}

// Median returns the median of the samples (destructively sorts).
func Median(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	mid := len(samples) / 2
	if len(samples)%2 == 1 {
		return samples[mid]
	}
	return (samples[mid-1] + samples[mid]) / 2
}

// TimeOp runs fn `trials` times and returns the median duration of one run.
// Each run may itself loop `inner` times; the result is per-inner-op.
func TimeOp(trials, inner int, fn func() error) (time.Duration, error) {
	if trials < 1 {
		trials = 1
	}
	if inner < 1 {
		inner = 1
	}
	samples := make([]time.Duration, 0, trials)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < inner; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		samples = append(samples, time.Since(start)/time.Duration(inner))
	}
	return Median(samples), nil
}

// Ratio formats a speedup factor ("9.8x").
func Ratio(slow, fast time.Duration) string {
	if fast <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(slow)/float64(fast))
}
