package bench

import (
	"fmt"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlwire"
)

// asdPositionSpec is an Appendix A-style structure from the paper's ATC
// application domain: the all-numeric mix (4-byte counters and unsigned
// measurements) for which the paper claims 6-8x ASCII expansion. The string
// fields of Structure A dilute the ratio (a string is roughly the same size
// in both encodings), so the numeric variant is where the claimed band must
// show.
func asdPositionSpec() []pbio.FieldSpec {
	return []pbio.FieldSpec{
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "altitude", Kind: pbio.Int, CType: machine.CInt},
		{Name: "groundSpeed", Kind: pbio.Int, CType: machine.CInt},
		{Name: "heading", Kind: pbio.Int, CType: machine.CInt},
		{Name: "squawk", Kind: pbio.Int, CType: machine.CInt},
		{Name: "sectorID", Kind: pbio.Int, CType: machine.CInt},
		{Name: "off", Kind: pbio.Uint, CType: machine.CUInt},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CUInt},
	}
}

func asdPositionRecord() pbio.Record {
	return pbio.Record{
		"fltNum": 1842, "altitude": 35000, "groundSpeed": 441,
		"heading": 278, "squawk": 1200, "sectorID": 38,
		"off": uint64(35000), "eta": uint64(39000),
	}
}

// TestLiveExpansionRatioInPaperBand is the acceptance gate for the
// per-format expansion gauge: encoding an Appendix A-style numeric record
// through a context must leave pbio.format.xml.expansion_pct{format=...} in
// the paper's claimed 6-8x band, and the gauge must agree with a direct
// xmlwire-vs-NDR size comparison of the same record.
func TestLiveExpansionRatioInPaperBand(t *testing.T) {
	reg := obsv.New()
	ctx, err := pbio.NewContext(machine.Native, pbio.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("ASDPositionEvent", asdPositionSpec())
	if err != nil {
		t.Fatal(err)
	}
	rec := asdPositionRecord()
	ndr, err := f.Encode(rec) // first encode probes the XML-text size
	if err != nil {
		t.Fatal(err)
	}
	xml, err := xmlwire.EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}

	key := `pbio.format.xml.expansion_pct{format="ASDPositionEvent"}`
	got := reg.Snapshot()[key]
	if want := int64(len(xml)) * 100 / int64(len(ndr)); got != want {
		t.Fatalf("gauge = %d, want %d (xml %d B / ndr %d B)", got, want, len(xml), len(ndr))
	}
	if got < 600 || got > 800 {
		t.Fatalf("expansion ratio %d%% outside the paper's 6-8x band (xml %d B, ndr %d B)",
			got, len(xml), len(ndr))
	}
}

// TestMixedWorkloadExpansionObserved sanity-checks the gauge over the
// standard size sweep: mixed records (strings included) still expand, just
// below the numeric-only band, matching the repo's Table 2 note.
func TestMixedWorkloadExpansionObserved(t *testing.T) {
	reg := obsv.New()
	ctx, err := pbio.NewContext(machine.Native, pbio.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	works, err := SizeSweep(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range works {
		if _, err := w.Format.Encode(w.Record); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	for _, w := range works {
		key := fmt.Sprintf("pbio.format.xml.expansion_pct{format=%q}", w.Name)
		if v := snap[key]; v < 200 {
			t.Errorf("%s = %d, want XML text at least 2x NDR", key, v)
		}
	}
}
