package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"openmeta/internal/obsv"
	"openmeta/internal/trace"
)

// Handler serves the collector's merged fleet view:
//
//	GET /fleet                    index of endpoints (also at /fleet/)
//	GET /fleet/members            scrape targets with health and clock hints
//	GET /fleet/stats              every instance's /stats merged, instance-labeled
//	                              (?exemplars=1 adds the merged bucket exemplars)
//	GET /fleet/flight?n=N         flight events from all processes, one
//	                              skew-adjusted time-ordered stream
//	GET /fleet/history            instance-labeled merged metrics history
//	GET /fleet/contention         per-instance /debug/contention snapshots
//	                              (tracked locks + mutex/block profile deltas)
//	GET /fleet/trace              index of assembled traces, newest first
//	GET /fleet/trace/<id>         one cross-process trace stitched into a
//	                              parent-linked tree: per-instance clock-skew
//	                              estimates, orphan flags, and a per-stage
//	                              self-time breakdown summing to 100%
//	GET /fleet/exemplar/<metric>  the metric's worst still-assemblable bucket
//	                              exemplar resolved into its cross-process
//	                              trace tree (metric as the instruments name
//	                              it: "eventbus.route_ns", "pbio.decode_ns")
//
// Mount it at /fleet/ (it self-routes on the suffix).
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		path := strings.TrimPrefix(req.URL.Path, "/fleet")
		path = strings.TrimPrefix(path, "/")
		switch {
		case path == "":
			serveIndex(w)
		case path == "members":
			writeJSON(w, struct {
				Members []Member `json:"members"`
			}{c.Members()})
		case path == "stats":
			if req.URL.Query().Get("exemplars") != "" {
				writeJSON(w, obsv.StatsWithExemplars{
					Metrics:   c.FleetStats(),
					Exemplars: c.FleetExemplars(),
				})
				return
			}
			writeJSON(w, c.FleetStats())
		case path == "flight":
			limit := 0
			if v := req.URL.Query().Get("n"); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					http.Error(w, "fleet: bad n", http.StatusBadRequest)
					return
				}
				limit = n
			}
			writeJSON(w, struct {
				Events []FleetEvent `json:"events"`
			}{c.FleetFlight(limit)})
		case path == "history":
			writeJSON(w, struct {
				Series interface{} `json:"series"`
			}{c.FleetHistory()})
		case path == "contention":
			writeJSON(w, struct {
				Instances map[string]json.RawMessage `json:"instances"`
			}{c.FleetContention()})
		case path == "trace":
			writeJSON(w, struct {
				Traces []TraceSummary `json:"traces"`
			}{c.Traces(100)})
		case strings.HasPrefix(path, "trace/"):
			id, ok := trace.ParseTraceID(strings.TrimPrefix(path, "trace/"))
			if !ok {
				http.Error(w, "fleet: bad trace id", http.StatusBadRequest)
				return
			}
			asm := c.Assemble(id)
			if asm.Spans == 0 {
				http.Error(w, "fleet: unknown trace", http.StatusNotFound)
				return
			}
			writeJSON(w, AssemblyView(asm))
		case strings.HasPrefix(path, "exemplar/"):
			metric := strings.TrimPrefix(path, "exemplar/")
			if metric == "" {
				http.Error(w, "fleet: no metric", http.StatusBadRequest)
				return
			}
			res, ok := c.ResolveExemplar(metric)
			if !ok {
				http.Error(w, "fleet: no assemblable exemplar for "+metric, http.StatusNotFound)
				return
			}
			writeJSON(w, ExemplarView{
				Metric:   res.Metric,
				Instance: res.Instance,
				Exemplar: res.Exemplar,
				Trace:    AssemblyView(res.Assembly),
			})
		default:
			http.NotFound(w, req)
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `fleet telemetry endpoints:
  /fleet/members            scrape targets with health and clock hints
  /fleet/stats              merged instance-labeled metrics snapshot (?exemplars=1 adds bucket exemplars)
  /fleet/flight             skew-adjusted interleaved flight events (?n=)
  /fleet/history            merged instance-labeled metrics history
  /fleet/contention         per-instance tracked-lock and profile-delta snapshots
  /fleet/trace              assembled trace index, newest first
  /fleet/trace/<id>         one cross-process trace tree with skew and stage shares
  /fleet/exemplar/<metric>  the metric's worst exemplar resolved into its assembled trace
`)
}

// ExemplarView is the /fleet/exemplar/<metric> response: the winning
// exemplar (worst value whose trace still assembles), the instance that
// recorded it, and the full assembled trace view — the same shape as
// /fleet/trace/<id>, so tooling that reads one reads both.
type ExemplarView struct {
	Metric   string        `json:"metric"`
	Instance string        `json:"instance"`
	Exemplar obsv.Exemplar `json:"exemplar"`
	Trace    TraceView     `json:"trace"`
}

// SpanView is one node of the /fleet/trace/<id> JSON tree.
type SpanView struct {
	Span     string     `json:"span"`
	Parent   string     `json:"parent,omitempty"`
	Name     string     `json:"name"`
	Detail   string     `json:"detail,omitempty"`
	Instance string     `json:"instance"`
	StartNS  int64      `json:"start_unix_ns"`
	DurNS    int64      `json:"dur_ns"`
	Orphan   bool       `json:"orphan,omitempty"`
	Children []SpanView `json:"children,omitempty"`
}

// SkewView is one instance's estimated clock offset in the assembly.
type SkewView struct {
	Instance      string `json:"instance"`
	OffsetNS      int64  `json:"offset_ns"`
	UncertaintyNS int64  `json:"uncertainty_ns"`
	Edges         int    `json:"edges"`
}

// StageView is one stage of the per-trace self-time breakdown. Shares are
// percentages of the trace's total self time and sum to 100 (±rounding).
type StageView struct {
	Name     string  `json:"name"`
	SelfNS   int64   `json:"self_ns"`
	SharePct float64 `json:"share_pct"`
}

// TraceView is the /fleet/trace/<id> response: one TraceID's spans from
// every scraped process, stitched into parent-linked trees.
type TraceView struct {
	Trace     string      `json:"trace"`
	Spans     int         `json:"spans"`
	Orphans   int         `json:"orphans"`
	Instances []string    `json:"instances"`
	Reference string      `json:"reference"`
	Skew      []SkewView  `json:"skew"`
	Stages    []StageView `json:"stages"`
	Roots     []SpanView  `json:"roots"`
}

// AssemblyView renders an assembly into the /fleet/trace/<id> JSON shape,
// computing the stage self-time shares (trace.SelfTimes over the assembled
// spans, so nested stages don't double-count and the shares sum to 100%).
func AssemblyView(asm *trace.Assembly) TraceView {
	tv := TraceView{
		Trace:     asm.Trace.String(),
		Spans:     asm.Spans,
		Orphans:   asm.Orphans,
		Instances: asm.Instances,
		Reference: asm.Reference,
		Skew:      make([]SkewView, 0, len(asm.Skew)),
		Stages:    []StageView{},
		Roots:     make([]SpanView, 0, len(asm.Roots)),
	}
	for _, sk := range asm.Skew {
		tv.Skew = append(tv.Skew, SkewView{
			Instance: sk.Instance, OffsetNS: sk.Offset.Nanoseconds(),
			UncertaintyNS: sk.Uncertainty.Nanoseconds(), Edges: sk.Edges,
		})
	}

	var flat []trace.Span
	asm.Walk(func(n *trace.Node, _ int) { flat = append(flat, n.Span) })
	self := trace.SelfTimes(flat)
	var total time.Duration
	for _, d := range self {
		total += d
	}
	names := make([]string, 0, len(self))
	for name := range self {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return self[names[i]] > self[names[j]] })
	for _, name := range names {
		share := 0.0
		if total > 0 {
			share = 100 * float64(self[name]) / float64(total)
		}
		tv.Stages = append(tv.Stages, StageView{Name: name, SelfNS: self[name].Nanoseconds(), SharePct: share})
	}

	var render func(n *trace.Node) SpanView
	render = func(n *trace.Node) SpanView {
		sv := SpanView{
			Span: n.ID.String(), Name: n.Name, Detail: n.Detail,
			Instance: n.Instance,
			StartNS:  n.Start.UnixNano(), DurNS: n.Dur.Nanoseconds(),
			Orphan: n.Orphan,
		}
		if !n.Parent.IsZero() {
			sv.Parent = n.Parent.String()
		}
		for _, c := range n.Children {
			sv.Children = append(sv.Children, render(c))
		}
		return sv
	}
	for _, r := range asm.Roots {
		tv.Roots = append(tv.Roots, render(r))
	}
	return tv
}
