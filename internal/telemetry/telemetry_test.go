package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
)

// member is one fake fleet process: its own registry, tracer and flight
// recorder served on a real HTTP listener exactly the way the daemons serve
// -debug-addr, so the collector exercises the production handlers.
type member struct {
	reg *obsv.Registry
	trc *trace.Tracer
	rec *flight.Recorder
	srv *httptest.Server
}

func newMember(t *testing.T, extra ...obsv.DebugEndpoint) *member {
	t.Helper()
	m := &member{reg: obsv.New(), trc: trace.NewTracer(0), rec: flight.New(64)}
	m.trc.SetSampling(1)
	extra = append(extra, obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(m.trc), Desc: "trace"})
	m.srv = httptest.NewServer(obsv.DebugMuxFor(m.reg, obsv.NewHealth(), m.rec, extra...))
	t.Cleanup(m.srv.Close)
	return m
}

func (m *member) addr() string { return strings.TrimPrefix(m.srv.URL, "http://") }

// fastRetry keeps failure-path tests quick: two attempts, tiny determinstic
// backoff.
var fastRetry = retry.Policy{MaxAttempts: 2, Initial: time.Millisecond, Jitter: -1}

func TestCollectorMergesInstanceLabeledStats(t *testing.T) {
	m1, m2 := newMember(t), newMember(t)
	m1.reg.Counter("eventbus.published").Add(7)
	m2.reg.Counter("eventbus.published").Add(3)
	m2.reg.Histogram("pbio.encode_ns").Observe(100)

	c := New(
		WithTargets(Target{Name: "pub", Addr: m1.addr()}, Target{Name: "broker", Addr: m2.addr()}),
		WithRetry(fastRetry),
	)
	if got := c.ScrapeOnce(context.Background()); got != 2 {
		t.Fatalf("ScrapeOnce = %d healthy targets, want 2", got)
	}

	stats := c.FleetStats()
	if got := stats[`eventbus.published{instance="pub"}`]; got != 7 {
		t.Errorf("pub counter = %d, want 7", got)
	}
	if got := stats[`eventbus.published{instance="broker"}`]; got != 3 {
		t.Errorf("broker counter = %d, want 3", got)
	}
	// Histogram families keep their suffix terminal so omtop-style six-sibling
	// detection still works per instance.
	if _, ok := stats[`pbio.encode_ns{instance="broker"}.count`]; !ok {
		t.Errorf("histogram child missing; keys: %v", keysLike(stats, "pbio."))
	}
	for _, inst := range []string{"pub", "broker"} {
		if got := stats[`fleet.instance.up{instance="`+inst+`"}`]; got != 1 {
			t.Errorf("fleet.instance.up{%s} = %d, want 1", inst, got)
		}
	}
}

func keysLike(m map[string]int64, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}

func TestCollectorIncrementalCursorsNoDoubleCount(t *testing.T) {
	m := newMember(t)
	ctx := m.trc.Start("pub.publish")
	ctx.Child("pbio.encode").Finish()
	ctx.Finish()
	m.rec.Record(flight.KindConnOpen, 1, "", 0, 0, "up")
	m.rec.Record(flight.KindFrameSend, 1, "s", 1, 64, "")

	c := New(WithTargets(Target{Name: "pub", Addr: m.addr()}), WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())
	c.ScrapeOnce(context.Background()) // steady-state round: nothing new

	c.mu.Lock()
	inst := c.targets["pub"]
	spans, events := len(inst.spans), len(inst.events)
	c.mu.Unlock()
	if spans != 2 {
		t.Errorf("span store holds %d spans after overlapping scrapes, want 2", spans)
	}
	if events != 2 {
		t.Errorf("event store holds %d events after overlapping scrapes, want 2", events)
	}

	// New activity between rounds arrives exactly once.
	m.rec.Record(flight.KindFrameRecv, 1, "s", 1, 64, "")
	ctx2 := m.trc.Start("pub.publish")
	ctx2.Finish()
	c.ScrapeOnce(context.Background())
	c.mu.Lock()
	spans, events = len(inst.spans), len(inst.events)
	seq := inst.flightSeq
	c.mu.Unlock()
	if spans != 3 || events != 3 {
		t.Errorf("after new activity: %d spans, %d events, want 3 and 3", spans, events)
	}
	if seq != 3 {
		t.Errorf("flight cursor = %d, want 3", seq)
	}
}

func TestCollectorDeadTargetGoesStaleKeepsData(t *testing.T) {
	m := newMember(t)
	m.reg.Counter("eventbus.published").Add(5)
	c := New(WithTargets(Target{Name: "pub", Addr: m.addr()}), WithRetry(fastRetry))
	if got := c.ScrapeOnce(context.Background()); got != 1 {
		t.Fatalf("healthy scrape failed")
	}

	m.srv.Close() // the process dies mid-run
	if got := c.ScrapeOnce(context.Background()); got != 0 {
		t.Fatalf("ScrapeOnce after death = %d healthy, want 0", got)
	}

	members := c.Members()
	if len(members) != 1 {
		t.Fatalf("dead member dropped from Members: %v", members)
	}
	if !members[0].Stale || members[0].Failures == 0 || members[0].LastErr == "" {
		t.Errorf("dead member not flagged: %+v", members[0])
	}
	// Last-known data is still served, with up=0 signalling staleness.
	stats := c.FleetStats()
	if got := stats[`eventbus.published{instance="pub"}`]; got != 5 {
		t.Errorf("stale stats dropped: published = %d, want 5", got)
	}
	if got := stats[`fleet.instance.up{instance="pub"}`]; got != 0 {
		t.Errorf("fleet.instance.up = %d for stale member, want 0", got)
	}
}

func TestCollectorMalformedTargetFlaggedNotFatal(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("this is not json {"))
	}))
	defer bad.Close()
	good := newMember(t)
	good.reg.Counter("ok").Add(1)

	c := New(WithTargets(
		Target{Name: "bad", Addr: strings.TrimPrefix(bad.URL, "http://")},
		Target{Name: "good", Addr: good.addr()},
	), WithRetry(fastRetry))
	if got := c.ScrapeOnce(context.Background()); got != 1 {
		t.Fatalf("ScrapeOnce = %d healthy, want 1 (the good member)", got)
	}
	for _, mb := range c.Members() {
		switch mb.Name {
		case "bad":
			if !mb.Stale || !strings.Contains(mb.LastErr, "bad body") {
				t.Errorf("malformed member not flagged: %+v", mb)
			}
		case "good":
			if mb.Stale {
				t.Errorf("good member flagged stale: %+v", mb)
			}
		}
	}
}

func TestCollectorFlightSeqResetAfterRestart(t *testing.T) {
	// The recorder behind the server is swappable, simulating a process
	// restart on the same address: fresh recorder, sequence counter reset.
	var rec atomic.Pointer[flight.Recorder]
	rec.Store(flight.New(64))
	mux := http.NewServeMux()
	mux.Handle("/stats", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}"))
	}))
	mux.Handle("/debug/trace", trace.Handler(trace.NewTracer(0)))
	mux.Handle("/debug/flight", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flight.Handler(rec.Load()).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/history", histdb.Handler(nil))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for i := 0; i < 5; i++ {
		rec.Load().Record(flight.KindFrameSend, 1, "s", 1, 64, "")
	}
	c := New(WithTargets(Target{Name: "pub", Addr: strings.TrimPrefix(srv.URL, "http://")}), WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())
	c.mu.Lock()
	inst := c.targets["pub"]
	if inst.flightSeq != 5 {
		t.Fatalf("cursor = %d before restart, want 5", inst.flightSeq)
	}
	before := len(inst.events)
	c.mu.Unlock()

	// Restart: new recorder, two fresh events with seqs 1 and 2 — both below
	// the collector's cursor, only visible if the cursor rewinds.
	rec.Store(flight.New(64))
	rec.Load().Record(flight.KindConnOpen, 2, "", 0, 0, "back up")
	rec.Load().Record(flight.KindFrameSend, 2, "s", 1, 64, "")
	c.ScrapeOnce(context.Background())

	c.mu.Lock()
	defer c.mu.Unlock()
	if inst.restarts != 1 {
		t.Errorf("restarts = %d, want 1", inst.restarts)
	}
	if got := len(inst.events); got != before+2 {
		t.Errorf("events after restart = %d, want %d (old retained + 2 new)", got, before+2)
	}
	if inst.flightSeq != 2 {
		t.Errorf("cursor after restart = %d, want 2 (new incarnation's max seq)", inst.flightSeq)
	}
}

func TestFleetFlightInterleavesAcrossInstances(t *testing.T) {
	m1, m2 := newMember(t), newMember(t)
	m1.rec.Record(flight.KindFrameSend, 1, "s", 1, 64, "first")
	time.Sleep(2 * time.Millisecond)
	m2.rec.Record(flight.KindFrameRecv, 9, "s", 1, 64, "second")
	time.Sleep(2 * time.Millisecond)
	m1.rec.Record(flight.KindFrameSend, 1, "s", 1, 64, "third")

	c := New(WithTargets(Target{Name: "pub", Addr: m1.addr()}, Target{Name: "broker", Addr: m2.addr()}),
		WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())

	evs := c.FleetFlight(0)
	if len(evs) != 3 {
		t.Fatalf("FleetFlight returned %d events, want 3", len(evs))
	}
	want := []struct{ inst, detail string }{{"pub", "first"}, {"broker", "second"}, {"pub", "third"}}
	for i, w := range want {
		if evs[i].Instance != w.inst || evs[i].Detail != w.detail {
			t.Errorf("event %d = %s/%s, want %s/%s", i, evs[i].Instance, evs[i].Detail, w.inst, w.detail)
		}
	}
	if evs[0].Seq != 1 || evs[2].Seq != 2 {
		t.Errorf("per-instance seqs not preserved: %d, %d", evs[0].Seq, evs[2].Seq)
	}
}

func TestFleetHistoryMergedAndCursored(t *testing.T) {
	m := newMember(t)
	db := histdb.New(m.reg, histdb.WithInterval(time.Second))
	// Remount /debug/history with a real db: easiest is a fresh member.
	m2 := &member{reg: m.reg, trc: m.trc, rec: m.rec}
	m2.srv = httptest.NewServer(obsv.DebugMuxFor(m.reg, obsv.NewHealth(), m.rec,
		obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(m.trc), Desc: "trace"},
		obsv.DebugEndpoint{Path: "/debug/history", Handler: histdb.Handler(db), Desc: "history"}))
	defer m2.srv.Close()

	m.reg.Counter("eventbus.published").Add(4)
	db.Sample()
	c := New(WithTargets(Target{Name: "broker", Addr: m2.addr()}), WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())
	c.ScrapeOnce(context.Background()) // re-scrape must not duplicate points

	hist := c.FleetHistory()
	s, ok := hist[`eventbus.published{instance="broker"}`]
	if !ok {
		t.Fatalf("merged history missing instance-labeled series; have %v", keysOf(hist))
	}
	if len(s.Points) != 1 {
		t.Errorf("series holds %d points after overlapping scrapes, want 1", len(s.Points))
	}
}

func keysOf(m map[string]histdb.Series) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFleetTraceAssemblyOverHTTP(t *testing.T) {
	// Three processes, one record journey: the publisher starts the trace,
	// the broker and subscriber Join it from wire-carried IDs — exactly the
	// frameHello propagation path.
	pub, broker, sub := newMember(t), newMember(t), newMember(t)

	root := pub.trc.Start("pub.publish")
	enc := root.Child("pbio.encode")
	time.Sleep(time.Millisecond)
	enc.Finish()

	bctx := broker.trc.Join(root.Trace(), root.Span())
	route := bctx.Child("broker.route")
	sctx := sub.trc.Join(root.Trace(), route.Span())
	dec := sctx.Child("pbio.decode")
	time.Sleep(time.Millisecond)
	dec.Finish()
	route.Finish()
	root.Finish()

	c := New(WithTargets(
		Target{Name: "pub", Addr: pub.addr()},
		Target{Name: "broker", Addr: broker.addr()},
		Target{Name: "sub", Addr: sub.addr()},
	), WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())

	// The index sees one trace spanning all three instances.
	traces := c.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("trace index holds %d traces, want 1", len(traces))
	}
	if got := traces[0].Instances; len(got) != 3 {
		t.Fatalf("trace spans instances %v, want 3", got)
	}

	// And /fleet/trace/<id> serves the stitched tree.
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/fleet/trace/" + traces[0].Trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv TraceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if tv.Spans != 4 || len(tv.Roots) != 1 {
		t.Fatalf("assembled %d spans %d roots, want 4 spans 1 root", tv.Spans, len(tv.Roots))
	}
	if tv.Reference != "pub" {
		t.Errorf("reference instance = %q, want pub (owns the root span)", tv.Reference)
	}
	// Parent links cross all three processes: pub.publish → {pbio.encode,
	// broker.route → pbio.decode}.
	rootView := tv.Roots[0]
	if rootView.Name != "pub.publish" || rootView.Instance != "pub" {
		t.Fatalf("root = %s on %s", rootView.Name, rootView.Instance)
	}
	byName := map[string]SpanView{}
	var walk func(sv SpanView)
	walk = func(sv SpanView) {
		byName[sv.Name] = sv
		for _, ch := range sv.Children {
			walk(ch)
		}
	}
	walk(rootView)
	if byName["broker.route"].Instance != "broker" || byName["broker.route"].Parent != rootView.Span {
		t.Errorf("broker.route not linked under root: %+v", byName["broker.route"])
	}
	if byName["pbio.decode"].Instance != "sub" || byName["pbio.decode"].Parent != byName["broker.route"].Span {
		t.Errorf("pbio.decode not linked under broker.route: %+v", byName["pbio.decode"])
	}
	// Stage shares sum to 100%.
	var sum float64
	for _, st := range tv.Stages {
		sum += st.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("stage shares sum to %.2f%%, want 100%%", sum)
	}
	// 404 and 400 paths.
	if resp, _ := http.Get(srv.URL + "/fleet/trace/ffffffffffffffffffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace → %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/fleet/trace/zzz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad trace id → %d, want 400", resp.StatusCode)
	}
}

func TestCollectorStartStopLoop(t *testing.T) {
	m := newMember(t)
	m.reg.Counter("x").Add(1)
	c := New(WithTargets(Target{Name: "m", Addr: m.addr()}),
		WithRetry(fastRetry), WithInterval(5*time.Millisecond), WithObserver(obsv.New()))
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c.rounds.Load() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never ran twice")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if got := c.FleetStats()[`x{instance="m"}`]; got != 1 {
		t.Errorf("loop scrape missing stats: %d", got)
	}
}

func TestFleetExemplarResolvesOverHTTP(t *testing.T) {
	// Same three-process journey as the assembly test, but this time the
	// broker's routing histogram carries the TraceID as a bucket exemplar —
	// the link under test runs metric → exemplar → assembled tree.
	pub, broker, sub := newMember(t), newMember(t), newMember(t)

	root := pub.trc.Start("pub.publish")
	enc := root.Child("pbio.encode")
	time.Sleep(time.Millisecond)
	enc.Finish()
	bctx := broker.trc.Join(root.Trace(), root.Span())
	route := bctx.Child("broker.route")
	sctx := sub.trc.Join(root.Trace(), route.Span())
	dec := sctx.Child("pbio.decode")
	time.Sleep(time.Millisecond)
	dec.Finish()
	route.Finish()
	root.Finish()

	broker.reg.Histogram("eventbus.route_ns").ObserveExemplar(900, root.Trace())
	// A worse exemplar whose trace was never scraped: resolution must skip
	// it and fall back to the assemblable one.
	var ghost [16]byte
	ghost[0] = 0xdd
	broker.reg.Histogram("eventbus.route_ns").ObserveExemplar(1<<20, ghost)

	c := New(WithTargets(
		Target{Name: "pub", Addr: pub.addr()},
		Target{Name: "broker", Addr: broker.addr()},
		Target{Name: "sub", Addr: sub.addr()},
	), WithRetry(fastRetry))
	c.ScrapeOnce(context.Background())

	// The merged exemplar map keys match the merged snapshot's series names.
	fx := c.FleetExemplars()
	if exs := fx[`eventbus.route_ns{instance="broker"}`]; len(exs) != 2 {
		t.Fatalf("merged exemplars = %v", fx)
	}

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	// /fleet/stats?exemplars=1 carries the rich shape; plain stays flat.
	resp, err := http.Get(srv.URL + "/fleet/stats?exemplars=1")
	if err != nil {
		t.Fatal(err)
	}
	var rich obsv.StatsWithExemplars
	if err := json.NewDecoder(resp.Body).Decode(&rich); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rich.Exemplars[`eventbus.route_ns{instance="broker"}`]) != 2 {
		t.Fatalf("rich fleet stats exemplars = %v", rich.Exemplars)
	}
	if rich.Metrics[`eventbus.route_ns{instance="broker"}.count`] != 2 {
		t.Fatalf("rich fleet stats metrics missing histogram family: %v", rich.Metrics)
	}
	resp, err = http.Get(srv.URL + "/fleet/stats")
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatalf("plain /fleet/stats no longer flat: %v", err)
	}
	resp.Body.Close()

	// /fleet/exemplar/<metric>: the ghost exemplar is worse but cannot
	// assemble, so the traced one wins and resolves into the full tree.
	resp, err = http.Get(srv.URL + "/fleet/exemplar/eventbus.route_ns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exemplar resolution → %d", resp.StatusCode)
	}
	var ev ExemplarView
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Instance != "broker" || ev.Exemplar.Value != 900 {
		t.Fatalf("resolved exemplar = %+v", ev)
	}
	if ev.Exemplar.TraceID != root.Trace().String() || ev.Trace.Trace != root.Trace().String() {
		t.Fatalf("resolved trace = %q / %q, want %q", ev.Exemplar.TraceID, ev.Trace.Trace, root.Trace())
	}
	if ev.Trace.Spans != 4 || ev.Trace.Orphans != 0 || len(ev.Trace.Instances) != 3 {
		t.Fatalf("assembled view = %+v", ev.Trace)
	}
	var sum float64
	for _, st := range ev.Trace.Stages {
		sum += st.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("stage shares sum to %.2f%%", sum)
	}

	// Unknown metric and empty metric fail loudly.
	if resp, _ := http.Get(srv.URL + "/fleet/exemplar/no.such_ns"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown metric → %d, want 404", resp.StatusCode)
	}
}
