// Package telemetry is the fleet half of the observability stack: a
// collector that discovers the processes of one deployment (publisher,
// broker, subscriber, metaserver), scrapes each one's debug listener —
// /stats, /debug/trace, /debug/flight, /debug/history — on an interval with
// incremental cursors, and serves the merged result as a unified /fleet/*
// surface (see http.go).
//
// The design follows the paper's metadata-discovery idiom: fleet members
// self-register their debug endpoint with the metaserver (the "publicly
// known intranet server" of §4.4, internal/discovery), so the collector
// finds its scrape set the same way clients find formats. Static -targets
// work without a metaserver.
//
// Scrapes are incremental: /debug/flight is cursored by sequence number
// (?since_seq=), /debug/trace by span start time (?since=, unix ns), and
// /debug/history by sample time (?since=, unix seconds), so steady-state
// rounds transfer only what happened since the previous round. A target
// that stops answering is retried (internal/retry), then flagged stale —
// its last-known data stays served, never silently dropped — and recovers
// in place when the process comes back. A flight total below the cursor
// means the process restarted and its sequence counter reset; the cursor
// rewinds to zero so the new incarnation's events are picked up.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"openmeta/internal/discovery"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
)

// Target names one scrape endpoint: a process's -debug-addr listener.
type Target struct {
	Name      string // instance name; defaults to Addr
	Component string // binary name, informational
	Addr      string // host:port or http://host:port of the debug listener
}

// Defaults for the collector's bounded per-instance stores and cadence.
const (
	DefaultInterval       = 2 * time.Second
	DefaultSpanCapacity   = 8192 // spans kept per instance (newest win)
	DefaultFlightCapacity = 2048 // flight events kept per instance
)

// FleetEvent is one flight-recorder event attributed to the instance whose
// ring it was scraped from, as served on /fleet/flight.
type FleetEvent struct {
	Instance string `json:"instance"`
	flight.Event
}

// instance is the collector's per-target scrape state. All fields are
// guarded by the Collector mutex.
type instance struct {
	Target
	discovered bool // came from the registry, not -targets

	// Health: a target that fails a whole scrape round keeps its last data
	// and is flagged stale rather than dropped.
	Stale    bool
	Failures int // consecutive failed rounds
	LastErr  string
	LastOK   time.Time

	// /stats — latest flat snapshot, plus the histograms' bucket exemplars
	// from the rich ?exemplars=1 shape (empty when the target predates it).
	stats     map[string]int64
	exemplars map[string][]obsv.Exemplar
	statsAt   time.Time

	// /debug/trace — bounded span store plus the incremental cursor (max
	// start_unix_ns seen) and the server-vs-collector clock delta observed
	// at scrape time (a coarse skew hint, refined per-trace by Assemble).
	spans        []trace.TaggedSpan
	spanCursorNS int64
	clockHint    time.Duration
	spanTotal    int64 // remote ring's lifetime recorded count

	// /debug/flight — bounded event store, seq cursor, restart detection.
	events     []flight.Event
	flightSeq  uint64
	flightOK   bool // endpoint present (DebugMuxFor mounts it only with a recorder)
	restarts   int  // times the seq counter was seen to reset
	histSeries map[string]histdb.Series
	histOK     bool

	// /debug/contention — latest raw snapshot, re-served verbatim under
	// /fleet/contention. Raw because the shape (lock snapshots + profile
	// site deltas) is consumed whole by omtop -contention, not merged.
	contention   json.RawMessage
	contentionOK bool
}

// Collector discovers fleet members, scrapes them on an interval and holds
// the merged state the /fleet handlers serve. Safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	targets   map[string]*instance
	order     []string // registration order for stable iteration
	staticSet []Target
	registry  string // metaserver base URL, "" = static targets only

	interval  time.Duration
	client    *http.Client
	policy    retry.Policy
	spanCap   int
	flightCap int

	rounds    *obsv.Counter
	scrapeErr *obsv.Counter
	spansIn   *obsv.Counter
	eventsIn  *obsv.Counter

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// Option configures a Collector.
type Option func(*Collector)

// WithInterval sets the scrape cadence (default DefaultInterval).
func WithInterval(d time.Duration) Option {
	return func(c *Collector) {
		if d > 0 {
			c.interval = d
		}
	}
}

// WithRegistry points the collector at a metaserver base URL whose
// /instances/ listing is re-read every round, so members that -register
// themselves are scraped without static configuration.
func WithRegistry(baseURL string) Option {
	return func(c *Collector) { c.registry = baseURL }
}

// WithTargets adds statically configured scrape targets; they are always
// scraped, alongside whatever the registry lists.
func WithTargets(ts ...Target) Option {
	return func(c *Collector) { c.staticSet = append(c.staticSet, ts...) }
}

// WithHTTPClient overrides the scrape client (default: 5s-timeout client).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Collector) {
		if hc != nil {
			c.client = hc
		}
	}
}

// WithRetry sets the per-endpoint scrape retry policy. The default is two
// attempts with a short backoff: transient connection errors heal inside a
// round, a dead process fails fast into the stale path.
func WithRetry(p retry.Policy) Option {
	return func(c *Collector) { c.policy = p }
}

// WithObserver registers the collector's own metrics (telemetry.*) on reg.
func WithObserver(reg *obsv.Registry) Option {
	return func(c *Collector) {
		c.rounds = reg.Counter("telemetry.scrape.rounds")
		c.scrapeErr = reg.Counter("telemetry.scrape.errors")
		c.spansIn = reg.Counter("telemetry.spans.scraped")
		c.eventsIn = reg.Counter("telemetry.flight.scraped")
	}
}

// WithSpanCapacity bounds the per-instance span store (default
// DefaultSpanCapacity; newest spans win).
func WithSpanCapacity(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.spanCap = n
		}
	}
}

// WithFlightCapacity bounds the per-instance flight-event store (default
// DefaultFlightCapacity; newest events win).
func WithFlightCapacity(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.flightCap = n
		}
	}
}

// New builds a collector. Call Start to begin scraping on the interval, or
// ScrapeOnce to drive rounds manually (tests, one-shot CLI use).
func New(opts ...Option) *Collector {
	c := &Collector{
		targets:   make(map[string]*instance),
		interval:  DefaultInterval,
		client:    &http.Client{Timeout: 5 * time.Second},
		policy:    retry.Policy{MaxAttempts: 2, Initial: 100 * time.Millisecond, Jitter: -1},
		spanCap:   DefaultSpanCapacity,
		flightCap: DefaultFlightCapacity,
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	for _, t := range c.staticSet {
		c.addTarget(t, false)
	}
	return c
}

// addTarget registers a scrape target if its name is new.
func (c *Collector) addTarget(t Target, discovered bool) {
	if t.Addr == "" {
		return
	}
	if t.Name == "" {
		t.Name = t.Addr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if inst, ok := c.targets[t.Name]; ok {
		inst.Addr = t.Addr // re-registration may move the listener
		if t.Component != "" {
			inst.Component = t.Component
		}
		return
	}
	c.targets[t.Name] = &instance{Target: t, discovered: discovered}
	c.order = append(c.order, t.Name)
}

// Start launches the scrape loop (first round immediately) and returns c.
func (c *Collector) Start() *Collector {
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.interval)
		defer tick.Stop()
		for {
			ctx, cancel := context.WithTimeout(context.Background(), c.interval*4+time.Second)
			c.ScrapeOnce(ctx)
			cancel()
			select {
			case <-c.stopCh:
				return
			case <-tick.C:
			}
		}
	}()
	return c
}

// Stop halts the scrape loop and waits for the in-flight round to finish.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	<-c.done
}

// ScrapeOnce runs one full round: refresh the member list from the registry
// (if configured), then scrape every target concurrently. It returns the
// number of targets that answered.
func (c *Collector) ScrapeOnce(ctx context.Context) int {
	c.rounds.Inc()
	if c.registry != "" {
		if insts, err := discovery.ListInstances(ctx, c.registry); err == nil {
			for _, in := range insts {
				c.addTarget(Target{Name: in.Name, Component: in.Component, Addr: in.DebugAddr}, true)
			}
		} else {
			c.scrapeErr.Inc()
		}
	}
	c.mu.Lock()
	names := append([]string(nil), c.order...)
	c.mu.Unlock()

	ok := 0
	var okMu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if c.scrapeTarget(ctx, name) {
				okMu.Lock()
				ok++
				okMu.Unlock()
			}
		}(name)
	}
	wg.Wait()
	return ok
}

// getJSON fetches one URL with the retry policy and decodes the body into
// out. A non-2xx status is an error except 503 and 404, reported as
// errDisabled so optional endpoints (history without -history-interval, or
// not mounted at all) don't count as scrape failures.
var errDisabled = fmt.Errorf("telemetry: endpoint disabled")

func (c *Collector) getJSON(ctx context.Context, rawURL string, out interface{}) error {
	return retry.Do(ctx, c.policy, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusNotFound {
			// 503: the endpoint exists but its feature is off (history
			// without -history-interval). 404: the endpoint isn't mounted at
			// all. Either way the target lacks the feature — not a failure.
			io.Copy(io.Discard, resp.Body)
			return retry.Permanent(errDisabled)
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return retry.Permanent(fmt.Errorf("telemetry: GET %s: %s", rawURL, resp.Status))
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return retry.Permanent(fmt.Errorf("telemetry: GET %s: bad body: %w", rawURL, err))
		}
		return nil
	})
}

// baseURL normalizes an instance addr into an http base.
func baseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// traceScrape mirrors the /debug/trace JSON response.
type traceScrape struct {
	NowUnixNS int64 `json:"now_unix_ns"`
	Recorded  int64 `json:"recorded"`
	Spans     []struct {
		Trace   string `json:"trace"`
		Span    string `json:"span"`
		Parent  string `json:"parent"`
		Name    string `json:"name"`
		Detail  string `json:"detail"`
		StartNS int64  `json:"start_unix_ns"`
		DurNS   int64  `json:"dur_ns"`
	} `json:"spans"`
}

// flightScrape mirrors the /debug/flight JSON response.
type flightScrape struct {
	Total  uint64         `json:"total"`
	Events []flight.Event `json:"events"`
}

// histScrape mirrors the /debug/history JSON response.
type histScrape struct {
	IntervalMS int64                    `json:"interval_ms"`
	Series     map[string]histdb.Series `json:"series"`
}

// scrapeTarget runs one target's four endpoint scrapes and folds the results
// into its state. Any hard endpoint failure marks the whole target stale —
// partial data from a half-answering process is still recorded, but the
// member is not reported healthy.
func (c *Collector) scrapeTarget(ctx context.Context, name string) bool {
	c.mu.Lock()
	inst, ok := c.targets[name]
	if !ok {
		c.mu.Unlock()
		return false
	}
	base := baseURL(inst.Addr)
	spanCursor := inst.spanCursorNS
	flightSeq := inst.flightSeq
	var histSince int64
	for _, s := range inst.histSeries {
		for _, p := range s.Points {
			if t := p.T / 1000; t > histSince {
				histSince = t
			}
		}
	}
	c.mu.Unlock()

	var firstErr error
	fail := func(err error) {
		if err != nil && err != errDisabled && firstErr == nil {
			firstErr = err
		}
		if err != nil && err != errDisabled {
			c.scrapeErr.Inc()
		}
	}

	// /stats — the whole flat snapshot every round; it is small and merging
	// deltas would lose gauge semantics. Scraped with ?exemplars=1 so the
	// response also carries histogram bucket exemplars; a target that ignores
	// the parameter (older build) still answers with the flat map, so both
	// shapes are accepted.
	var stats map[string]int64
	var exemplars map[string][]obsv.Exemplar
	var rawStats json.RawMessage
	statsErr := c.getJSON(ctx, base+"/stats?exemplars=1", &rawStats)
	if statsErr == nil {
		var rich obsv.StatsWithExemplars
		if err := json.Unmarshal(rawStats, &rich); err == nil && rich.Metrics != nil {
			stats, exemplars = rich.Metrics, rich.Exemplars
		} else if err := json.Unmarshal(rawStats, &stats); err != nil {
			statsErr = fmt.Errorf("telemetry: GET %s/stats: bad body: %w", base, err)
		}
	}
	fail(statsErr)

	// /debug/trace — incremental by span start time.
	var tr traceScrape
	localNow := time.Now()
	traceURL := base + "/debug/trace"
	if spanCursor > 0 {
		traceURL += "?since=" + fmt.Sprint(spanCursor)
	}
	traceErr := c.getJSON(ctx, traceURL, &tr)
	fail(traceErr)

	// /debug/flight — incremental by sequence number; a total below the
	// cursor means the process restarted, so rewind and take everything the
	// new incarnation has.
	flightURL := base + "/debug/flight?n=" + fmt.Sprint(c.flightCap)
	if flightSeq > 0 {
		flightURL += "&since_seq=" + fmt.Sprint(flightSeq)
	}
	var fl flightScrape
	flightErr := c.getJSON(ctx, flightURL, &fl)
	restarted := false
	if flightErr == nil && fl.Total < flightSeq {
		restarted = true
		var again flightScrape
		if err := c.getJSON(ctx, base+"/debug/flight?n="+fmt.Sprint(c.flightCap), &again); err == nil {
			fl = again
		}
	}
	fail(flightErr)

	// /debug/history — incremental by sample time; 503 = disabled, fine.
	var hs histScrape
	histURL := base + "/debug/history"
	if histSince > 0 {
		histURL += "?since=" + fmt.Sprint(histSince)
	}
	histErr := c.getJSON(ctx, histURL, &hs)
	fail(histErr)

	// /debug/contention — the whole snapshot every round (it is small, and
	// the endpoint computes profile deltas per GET); 404 from a build that
	// predates it is "disabled", not a failure.
	var cont json.RawMessage
	contErr := c.getJSON(ctx, base+"/debug/contention", &cont)
	fail(contErr)

	c.mu.Lock()
	defer c.mu.Unlock()
	if firstErr != nil {
		inst.Stale = true
		inst.Failures++
		inst.LastErr = firstErr.Error()
	} else {
		inst.Stale = false
		inst.Failures = 0
		inst.LastErr = ""
		inst.LastOK = time.Now()
	}
	if statsErr == nil && stats != nil {
		inst.stats = stats
		inst.exemplars = exemplars
		inst.statsAt = time.Now()
	}
	if traceErr == nil {
		inst.clockHint = time.Unix(0, tr.NowUnixNS).Sub(localNow)
		inst.spanTotal = tr.Recorded
		added := 0
		for _, js := range tr.Spans {
			tid, ok1 := trace.ParseTraceID(js.Trace)
			sid, ok2 := trace.ParseSpanID(js.Span)
			pid, ok3 := trace.ParseSpanID(js.Parent)
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			inst.spans = append(inst.spans, trace.TaggedSpan{Instance: name, Span: trace.Span{
				Trace: tid, ID: sid, Parent: pid,
				Name: js.Name, Detail: js.Detail,
				Start: time.Unix(0, js.StartNS), Dur: time.Duration(js.DurNS),
			}})
			added++
			if js.StartNS > inst.spanCursorNS {
				inst.spanCursorNS = js.StartNS
			}
		}
		c.spansIn.Add(int64(added))
		if over := len(inst.spans) - c.spanCap; over > 0 {
			inst.spans = append(inst.spans[:0], inst.spans[over:]...)
		}
	}
	if flightErr == nil {
		inst.flightOK = true
		if restarted {
			inst.restarts++
			inst.flightSeq = 0
		}
		// Events arrive newest first; store oldest first.
		for i := len(fl.Events) - 1; i >= 0; i-- {
			ev := fl.Events[i]
			if ev.Seq > inst.flightSeq {
				inst.flightSeq = ev.Seq
			}
			inst.events = append(inst.events, ev)
		}
		c.eventsIn.Add(int64(len(fl.Events)))
		if over := len(inst.events) - c.flightCap; over > 0 {
			inst.events = append(inst.events[:0], inst.events[over:]...)
		}
	} else if flightErr == errDisabled {
		inst.flightOK = false
	}
	if histErr == nil {
		inst.histOK = true
		if inst.histSeries == nil {
			inst.histSeries = make(map[string]histdb.Series)
		}
		for key, s := range hs.Series {
			dst := inst.histSeries[key]
			dst.Kind = s.Kind
			seen := make(map[int64]bool, len(dst.Points))
			for _, p := range dst.Points {
				seen[p.T] = true
			}
			for _, p := range s.Points {
				if !seen[p.T] {
					dst.Points = append(dst.Points, p)
				}
			}
			sort.Slice(dst.Points, func(i, j int) bool { return dst.Points[i].T < dst.Points[j].T })
			inst.histSeries[key] = dst
		}
	} else if histErr == errDisabled {
		inst.histOK = false
	}
	if contErr == nil && len(cont) > 0 {
		inst.contention = cont
		inst.contentionOK = true
	} else if contErr == errDisabled {
		inst.contentionOK = false
	}
	return firstErr == nil
}

// Member is the /fleet/members view of one scrape target.
type Member struct {
	Name       string        `json:"name"`
	Component  string        `json:"component,omitempty"`
	Addr       string        `json:"addr"`
	Discovered bool          `json:"discovered"` // via registry vs static -targets
	Stale      bool          `json:"stale"`
	Failures   int           `json:"failures,omitempty"`
	LastErr    string        `json:"last_err,omitempty"`
	LastOK     time.Time     `json:"last_ok,omitempty"`
	ClockHint  time.Duration `json:"clock_hint_ns"` // remote minus collector clock at scrape
	Spans      int           `json:"spans"`
	Events     int           `json:"events"`
	Restarts   int           `json:"restarts,omitempty"`
}

// Members lists every known target with its health, sorted by name.
func (c *Collector) Members() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Member, 0, len(c.targets))
	for _, inst := range c.targets {
		out = append(out, Member{
			Name: inst.Name, Component: inst.Component, Addr: inst.Addr,
			Discovered: inst.discovered,
			Stale:      inst.Stale, Failures: inst.Failures, LastErr: inst.LastErr,
			LastOK: inst.LastOK, ClockHint: inst.clockHint,
			Spans: len(inst.spans), Events: len(inst.events), Restarts: inst.restarts,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FleetStats merges every instance's last /stats snapshot into one flat map
// with an instance label on every key (obsv.MergeLabeled), so the result
// parses exactly like a single process's /stats. Synthetic
// fleet.instance.up{instance=...} keys (1 healthy, 0 stale) report scrape
// health in-band.
func (c *Collector) FleetStats() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64)
	for _, inst := range c.targets {
		obsv.MergeLabeled(out, inst.stats, "instance", inst.Name)
		up := int64(1)
		if inst.Stale || inst.stats == nil {
			up = 0
		}
		out[obsv.AddLabel("fleet.instance.up", "", "instance", inst.Name)] = up
	}
	return out
}

// FleetExemplars merges every instance's histogram bucket exemplars under
// instance-labeled keys (obsv.MergeLabeledExemplars), mirroring how
// FleetStats labels its merged snapshot — an exemplar key here names the
// same series its histogram family carries in FleetStats.
func (c *Collector) FleetExemplars() map[string][]obsv.Exemplar {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]obsv.Exemplar)
	for _, inst := range c.targets {
		obsv.MergeLabeledExemplars(out, inst.exemplars, "instance", inst.Name)
	}
	return out
}

// ResolvedExemplar is one exemplar resolved through trace assembly: the
// instance that recorded it, the exemplar itself, and the assembled
// cross-process trace its TraceID leads to.
type ResolvedExemplar struct {
	Metric   string
	Instance string
	Exemplar obsv.Exemplar
	Assembly *trace.Assembly
}

// ResolveExemplar links a metric name straight through to an assembled
// trace: it collects every instance's exemplars for metric (an unlabeled
// histogram name like "eventbus.route_ns", or a labeled child in snapshot
// form), orders them worst (highest value) first, and returns the first one
// whose TraceID still assembles from the merged span store. ok is false when
// no instance holds an exemplar for the metric or every exemplar's trace has
// aged out of the span rings.
func (c *Collector) ResolveExemplar(metric string) (ResolvedExemplar, bool) {
	type candidate struct {
		instance string
		ex       obsv.Exemplar
	}
	var cands []candidate
	c.mu.Lock()
	for _, inst := range c.targets {
		for key, exs := range inst.exemplars {
			if key != metric && !strings.HasPrefix(key, metric+"{") {
				continue
			}
			for _, ex := range exs {
				cands = append(cands, candidate{instance: inst.Name, ex: ex})
			}
		}
	}
	c.mu.Unlock()
	// Worst first: the whole point of an exemplar lookup is the tail.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ex.Value > cands[j].ex.Value })
	for _, cand := range cands {
		tid, ok := trace.ParseTraceID(cand.ex.TraceID)
		if !ok {
			continue
		}
		if asm := c.Assemble(tid); asm.Spans > 0 {
			return ResolvedExemplar{
				Metric:   metric,
				Instance: cand.instance,
				Exemplar: cand.ex,
				Assembly: asm,
			}, true
		}
	}
	return ResolvedExemplar{}, false
}

// FleetFlight interleaves every instance's flight events into one
// time-ordered stream (oldest first), each event tagged with its instance.
// Ordering uses each event's own wall-clock timestamp adjusted by the
// instance's observed clock hint, so cross-process cause/effect pairs
// (frame_send on the publisher, frame_recv on the broker) line up even with
// skewed clocks. limit <= 0 means all.
func (c *Collector) FleetFlight(limit int) []FleetEvent {
	c.mu.Lock()
	total := 0
	for _, inst := range c.targets {
		total += len(inst.events)
	}
	out := make([]FleetEvent, 0, total)
	adj := make(map[string]time.Duration, len(c.targets))
	for _, inst := range c.targets {
		adj[inst.Name] = inst.clockHint
		for _, ev := range inst.events {
			out = append(out, FleetEvent{Instance: inst.Name, Event: ev})
		}
	}
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		ti := out[i].Time.Add(-adj[out[i].Instance])
		tj := out[j].Time.Add(-adj[out[j].Instance])
		return ti.Before(tj)
	})
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// TraceSummary is one trace in the /fleet/trace index.
type TraceSummary struct {
	Trace     string    `json:"trace"`
	Spans     int       `json:"spans"`
	Instances []string  `json:"instances"`
	Root      string    `json:"root,omitempty"` // root span name, if scraped
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
}

// Traces indexes every TraceID present in the merged span store, newest
// first. limit <= 0 means all.
func (c *Collector) Traces(limit int) []TraceSummary {
	spans := c.allSpans()
	byTrace := make(map[trace.TraceID]*TraceSummary)
	instSets := make(map[trace.TraceID]map[string]bool)
	for _, sp := range spans {
		ts := byTrace[sp.Trace]
		if ts == nil {
			ts = &TraceSummary{Trace: sp.Trace.String(), Start: sp.Start, End: sp.Start.Add(sp.Dur)}
			byTrace[sp.Trace] = ts
			instSets[sp.Trace] = map[string]bool{}
		}
		ts.Spans++
		instSets[sp.Trace][sp.Instance] = true
		if sp.Start.Before(ts.Start) {
			ts.Start = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.After(ts.End) {
			ts.End = end
		}
		if sp.Parent.IsZero() {
			ts.Root = sp.Name
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for id, ts := range byTrace {
		for inst := range instSets[id] {
			ts.Instances = append(ts.Instances, inst)
		}
		sort.Strings(ts.Instances)
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// allSpans snapshots the merged, deduplicated span store across instances.
func (c *Collector) allSpans() []trace.TaggedSpan {
	c.mu.Lock()
	frags := make([][]trace.TaggedSpan, 0, len(c.targets))
	for _, inst := range c.targets {
		frags = append(frags, append([]trace.TaggedSpan(nil), inst.spans...))
	}
	c.mu.Unlock()
	return trace.MergeSpans(frags...)
}

// Assemble stitches one TraceID's spans from every instance into a
// parent-linked tree with skew estimates (trace.Assemble).
func (c *Collector) Assemble(id trace.TraceID) *trace.Assembly {
	return trace.Assemble(id, c.allSpans())
}

// FleetHistory merges every instance's history series under instance-labeled
// keys, mirroring the single-process /debug/history response shape.
func (c *Collector) FleetHistory() map[string]histdb.Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]histdb.Series)
	for _, inst := range c.targets {
		for key, s := range inst.histSeries {
			out[obsv.AddLabel(key, "", "instance", inst.Name)] = s
		}
	}
	return out
}

// FleetContention returns every instance's latest /debug/contention snapshot
// keyed by instance name, each verbatim as the instance served it. Instances
// whose build lacks the endpoint (or that have not been scraped yet) are
// omitted.
func (c *Collector) FleetContention() map[string]json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]json.RawMessage)
	for _, inst := range c.targets {
		if len(inst.contention) > 0 {
			out[inst.Name] = inst.contention
		}
	}
	return out
}
