package xmlschema

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"openmeta/internal/xmltext"
)

// Parse reads and validates a schema document from r.
func Parse(r io.Reader) (*Schema, error) {
	doc, err := xmltext.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc)
}

// ParseString parses a schema document held in memory.
func ParseString(src string) (*Schema, error) {
	doc, err := xmltext.ParseString(src)
	if err != nil {
		return nil, err
	}
	return FromDocument(doc)
}

// FromDocument validates and converts an already-parsed XML document.
func FromDocument(doc *xmltext.Document) (*Schema, error) {
	root := doc.Root
	if root == nil || root.Name.Local != "schema" || !IsSchemaNamespace(root.Name.Space) {
		got := "<nil>"
		if root != nil {
			got = fmt.Sprintf("<%s> in namespace %q", root.Name, root.Name.Space)
		}
		return nil, fmt.Errorf("%w: got %s", ErrNotSchema, got)
	}
	s := &Schema{
		byName:       make(map[string]*ComplexType),
		simpleByName: make(map[string]*SimpleType),
	}
	s.TargetNamespace, _ = root.Attr("targetNamespace")
	for _, child := range root.Elements() {
		switch child.Name.Local {
		case "annotation":
			s.Doc = documentation(child)
		case "simpleType":
			st, err := parseSimpleType(child, s)
			if err != nil {
				return nil, err
			}
			if _, dup := s.simpleByName[st.Name]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateType, st.Name)
			}
			if _, dup := s.byName[st.Name]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateType, st.Name)
			}
			s.SimpleTypes = append(s.SimpleTypes, st)
			s.simpleByName[st.Name] = st
		case "complexType":
			ct, err := parseComplexType(child, s)
			if err != nil {
				return nil, err
			}
			if _, dup := s.byName[ct.Name]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateType, ct.Name)
			}
			if _, dup := s.simpleByName[ct.Name]; dup {
				return nil, fmt.Errorf("%w: %q", ErrDuplicateType, ct.Name)
			}
			s.Types = append(s.Types, ct)
			s.byName[ct.Name] = ct
		default:
			// Unknown schema constructs (simpleType, import, ...) are
			// outside the supported subset; reject loudly rather than
			// silently producing a wrong wire format.
			return nil, fmt.Errorf("xmlschema: line %d: unsupported schema construct <%s>",
				child.Line, child.Name.Local)
		}
	}
	if len(s.Types) == 0 {
		return nil, ErrNoTypes
	}
	return s, nil
}

func documentation(annotation *xmltext.Element) string {
	if d, ok := annotation.First("documentation"); ok {
		return strings.TrimSpace(d.TextContent())
	}
	return ""
}

func parseComplexType(el *xmltext.Element, s *Schema) (*ComplexType, error) {
	name, ok := el.Attr("name")
	if !ok || name == "" {
		return nil, fmt.Errorf("xmlschema: line %d: complexType missing name attribute", el.Line)
	}
	ct := &ComplexType{Name: name}
	seen := make(map[string]int) // element name -> index in ct.Elements

	var walk func(parent *xmltext.Element) error
	walk = func(parent *xmltext.Element) error {
		for _, child := range parent.Elements() {
			switch child.Name.Local {
			case "annotation":
				ct.Doc = documentation(child)
			case "sequence", "all":
				// 2001-style content model wrappers are transparent: the
				// paper's documents put elements directly under complexType.
				if err := walk(child); err != nil {
					return err
				}
			case "element":
				e, err := parseElement(child, name, s)
				if err != nil {
					return err
				}
				if _, dup := seen[e.Name]; dup {
					return fmt.Errorf("%w: %q in type %q", ErrDuplicateElement, e.Name, name)
				}
				seen[e.Name] = len(ct.Elements)
				ct.Elements = append(ct.Elements, e)
			default:
				return fmt.Errorf("xmlschema: line %d: unsupported construct <%s> in complexType %q",
					child.Line, child.Name.Local, name)
			}
		}
		return nil
	}
	if err := walk(el); err != nil {
		return nil, err
	}
	if len(ct.Elements) == 0 {
		return nil, fmt.Errorf("xmlschema: complexType %q has no elements", name)
	}
	if err := resolveCounts(ct); err != nil {
		return nil, err
	}
	return ct, nil
}

func parseElement(el *xmltext.Element, typeName string, s *Schema) (Element, error) {
	var e Element
	name, ok := el.Attr("name")
	if !ok || name == "" {
		return e, fmt.Errorf("xmlschema: line %d: element in type %q missing name attribute",
			el.Line, typeName)
	}
	e.Name = name

	typeAttr, ok := el.Attr("type")
	if !ok || typeAttr == "" {
		return e, fmt.Errorf("xmlschema: line %d: element %q missing type attribute", el.Line, name)
	}
	ref, err := resolveTypeRef(typeAttr, s)
	if err != nil {
		return e, fmt.Errorf("element %q: %w", name, err)
	}
	e.Type = ref

	if minStr, ok := el.Attr("minOccurs"); ok {
		n, err := strconv.Atoi(minStr)
		if err != nil || n < 0 {
			return e, fmt.Errorf("%w: element %q minOccurs=%q", ErrBadOccurs, name, minStr)
		}
		e.MinOccurs = n
	} else {
		e.MinOccurs = 1
	}

	maxStr, ok := el.Attr("maxOccurs")
	if !ok {
		e.Array = NoArray
		return e, nil
	}
	switch {
	case maxStr == "*" || maxStr == "unbounded":
		// Dynamically allocated array; length travels in a synthesized
		// integer field (the eta / eta_count pattern of Appendix A).
		e.Array = DynamicArray
		e.CountField = name + "_count"
	case isNumeric(maxStr):
		n, err := strconv.Atoi(maxStr)
		if err != nil || n < 1 {
			return e, fmt.Errorf("%w: element %q maxOccurs=%q", ErrBadOccurs, name, maxStr)
		}
		if n == 1 {
			e.Array = NoArray
		} else {
			e.Array = StaticArray
			e.Size = n
		}
	default:
		// A string value names an integer element holding the run-time size.
		e.Array = CountedArray
		e.CountField = maxStr
	}
	return e, nil
}

// resolveTypeRef maps a type attribute value to a TypeRef. Prefixed names
// whose prefix text suggests the xsd namespace, and bare names matching a
// primitive, resolve to primitives; anything else must name a complexType
// already defined in the schema (forward references are rejected because the
// Catalog must know a type's size before it can be embedded).
func resolveTypeRef(attr string, s *Schema) (TypeRef, error) {
	prefix, local := "", attr
	if i := strings.IndexByte(attr, ':'); i >= 0 {
		prefix, local = attr[:i], attr[i+1:]
	}
	if prefix != "" {
		// Attribute values are not namespace-resolved by XML itself; the
		// convention (followed by the paper's documents) is that the xsd
		// prefix marks schema primitives. Accept any prefix for a name that
		// only exists as a primitive.
		if p, ok := PrimitiveByName(local); ok {
			return TypeRef{Primitive: p}, nil
		}
		return TypeRef{}, fmt.Errorf("%w: %q", ErrUnknownType, attr)
	}
	if _, ok := s.byName[local]; ok {
		return TypeRef{Named: local}, nil
	}
	if st, ok := s.simpleByName[local]; ok {
		// A user-defined simple type is its base primitive on the wire
		// (footnote 1 of the paper's §4.1.1).
		return TypeRef{Primitive: st.Base, Simple: st.Name}, nil
	}
	if p, ok := PrimitiveByName(local); ok {
		return TypeRef{Primitive: p}, nil
	}
	return TypeRef{}, fmt.Errorf("%w: %q (user types must be defined earlier in the document)",
		ErrUnknownType, attr)
}

// parseSimpleType handles <xsd:simpleType name="..."> with a restriction or
// extension of a primitive (or of an earlier simple type, which chains to
// its primitive). Facets relevant to message tooling are retained.
func parseSimpleType(el *xmltext.Element, s *Schema) (*SimpleType, error) {
	name, ok := el.Attr("name")
	if !ok || name == "" {
		return nil, fmt.Errorf("xmlschema: line %d: simpleType missing name attribute", el.Line)
	}
	st := &SimpleType{Name: name, MaxLength: -1}
	var deriv *xmltext.Element
	for _, child := range el.Elements() {
		switch child.Name.Local {
		case "annotation":
			st.Doc = documentation(child)
		case "restriction", "extension":
			if deriv != nil {
				return nil, fmt.Errorf("xmlschema: simpleType %q has multiple derivations", name)
			}
			deriv = child
		default:
			return nil, fmt.Errorf("xmlschema: line %d: unsupported construct <%s> in simpleType %q",
				child.Line, child.Name.Local, name)
		}
	}
	if deriv == nil {
		return nil, fmt.Errorf("xmlschema: simpleType %q has no restriction or extension", name)
	}
	baseAttr, ok := deriv.Attr("base")
	if !ok || baseAttr == "" {
		return nil, fmt.Errorf("xmlschema: simpleType %q: %s missing base attribute",
			name, deriv.Name.Local)
	}
	baseLocal := baseAttr
	if i := strings.IndexByte(baseAttr, ':'); i >= 0 {
		baseLocal = baseAttr[i+1:]
	}
	if p, ok := PrimitiveByName(baseLocal); ok {
		st.Base = p
	} else if prev, ok := s.simpleByName[baseLocal]; ok {
		st.Base = prev.Base
	} else {
		return nil, fmt.Errorf("%w: simpleType %q base %q", ErrUnknownType, name, baseAttr)
	}
	for _, facet := range deriv.Elements() {
		val, _ := facet.Attr("value")
		switch facet.Name.Local {
		case "enumeration":
			st.Enumeration = append(st.Enumeration, val)
		case "minInclusive":
			st.MinInclusive = val
		case "maxInclusive":
			st.MaxInclusive = val
		case "maxLength":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("xmlschema: simpleType %q: bad maxLength %q", name, val)
			}
			st.MaxLength = n
		case "annotation", "pattern", "minLength", "length", "whiteSpace",
			"minExclusive", "maxExclusive", "totalDigits", "fractionDigits":
			// Accepted but not interpreted: they do not affect the wire.
		default:
			return nil, fmt.Errorf("xmlschema: simpleType %q: unsupported facet <%s>",
				name, facet.Name.Local)
		}
	}
	return st, nil
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// resolveCounts validates counted arrays (their count field must be a scalar
// integer element of the same type) and checks that synthesized dynamic
// count names do not collide with declared elements of the wrong shape.
func resolveCounts(ct *ComplexType) error {
	byName := make(map[string]*Element, len(ct.Elements))
	for i := range ct.Elements {
		byName[ct.Elements[i].Name] = &ct.Elements[i]
	}
	for i := range ct.Elements {
		e := &ct.Elements[i]
		switch e.Array {
		case CountedArray:
			cf, ok := byName[e.CountField]
			if !ok {
				return fmt.Errorf("%w: element %q sized by missing element %q",
					ErrBadCountField, e.Name, e.CountField)
			}
			if err := checkCountElement(cf); err != nil {
				return fmt.Errorf("element %q: %w", e.Name, err)
			}
		case DynamicArray:
			if cf, ok := byName[e.CountField]; ok {
				// A declared element with the synthesized name is allowed
				// only if it is itself a valid count field (Appendix A's
				// PBIO metadata declares eta_count explicitly).
				if err := checkCountElement(cf); err != nil {
					return fmt.Errorf("element %q: %w", e.Name, err)
				}
			}
		}
	}
	return nil
}

func checkCountElement(cf *Element) error {
	if cf.Array != NoArray {
		return fmt.Errorf("%w: count element %q is an array", ErrBadCountField, cf.Name)
	}
	if !cf.Type.IsPrimitive() || !isIntegerPrimitive(cf.Type.Primitive) {
		return fmt.Errorf("%w: count element %q must be an integer type, got %s",
			ErrBadCountField, cf.Name, cf.Type)
	}
	return nil
}

func isIntegerPrimitive(p Primitive) bool {
	switch p {
	case Byte, UnsignedByte, Short, UnsignedShort, Int, Integer, UnsignedInt, Long, UnsignedLong:
		return true
	default:
		return false
	}
}
