package xmlschema

import (
	"errors"
	"strings"
	"testing"
)

// schemaA is Figure 6 from the paper: Structure A, no arrays, no nesting.
const schemaA = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>
      ASDOff
    </xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" />
    <xsd:element name="eta" type="xsd:unsigned-long" />
  </xsd:complexType>
</xsd:schema>`

// schemaB is Figure 9: static and dynamically-allocated arrays.
const schemaB = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

// schemaCD is Figure 12: arrays and composition by nesting.
const schemaCD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="1" maxOccurs="*" />
  </xsd:complexType>
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEvent" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEvent" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEvent" />
  </xsd:complexType>
</xsd:schema>`

func TestParseSchemaA(t *testing.T) {
	s, err := ParseString(schemaA)
	if err != nil {
		t.Fatal(err)
	}
	if s.TargetNamespace != "http://www.cc.gatech.edu/~pmw/schemas" {
		t.Errorf("targetNamespace = %q", s.TargetNamespace)
	}
	if s.Doc != "ASDOff" {
		t.Errorf("doc = %q", s.Doc)
	}
	ct, ok := s.TypeByName("ASDOffEvent")
	if !ok {
		t.Fatal("ASDOffEvent not found")
	}
	if len(ct.Elements) != 8 {
		t.Fatalf("elements = %d, want 8", len(ct.Elements))
	}
	wantTypes := []Primitive{String, String, Integer, String, String, String, UnsignedLong, UnsignedLong}
	for i, e := range ct.Elements {
		if e.Type.Primitive != wantTypes[i] {
			t.Errorf("element %s type = %s, want %s", e.Name, e.Type, wantTypes[i])
		}
		if e.Array != NoArray {
			t.Errorf("element %s should be scalar", e.Name)
		}
	}
}

func TestParseSchemaBArrays(t *testing.T) {
	s, err := ParseString(schemaB)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.Types[0]
	off := ct.Elements[6]
	if off.Array != StaticArray || off.Size != 5 {
		t.Errorf("off = %+v, want static[5]", off)
	}
	eta := ct.Elements[7]
	if eta.Array != DynamicArray {
		t.Errorf("eta array kind = %v, want DynamicArray", eta.Array)
	}
	if eta.CountField != "eta_count" {
		t.Errorf("eta count field = %q, want eta_count", eta.CountField)
	}
	if eta.MinOccurs != 0 {
		t.Errorf("eta minOccurs = %d", eta.MinOccurs)
	}
}

func TestParseSchemaCDNesting(t *testing.T) {
	s, err := ParseString(schemaCD)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Types) != 2 {
		t.Fatalf("types = %d", len(s.Types))
	}
	three := s.Types[1]
	if three.Name != "threeASDOffs" {
		t.Fatalf("second type = %q", three.Name)
	}
	if three.Elements[0].Type.Named != "ASDOffEvent" {
		t.Errorf("one type = %s", three.Elements[0].Type)
	}
	if three.Elements[1].Type.Primitive != Double {
		t.Errorf("bart type = %s", three.Elements[1].Type)
	}
}

func TestParseCountedArray(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="n" type="xsd:int" />
	    <xsd:element name="vals" type="xsd:double" minOccurs="0" maxOccurs="n" />
	  </xsd:complexType>
	</xsd:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := s.Types[0].Elements[1]
	if vals.Array != CountedArray || vals.CountField != "n" {
		t.Errorf("vals = %+v", vals)
	}
}

func TestParseSequenceWrapper(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:complexType name="T">
	    <xs:sequence>
	      <xs:element name="a" type="xs:int"/>
	      <xs:element name="b" type="xs:unsignedLong"/>
	    </xs:sequence>
	  </xs:complexType>
	</xs:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Types[0].Elements) != 2 {
		t.Fatalf("elements = %d", len(s.Types[0].Elements))
	}
	if s.Types[0].Elements[1].Type.Primitive != UnsignedLong {
		t.Errorf("b type = %s", s.Types[0].Elements[1].Type)
	}
}

func TestParseMaxOccursOne(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="a" type="xsd:int" minOccurs="1" maxOccurs="1"/>
	  </xsd:complexType>
	</xsd:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Elements[0].Array != NoArray {
		t.Error("maxOccurs=1 should be scalar")
	}
}

func TestParseUnboundedKeyword(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="xs" type="xsd:float" minOccurs="0" maxOccurs="unbounded"/>
	  </xsd:complexType>
	</xsd:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	e := s.Types[0].Elements[0]
	if e.Array != DynamicArray || e.CountField != "xs_count" {
		t.Errorf("e = %+v", e)
	}
}

func TestParseExplicitCountForDynamic(t *testing.T) {
	// Declaring eta_count explicitly (as the C struct in Figure 7 does) must
	// be accepted when it is a valid integer scalar.
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*"/>
	    <xsd:element name="eta_count" type="xsd:integer"/>
	  </xsd:complexType>
	</xsd:schema>`
	if _, err := ParseString(src); err != nil {
		t.Fatal(err)
	}
	// ... and rejected when it has the wrong shape.
	bad := strings.Replace(src, `type="xsd:integer"`, `type="xsd:string"`, 1)
	if _, err := ParseString(bad); !errors.Is(err, ErrBadCountField) {
		t.Errorf("string eta_count err = %v, want ErrBadCountField", err)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want error
	}{
		{
			"not a schema",
			`<root/>`,
			ErrNotSchema,
		},
		{
			"wrong namespace",
			`<xsd:schema xmlns:xsd="urn:other"><xsd:complexType name="T"/></xsd:schema>`,
			ErrNotSchema,
		},
		{
			"no types",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"/>`,
			ErrNoTypes,
		},
		{
			"duplicate type",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
			</xsd:schema>`,
			ErrDuplicateType,
		},
		{
			"duplicate element",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T">
			    <xsd:element name="a" type="xsd:int"/>
			    <xsd:element name="a" type="xsd:int"/>
			  </xsd:complexType>
			</xsd:schema>`,
			ErrDuplicateElement,
		},
		{
			"unknown primitive",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:quaternion"/></xsd:complexType>
			</xsd:schema>`,
			ErrUnknownType,
		},
		{
			"forward reference",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="Outer"><xsd:element name="in" type="Inner"/></xsd:complexType>
			  <xsd:complexType name="Inner"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
			</xsd:schema>`,
			ErrUnknownType,
		},
		{
			"bad minOccurs",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int" minOccurs="-2"/></xsd:complexType>
			</xsd:schema>`,
			ErrBadOccurs,
		},
		{
			"zero maxOccurs",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int" maxOccurs="0"/></xsd:complexType>
			</xsd:schema>`,
			ErrBadOccurs,
		},
		{
			"missing count field",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int" maxOccurs="nope"/></xsd:complexType>
			</xsd:schema>`,
			ErrBadCountField,
		},
		{
			"array count field",
			`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			  <xsd:complexType name="T">
			    <xsd:element name="n" type="xsd:int" maxOccurs="3"/>
			    <xsd:element name="a" type="xsd:int" maxOccurs="n"/>
			  </xsd:complexType>
			</xsd:schema>`,
			ErrBadCountField,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.src)
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParseRejectsUnsupportedConstructs(t *testing.T) {
	srcs := []string{
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:simpleType name="S"/>
		  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`,
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType name="T"><xsd:attribute name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`,
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`,
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType name="T"><xsd:element type="xsd:int"/></xsd:complexType>
		</xsd:schema>`,
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType name="T"><xsd:element name="a"/></xsd:complexType>
		</xsd:schema>`,
		`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType name="Empty"></xsd:complexType>
		</xsd:schema>`,
	}
	for i, src := range srcs {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: want error, got nil", i)
		}
	}
}

func TestPrimitiveNames(t *testing.T) {
	both := map[string]string{
		"unsigned-long":  "unsignedLong",
		"unsigned-int":   "unsignedInt",
		"unsigned-short": "unsignedShort",
		"unsigned-byte":  "unsignedByte",
	}
	for draft, modern := range both {
		pd, ok1 := PrimitiveByName(draft)
		pm, ok2 := PrimitiveByName(modern)
		if !ok1 || !ok2 || pd != pm {
			t.Errorf("draft %q and modern %q should map to the same primitive", draft, modern)
		}
	}
	if _, ok := PrimitiveByName("complexType"); ok {
		t.Error("complexType should not be a primitive")
	}
	if Integer.String() != "integer" || UnsignedLong.String() != "unsignedLong" {
		t.Error("Primitive.String wrong")
	}
	if Primitive(99).String() != "Primitive(99)" {
		t.Error("invalid Primitive.String wrong")
	}
}

func TestArrayKindString(t *testing.T) {
	kinds := map[ArrayKind]string{
		NoArray: "scalar", StaticArray: "static array",
		DynamicArray: "dynamic array", CountedArray: "counted array",
		ArrayKind(9): "ArrayKind(9)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestGenRoundTrip(t *testing.T) {
	for _, src := range []string{schemaA, schemaB, schemaCD} {
		s1, err := ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		out := MarshalString(s1)
		s2, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse generated schema: %v\n%s", err, out)
		}
		if len(s2.Types) != len(s1.Types) {
			t.Fatalf("type count changed: %d -> %d", len(s1.Types), len(s2.Types))
		}
		for i, ct1 := range s1.Types {
			ct2 := s2.Types[i]
			if ct1.Name != ct2.Name || len(ct1.Elements) != len(ct2.Elements) {
				t.Fatalf("type %d changed: %+v -> %+v", i, ct1, ct2)
			}
			for j, e1 := range ct1.Elements {
				e2 := ct2.Elements[j]
				if e1.Name != e2.Name || e1.Type != e2.Type || e1.Array != e2.Array ||
					e1.Size != e2.Size || e1.CountField != e2.CountField {
					t.Errorf("%s.%s changed: %+v -> %+v", ct1.Name, e1.Name, e1, e2)
				}
			}
		}
	}
}

func TestTypeRefString(t *testing.T) {
	if (TypeRef{Primitive: Integer}).String() != "xsd:integer" {
		t.Error("primitive TypeRef.String wrong")
	}
	if (TypeRef{Named: "ASDOffEvent"}).String() != "ASDOffEvent" {
		t.Error("named TypeRef.String wrong")
	}
}
