// Package xmlschema parses the subset of the W3C XML Schema language that
// the paper uses to describe message formats: named complexType definitions
// composed of element declarations with primitive xsd types, references to
// previously defined complexTypes, and static / dynamic arrays expressed
// through minOccurs/maxOccurs.
//
// Both the 1999 draft type names that appear in the paper (for example
// xsd:unsigned-long) and the final 2001 recommendation names
// (xsd:unsignedLong) are accepted.
package xmlschema

import (
	"errors"
	"fmt"
)

// Namespace URIs recognized as "the XML Schema namespace". The paper's
// documents use the 1999 draft URI.
var schemaNamespaces = map[string]bool{
	"http://www.w3.org/1999/XMLSchema":    true,
	"http://www.w3.org/2000/10/XMLSchema": true,
	"http://www.w3.org/2001/XMLSchema":    true,
}

// IsSchemaNamespace reports whether uri is one of the XML Schema namespace
// URIs this package recognizes.
func IsSchemaNamespace(uri string) bool { return schemaNamespaces[uri] }

// Primitive identifies an XML Schema primitive datatype (or a datatype this
// package maps onto one).
type Primitive int

// Supported primitive datatypes.
const (
	String Primitive = iota + 1
	Byte
	UnsignedByte
	Short
	UnsignedShort
	Int
	Integer // xsd:integer, mapped to C int exactly as the paper does
	UnsignedInt
	Long
	UnsignedLong
	Float
	Double
	Boolean
	Char // single character; not an xsd builtin but needed for C char fields
)

var primitiveNames = map[Primitive]string{
	String:        "string",
	Byte:          "byte",
	UnsignedByte:  "unsignedByte",
	Short:         "short",
	UnsignedShort: "unsignedShort",
	Int:           "int",
	Integer:       "integer",
	UnsignedInt:   "unsignedInt",
	Long:          "long",
	UnsignedLong:  "unsignedLong",
	Float:         "float",
	Double:        "double",
	Boolean:       "boolean",
	Char:          "char",
}

// String returns the canonical (2001 recommendation) name of the primitive.
func (p Primitive) String() string {
	if s, ok := primitiveNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Primitive(%d)", int(p))
}

// primitiveByName maps every accepted spelling — 2001 names, 1999 hyphenated
// draft names, and a few aliases — to the primitive.
var primitiveByName = map[string]Primitive{
	"string":         String,
	"byte":           Byte,
	"unsignedByte":   UnsignedByte,
	"unsigned-byte":  UnsignedByte,
	"short":          Short,
	"unsignedShort":  UnsignedShort,
	"unsigned-short": UnsignedShort,
	"int":            Int,
	"integer":        Integer,
	"unsignedInt":    UnsignedInt,
	"unsigned-int":   UnsignedInt,
	"long":           Long,
	"unsignedLong":   UnsignedLong,
	"unsigned-long":  UnsignedLong,
	"float":          Float,
	"double":         Double,
	"decimal":        Double, // closest binary type
	"boolean":        Boolean,
	"char":           Char,
}

// PrimitiveByName resolves an xsd type local name to a primitive.
func PrimitiveByName(local string) (Primitive, bool) {
	p, ok := primitiveByName[local]
	return p, ok
}

// ArrayKind distinguishes the three array forms of §4.1.1 of the paper.
type ArrayKind int

const (
	// NoArray means the element is a single value.
	NoArray ArrayKind = iota
	// StaticArray is a fixed-size array: maxOccurs="5".
	StaticArray
	// DynamicArray is an unbounded, dynamically allocated array:
	// maxOccurs="*" (the paper's wildcard; "unbounded" is also accepted).
	// Its length travels in a synthesized <name>_count field.
	DynamicArray
	// CountedArray is sized at run time by another integer element named in
	// maxOccurs: maxOccurs="eta_count".
	CountedArray
)

// String names the array kind for diagnostics.
func (k ArrayKind) String() string {
	switch k {
	case NoArray:
		return "scalar"
	case StaticArray:
		return "static array"
	case DynamicArray:
		return "dynamic array"
	case CountedArray:
		return "counted array"
	default:
		return fmt.Sprintf("ArrayKind(%d)", int(k))
	}
}

// TypeRef is a reference to either a primitive xsd type or a previously
// defined complexType (by name).
type TypeRef struct {
	// Primitive is set for xsd primitive types (zero otherwise). Elements
	// declared with a named simpleType resolve here to its base primitive.
	Primitive Primitive
	// Named is the referenced complexType name for user-defined types.
	Named string
	// Simple carries the declaring simpleType's name when the reference
	// went through one (informational; the wire sees the base primitive).
	Simple string
}

// IsPrimitive reports whether the reference is to an xsd primitive.
func (r TypeRef) IsPrimitive() bool { return r.Primitive != 0 }

// String renders the reference as it would appear in a type attribute.
func (r TypeRef) String() string {
	if r.IsPrimitive() {
		return "xsd:" + r.Primitive.String()
	}
	return r.Named
}

// Element is one element declaration inside a complexType: one field of the
// message format.
type Element struct {
	// Name is the field name.
	Name string
	// Type is the element's declared type.
	Type TypeRef
	// Array describes the occurrence constraint.
	Array ArrayKind
	// Size is the static element count for StaticArray.
	Size int
	// CountField names the element holding the run-time length for
	// CountedArray, or the synthesized count field for DynamicArray.
	CountField string
	// MinOccurs is the declared minimum (informational; PBIO always
	// transmits the full static size or the counted length).
	MinOccurs int
}

// ComplexType is a named message format definition.
type ComplexType struct {
	// Name is the format name from the complexType name attribute.
	Name string
	// Elements are the fields in declaration order.
	Elements []Element
	// Doc is the xsd:documentation text, if any.
	Doc string
}

// SimpleType is a named datatype derived from a primitive by restriction or
// extension — the paper's footnote 1: "XML Schema does allow the definition
// of new simple types by extension or restriction of primitive types, and
// these types can be used in the definition of message formats." For wire
// purposes a simple type is its base primitive; facet constraints
// (enumerations, ranges, lengths) are carried for validation tooling.
type SimpleType struct {
	// Name is the simpleType name.
	Name string
	// Base is the underlying primitive.
	Base Primitive
	// Doc is the xsd:documentation text, if any.
	Doc string
	// Enumeration lists permitted values when the restriction enumerates.
	Enumeration []string
	// MinInclusive/MaxInclusive are numeric range facets (raw text; empty
	// when absent).
	MinInclusive, MaxInclusive string
	// MaxLength is the string length facet (-1 when absent).
	MaxLength int
}

// Schema is a parsed schema document: an ordered list of complexType
// definitions (order matters — a type may only reference types defined
// before it, mirroring the Catalog discipline of the paper's tool).
type Schema struct {
	// TargetNamespace is the schema's target namespace URI.
	TargetNamespace string
	// Doc is the top-level xsd:documentation text, if any.
	Doc string
	// Types holds the complexTypes in document order.
	Types []*ComplexType
	// SimpleTypes holds named simple types in document order.
	SimpleTypes []*SimpleType

	byName       map[string]*ComplexType
	simpleByName map[string]*SimpleType
}

// SimpleTypeByName returns the named simple type.
func (s *Schema) SimpleTypeByName(name string) (*SimpleType, bool) {
	t, ok := s.simpleByName[name]
	return t, ok
}

// TypeByName returns the complexType with the given name.
func (s *Schema) TypeByName(name string) (*ComplexType, bool) {
	t, ok := s.byName[name]
	return t, ok
}

// Errors reported during schema validation. Parse wraps them with position
// and name context; callers match with errors.Is.
var (
	ErrNotSchema        = errors.New("xmlschema: document root is not an XML Schema")
	ErrDuplicateType    = errors.New("xmlschema: duplicate complexType name")
	ErrDuplicateElement = errors.New("xmlschema: duplicate element name")
	ErrUnknownType      = errors.New("xmlschema: unknown type reference")
	ErrBadOccurs        = errors.New("xmlschema: invalid occurrence constraint")
	ErrBadCountField    = errors.New("xmlschema: invalid count field for counted array")
	ErrNoTypes          = errors.New("xmlschema: schema defines no complexTypes")
)
