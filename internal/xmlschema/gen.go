package xmlschema

import (
	"strconv"

	"openmeta/internal/xmltext"
)

// The namespace URI emitted by ToDocument. We generate 1999-draft documents
// to match the paper's appendix exactly; the parser accepts all variants.
const emitNamespace = "http://www.w3.org/1999/XMLSchema"

// ToDocument renders the schema back to an XML document tree, inverse of
// FromDocument. It lets a metadata repository generate schema documents
// dynamically (the "server can also be extended to dynamically generate
// metadata" behaviour of §4.4).
func ToDocument(s *Schema) *xmltext.Document {
	root := &xmltext.Element{
		Name: xmltext.Name{Space: emitNamespace, Prefix: "xsd", Local: "schema"},
		Attrs: []xmltext.Attr{
			{Name: xmltext.Name{Prefix: "xmlns", Local: "xsd"}, Value: emitNamespace},
		},
	}
	if s.TargetNamespace != "" {
		root.Attrs = append(root.Attrs, xmltext.Attr{
			Name: xmltext.Name{Local: "targetNamespace"}, Value: s.TargetNamespace,
		})
	}
	if s.Doc != "" {
		root.Children = append(root.Children, annotationNode(s.Doc))
	}
	for _, ct := range s.Types {
		root.Children = append(root.Children, complexTypeNode(ct))
	}
	return &xmltext.Document{
		Prolog: []xmltext.Node{&xmltext.ProcInst{Target: "xml", Data: `version="1.0"`}},
		Root:   root,
	}
}

// MarshalString renders the schema as pretty-printed XML text.
func MarshalString(s *Schema) string {
	doc := ToDocument(s)
	var out string
	out = xmltext.Marshal(doc.Prolog[0], "") + "\n" + xmltext.Marshal(doc.Root, "  ") + "\n"
	return out
}

func annotationNode(doc string) *xmltext.Element {
	return &xmltext.Element{
		Name: xmltext.Name{Space: emitNamespace, Prefix: "xsd", Local: "annotation"},
		Children: []xmltext.Node{&xmltext.Element{
			Name:     xmltext.Name{Space: emitNamespace, Prefix: "xsd", Local: "documentation"},
			Children: []xmltext.Node{&xmltext.Text{Data: doc}},
		}},
	}
}

func complexTypeNode(ct *ComplexType) *xmltext.Element {
	el := &xmltext.Element{
		Name:  xmltext.Name{Space: emitNamespace, Prefix: "xsd", Local: "complexType"},
		Attrs: []xmltext.Attr{{Name: xmltext.Name{Local: "name"}, Value: ct.Name}},
	}
	if ct.Doc != "" {
		el.Children = append(el.Children, annotationNode(ct.Doc))
	}
	for _, e := range ct.Elements {
		el.Children = append(el.Children, elementNode(e))
	}
	return el
}

func elementNode(e Element) *xmltext.Element {
	typeAttr := e.Type.Named
	if e.Type.IsPrimitive() {
		typeAttr = "xsd:" + e.Type.Primitive.String()
	}
	node := &xmltext.Element{
		Name: xmltext.Name{Space: emitNamespace, Prefix: "xsd", Local: "element"},
		Attrs: []xmltext.Attr{
			{Name: xmltext.Name{Local: "name"}, Value: e.Name},
			{Name: xmltext.Name{Local: "type"}, Value: typeAttr},
		},
	}
	addOccurs := func(minV, maxV string) {
		node.Attrs = append(node.Attrs,
			xmltext.Attr{Name: xmltext.Name{Local: "minOccurs"}, Value: minV},
			xmltext.Attr{Name: xmltext.Name{Local: "maxOccurs"}, Value: maxV},
		)
	}
	switch e.Array {
	case StaticArray:
		n := strconv.Itoa(e.Size)
		addOccurs(n, n)
	case DynamicArray:
		addOccurs(strconv.Itoa(e.MinOccurs), "*")
	case CountedArray:
		addOccurs(strconv.Itoa(e.MinOccurs), e.CountField)
	}
	return node
}
