package xmlschema

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseSchema throws arbitrary bytes at the schema parser. The parser
// must never panic; when it accepts a document, the generated round trip
// (MarshalString → ParseString) must also be accepted.
func FuzzParseSchema(f *testing.F) {
	f.Add(schemaA)
	f.Add(schemaB)
	f.Add(schemaCD)
	f.Add(`<?xml version="1.0"?><xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"></xsd:schema>`)
	f.Add(`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"><xsd:complexType name="T"><xsd:element name="x" type="xsd:integer"/></xsd:complexType></xsd:schema>`)
	f.Add(`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"><xsd:simpleType name="S"><xsd:restriction base="xsd:string"/></xsd:simpleType></xsd:schema>`)
	f.Add(`<a><b></b>`)
	f.Add(``)
	f.Add(`<<<<`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseString(src)
		if err != nil {
			return
		}
		// Accepted documents must survive a generate/parse round trip; skip
		// inputs whose names are not clean UTF-8 — the generator emits them
		// raw and the XML layer may reject the bytes it produces.
		for _, ct := range s.Types {
			if !utf8.ValidString(ct.Name) || strings.ContainsAny(ct.Name, "<>&\"' \t\r\n") {
				return
			}
			for _, el := range ct.Elements {
				if !utf8.ValidString(el.Name) || strings.ContainsAny(el.Name, "<>&\"' \t\r\n") {
					return
				}
			}
		}
		out := MarshalString(s)
		if _, err := ParseString(out); err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\ngenerated: %q", err, src, out)
		}
	})
}
