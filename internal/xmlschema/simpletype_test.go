package xmlschema

import (
	"errors"
	"reflect"
	"testing"
)

const schemaWithSimpleTypes = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:simpleType name="CenterID">
    <xsd:annotation><xsd:documentation>ARTCC identifier</xsd:documentation></xsd:annotation>
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="ZTL" />
      <xsd:enumeration value="ZJX" />
      <xsd:maxLength value="3" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="FlightNumber">
    <xsd:restriction base="xsd:integer">
      <xsd:minInclusive value="1" />
      <xsd:maxInclusive value="9999" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="ShortFlightNumber">
    <xsd:restriction base="FlightNumber">
      <xsd:maxInclusive value="999" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Movement">
    <xsd:element name="center" type="CenterID" />
    <xsd:element name="flt" type="ShortFlightNumber" />
    <xsd:element name="raw" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>`

func TestSimpleTypesParse(t *testing.T) {
	s, err := ParseString(schemaWithSimpleTypes)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.SimpleTypes) != 3 {
		t.Fatalf("simple types = %d", len(s.SimpleTypes))
	}
	cid, ok := s.SimpleTypeByName("CenterID")
	if !ok {
		t.Fatal("CenterID missing")
	}
	if cid.Base != String || cid.MaxLength != 3 || cid.Doc != "ARTCC identifier" {
		t.Errorf("CenterID = %+v", cid)
	}
	if !reflect.DeepEqual(cid.Enumeration, []string{"ZTL", "ZJX"}) {
		t.Errorf("enumeration = %v", cid.Enumeration)
	}
	fn, _ := s.SimpleTypeByName("FlightNumber")
	if fn.Base != Integer || fn.MinInclusive != "1" || fn.MaxInclusive != "9999" {
		t.Errorf("FlightNumber = %+v", fn)
	}
	// Chained restriction resolves to the root primitive.
	sfn, _ := s.SimpleTypeByName("ShortFlightNumber")
	if sfn.Base != Integer {
		t.Errorf("ShortFlightNumber base = %v", sfn.Base)
	}
}

func TestSimpleTypesResolveInElements(t *testing.T) {
	s, err := ParseString(schemaWithSimpleTypes)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.Types[0]
	center := ct.Elements[0]
	if center.Type.Primitive != String || center.Type.Simple != "CenterID" {
		t.Errorf("center = %+v", center.Type)
	}
	flt := ct.Elements[1]
	if flt.Type.Primitive != Integer || flt.Type.Simple != "ShortFlightNumber" {
		t.Errorf("flt = %+v", flt.Type)
	}
	if ct.Elements[2].Type.Simple != "" {
		t.Error("plain primitive gained a Simple name")
	}
}

func TestSimpleTypeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no name", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType><xsd:restriction base="xsd:int"/></xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"no derivation", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S"/>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"no base", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S"><xsd:restriction/></xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"unknown base", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S"><xsd:restriction base="xsd:quark"/></xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"complexType base forbidden", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:complexType name="C"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
			<xsd:simpleType name="S"><xsd:restriction base="C"/></xsd:simpleType>
		</xsd:schema>`},
		{"bad maxLength", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S"><xsd:restriction base="xsd:string">
			  <xsd:maxLength value="-3"/></xsd:restriction></xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"unknown facet", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S"><xsd:restriction base="xsd:string">
			  <xsd:frobnicate value="1"/></xsd:restriction></xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"double derivation", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:simpleType name="S">
			  <xsd:restriction base="xsd:int"/><xsd:restriction base="xsd:int"/>
			</xsd:simpleType>
			<xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`},
		{"name collision with complexType", `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
			<xsd:complexType name="S"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
			<xsd:simpleType name="S"><xsd:restriction base="xsd:int"/></xsd:simpleType>
		</xsd:schema>`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.src); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSimpleTypeExtensionAccepted(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:simpleType name="Wide"><xsd:extension base="xsd:short"/></xsd:simpleType>
	  <xsd:complexType name="T"><xsd:element name="a" type="Wide"/></xsd:complexType>
	</xsd:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Types[0].Elements[0].Type.Primitive != Short {
		t.Errorf("a = %+v", s.Types[0].Elements[0].Type)
	}
}

func TestSimpleTypeDuplicate(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:simpleType name="S"><xsd:restriction base="xsd:int"/></xsd:simpleType>
	  <xsd:simpleType name="S"><xsd:restriction base="xsd:int"/></xsd:simpleType>
	  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
	</xsd:schema>`
	if _, err := ParseString(src); !errors.Is(err, ErrDuplicateType) {
		t.Errorf("err = %v", err)
	}
}
