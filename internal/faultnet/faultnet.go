// Package faultnet is a deterministic fault-injection harness for the
// repo's network layers. It wraps net.Conn, net.Listener and
// http.RoundTripper so tests can subject the discovery client and the event
// backbone to the failure modes real links exhibit — added latency, partial
// writes, short reads, connection resets, and connections that die after N
// more bytes — from a seeded, reproducible schedule. The same seed always
// yields the same fault sequence, so a failure seen in CI replays exactly on
// a laptop.
//
// A Schedule is a queue of Faults consumed one per I/O operation (or HTTP
// round trip). Build one explicitly with NewSchedule for scripted scenarios,
// or pseudo-randomly with Generate(seed, n, profile) for soak-style tests.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the root of every error this package injects; wrapped
// errors carry the fault kind for diagnostics. Transports should treat it
// like any transient network error.
var ErrInjected = errors.New("faultnet: injected fault")

// Kind enumerates the injectable failure modes.
type Kind uint8

const (
	// None passes the operation through untouched.
	None Kind = iota
	// Latency sleeps Fault.Delay before performing the operation.
	Latency
	// ShortRead truncates one Read to at most Fault.N bytes (data is not
	// lost — the rest stays buffered in the underlying connection).
	ShortRead
	// PartialWrite writes only Fault.N bytes of the caller's buffer to the
	// underlying connection, then reports an injected error — the classic
	// "connection died mid-frame" case.
	PartialWrite
	// Reset closes the underlying connection and fails the operation, like
	// a peer sending RST.
	Reset
	// DropAfter lets Fault.N more bytes flow (reads + writes combined),
	// then behaves like Reset on the operation that crosses the limit.
	DropAfter
	// HTTPStatus makes a Transport return a synthetic response with status
	// Fault.N and an empty body instead of performing the round trip. It
	// has no effect on Conn I/O.
	HTTPStatus
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case ShortRead:
		return "short-read"
	case PartialWrite:
		return "partial-write"
	case Reset:
		return "reset"
	case DropAfter:
		return "drop-after"
	case HTTPStatus:
		return "http-status"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one scheduled failure.
type Fault struct {
	Kind  Kind
	Delay time.Duration // Latency only
	N     int           // ShortRead/PartialWrite/DropAfter byte count; HTTPStatus code
}

// Schedule is a concurrency-safe queue of faults. Wrapped connections and
// transports consume one entry per operation; when the queue is exhausted
// operations pass through cleanly (or the queue loops, with Loop).
type Schedule struct {
	mu     sync.Mutex
	faults []Fault
	pos    int
	loop   bool
}

// NewSchedule builds a schedule that plays the given faults in order, once.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{faults: faults}
}

// Loop makes the schedule repeat from the start once exhausted and returns
// it (chainable).
func (s *Schedule) Loop() *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loop = true
	return s
}

// Remaining reports how many scheduled faults have not yet fired (the
// current cycle only, for looping schedules).
func (s *Schedule) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.faults) - s.pos
}

// next pops the next fault, or None when exhausted.
func (s *Schedule) next() Fault {
	if s == nil {
		return Fault{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.faults) {
		if !s.loop || len(s.faults) == 0 {
			return Fault{}
		}
		s.pos = 0
	}
	f := s.faults[s.pos]
	s.pos++
	return f
}

// Profile weights Generate's pseudo-random fault mix. Probabilities are
// per-operation and the remainder passes through cleanly; they are
// normalized if they sum past 1.
type Profile struct {
	PLatency, PShortRead, PPartialWrite, PReset, PDropAfter float64
	// MaxDelay bounds injected latency (default 5ms).
	MaxDelay time.Duration
	// MaxBytes bounds ShortRead/PartialWrite/DropAfter byte counts
	// (default 64).
	MaxBytes int
}

// DefaultProfile is a mildly hostile network: mostly clean operations with
// occasional latency, truncation and the odd reset.
func DefaultProfile() Profile {
	return Profile{
		PLatency:      0.10,
		PShortRead:    0.10,
		PPartialWrite: 0.05,
		PReset:        0.02,
		PDropAfter:    0.02,
		MaxDelay:      5 * time.Millisecond,
		MaxBytes:      64,
	}
}

// Generate produces n faults pseudo-randomly from seed under the profile.
// The sequence is a pure function of (seed, n, profile): the determinism
// the ISSUE's property test asserts.
func Generate(seed int64, n int, p Profile) []Fault {
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Millisecond
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 64
	}
	total := p.PLatency + p.PShortRead + p.PPartialWrite + p.PReset + p.PDropAfter
	scale := 1.0
	if total > 1 {
		scale = 1 / total
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, n)
	for i := range out {
		r := rng.Float64()
		var f Fault
		switch {
		case r < p.PLatency*scale:
			f = Fault{Kind: Latency, Delay: time.Duration(rng.Int63n(int64(p.MaxDelay)) + 1)}
		case r < (p.PLatency+p.PShortRead)*scale:
			f = Fault{Kind: ShortRead, N: rng.Intn(p.MaxBytes) + 1}
		case r < (p.PLatency+p.PShortRead+p.PPartialWrite)*scale:
			f = Fault{Kind: PartialWrite, N: rng.Intn(p.MaxBytes) + 1}
		case r < (p.PLatency+p.PShortRead+p.PPartialWrite+p.PReset)*scale:
			f = Fault{Kind: Reset}
		case r < (p.PLatency+p.PShortRead+p.PPartialWrite+p.PReset+p.PDropAfter)*scale:
			f = Fault{Kind: DropAfter, N: rng.Intn(p.MaxBytes) + 1}
		}
		out[i] = f
	}
	return out
}

// Conn wraps a net.Conn, applying one scheduled fault per Read/Write. Once
// a Reset or DropAfter fires, the connection is broken: the underlying conn
// is closed and every further operation fails with ErrInjected.
type Conn struct {
	net.Conn
	sched *Schedule

	mu        sync.Mutex
	broken    bool
	armed     bool // DropAfter fired; allowance counts down
	allowance int
}

// Wrap attaches the schedule to c. A nil schedule passes everything
// through.
func Wrap(c net.Conn, s *Schedule) *Conn {
	return &Conn{Conn: c, sched: s}
}

// breakConn marks the connection dead and closes the underlying socket.
// Callers hold c.mu.
func (c *Conn) breakLocked(kind Kind) error {
	c.broken = true
	_ = c.Conn.Close()
	return fmt.Errorf("%w: %s", ErrInjected, kind)
}

// admit applies connection-wide state (broken, drop-after allowance) before
// an operation moving n bytes; it returns the bytes the operation may move
// (possibly fewer) and whether the op must fail afterwards.
func (c *Conn) admit(n int) (allowed int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return 0, fmt.Errorf("%w: connection already broken", ErrInjected)
	}
	if !c.armed {
		return n, nil
	}
	if c.allowance <= 0 {
		return 0, c.breakLocked(DropAfter)
	}
	if n > c.allowance {
		n = c.allowance
	}
	return n, nil
}

func (c *Conn) consume(n int) {
	c.mu.Lock()
	if c.armed {
		c.allowance -= n
	}
	c.mu.Unlock()
}

// Read implements net.Conn with fault injection.
func (c *Conn) Read(p []byte) (int, error) {
	f := c.sched.next()
	if f.Kind == Latency {
		time.Sleep(f.Delay)
	}
	limit, err := c.admit(len(p))
	if err != nil {
		return 0, err
	}
	switch f.Kind {
	case Reset:
		c.mu.Lock()
		defer c.mu.Unlock()
		return 0, c.breakLocked(Reset)
	case DropAfter:
		c.mu.Lock()
		if !c.armed {
			c.armed = true
			c.allowance = f.N
		}
		if c.allowance < limit {
			limit = c.allowance
		}
		if limit <= 0 {
			defer c.mu.Unlock()
			return 0, c.breakLocked(DropAfter)
		}
		c.mu.Unlock()
	case ShortRead:
		if f.N < limit {
			limit = f.N
		}
		if limit < 1 {
			limit = 1
		}
	}
	n, rerr := c.Conn.Read(p[:limit])
	c.consume(n)
	return n, rerr
}

// Write implements net.Conn with fault injection. A PartialWrite fault
// writes a prefix of p to the wire and then fails, so the peer sees a
// truncated frame — precisely the mid-frame death the event bus must
// survive.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.sched.next()
	if f.Kind == Latency {
		time.Sleep(f.Delay)
	}
	limit, err := c.admit(len(p))
	if err != nil {
		return 0, err
	}
	switch f.Kind {
	case Reset:
		c.mu.Lock()
		defer c.mu.Unlock()
		return 0, c.breakLocked(Reset)
	case DropAfter:
		c.mu.Lock()
		if !c.armed {
			c.armed = true
			c.allowance = f.N
		}
		if c.allowance < limit {
			limit = c.allowance
		}
		if limit <= 0 {
			defer c.mu.Unlock()
			return 0, c.breakLocked(DropAfter)
		}
		c.mu.Unlock()
	case PartialWrite:
		if f.N < limit {
			limit = f.N
		}
		n, _ := c.Conn.Write(p[:limit])
		c.consume(n)
		c.mu.Lock()
		defer c.mu.Unlock()
		c.broken = true
		_ = c.Conn.Close()
		return n, fmt.Errorf("%w: %s after %d bytes", ErrInjected, PartialWrite, n)
	}
	n, werr := c.Conn.Write(p[:limit])
	c.consume(n)
	if werr == nil && n < len(p) {
		// The drop-after allowance truncated this write; finish the
		// connection so the caller sees the failure immediately.
		c.mu.Lock()
		defer c.mu.Unlock()
		return n, c.breakLocked(DropAfter)
	}
	return n, werr
}

// Broken reports whether an injected Reset/DropAfter/PartialWrite has
// permanently failed the connection.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Listener wraps a net.Listener so every accepted connection shares (and
// consumes from) one schedule.
type Listener struct {
	net.Listener
	sched *Schedule
}

// WrapListener attaches the schedule to ln.
func WrapListener(ln net.Listener, s *Schedule) *Listener {
	return &Listener{Listener: ln, sched: s}
}

// Accept wraps each accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.sched), nil
}

// Dialer returns a dial function (the shape eventbus.WithDialFunc accepts)
// that dials TCP and wraps every connection in the schedule.
func Dialer(s *Schedule) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return Wrap(c, s), nil
	}
}
