package faultnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// pipePair returns both ends of an in-memory connection, the near end
// wrapped with the schedule.
func pipePair(t *testing.T, s *Schedule) (*Conn, net.Conn) {
	t.Helper()
	near, far := net.Pipe()
	t.Cleanup(func() { _ = near.Close(); _ = far.Close() })
	return Wrap(near, s), far
}

func TestCleanPassThrough(t *testing.T) {
	c, far := pipePair(t, nil)
	go func() { _, _ = far.Write([]byte("hello")) }()
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestShortRead(t *testing.T) {
	c, far := pipePair(t, NewSchedule(Fault{Kind: ShortRead, N: 2}))
	go func() { _, _ = far.Write([]byte("hello")) }()
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || n != 2 {
		t.Fatalf("short Read = %d, %v; want 2, nil", n, err)
	}
	// Remainder still arrives on the next (clean) read.
	n, err = c.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("follow-up Read = %d, %v; want 3, nil", n, err)
	}
}

func TestPartialWriteDeliversPrefixThenFails(t *testing.T) {
	c, far := pipePair(t, NewSchedule(Fault{Kind: PartialWrite, N: 3}))
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := far.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("Write n = %d, want 3", n)
	}
	if prefix := <-got; string(prefix) != "hel" {
		t.Fatalf("peer saw %q, want the 3-byte prefix", prefix)
	}
	if !c.Broken() {
		t.Fatal("connection should be broken after a partial write")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-break Write err = %v, want ErrInjected", err)
	}
}

func TestReset(t *testing.T) {
	c, _ := pipePair(t, NewSchedule(Fault{Kind: Reset}))
	if _, err := c.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if !c.Broken() {
		t.Fatal("reset must break the connection")
	}
}

func TestDropAfterBudget(t *testing.T) {
	c, far := pipePair(t, NewSchedule(Fault{Kind: DropAfter, N: 4}))
	go func() { _, _ = io.ReadAll(far) }()
	// First write fits in the 4-byte allowance only partially: 4 bytes go
	// through, then the connection dies.
	n, err := c.Write([]byte("hello"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want 4 bytes then injected failure", n, err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop Write err = %v, want ErrInjected", err)
	}
}

func TestLatencyDelays(t *testing.T) {
	c, far := pipePair(t, NewSchedule(Fault{Kind: Latency, Delay: 20 * time.Millisecond}))
	go func() {
		buf := make([]byte, 8)
		_, _ = far.Read(buf)
	}()
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("Write err = %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency fault waited only %v", d)
	}
}

func TestScheduleExhaustionAndLoop(t *testing.T) {
	s := NewSchedule(Fault{Kind: ShortRead, N: 1})
	if f := s.next(); f.Kind != ShortRead {
		t.Fatalf("first fault = %v", f.Kind)
	}
	if f := s.next(); f.Kind != None {
		t.Fatalf("exhausted schedule should yield None, got %v", f.Kind)
	}
	l := NewSchedule(Fault{Kind: Reset}).Loop()
	for i := 0; i < 5; i++ {
		if f := l.next(); f.Kind != Reset {
			t.Fatalf("looping schedule run %d = %v", i, f.Kind)
		}
	}
}

// TestGenerateDeterministic is the ISSUE's property test: the same seed
// yields byte-identical fault sequences; different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	p := DefaultProfile()
	for _, seed := range []int64{1, 42, -7, 1 << 40} {
		a := Generate(seed, 500, p)
		b := Generate(seed, 500, p)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: fault %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
	a := Generate(1, 500, p)
	c := Generate(2, 500, p)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGenerateRespectsProfileBounds(t *testing.T) {
	p := Profile{PReset: 1} // all resets
	for _, f := range Generate(3, 100, p) {
		if f.Kind != Reset {
			t.Fatalf("all-reset profile produced %v", f.Kind)
		}
	}
	p = Profile{PLatency: 1, MaxDelay: time.Millisecond}
	for _, f := range Generate(3, 100, p) {
		if f.Kind != Latency || f.Delay <= 0 || f.Delay > time.Millisecond {
			t.Fatalf("latency profile produced %+v", f)
		}
	}
}

func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln, NewSchedule(Fault{Kind: Reset}))
	defer fl.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := fl.Accept()
		if err != nil {
			done <- err
			return
		}
		_, err = conn.Write([]byte("x"))
		done <- err
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn write err = %v, want ErrInjected", err)
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	sched := NewSchedule(
		Fault{Kind: Reset},
		Fault{Kind: HTTPStatus, N: 503},
		Fault{Kind: None},
	)
	client := &http.Client{Transport: &Transport{Sched: sched}}

	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("first round trip err = %v, want ErrInjected", err)
	}
	resp, err := client.Get(srv.URL)
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("second round trip = %v, %v; want synthetic 503", resp, err)
	}
	resp.Body.Close()
	resp, err = client.Get(srv.URL)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("third round trip = %v, %v; want clean 200", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("clean body = %q", body)
	}
}
