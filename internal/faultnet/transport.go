package faultnet

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is an http.RoundTripper that consumes one scheduled fault per
// round trip before delegating to Base. It exercises the discovery client's
// retry and stale-serve paths without a real bad network:
//
//   - Latency sleeps, then performs the request.
//   - HTTPStatus short-circuits with a synthetic response of that status.
//   - Reset, PartialWrite, ShortRead and DropAfter fail the round trip with
//     an error wrapping ErrInjected (a transport-level failure, as the
//     net/http client would surface a torn connection).
//   - None delegates untouched.
type Transport struct {
	// Base performs clean round trips (default http.DefaultTransport).
	Base http.RoundTripper
	// Sched supplies the fault per round trip (nil = always clean).
	Sched *Schedule
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := t.Sched.next()
	switch f.Kind {
	case Latency:
		timer := time.NewTimer(f.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	case HTTPStatus:
		code := f.N
		if code == 0 {
			code = http.StatusInternalServerError
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
			StatusCode: code,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	case Reset, PartialWrite, ShortRead, DropAfter:
		return nil, fmt.Errorf("%w: %s during round trip to %s", ErrInjected, f.Kind, req.URL)
	}
	return base.RoundTrip(req)
}
