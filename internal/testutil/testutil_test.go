package testutil

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPollImmediateSuccess(t *testing.T) {
	start := time.Now()
	if !Poll(5*time.Second, func() bool { return true }) {
		t.Fatal("Poll must report success")
	}
	if time.Since(start) > time.Second {
		t.Fatal("immediate success must not wait")
	}
}

func TestPollEventualSuccess(t *testing.T) {
	var n atomic.Int32
	ok := Poll(5*time.Second, func() bool { return n.Add(1) >= 3 })
	if !ok || n.Load() < 3 {
		t.Fatalf("ok=%v calls=%d", ok, n.Load())
	}
}

func TestPollTimeout(t *testing.T) {
	var n atomic.Int32
	start := time.Now()
	if Poll(30*time.Millisecond, func() bool { n.Add(1); return false }) {
		t.Fatal("Poll must report timeout")
	}
	if n.Load() < 1 {
		t.Fatal("cond must run at least once")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout overshot far past the deadline")
	}
}

func TestPollZeroTimeoutRunsOnce(t *testing.T) {
	var n atomic.Int32
	Poll(0, func() bool { n.Add(1); return false })
	if n.Load() == 0 {
		t.Fatal("cond must run at least once with zero timeout")
	}
}

func TestWaitForPasses(t *testing.T) {
	// Must not fail the test when the condition holds.
	WaitFor(t, time.Second, "trivial condition", func() bool { return true })
}

func TestEventually(t *testing.T) {
	var msg string
	Eventually(10*time.Millisecond, func() bool { return false }, func(m string) { msg = m })
	if msg == "" {
		t.Fatal("Eventually must report failure")
	}
	msg = ""
	Eventually(time.Second, func() bool { return true }, func(m string) { msg = m })
	if msg != "" {
		t.Fatalf("Eventually reported failure on success: %s", msg)
	}
}
