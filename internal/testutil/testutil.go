// Package testutil holds shared test synchronization helpers: polling with a
// deadline instead of fixed time.Sleep calls, so e2e tests wait exactly as
// long as the condition needs — no longer (slow suites) and no shorter
// (flakes under -race or loaded CI hardware).
package testutil

import (
	"testing"
	"time"
)

// pollInterval is the initial backoff between condition checks; it doubles
// up to pollMax so hot conditions resolve in microseconds while slow ones
// don't spin a CPU.
const (
	pollInterval = time.Millisecond
	pollMax      = 50 * time.Millisecond
)

// WaitFor polls cond until it holds or timeout passes, then fails the test
// fatally, naming what it was waiting for.
func WaitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("timed out after %v waiting for %s", timeout, what)
	}
}

// Poll repeatedly evaluates cond (with exponential backoff between checks)
// until it returns true or timeout passes. It reports whether cond held, for
// call sites that want a non-fatal check or a custom failure message. cond
// runs at least once even with a zero timeout.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	interval := pollInterval
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(interval)
		if interval < pollMax {
			interval *= 2
		}
	}
}

// Eventually polls cond and calls fail with a message when it never held —
// the non-fatal sibling of WaitFor for use with t.Errorf-style reporting.
func Eventually(timeout time.Duration, cond func() bool, fail func(msg string)) {
	if !Poll(timeout, cond) {
		fail("condition did not hold within " + timeout.String())
	}
}
