package trace

import "context"

type ctxKey struct{}

// NewContext returns a context carrying the span handle, for layers (like
// discovery) whose APIs already thread a context.Context.
func NewContext(ctx context.Context, c Ctx) context.Context {
	if !c.Sampled() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the span handle carried by ctx, or the zero (unsampled)
// Ctx when none is present.
func FromContext(ctx context.Context) Ctx {
	c, _ := ctx.Value(ctxKey{}).(Ctx)
	return c
}
