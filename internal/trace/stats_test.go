package trace

import (
	"testing"
	"time"
)

func mkTrace(n byte) TraceID { return TraceID{0: n, 15: 1} }
func mkSpan(n byte) SpanID   { return SpanID{0: n, 7: 1} }

func TestSelfTimesSubtractsChildren(t *testing.T) {
	tr := mkTrace(1)
	root, enc, route, conv := mkSpan(1), mkSpan(2), mkSpan(3), mkSpan(4)
	spans := []Span{
		// pub.publish (100µs) parents pbio.encode (30µs): publish self = 70µs.
		{Trace: tr, ID: root, Name: "pub.publish", Dur: 100 * time.Microsecond},
		{Trace: tr, ID: enc, Parent: root, Name: "pbio.encode", Dur: 30 * time.Microsecond},
		// broker.route (50µs) parents dcg.convert (20µs): route self = 30µs.
		{Trace: tr, ID: route, Parent: root, Name: "broker.route", Dur: 50 * time.Microsecond},
		{Trace: tr, ID: conv, Parent: route, Name: "dcg.convert", Dur: 20 * time.Microsecond},
	}
	self := SelfTimes(spans)
	want := map[string]time.Duration{
		"pub.publish":  100*time.Microsecond - 30*time.Microsecond - 50*time.Microsecond,
		"pbio.encode":  30 * time.Microsecond,
		"broker.route": 30 * time.Microsecond,
		"dcg.convert":  20 * time.Microsecond,
	}
	for name, d := range want {
		if self[name] != d {
			t.Errorf("SelfTimes[%s] = %v, want %v", name, self[name], d)
		}
	}
	// Self times of a fully-recorded tree sum to the root's inclusive time.
	var sum time.Duration
	for _, d := range self {
		sum += d
	}
	if sum != 100*time.Microsecond {
		t.Errorf("self times sum to %v, want 100µs", sum)
	}
}

func TestSelfTimesSameSpanIDAcrossTraces(t *testing.T) {
	// The same SpanID in two different traces must not alias: only the child
	// in trace A subtracts from the parent in trace A.
	id, child := mkSpan(9), mkSpan(10)
	spans := []Span{
		{Trace: mkTrace(1), ID: id, Name: "pub.publish", Dur: 10 * time.Millisecond},
		{Trace: mkTrace(1), ID: child, Parent: id, Name: "pbio.encode", Dur: 4 * time.Millisecond},
		{Trace: mkTrace(2), ID: id, Name: "pub.publish", Dur: 10 * time.Millisecond},
	}
	self := SelfTimes(spans)
	if got := self["pub.publish"]; got != 16*time.Millisecond {
		t.Errorf("pub.publish self = %v, want 16ms (6ms + 10ms)", got)
	}
}

func TestSelfTimesClampAndOrphans(t *testing.T) {
	tr := mkTrace(3)
	root, c1, c2 := mkSpan(1), mkSpan(2), mkSpan(3)
	spans := []Span{
		// Children report more time than the parent (clock jitter): parent
		// self time clamps to zero instead of going negative.
		{Trace: tr, ID: root, Name: "broker.route", Dur: 5 * time.Microsecond},
		{Trace: tr, ID: c1, Parent: root, Name: "dcg.convert", Dur: 4 * time.Microsecond},
		{Trace: tr, ID: c2, Parent: root, Name: "dcg.convert", Dur: 4 * time.Microsecond},
		// Orphan whose parent was overwritten in the ring: counts for itself.
		{Trace: tr, ID: mkSpan(4), Parent: mkSpan(99), Name: "pbio.decode", Dur: 7 * time.Microsecond},
	}
	self := SelfTimes(spans)
	if self["broker.route"] != 0 {
		t.Errorf("over-subscribed parent self = %v, want 0", self["broker.route"])
	}
	if self["dcg.convert"] != 8*time.Microsecond {
		t.Errorf("dcg.convert self = %v, want 8µs", self["dcg.convert"])
	}
	if self["pbio.decode"] != 7*time.Microsecond {
		t.Errorf("orphan self = %v, want 7µs", self["pbio.decode"])
	}
	if SelfTimes(nil) != nil {
		t.Error("SelfTimes(nil) must return nil")
	}
}

func TestSumByName(t *testing.T) {
	tr := mkTrace(4)
	root, child := mkSpan(1), mkSpan(2)
	spans := []Span{
		{Trace: tr, ID: root, Name: "pub.publish", Dur: 10 * time.Microsecond},
		{Trace: tr, ID: child, Parent: root, Name: "pbio.encode", Dur: 4 * time.Microsecond},
	}
	sums := SumByName(spans)
	// Inclusive: pub.publish keeps its full 10µs even with a child recorded.
	if sums["pub.publish"] != 10*time.Microsecond || sums["pbio.encode"] != 4*time.Microsecond {
		t.Errorf("SumByName = %v", sums)
	}
	if SumByName(nil) != nil {
		t.Error("SumByName(nil) must return nil")
	}
}
