// Package trace is the repo's distributed-tracing layer: a dependency-free
// span recorder that follows one record from Publish through the broker to
// subscriber decode, turning the paper's hand-built per-stage cost
// decomposition (Tables 1-2) into live flamegraphs.
//
// A Tracer samples 1-in-N root spans into a fixed-size lock-free ring buffer
// of completed spans. Span identity follows the W3C shape: a 128-bit TraceID
// names the whole end-to-end record journey and a 64-bit SpanID names each
// stage; parent links reconstruct the tree. The sampling decision is made
// once at the root (the publisher); downstream processes Join the trace from
// wire-carried IDs and record their stages against the same TraceID.
//
// Hot-path contract (same as internal/obsv): when tracing is disabled or a
// root is not sampled, Start/Child/Finish perform no allocation and take no
// locks — guarded by testing.AllocsPerRun in the package tests. Sampled
// spans allocate once at Finish (the ring slot store).
package trace

import (
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end record journey across processes.
type TraceID [16]byte

// SpanID identifies one stage (span) within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, b []byte) []byte {
	for _, c := range b {
		dst = append(dst, hexDigits[c>>4], hexDigits[c&0xf])
	}
	return dst
}

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string { return string(appendHex(nil, id[:])) }

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string { return string(appendHex(nil, id[:])) }

// parseHex decodes exactly len(dst)*2 lowercase/uppercase hex digits.
func parseHex(dst []byte, s string) bool {
	if len(s) != len(dst)*2 {
		return false
	}
	for i := range dst {
		hi := hexVal(s[2*i])
		lo := hexVal(s[2*i+1])
		if hi < 0 || lo < 0 {
			return false
		}
		dst[i] = byte(hi<<4 | lo)
	}
	return true
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// ParseTraceID parses the 32-hex-digit form produced by TraceID.String —
// the inverse needed by collectors reading /debug/trace JSON back into IDs.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	ok := parseHex(id[:], s)
	return id, ok
}

// ParseSpanID parses the 16-hex-digit form produced by SpanID.String. An
// empty string parses as the zero (root-parent) ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if s == "" {
		return id, true
	}
	ok := parseHex(id[:], s)
	return id, ok
}

// Span is one completed, recorded stage of a trace.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root span
	Name   string // stage name, e.g. "pbio.encode", "broker.route"
	Detail string // optional context: stream name, schema name
	Start  time.Time
	Dur    time.Duration
}

// Tracer samples and records spans. A nil *Tracer never samples and all its
// operations are no-ops, so optional tracing can be left nil at call sites.
type Tracer struct {
	// every is the sampling rate: 0 = disabled, n = record 1-in-n roots.
	every atomic.Int64
	ctr   atomic.Uint64
	// ring is the fixed-size buffer of completed spans; cursor allocates
	// slots monotonically and wraps, so the newest DefaultCapacity spans
	// survive. Slots hold immutable *Span values, making concurrent
	// record/snapshot safe without locks.
	ring   []atomic.Pointer[Span]
	cursor atomic.Uint64
}

// DefaultCapacity is the ring size of tracers built by NewTracer(0) and of
// the process default tracer: the newest 4096 completed spans are kept.
const DefaultCapacity = 4096

// NewTracer returns a disabled tracer keeping the newest capacity completed
// spans (capacity <= 0 uses DefaultCapacity). Enable it with SetSampling.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]atomic.Pointer[Span], capacity)}
}

var defaultTracer = NewTracer(0)

// Default returns the process-wide tracer every component records into
// unless handed one of its own. It starts disabled.
func Default() *Tracer { return defaultTracer }

// SetSampling sets the sampling rate: n <= 0 disables tracing, n records
// every n-th root span (1 = every root).
func (t *Tracer) SetSampling(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.every.Store(int64(n))
}

// Enabled reports whether the tracer currently samples at all.
func (t *Tracer) Enabled() bool { return t != nil && t.every.Load() > 0 }

// sample makes the root-level 1-in-N decision.
func (t *Tracer) sample() bool {
	if t == nil {
		return false
	}
	n := t.every.Load()
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	return t.ctr.Add(1)%uint64(n) == 0
}

// record stores one completed span in the ring.
func (t *Tracer) record(sp *Span) {
	if len(t.ring) == 0 { // zero-value Tracer; use NewTracer
		return
	}
	idx := t.cursor.Add(1) - 1
	t.ring[idx%uint64(len(t.ring))].Store(sp)
}

// RecordSpan records a retroactive span under an already-sampled trace: the
// caller supplies the start and duration it measured itself, for stages whose
// timing is only known after the fact (the broker's queue wait is measured at
// dequeue, long after the enqueue that started it). No-op when the tracer is
// disabled or id is zero — an unsampled publish carries a zero TraceID, so
// call sites need no sampling check of their own.
func (t *Tracer) RecordSpan(id TraceID, parent SpanID, name, detail string, start time.Time, dur time.Duration) {
	if t == nil || t.every.Load() <= 0 || id.IsZero() {
		return
	}
	t.record(&Span{
		Trace:  id,
		ID:     randSpanID(),
		Parent: parent,
		Name:   name,
		Detail: detail,
		Start:  start,
		Dur:    dur,
	})
}

// Recorded reports how many spans have been recorded over the tracer's
// lifetime (recorded minus capacity spans have been overwritten).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return int64(t.cursor.Load())
}

// Snapshot returns the completed spans currently in the ring, oldest first
// (by start time). The spans are copies; mutating them is safe.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.ring))
	for i := range t.ring {
		if sp := t.ring[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Reset drops every recorded span (tests, or between benchmark runs).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.ring {
		t.ring[i].Store(nil)
	}
}

// Ctx is a live span handle, passed by value so the unsampled path never
// allocates. The zero Ctx is "not sampled": every method is a cheap no-op,
// letting call sites thread tracing unconditionally.
type Ctx struct {
	t      *Tracer
	trace  TraceID
	span   SpanID
	parent SpanID
	name   string
	start  time.Time
	// foreign marks a joined remote span: its children record here, but
	// Finish must not re-record the remote stage itself.
	foreign bool
}

func randSpanID() SpanID {
	var id SpanID
	v := rand.Uint64()
	for v == 0 {
		v = rand.Uint64()
	}
	for i := range id {
		id[i] = byte(v >> (8 * uint(i)))
	}
	return id
}

func randTraceID() TraceID {
	var id TraceID
	hi, lo := rand.Uint64(), rand.Uint64()
	for hi == 0 && lo == 0 {
		hi, lo = rand.Uint64(), rand.Uint64()
	}
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * uint(i)))
		id[8+i] = byte(lo >> (8 * uint(i)))
	}
	return id
}

// Start begins a root span named name, making the 1-in-N sampling decision.
// When not sampled it returns the zero Ctx and performs no allocation.
func (t *Tracer) Start(name string) Ctx {
	if !t.sample() {
		return Ctx{}
	}
	return Ctx{
		t:     t,
		trace: randTraceID(),
		span:  randSpanID(),
		name:  name,
		start: time.Now(),
	}
}

// Join adopts a trace whose IDs arrived over the wire: children created from
// the returned Ctx record into t with parent set to the remote span. Finish
// on the joined Ctx itself is a no-op (the remote process owns that span).
// When t is disabled or the trace ID is zero, Join returns the zero Ctx.
func (t *Tracer) Join(trace TraceID, parent SpanID) Ctx {
	if t == nil || t.every.Load() <= 0 || trace.IsZero() {
		return Ctx{}
	}
	return Ctx{t: t, trace: trace, span: parent, foreign: true}
}

// Sampled reports whether this span is being recorded.
func (c Ctx) Sampled() bool { return c.t != nil }

// Trace returns the span's trace ID (zero when not sampled).
func (c Ctx) Trace() TraceID { return c.trace }

// Span returns this span's ID — the value downstream stages use as their
// parent link (zero when not sampled).
func (c Ctx) Span() SpanID { return c.span }

// Child begins a sub-span of c. On an unsampled Ctx it returns the zero Ctx
// with no allocation.
func (c Ctx) Child(name string) Ctx {
	if c.t == nil {
		return Ctx{}
	}
	return Ctx{
		t:      c.t,
		trace:  c.trace,
		span:   randSpanID(),
		parent: c.span,
		name:   name,
		start:  time.Now(),
	}
}

// Finish completes the span and records it. No-op when unsampled or joined.
func (c Ctx) Finish() { c.FinishDetail("") }

// FinishDetail completes the span, attaching a detail string (stream name,
// schema name) to the recorded span.
func (c Ctx) FinishDetail(detail string) {
	if c.t == nil || c.foreign {
		return
	}
	c.t.record(&Span{
		Trace:  c.trace,
		ID:     c.span,
		Parent: c.parent,
		Name:   c.name,
		Detail: detail,
		Start:  c.start,
		Dur:    time.Since(c.start),
	})
}
