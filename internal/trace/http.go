package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// jsonSpan is the /debug/trace JSON shape: hex IDs, absolute nanosecond
// timestamps, durations in nanoseconds.
type jsonSpan struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartNS int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// chromeEvent is one Chrome trace_event "complete" event ("ph":"X"),
// loadable in chrome://tracing and Perfetto. Timestamps are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Handler serves the tracer's recorded spans:
//
//	GET /debug/trace                 {"spans":[...]} oldest first
//	GET /debug/trace?since=NS        only spans starting after the unix-
//	                                 nanosecond cursor NS — the incremental-
//	                                 scrape parameter: a collector passes the
//	                                 max start_unix_ns of its previous scrape
//	                                 and never re-downloads the whole ring
//	GET /debug/trace?format=chrome   Chrome trace_event JSON for
//	                                 chrome://tracing / Perfetto
//
// The JSON response also carries now_unix_ns (the server clock at snapshot
// time, a coarse cross-process skew hint) and recorded (spans recorded over
// the tracer's lifetime, so a scraper can tell when the ring wrapped past
// history it wanted).
//
// The chrome export groups spans by trace: each distinct TraceID becomes one
// "thread" row so concurrent record journeys stack instead of interleaving.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Snapshot()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if req.URL.Query().Get("format") == "chrome" {
			_ = enc.Encode(chromeTrace(spans))
			return
		}
		if v := req.URL.Query().Get("since"); v != "" {
			ns, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "trace: bad since", http.StatusBadRequest)
				return
			}
			cut := time.Unix(0, ns)
			kept := spans[:0]
			for _, sp := range spans {
				if sp.Start.After(cut) {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		out := struct {
			NowUnixNS int64      `json:"now_unix_ns"`
			Recorded  int64      `json:"recorded"`
			Spans     []jsonSpan `json:"spans"`
		}{NowUnixNS: time.Now().UnixNano(), Recorded: t.Recorded(), Spans: make([]jsonSpan, 0, len(spans))}
		for _, sp := range spans {
			js := jsonSpan{
				Trace:   sp.Trace.String(),
				Span:    sp.ID.String(),
				Name:    sp.Name,
				Detail:  sp.Detail,
				StartNS: sp.Start.UnixNano(),
				DurNS:   sp.Dur.Nanoseconds(),
			}
			if !sp.Parent.IsZero() {
				js.Parent = sp.Parent.String()
			}
			out.Spans = append(out.Spans, js)
		}
		_ = enc.Encode(out)
	})
}

// chromeTrace converts spans to the trace_event JSON object format.
func chromeTrace(spans []Span) map[string]interface{} {
	tids := make(map[TraceID]int)
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		tid, ok := tids[sp.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Trace] = tid
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "openmeta",
			Ph:   "X",
			TS:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  tid,
			Args: map[string]string{
				"trace": sp.Trace.String(),
				"span":  sp.ID.String(),
			},
		}
		if !sp.Parent.IsZero() {
			ev.Args["parent"] = sp.Parent.String()
		}
		if sp.Detail != "" {
			ev.Args["detail"] = sp.Detail
		}
		events = append(events, ev)
	}
	return map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ns",
	}
}
