package trace

import (
	"sort"
	"time"
)

// This file is the fleet half of the tracing layer: spans scraped out of
// several processes' rings ("fragments") are deduplicated, attributed to the
// instance they came from, and stitched back into one parent-linked tree.
// It is pure data assembly — the collector (internal/telemetry) does the
// scraping, this code does the stitching — so it is directly testable with
// hand-built fragments.

// TaggedSpan is a completed span attributed to the fleet instance whose ring
// it was scraped from.
type TaggedSpan struct {
	Span
	Instance string
}

// Tag attributes a snapshot of spans to one instance.
func Tag(instance string, spans []Span) []TaggedSpan {
	out := make([]TaggedSpan, len(spans))
	for i, sp := range spans {
		out[i] = TaggedSpan{Span: sp, Instance: instance}
	}
	return out
}

// MergeSpans concatenates span fragments and drops duplicates: overlapping
// scrapes of the same ring return the same completed span twice, and a span
// must count exactly once when the merged set is aggregated or assembled.
// Identity is (TraceID, SpanID); the first occurrence wins. The result is
// ordered by start time.
func MergeSpans(frags ...[]TaggedSpan) []TaggedSpan {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	seen := make(map[spanKey]bool, total)
	out := make([]TaggedSpan, 0, total)
	for _, f := range frags {
		for _, sp := range f {
			k := spanKey{sp.Trace, sp.ID}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, sp)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dedup collapses duplicate (TraceID, SpanID) spans in a single snapshot,
// keeping the first occurrence — the single-fragment form of MergeSpans.
func Dedup(spans []Span) []Span {
	seen := make(map[spanKey]bool, len(spans))
	out := spans[:0:0]
	for _, sp := range spans {
		k := spanKey{sp.Trace, sp.ID}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, sp)
	}
	return out
}

// Node is one span in an assembled cross-process trace tree.
type Node struct {
	TaggedSpan
	Children []*Node
	// Orphan marks a span whose Parent ID is set but was never scraped:
	// either the parent process is not a collection target or its ring
	// already overwrote the parent. Orphans are treated as roots so their
	// subtree still renders and their self time still counts.
	Orphan bool
}

// InstanceSkew is the estimated clock offset of one instance relative to the
// assembly's reference instance (the instance that recorded the root span).
type InstanceSkew struct {
	Instance string
	// Offset is the duration to add to the instance's timestamps to express
	// them on the reference instance's clock.
	Offset time.Duration
	// Uncertainty is half the width of the tightest parent/child overlap
	// interval that produced the estimate — the offset is only known to
	// ±Uncertainty even with perfectly measured spans.
	Uncertainty time.Duration
	// Edges is how many cross-instance parent-child pairs informed the
	// estimate (0 for the reference instance itself and for instances that
	// could not be anchored, whose Offset is then reported as 0).
	Edges int
}

// Assembly is one TraceID's spans from every scraped process, stitched into
// parent-linked trees.
type Assembly struct {
	Trace     TraceID
	Roots     []*Node // true roots first, then orphans promoted to roots
	Spans     int
	Orphans   int
	Instances []string // sorted, every instance contributing a span
	Reference string   // instance whose clock anchors the skew estimates
	Skew      []InstanceSkew
}

// Assemble stitches the merged spans of one trace into parent-linked trees,
// promoting spans with missing parents to roots and estimating per-instance
// clock skew from cross-instance parent/child overlap. The input may contain
// duplicates and spans of other traces; both are filtered out.
func Assemble(id TraceID, spans []TaggedSpan) *Assembly {
	asm := &Assembly{Trace: id}
	var own []TaggedSpan
	for _, sp := range MergeSpans(spans) {
		if sp.Trace == id {
			own = append(own, sp)
		}
	}
	if len(own) == 0 {
		return asm
	}

	nodes := make(map[SpanID]*Node, len(own))
	for _, sp := range own {
		nodes[sp.ID] = &Node{TaggedSpan: sp}
	}
	instances := map[string]bool{}
	for _, sp := range own {
		instances[sp.Instance] = true
		n := nodes[sp.ID]
		switch {
		case sp.Parent.IsZero():
			asm.Roots = append(asm.Roots, n)
		case nodes[sp.Parent] == nil || sp.Parent == sp.ID:
			n.Orphan = true
			asm.Orphans++
			asm.Roots = append(asm.Roots, n)
		default:
			p := nodes[sp.Parent]
			p.Children = append(p.Children, n)
		}
	}
	// Deterministic order everywhere: children by start time, roots with the
	// true roots (earliest first) ahead of orphans.
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Start.Before(n.Children[j].Start)
		})
	}
	sort.SliceStable(asm.Roots, func(i, j int) bool {
		if asm.Roots[i].Orphan != asm.Roots[j].Orphan {
			return !asm.Roots[i].Orphan
		}
		return asm.Roots[i].Start.Before(asm.Roots[j].Start)
	})
	asm.Spans = len(own)
	for inst := range instances {
		asm.Instances = append(asm.Instances, inst)
	}
	sort.Strings(asm.Instances)
	if len(asm.Roots) > 0 {
		asm.Reference = asm.Roots[0].Instance
	}
	asm.Skew = estimateSkew(asm.Reference, asm.Instances, nodes)
	return asm
}

// skewEdge is one cross-instance parent/child constraint: translating the
// child instance's clock onto the parent instance's requires an offset inside
// [lo, hi] for the child span to nest within its parent.
type skewEdge struct {
	parent, child string
	lo, hi        time.Duration
}

// estimateSkew estimates each instance's clock offset relative to the
// reference instance. Every cross-instance parent/child pair bounds the
// pairwise offset: the child started after its parent did and finished before
// its parent did (true on one clock, since the parent's stage encloses the
// network round trip), so
//
//	parent.Start - child.Start <= offset <= parent.End - child.End
//
// on the parent's clock. The midpoint of each edge's interval is averaged per
// instance pair, then offsets propagate breadth-first from the reference
// instance across the instance graph. Instances unreachable from the
// reference report offset 0 with Edges == 0.
func estimateSkew(reference string, instances []string, nodes map[SpanID]*Node) []InstanceSkew {
	if reference == "" {
		return nil
	}
	var edges []skewEdge
	for _, n := range nodes {
		for _, c := range n.Children {
			if c.Instance == n.Instance {
				continue
			}
			lo := n.Start.Sub(c.Start)
			hi := n.Start.Add(n.Dur).Sub(c.Start.Add(c.Dur))
			if hi < lo { // child measured longer than parent; keep the midpoint meaningful
				lo, hi = hi, lo
			}
			edges = append(edges, skewEdge{parent: n.Instance, child: c.Instance, lo: lo, hi: hi})
		}
	}
	type pairStat struct {
		sum, width time.Duration
		n          int
	}
	pair := map[[2]string]*pairStat{}
	addEdge := func(a, b string, lo, hi time.Duration) {
		key := [2]string{a, b}
		st := pair[key]
		if st == nil {
			st = &pairStat{width: 1<<63 - 1}
			pair[key] = st
		}
		st.sum += (lo + hi) / 2
		if w := (hi - lo) / 2; w < st.width {
			st.width = w
		}
		st.n++
	}
	for _, e := range edges {
		// offset(child→parent) ∈ [lo,hi]; the reverse direction negates.
		addEdge(e.parent, e.child, e.lo, e.hi)
		addEdge(e.child, e.parent, -e.hi, -e.lo)
	}

	offset := map[string]InstanceSkew{reference: {Instance: reference}}
	queue := []string{reference}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		base := offset[cur]
		for key, st := range pair {
			if key[0] != cur {
				continue
			}
			next := key[1]
			if _, done := offset[next]; done {
				continue
			}
			offset[next] = InstanceSkew{
				Instance:    next,
				Offset:      base.Offset + st.sum/time.Duration(st.n),
				Uncertainty: base.Uncertainty + st.width,
				Edges:       st.n,
			}
			queue = append(queue, next)
		}
	}
	out := make([]InstanceSkew, 0, len(instances))
	for _, inst := range instances {
		if sk, ok := offset[inst]; ok {
			out = append(out, sk)
		} else {
			out = append(out, InstanceSkew{Instance: inst})
		}
	}
	return out
}

// Walk visits every node of the assembly depth-first, parents before
// children, calling fn with the node and its depth (roots at 0).
func (a *Assembly) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range a.Roots {
		rec(r, 0)
	}
}
