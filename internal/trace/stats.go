package trace

import "time"

// spanKey identifies a span across traces: SpanIDs are only unique within
// one trace, so aggregation must key on the pair.
type spanKey struct {
	trace TraceID
	span  SpanID
}

// SelfTimes aggregates completed spans by name into each stage's total
// *self* time: a span's duration minus the duration of its recorded
// children, clamped at zero. Summing self times instead of raw durations
// keeps nested stages (broker.route parenting dcg.convert, pub.publish
// parenting pbio.encode) from double-counting, so the totals of a set of
// stage names can be normalized into a share breakdown that sums to 100%.
//
// Children whose parent span is not in the snapshot (the parent was
// overwritten in the ring, or lives in another process) contribute their
// own self time but subtract from nothing.
func SelfTimes(spans []Span) map[string]time.Duration {
	if len(spans) == 0 {
		return nil
	}
	// Per-span self time, then fold into per-name totals.
	self := make([]time.Duration, len(spans))
	index := make(map[spanKey]int, len(spans))
	for i, sp := range spans {
		self[i] = sp.Dur
		index[spanKey{sp.Trace, sp.ID}] = i
	}
	for _, sp := range spans {
		if sp.Parent.IsZero() {
			continue
		}
		if pi, ok := index[spanKey{sp.Trace, sp.Parent}]; ok {
			self[pi] -= sp.Dur
		}
	}
	totals := make(map[string]time.Duration)
	for i, sp := range spans {
		d := self[i]
		if d < 0 {
			d = 0
		}
		totals[sp.Name] += d
	}
	return totals
}

// SumByName aggregates completed spans into per-name totals of their raw
// (inclusive) durations. Unlike SelfTimes, nested stages double-count.
func SumByName(spans []Span) map[string]time.Duration {
	if len(spans) == 0 {
		return nil
	}
	totals := make(map[string]time.Duration)
	for _, sp := range spans {
		totals[sp.Name] += sp.Dur
	}
	return totals
}
