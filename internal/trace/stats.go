package trace

import "time"

// spanKey identifies a span across traces: SpanIDs are only unique within
// one trace, so aggregation must key on the pair.
type spanKey struct {
	trace TraceID
	span  SpanID
}

// SelfTimes aggregates completed spans by name into each stage's total
// *self* time: a span's duration minus the duration of its recorded
// children, clamped at zero. Summing self times instead of raw durations
// keeps nested stages (broker.route parenting dcg.convert, pub.publish
// parenting pbio.encode) from double-counting, so the totals of a set of
// stage names can be normalized into a share breakdown that sums to 100%.
//
// Spans whose parent is not in the snapshot (the parent was overwritten in
// the ring, or lives in another process) are treated as roots: they
// contribute their own self time and subtract from nothing. Duplicate
// (TraceID, SpanID) entries — the same span scraped twice from one ring when
// snapshots overlap — are collapsed to a single occurrence first; without
// that, a duplicated child both counts twice and subtracts twice from its
// parent, silently skewing the stage shares the duplicates ride in on.
func SelfTimes(spans []Span) map[string]time.Duration {
	if len(spans) == 0 {
		return nil
	}
	// Per-span self time, then fold into per-name totals. index doubles as
	// the duplicate filter: the first occurrence of a (trace, span) key owns
	// the slot and later copies are ignored entirely.
	self := make([]time.Duration, 0, len(spans))
	kept := make([]Span, 0, len(spans))
	index := make(map[spanKey]int, len(spans))
	for _, sp := range spans {
		k := spanKey{sp.Trace, sp.ID}
		if _, dup := index[k]; dup {
			continue
		}
		index[k] = len(kept)
		kept = append(kept, sp)
		self = append(self, sp.Dur)
	}
	spans = kept
	for _, sp := range spans {
		if sp.Parent.IsZero() || sp.Parent == sp.ID {
			continue
		}
		if pi, ok := index[spanKey{sp.Trace, sp.Parent}]; ok {
			self[pi] -= sp.Dur
		}
	}
	totals := make(map[string]time.Duration)
	for i, sp := range spans {
		d := self[i]
		if d < 0 {
			d = 0
		}
		totals[sp.Name] += d
	}
	return totals
}

// SumByName aggregates completed spans into per-name totals of their raw
// (inclusive) durations. Unlike SelfTimes, nested stages double-count.
func SumByName(spans []Span) map[string]time.Duration {
	if len(spans) == 0 {
		return nil
	}
	totals := make(map[string]time.Duration)
	for _, sp := range spans {
		totals[sp.Name] += sp.Dur
	}
	return totals
}
