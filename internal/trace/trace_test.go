package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestDisabledTracerNeverSamples(t *testing.T) {
	tr := NewTracer(8)
	if tr.Enabled() {
		t.Fatal("new tracer should start disabled")
	}
	c := tr.Start("x")
	if c.Sampled() {
		t.Fatal("disabled tracer sampled a root")
	}
	c.Finish()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("recorded %d spans while disabled", len(got))
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	c := tr.Start("x")
	c.Child("y").Finish()
	c.Finish()
	tr.SetSampling(1)
	tr.Reset()
	if tr.Snapshot() != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
}

func TestSamplingOneInN(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetSampling(4)
	sampled := 0
	for i := 0; i < 100; i++ {
		c := tr.Start("s")
		if c.Sampled() {
			sampled++
		}
		c.Finish()
	}
	if sampled != 25 {
		t.Fatalf("1-in-4 sampling recorded %d of 100", sampled)
	}
	if got := len(tr.Snapshot()); got != 25 {
		t.Fatalf("snapshot has %d spans, want 25", got)
	}
}

func TestParentLinksAndIdentity(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	root := tr.Start("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.Finish()
	child.FinishDetail("d1")
	root.Finish()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Trace != root.Trace() {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.Trace, root.Trace())
		}
	}
	if !byName["root"].Parent.IsZero() {
		t.Fatal("root span has a parent")
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatal("child's parent is not root")
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatal("grandchild's parent is not child")
	}
	if byName["child"].Detail != "d1" {
		t.Fatalf("detail = %q, want d1", byName["child"].Detail)
	}
}

func TestJoinRecordsChildrenNotSelf(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	var tid TraceID
	var parent SpanID
	tid[0], parent[0] = 1, 2

	jc := tr.Join(tid, parent)
	if !jc.Sampled() {
		t.Fatal("join on enabled tracer not sampled")
	}
	jc.Finish() // foreign span: must not record
	ch := jc.Child("stage")
	ch.Finish()

	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (joined span itself must not record)", len(spans))
	}
	if spans[0].Trace != tid || spans[0].Parent != parent {
		t.Fatalf("joined child has trace=%s parent=%s", spans[0].Trace, spans[0].Parent)
	}

	// Disabled tracer or zero trace ID joins to the unsampled Ctx.
	tr.SetSampling(0)
	if tr.Join(tid, parent).Sampled() {
		t.Fatal("join on disabled tracer sampled")
	}
	tr.SetSampling(1)
	if tr.Join(TraceID{}, parent).Sampled() {
		t.Fatal("join on zero trace ID sampled")
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSampling(1)
	for i := 0; i < 10; i++ {
		tr.Start("s").FinishDetail(string(rune('a' + i)))
		time.Sleep(time.Millisecond) // distinct start times for ordering
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, want := range []string{"g", "h", "i", "j"} {
		if spans[i].Detail != want {
			t.Fatalf("slot %d = %q, want %q (oldest-first, newest kept)", i, spans[i].Detail, want)
		}
	}
	if tr.Recorded() != 10 {
		t.Fatalf("Recorded() = %d, want 10", tr.Recorded())
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSampling(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c := tr.Start("hot")
				c.Child("inner").Finish()
				c.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("full ring snapshot has %d spans, want 64", got)
	}
}

// TestUntracedPathAllocationFree is the hot-path contract: with tracing off,
// or with a root that was not sampled, start/finish must not allocate.
func TestUntracedPathAllocationFree(t *testing.T) {
	tr := NewTracer(8)

	if n := testing.AllocsPerRun(100, func() {
		c := tr.Start("off")
		c.Child("inner").Finish()
		c.Finish()
	}); n != 0 {
		t.Fatalf("disabled tracer allocates %v per span", n)
	}

	var nilT *Tracer
	if n := testing.AllocsPerRun(100, func() {
		c := nilT.Start("off")
		c.Child("inner").Finish()
		c.Finish()
	}); n != 0 {
		t.Fatalf("nil tracer allocates %v per span", n)
	}

	// Sampling 1-in-very-many: the unsampled roots must stay free. Burn the
	// counter far from a multiple of N first so AllocsPerRun's warmup+runs
	// never land on the sampled tick.
	tr.SetSampling(1 << 30)
	if n := testing.AllocsPerRun(100, func() {
		c := tr.Start("unsampled")
		c.Child("inner").Finish()
		c.Finish()
	}); n != 0 {
		t.Fatalf("unsampled root allocates %v per span", n)
	}
}

func TestIDStrings(t *testing.T) {
	var tid TraceID
	var sid SpanID
	tid[0], tid[15] = 0xab, 0x01
	sid[7] = 0xff
	if got := tid.String(); got != "ab000000000000000000000000000001" {
		t.Fatalf("TraceID.String() = %q", got)
	}
	if got := sid.String(); got != "00000000000000ff" {
		t.Fatalf("SpanID.String() = %q", got)
	}
}

func TestHandlerJSONAndChrome(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	root := tr.Start("root")
	root.Child("child").Finish()
	root.FinishDetail("stream-x")

	// Default JSON form.
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var out struct {
		Spans []struct {
			Trace, Span, Parent, Name, Detail string
			StartNS                           int64 `json:"start_unix_ns"`
			DurNS                             int64 `json:"dur_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal /debug/trace: %v", err)
	}
	if len(out.Spans) != 2 {
		t.Fatalf("got %d spans", len(out.Spans))
	}
	for _, sp := range out.Spans {
		if sp.Trace != root.Trace().String() {
			t.Fatalf("span %s trace %q, want %q", sp.Name, sp.Trace, root.Trace())
		}
		if sp.StartNS == 0 {
			t.Fatalf("span %s missing start", sp.Name)
		}
	}

	// Chrome trace_event form.
	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome", nil))
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("unmarshal chrome export: %v", err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome export has %d events", len(chrome.TraceEvents))
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Args["trace"] != root.Trace().String() {
			t.Fatalf("event %s trace arg %q", ev.Name, ev.Args["trace"])
		}
	}
}

func TestContextCarriesCtx(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSampling(1)
	root := tr.Start("root")
	ctx := NewContext(context.Background(), root)
	got := FromContext(ctx)
	if !got.Sampled() || got.Trace() != root.Trace() || got.Span() != root.Span() {
		t.Fatal("context round-trip lost the span handle")
	}
	// Unsampled handles are not stored.
	if NewContext(context.Background(), Ctx{}) != context.Background() {
		t.Fatal("unsampled ctx should return the parent context unchanged")
	}
	if FromContext(context.Background()).Sampled() {
		t.Fatal("empty context produced a sampled handle")
	}
}
