package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// tspan builds a test span with deterministic IDs: trace t, span s, parent p
// (0 = root), started at base+startMS lasting durMS.
func tspan(t, s, p uint64, name, instance string, startMS, durMS int64) TaggedSpan {
	var sp TaggedSpan
	sp.Trace = mkTraceID(t)
	sp.ID = mkSpanID(s)
	if p != 0 {
		sp.Parent = mkSpanID(p)
	}
	sp.Name = name
	sp.Instance = instance
	sp.Start = time.Unix(100, 0).Add(time.Duration(startMS) * time.Millisecond)
	sp.Dur = time.Duration(durMS) * time.Millisecond
	return sp
}

func mkTraceID(v uint64) TraceID {
	var id TraceID
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * uint(i)))
	}
	return id
}

func mkSpanID(v uint64) SpanID {
	var id SpanID
	for i := range id {
		id[i] = byte(v >> (8 * uint(i)))
	}
	return id
}

func TestMergeSpansDedups(t *testing.T) {
	a := tspan(1, 1, 0, "pub.publish", "pub", 0, 10)
	b := tspan(1, 2, 1, "broker.route", "broker", 2, 5)
	merged := MergeSpans(
		[]TaggedSpan{a, b},
		[]TaggedSpan{b, a}, // overlapping second scrape of the same rings
	)
	if len(merged) != 2 {
		t.Fatalf("merged %d spans, want 2 (duplicates dropped): %+v", len(merged), merged)
	}
	if !merged[0].Start.Before(merged[1].Start) {
		t.Fatalf("merged spans not ordered by start: %+v", merged)
	}
}

func TestAssembleCrossInstanceTree(t *testing.T) {
	// publisher -> broker -> subscriber, each on its own instance, with the
	// broker's clock 1s ahead and the subscriber's 2s behind the publisher's.
	const brokerSkew, subSkew = int64(1000), int64(-2000)
	spans := []TaggedSpan{
		tspan(7, 1, 0, "pub.publish", "pub", 0, 100),
		tspan(7, 2, 1, "pbio.encode", "pub", 5, 20),
		tspan(7, 3, 1, "broker.route", "broker", 40+brokerSkew, 30),
		tspan(7, 4, 3, "pbio.decode", "sub", 50+subSkew, 10),
	}
	asm := Assemble(mkTraceID(7), spans)
	if asm.Spans != 4 || len(asm.Roots) != 1 {
		t.Fatalf("spans=%d roots=%d, want 4 spans, 1 root", asm.Spans, len(asm.Roots))
	}
	if asm.Orphans != 0 {
		t.Fatalf("orphans=%d, want 0", asm.Orphans)
	}
	root := asm.Roots[0]
	if root.Name != "pub.publish" || len(root.Children) != 2 {
		t.Fatalf("root %q with %d children, want pub.publish with 2", root.Name, len(root.Children))
	}
	var route *Node
	for _, c := range root.Children {
		if c.Name == "broker.route" {
			route = c
		}
	}
	if route == nil || len(route.Children) != 1 || route.Children[0].Name != "pbio.decode" {
		t.Fatalf("broker.route must parent pbio.decode: %+v", route)
	}
	if got, want := asm.Instances, []string{"broker", "pub", "sub"}; len(got) != 3 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("instances = %v, want %v", got, want)
	}
	if asm.Reference != "pub" {
		t.Fatalf("reference = %q, want pub (root's instance)", asm.Reference)
	}

	// Skew estimates: offsets translate each instance onto the publisher's
	// clock, so broker ≈ -1s and sub ≈ +2s, within the overlap uncertainty.
	bySkew := map[string]InstanceSkew{}
	for _, sk := range asm.Skew {
		bySkew[sk.Instance] = sk
	}
	checkSkew := func(inst string, wantMS int64) {
		t.Helper()
		sk := bySkew[inst]
		if sk.Edges == 0 {
			t.Fatalf("%s: no skew edges, want an estimate", inst)
		}
		got := sk.Offset.Milliseconds()
		tol := sk.Uncertainty.Milliseconds() + 1
		if got < wantMS-tol || got > wantMS+tol {
			t.Fatalf("%s offset = %dms ±%dms, want %dms", inst, got, tol, wantMS)
		}
	}
	checkSkew("broker", -brokerSkew)
	// sub anchors through broker: offsets compose pub<-broker<-sub.
	checkSkew("sub", -subSkew)
	if sk := bySkew["pub"]; sk.Offset != 0 || sk.Edges != 0 {
		t.Fatalf("reference instance must have zero offset: %+v", sk)
	}
}

func TestAssembleOrphanPromotedToRoot(t *testing.T) {
	spans := []TaggedSpan{
		// parent span 1 never scraped: 2 is an orphan, but its child 3 must
		// still hang off it.
		tspan(9, 2, 1, "broker.route", "broker", 10, 30),
		tspan(9, 3, 2, "pbio.decode", "sub", 15, 10),
		// unrelated trace filtered out
		tspan(8, 9, 0, "noise", "x", 0, 5),
	}
	asm := Assemble(mkTraceID(9), spans)
	if asm.Spans != 2 || asm.Orphans != 1 || len(asm.Roots) != 1 {
		t.Fatalf("spans=%d orphans=%d roots=%d, want 2/1/1", asm.Spans, asm.Orphans, len(asm.Roots))
	}
	r := asm.Roots[0]
	if !r.Orphan || r.Name != "broker.route" || len(r.Children) != 1 {
		t.Fatalf("orphan root wrong: %+v", r)
	}
	var visited int
	asm.Walk(func(n *Node, depth int) {
		visited++
		if n.Name == "pbio.decode" && depth != 1 {
			t.Fatalf("pbio.decode at depth %d, want 1", depth)
		}
	})
	if visited != 2 {
		t.Fatalf("walk visited %d nodes, want 2", visited)
	}
}

func TestSelfTimesMissingParentTreatedAsRoot(t *testing.T) {
	// A child whose parent lives in another process contributes its full
	// self time (minus its own children), exactly as a root would.
	spans := []Span{
		tspan(3, 2, 1, "broker.route", "broker", 0, 40).Span, // parent 1 absent
		tspan(3, 3, 2, "dcg.convert", "broker", 5, 10).Span,
	}
	st := SelfTimes(spans)
	if got := st["broker.route"]; got != 30*time.Millisecond {
		t.Fatalf("broker.route self = %v, want 30ms (40 - child 10)", got)
	}
	if got := st["dcg.convert"]; got != 10*time.Millisecond {
		t.Fatalf("dcg.convert self = %v, want 10ms", got)
	}
}

func TestSelfTimesDuplicateSpansCollapse(t *testing.T) {
	parent := tspan(4, 1, 0, "pub.publish", "pub", 0, 100).Span
	child := tspan(4, 2, 1, "pbio.encode", "pub", 5, 30).Span
	clean := SelfTimes([]Span{parent, child})
	dirty := SelfTimes([]Span{parent, child, child, parent, child})
	for name, want := range clean {
		if got := dirty[name]; got != want {
			t.Fatalf("%s: duplicated merge gives %v, dedup'd gives %v", name, got, want)
		}
	}
	if got := dirty["pub.publish"]; got != 70*time.Millisecond {
		t.Fatalf("pub.publish self = %v, want 70ms (100 - one child's 30)", got)
	}
}

func TestSelfTimesSelfParentedSpan(t *testing.T) {
	sp := tspan(5, 6, 6, "weird", "x", 0, 20).Span // parent == own ID
	if got := SelfTimes([]Span{sp})["weird"]; got != 20*time.Millisecond {
		t.Fatalf("self-parented span self = %v, want 20ms", got)
	}
}

func TestHandlerSinceCursor(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	for i := 0; i < 3; i++ {
		c := tr.Start("stage")
		time.Sleep(2 * time.Millisecond)
		c.Finish()
	}
	get := func(since int64) (spans int, maxStart int64, recorded int64) {
		t.Helper()
		url := "/debug/trace"
		if since > 0 {
			url += "?since=" + strconv.FormatInt(since, 10)
		}
		rec := httptest.NewRecorder()
		Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body struct {
			NowUnixNS int64 `json:"now_unix_ns"`
			Recorded  int64 `json:"recorded"`
			Spans     []struct {
				StartNS int64 `json:"start_unix_ns"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if body.NowUnixNS == 0 {
			t.Fatal("now_unix_ns missing")
		}
		for _, sp := range body.Spans {
			if sp.StartNS > maxStart {
				maxStart = sp.StartNS
			}
		}
		return len(body.Spans), maxStart, body.Recorded
	}
	n, cursor, recorded := get(0)
	if n != 3 || recorded != 3 {
		t.Fatalf("full scrape: %d spans, recorded %d, want 3/3", n, recorded)
	}
	if n, _, _ = get(cursor); n != 0 {
		t.Fatalf("cursor scrape returned %d spans, want 0 (nothing new)", n)
	}
	c := tr.Start("later")
	c.Finish()
	if n, _, _ = get(cursor); n != 1 {
		t.Fatalf("cursor scrape after new span returned %d, want 1", n)
	}

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?since=xyz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}
}
