package xmltext

import (
	"fmt"
	"io"
	"strings"
)

// XMLNamespace is the reserved namespace bound to the "xml" prefix.
const XMLNamespace = "http://www.w3.org/XML/1998/namespace"

// Parse reads an entire XML document from r and builds its tree, resolving
// namespace prefixes to URIs as it goes.
func Parse(r io.Reader) (*Document, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xml: read: %w", err)
	}
	return ParseString(string(raw))
}

// ParseString parses a document held in memory.
func ParseString(src string) (*Document, error) {
	p := &parser{scanner: newScanner(src)}
	p.pushScope() // document-level scope with the implicit xml prefix
	p.bind("xml", XMLNamespace)
	doc := &Document{}

	// Prolog: misc before the root element.
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("no root element")
		}
		if p.peek() != '<' {
			return nil, p.errf("character data outside root element")
		}
		switch {
		case p.hasPrefix("<?"):
			pi, err := p.parseProcInst()
			if err != nil {
				return nil, err
			}
			doc.Prolog = append(doc.Prolog, pi)
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			doc.Prolog = append(doc.Prolog, c)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return nil, err
			}
		default:
			root, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			doc.Root = root
			// Trailing misc.
			for {
				p.skipSpace()
				if p.eof() {
					return doc, nil
				}
				switch {
				case p.hasPrefix("<?"):
					if _, err := p.parseProcInst(); err != nil {
						return nil, err
					}
				case p.hasPrefix("<!--"):
					if _, err := p.parseComment(); err != nil {
						return nil, err
					}
				default:
					return nil, p.errf("content after root element")
				}
			}
		}
	}
}

type nsScope map[string]string

type parser struct {
	*scanner
	scopes []nsScope
}

func (p *parser) pushScope() { p.scopes = append(p.scopes, nsScope{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) bind(prefix, uri string) {
	p.scopes[len(p.scopes)-1][prefix] = uri
}

// lookup resolves a namespace prefix ("" for the default namespace).
func (p *parser) lookup(prefix string) (string, bool) {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if uri, ok := p.scopes[i][prefix]; ok {
			return uri, true
		}
	}
	return "", prefix == "" // default namespace defaults to none
}

func splitQName(q string) (prefix, local string) {
	if i := strings.IndexByte(q, ':'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return "", q
}

// parseElement parses an element whose '<' is the current byte.
func (p *parser) parseElement() (*Element, error) {
	el := &Element{Line: p.line, Col: p.col}
	p.next() // consume '<'
	rawName, err := p.readName()
	if err != nil {
		return nil, err
	}

	// Attributes.
	var attrs []Attr
	selfClose := false
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unexpected EOF in start tag <%s>", rawName)
		}
		c := p.peek()
		if c == '>' {
			p.next()
			break
		}
		if c == '/' && p.peekAt(1) == '>' {
			p.skip(2)
			selfClose = true
			break
		}
		aName, err := p.readName()
		if err != nil {
			return nil, p.errf("malformed attribute in <%s>", rawName)
		}
		p.skipSpace()
		if p.eof() || p.peek() != '=' {
			return nil, p.errf("attribute %q missing '='", aName)
		}
		p.next()
		p.skipSpace()
		val, err := p.readAttrValue()
		if err != nil {
			return nil, err
		}
		for _, a := range attrs {
			if a.Name.Prefix+":"+a.Name.Local == aName || (a.Name.Prefix == "" && a.Name.Local == aName) {
				return nil, p.errf("duplicate attribute %q in <%s>", aName, rawName)
			}
		}
		pre, loc := splitQName(aName)
		attrs = append(attrs, Attr{Name: Name{Prefix: pre, Local: loc}, Value: val})
	}

	// Namespace scope: process xmlns declarations, then resolve names.
	p.pushScope()
	defer p.popScope()
	for _, a := range attrs {
		switch {
		case a.Name.Prefix == "" && a.Name.Local == "xmlns":
			p.bind("", a.Value)
		case a.Name.Prefix == "xmlns":
			if a.Value == "" {
				return nil, p.errf("namespace prefix %q bound to empty URI", a.Name.Local)
			}
			p.bind(a.Name.Local, a.Value)
		}
	}
	for i := range attrs {
		a := &attrs[i]
		if a.Name.Prefix == "xmlns" || (a.Name.Prefix == "" && a.Name.Local == "xmlns") {
			continue // declarations stay prefix-only
		}
		if a.Name.Prefix != "" {
			uri, ok := p.lookup(a.Name.Prefix)
			if !ok {
				return nil, p.errf("undeclared namespace prefix %q", a.Name.Prefix)
			}
			a.Name.Space = uri
		}
	}
	prefix, local := splitQName(rawName)
	uri, ok := p.lookup(prefix)
	if !ok {
		return nil, p.errf("undeclared namespace prefix %q", prefix)
	}
	el.Name = Name{Space: uri, Prefix: prefix, Local: local}
	el.Attrs = attrs
	if selfClose {
		return el, nil
	}

	// Content until matching end tag.
	for {
		if p.eof() {
			return nil, p.errf("unexpected EOF: unclosed element <%s>", rawName)
		}
		if p.peek() != '<' {
			text, err := p.readCharData()
			if err != nil {
				return nil, err
			}
			if text != "" {
				el.Children = append(el.Children, &Text{Data: text})
			}
			continue
		}
		switch {
		case p.hasPrefix("</"):
			p.skip(2)
			endName, err := p.readName()
			if err != nil {
				return nil, err
			}
			if endName != rawName {
				return nil, p.errf("mismatched end tag </%s>, expected </%s>", endName, rawName)
			}
			p.skipSpace()
			if p.eof() || p.peek() != '>' {
				return nil, p.errf("malformed end tag </%s>", endName)
			}
			p.next()
			return el, nil
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		case p.hasPrefix("<![CDATA["):
			t, err := p.parseCDATA()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, t)
		case p.hasPrefix("<?"):
			pi, err := p.parseProcInst()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, pi)
		default:
			child, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, child)
		}
	}
}

func (p *parser) readAttrValue() (string, error) {
	if p.eof() {
		return "", p.errf("unexpected EOF in attribute value")
	}
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", p.errf("attribute value must be quoted")
	}
	p.next()
	start := p.pos
	for !p.eof() && p.peek() != quote {
		if p.peek() == '<' {
			return "", p.errf("'<' in attribute value")
		}
		p.next()
	}
	if p.eof() {
		return "", p.errf("unterminated attribute value")
	}
	raw := p.src[start:p.pos]
	p.next() // closing quote
	return p.expandEntities(raw)
}

func (p *parser) readCharData() (string, error) {
	start := p.pos
	for !p.eof() && p.peek() != '<' {
		p.next()
	}
	raw := p.src[start:p.pos]
	if strings.Contains(raw, "]]>") {
		return "", p.errf("']]>' not allowed in character data")
	}
	return p.expandEntities(raw)
}

func (p *parser) parseComment() (*Comment, error) {
	p.skip(4) // <!--
	start := p.pos
	idx := strings.Index(p.src[p.pos:], "-->")
	if idx < 0 {
		return nil, p.errf("unterminated comment")
	}
	data := p.src[start : start+idx]
	if strings.Contains(data, "--") {
		return nil, p.errf("'--' not allowed inside comment")
	}
	p.skip(idx + 3)
	return &Comment{Data: data}, nil
}

func (p *parser) parseCDATA() (*Text, error) {
	p.skip(9) // <![CDATA[
	start := p.pos
	idx := strings.Index(p.src[p.pos:], "]]>")
	if idx < 0 {
		return nil, p.errf("unterminated CDATA section")
	}
	data := p.src[start : start+idx]
	p.skip(idx + 3)
	return &Text{Data: data, CDATA: true}, nil
}

func (p *parser) parseProcInst() (*ProcInst, error) {
	p.skip(2) // <?
	target, err := p.readName()
	if err != nil {
		return nil, err
	}
	start := p.pos
	idx := strings.Index(p.src[p.pos:], "?>")
	if idx < 0 {
		return nil, p.errf("unterminated processing instruction")
	}
	data := strings.TrimLeft(p.src[start:start+idx], " \t\r\n")
	p.skip(idx + 2)
	return &ProcInst{Target: target, Data: data}, nil
}

// skipDoctype consumes a DOCTYPE declaration, balancing an optional internal
// subset in square brackets. The content is not interpreted: xml2wire uses
// XML Schema, not DTDs (the paper discusses why DTDs are insufficient).
func (p *parser) skipDoctype() error {
	p.skip(len("<!DOCTYPE"))
	depth := 0
	for !p.eof() {
		switch p.next() {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return p.errf("unbalanced ']' in DOCTYPE")
			}
		case '>':
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated DOCTYPE")
}
