package xmltext

import (
	"strings"
	"testing"
)

func TestMarshalCompact(t *testing.T) {
	el := &Element{
		Name:  Name{Prefix: "xsd", Local: "element"},
		Attrs: []Attr{{Name: Name{Local: "name"}, Value: "fltNum"}, {Name: Name{Local: "type"}, Value: "xsd:integer"}},
	}
	got := Marshal(el, "")
	want := `<xsd:element name="fltNum" type="xsd:integer" />`
	if got != want {
		t.Errorf("Marshal = %q, want %q", got, want)
	}
}

func TestMarshalEscapes(t *testing.T) {
	el := &Element{
		Name:     Name{Local: "f"},
		Attrs:    []Attr{{Name: Name{Local: "v"}, Value: `a"<&`}},
		Children: []Node{&Text{Data: `<&>`}},
	}
	got := Marshal(el, "")
	want := `<f v="a&quot;&lt;&amp;">&lt;&amp;&gt;</f>`
	if got != want {
		t.Errorf("Marshal = %q, want %q", got, want)
	}
}

func TestMarshalCDATAAndComment(t *testing.T) {
	el := &Element{
		Name: Name{Local: "a"},
		Children: []Node{
			&Text{Data: "<raw>", CDATA: true},
			&Comment{Data: " c "},
			&ProcInst{Target: "pi", Data: "x"},
		},
	}
	got := Marshal(el, "")
	want := `<a><![CDATA[<raw>]]><!-- c --><?pi x?></a>`
	if got != want {
		t.Errorf("Marshal = %q, want %q", got, want)
	}
}

func TestWriteDocumentRoundTrip(t *testing.T) {
	src := `<?xml version="1.0"?><s:root xmlns:s="urn:s" a="1"><s:child>text &amp; more</s:child><empty /></s:root>`
	doc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := NewWriter(&sb, "").WriteDocument(doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sb.String(), err)
	}
	if doc2.Root.Name.Space != "urn:s" {
		t.Error("namespace lost in round trip")
	}
	c := doc2.Root.Elements()[0]
	if c.TextContent() != "text & more" {
		t.Errorf("text = %q", c.TextContent())
	}
}

func TestPrettyPrint(t *testing.T) {
	doc, err := ParseString(`<r><a><b/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := NewWriter(&sb, "  ").WriteDocument(doc); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "<r>\n  <a>\n    <b />\n  </a>\n</r>\n"
	if got != want {
		t.Errorf("pretty output = %q, want %q", got, want)
	}
}

func TestPrettyPrintPreservesMixedContent(t *testing.T) {
	doc, err := ParseString(`<r>mixed <b>content</b> here</r>`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := NewWriter(&sb, "  ").WriteDocument(doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Root.TextContent() != "mixed content here" {
		t.Errorf("mixed content mangled: %q", doc2.Root.TextContent())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n <= 0 {
		return 0, errWriteFailed
	}
	return len(p), nil
}

var errWriteFailed = &SyntaxError{Msg: "write failed"}

func TestWriterPropagatesError(t *testing.T) {
	doc, _ := ParseString(`<r><a/><b/><c/></r>`)
	w := NewWriter(&failWriter{n: 4}, "")
	if err := w.WriteDocument(doc); err == nil {
		t.Error("writer error not propagated")
	}
}
