package xmltext

import (
	"math/rand"
	"testing"
)

// The parser consumes documents from the network (schema documents, XML
// text messages); arbitrary bytes must produce a parse tree or an error,
// never a panic.

func TestParseNeverPanicsOnMutatedDocuments(t *testing.T) {
	seeds := []string{
		`<?xml version="1.0"?><xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
		  <xsd:complexType name="T"><xsd:element name="a" type="xsd:int"/></xsd:complexType>
		</xsd:schema>`,
		`<a b="1" c='2'><!-- x --><![CDATA[raw]]><d>&amp;&#65;</d></a>`,
		`<r>mixed <b>content</b> tail</r>`,
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		doc := []byte(seeds[rng.Intn(len(seeds))])
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0: // flip
				doc[rng.Intn(len(doc))] ^= byte(1 + rng.Intn(255))
			case 1: // truncate
				doc = doc[:rng.Intn(len(doc)+1)]
			case 2: // duplicate a chunk
				if len(doc) > 4 {
					i := rng.Intn(len(doc) - 2)
					j := i + 1 + rng.Intn(len(doc)-i-1)
					doc = append(doc[:j:j], doc[i:]...)
				}
			}
			if len(doc) == 0 {
				break
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString(%q) panicked: %v", doc, r)
				}
			}()
			if parsed, err := ParseString(string(doc)); err == nil && parsed.Root != nil {
				// Whatever parsed must survive re-serialization and re-parse.
				out := Marshal(parsed.Root, "")
				if _, err := ParseString(out); err != nil {
					t.Fatalf("re-parse of serialized tree failed: %v\ninput: %q\noutput: %q",
						err, doc, out)
				}
			}
		}()
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		data := make([]byte, rng.Intn(300))
		rng.Read(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString panicked on random input: %v", r)
				}
			}()
			_, _ = ParseString(string(data))
		}()
	}
}
