package xmltext

import (
	"io"
	"strings"
)

// EscapeText escapes character data for inclusion in element content.
func EscapeText(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// EscapeAttr escapes an attribute value for inclusion in a double-quoted
// attribute.
func EscapeAttr(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		case '\n':
			sb.WriteString("&#10;")
		case '\t':
			sb.WriteString("&#9;")
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// Writer serializes a document tree. Indent of "" produces compact output;
// any other value pretty-prints with that unit of indentation.
type Writer struct {
	w      io.Writer
	indent string
	err    error
}

// NewWriter returns a Writer emitting to w with the given indent unit.
func NewWriter(w io.Writer, indent string) *Writer {
	return &Writer{w: w, indent: indent}
}

// WriteDocument serializes a whole document, prolog included.
func (w *Writer) WriteDocument(doc *Document) error {
	for _, n := range doc.Prolog {
		w.writeNode(n, 0)
		w.nl()
	}
	if doc.Root != nil {
		w.writeNode(doc.Root, 0)
		w.nl()
	}
	return w.err
}

// WriteNode serializes a single node subtree.
func (w *Writer) WriteNode(n Node) error {
	w.writeNode(n, 0)
	return w.err
}

func (w *Writer) str(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

func (w *Writer) nl() {
	if w.indent != "" {
		w.str("\n")
	}
}

func (w *Writer) pad(depth int) {
	if w.indent == "" {
		return
	}
	for i := 0; i < depth; i++ {
		w.str(w.indent)
	}
}

func (w *Writer) writeNode(n Node, depth int) {
	switch t := n.(type) {
	case *Element:
		w.writeElement(t, depth)
	case *Text:
		if t.CDATA {
			w.str("<![CDATA[")
			w.str(t.Data)
			w.str("]]>")
		} else {
			w.str(EscapeText(t.Data))
		}
	case *Comment:
		w.str("<!--")
		w.str(t.Data)
		w.str("-->")
	case *ProcInst:
		w.str("<?")
		w.str(t.Target)
		if t.Data != "" {
			w.str(" ")
			w.str(t.Data)
		}
		w.str("?>")
	}
}

func (w *Writer) writeElement(e *Element, depth int) {
	w.str("<")
	w.str(e.Name.String())
	for _, a := range e.Attrs {
		w.str(" ")
		w.str(a.Name.String())
		w.str(`="`)
		w.str(EscapeAttr(a.Value))
		w.str(`"`)
	}
	if len(e.Children) == 0 {
		w.str(" />")
		return
	}
	w.str(">")

	// Mixed content (any non-whitespace text) is written inline to preserve
	// it exactly; element-only content is pretty-printed.
	if w.indent != "" && elementOnly(e) {
		for _, c := range e.Children {
			if _, ok := c.(*Text); ok {
				continue // whitespace-only
			}
			w.nl()
			w.pad(depth + 1)
			w.writeNode(c, depth+1)
		}
		w.nl()
		w.pad(depth)
	} else {
		for _, c := range e.Children {
			w.writeNode(c, depth+1)
		}
	}
	w.str("</")
	w.str(e.Name.String())
	w.str(">")
}

// elementOnly reports whether e's children contain no meaningful text.
func elementOnly(e *Element) bool {
	for _, c := range e.Children {
		if t, ok := c.(*Text); ok && strings.TrimSpace(t.Data) != "" {
			return false
		}
	}
	return true
}

// Marshal serializes a node subtree to a string with the given indent unit.
func Marshal(n Node, indent string) string {
	var sb strings.Builder
	w := NewWriter(&sb, indent)
	_ = w.WriteNode(n) // strings.Builder never errors
	return sb.String()
}
