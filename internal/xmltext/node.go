// Package xmltext is a self-contained XML 1.0 parser and writer.
//
// The paper's xml2wire tool sits on top of an XML parsing engine (expat or
// Xerces in the original implementation) and is explicitly designed so that
// "each module is designed to accept a different compatible parsing engine
// ... with minimal integration effort". This package is that engine: a
// hand-rolled, dependency-free tokenizer and DOM with namespace support,
// covering the subset of XML needed for XML Schema metadata documents and
// for the XML-text wire-format baseline — elements, attributes, character
// data, CDATA sections, comments, processing instructions, the five
// predefined entities, numeric character references, and a tolerated (but
// not interpreted) DOCTYPE declaration.
package xmltext

import (
	"fmt"
	"strings"
)

// Name is a namespace-qualified XML name. Space holds the resolved namespace
// URI (empty for names in no namespace), Prefix the original prefix as
// written, and Local the local part.
type Name struct {
	Space  string
	Prefix string
	Local  string
}

// String renders the name as written in the document (prefix:local).
func (n Name) String() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Local
	}
	return n.Local
}

// Attr is a single attribute. Namespace declarations (xmlns, xmlns:p) are
// kept in the attribute list so documents round-trip, and are additionally
// interpreted during parsing.
type Attr struct {
	Name  Name
	Value string
}

// Node is one node in the document tree: *Element, *Text, *Comment or
// *ProcInst.
type Node interface {
	isNode()
}

// Element is an XML element with attributes and ordered children.
type Element struct {
	Name     Name
	Attrs    []Attr
	Children []Node
	// Line and Col locate the start tag in the source, for diagnostics.
	Line, Col int
}

// Text is character data. CDATA reports whether the run came from a CDATA
// section (affects re-serialization only).
type Text struct {
	Data  string
	CDATA bool
}

// Comment is an XML comment (without the <!-- --> delimiters).
type Comment struct {
	Data string
}

// ProcInst is a processing instruction such as <?xml-stylesheet ...?>.
type ProcInst struct {
	Target string
	Data   string
}

func (*Element) isNode()  {}
func (*Text) isNode()     {}
func (*Comment) isNode()  {}
func (*ProcInst) isNode() {}

// Document is a parsed XML document.
type Document struct {
	// Prolog holds comments and processing instructions (including the XML
	// declaration, stored as a ProcInst with target "xml") that precede the
	// root element.
	Prolog []Node
	// Root is the document element.
	Root *Element
}

// Attr returns the value of the first attribute with the given local name in
// no namespace (or in any namespace if none matches exactly — schema
// documents in the wild are inconsistent about qualifying attributes).
func (e *Element) Attr(local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Local == local && a.Name.Space == "" && a.Name.Prefix != "xmlns" {
			return a.Value, true
		}
	}
	for _, a := range e.Attrs {
		if a.Name.Local == local && a.Name.Prefix != "xmlns" && a.Name.Local != "xmlns" {
			return a.Value, true
		}
	}
	return "", false
}

// AttrNS returns the value of the attribute with the given namespace URI and
// local name.
func (e *Element) AttrNS(space, local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// Elements returns the child elements of e in document order.
func (e *Element) Elements() []*Element {
	out := make([]*Element, 0, len(e.Children))
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// ElementsNamed returns the child elements whose local name matches.
func (e *Element) ElementsNamed(local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name.Local == local {
			out = append(out, el)
		}
	}
	return out
}

// First returns the first child element with the given local name.
func (e *Element) First(local string) (*Element, bool) {
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name.Local == local {
			return el, true
		}
	}
	return nil, false
}

// TextContent returns the concatenated character data of e and all
// descendants, the way DOM textContent does.
func (e *Element) TextContent() string {
	var sb strings.Builder
	e.appendText(&sb)
	return sb.String()
}

func (e *Element) appendText(sb *strings.Builder) {
	for _, c := range e.Children {
		switch n := c.(type) {
		case *Text:
			sb.WriteString(n.Data)
		case *Element:
			n.appendText(sb)
		}
	}
}

// SyntaxError reports a malformed document with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: line %d:%d: %s", e.Line, e.Col, e.Msg)
}
