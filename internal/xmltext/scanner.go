package xmltext

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// scanner is a position-tracking cursor over the raw document bytes.
type scanner struct {
	src  string
	pos  int
	line int
	col  int
}

func newScanner(src string) *scanner {
	return &scanner{src: src, line: 1, col: 1}
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

// peek returns the current byte without consuming it, or 0 at EOF.
func (s *scanner) peek() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

// peekAt returns the byte at offset n from the cursor, or 0 past EOF.
func (s *scanner) peekAt(n int) byte {
	if s.pos+n >= len(s.src) {
		return 0
	}
	return s.src[s.pos+n]
}

// next consumes and returns one byte.
func (s *scanner) next() byte {
	c := s.src[s.pos]
	s.pos++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

// hasPrefix reports whether the remaining input starts with p.
func (s *scanner) hasPrefix(p string) bool {
	return strings.HasPrefix(s.src[s.pos:], p)
}

// skip consumes n bytes (which the caller has already inspected).
func (s *scanner) skip(n int) {
	for i := 0; i < n && !s.eof(); i++ {
		s.next()
	}
}

// skipSpace consumes XML whitespace (space, tab, CR, LF).
func (s *scanner) skipSpace() {
	for !s.eof() {
		switch s.peek() {
		case ' ', '\t', '\r', '\n':
			s.next()
		default:
			return
		}
	}
}

func (s *scanner) errf(format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: s.line, Col: s.col, Msg: fmt.Sprintf(format, args...)}
}

// isNameStart reports whether b can start an XML name. Multi-byte UTF-8
// sequences are accepted wholesale; full Unicode name validation is beyond
// what metadata documents need.
func isNameStart(b byte) bool {
	return b == '_' || b == ':' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

// isNameChar reports whether b can appear inside an XML name.
func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

// readName consumes an XML name and returns it.
func (s *scanner) readName() (string, error) {
	if s.eof() || !isNameStart(s.peek()) {
		return "", s.errf("expected name")
	}
	start := s.pos
	for !s.eof() && isNameChar(s.peek()) {
		s.next()
	}
	return s.src[start:s.pos], nil
}

// expandEntities replaces entity and character references in raw character
// data or attribute text.
func (s *scanner) expandEntities(raw string) (string, error) {
	if !strings.ContainsRune(raw, '&') {
		return raw, nil
	}
	var sb strings.Builder
	sb.Grow(len(raw))
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(raw[i:], ';')
		if end < 0 {
			return "", s.errf("unterminated entity reference")
		}
		ref := raw[i+1 : i+end]
		i += end + 1
		switch {
		case ref == "amp":
			sb.WriteByte('&')
		case ref == "lt":
			sb.WriteByte('<')
		case ref == "gt":
			sb.WriteByte('>')
		case ref == "apos":
			sb.WriteByte('\'')
		case ref == "quot":
			sb.WriteByte('"')
		case strings.HasPrefix(ref, "#x") || strings.HasPrefix(ref, "#X"):
			n, err := strconv.ParseUint(ref[2:], 16, 32)
			if err != nil || !utf8.ValidRune(rune(n)) {
				return "", s.errf("invalid character reference &%s;", ref)
			}
			sb.WriteRune(rune(n))
		case strings.HasPrefix(ref, "#"):
			n, err := strconv.ParseUint(ref[1:], 10, 32)
			if err != nil || !utf8.ValidRune(rune(n)) {
				return "", s.errf("invalid character reference &%s;", ref)
			}
			sb.WriteRune(rune(n))
		default:
			return "", s.errf("unknown entity &%s;", ref)
		}
	}
	return sb.String(), nil
}
