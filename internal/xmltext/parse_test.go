package xmltext

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	doc, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", src, err)
	}
	return doc
}

func TestParseMinimal(t *testing.T) {
	doc := mustParse(t, `<a/>`)
	if doc.Root == nil || doc.Root.Name.Local != "a" {
		t.Fatalf("root = %+v", doc.Root)
	}
}

func TestParseAttributesAndText(t *testing.T) {
	doc := mustParse(t, `<msg id="42" kind='event'>hello <b>world</b>!</msg>`)
	r := doc.Root
	if v, ok := r.Attr("id"); !ok || v != "42" {
		t.Errorf("id = %q, %v", v, ok)
	}
	if v, ok := r.Attr("kind"); !ok || v != "event" {
		t.Errorf("kind = %q, %v", v, ok)
	}
	if _, ok := r.Attr("missing"); ok {
		t.Error("missing attribute found")
	}
	if got := r.TextContent(); got != "hello world!" {
		t.Errorf("TextContent = %q", got)
	}
	if len(r.Elements()) != 1 || r.Elements()[0].Name.Local != "b" {
		t.Errorf("child elements = %+v", r.Elements())
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a q="&lt;&amp;&gt;&quot;&apos;">&#65;&#x42;&amp;</a>`)
	if v, _ := doc.Root.Attr("q"); v != `<&>"'` {
		t.Errorf("attr = %q", v)
	}
	if got := doc.Root.TextContent(); got != "AB&" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<a><![CDATA[<not&parsed>]]></a>`)
	if got := doc.Root.TextContent(); got != "<not&parsed>" {
		t.Errorf("CDATA text = %q", got)
	}
	txt, ok := doc.Root.Children[0].(*Text)
	if !ok || !txt.CDATA {
		t.Error("CDATA flag not set")
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- top --><root><!-- in --><?pi data?></root>`)
	if len(doc.Prolog) != 2 {
		t.Fatalf("prolog = %d nodes", len(doc.Prolog))
	}
	pi, ok := doc.Prolog[0].(*ProcInst)
	if !ok || pi.Target != "xml" || pi.Data != `version="1.0"` {
		t.Errorf("xml decl = %+v", pi)
	}
	c, ok := doc.Prolog[1].(*Comment)
	if !ok || c.Data != " top " {
		t.Errorf("comment = %+v", c)
	}
	if len(doc.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(doc.Root.Children))
	}
}

func TestParseDoctype(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]><root>x</root>`)
	if doc.Root.TextContent() != "x" {
		t.Error("doctype parsing broke content")
	}
}

func TestParseNamespaces(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
	  targetNamespace="http://example.org/s">
	  <xsd:complexType name="T">
	    <xsd:element name="f" type="xsd:integer"/>
	  </xsd:complexType>
	</xsd:schema>`
	doc := mustParse(t, src)
	root := doc.Root
	if root.Name.Space != "http://www.w3.org/1999/XMLSchema" {
		t.Errorf("root ns = %q", root.Name.Space)
	}
	if root.Name.Local != "schema" || root.Name.Prefix != "xsd" {
		t.Errorf("root name = %+v", root.Name)
	}
	ct, ok := root.First("complexType")
	if !ok {
		t.Fatal("complexType not found")
	}
	if ct.Name.Space != root.Name.Space {
		t.Error("child did not inherit prefix binding")
	}
	el, _ := ct.First("element")
	if v, _ := el.Attr("type"); v != "xsd:integer" {
		t.Errorf("type attr = %q", v)
	}
}

func TestParseDefaultNamespace(t *testing.T) {
	doc := mustParse(t, `<a xmlns="urn:x"><b/><c xmlns=""><d/></c></a>`)
	if doc.Root.Name.Space != "urn:x" {
		t.Errorf("a ns = %q", doc.Root.Name.Space)
	}
	b := doc.Root.Elements()[0]
	if b.Name.Space != "urn:x" {
		t.Errorf("b ns = %q", b.Name.Space)
	}
	c := doc.Root.Elements()[1]
	if c.Name.Space != "" {
		t.Errorf("c ns = %q (default ns should be unset)", c.Name.Space)
	}
	d := c.Elements()[0]
	if d.Name.Space != "" {
		t.Errorf("d ns = %q", d.Name.Space)
	}
}

func TestParseNamespacedAttr(t *testing.T) {
	doc := mustParse(t, `<a xmlns:p="urn:p" p:x="1" x="2"/>`)
	if v, ok := doc.Root.AttrNS("urn:p", "x"); !ok || v != "1" {
		t.Errorf("AttrNS = %q, %v", v, ok)
	}
	if v, ok := doc.Root.Attr("x"); !ok || v != "2" {
		t.Errorf("Attr = %q, %v", v, ok)
	}
}

func TestParseXMLPrefixImplicit(t *testing.T) {
	doc := mustParse(t, `<a xml:lang="en"/>`)
	if v, ok := doc.Root.AttrNS(XMLNamespace, "lang"); !ok || v != "en" {
		t.Errorf("xml:lang = %q, %v", v, ok)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"empty", ``},
		{"text only", `hello`},
		{"unclosed", `<a>`},
		{"mismatched", `<a></b>`},
		{"content after root", `<a/><b/>`},
		{"two roots text", `<a/>junk`},
		{"bad attr", `<a x=1/>`},
		{"attr no eq", `<a x/>`},
		{"dup attr", `<a x="1" x="2"/>`},
		{"lt in attr", `<a x="<"/>`},
		{"unterminated attr", `<a x="1`},
		{"unknown entity", `<a>&nope;</a>`},
		{"bad char ref", `<a>&#xZZ;</a>`},
		{"huge char ref", `<a>&#xFFFFFFFF;</a>`},
		{"unterminated entity", `<a>&amp</a>`},
		{"unterminated comment", `<a><!-- x</a>`},
		{"double dash comment", `<a><!-- x -- y --></a>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
		{"unterminated pi", `<a><?pi x</a>`},
		{"unterminated doctype", `<!DOCTYPE a [ <x> <a/>`},
		{"undeclared prefix", `<p:a/>`},
		{"undeclared attr prefix", `<a p:x="1"/>`},
		{"empty prefix uri", `<a xmlns:p=""/>`},
		{"cdata end in text", `<a>]]></a>`},
		{"eof in start tag", `<a `},
		{"bad end tag", `<a></a `},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseString(tt.src)
			if err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tt.src)
			}
			var se *SyntaxError
			if err != nil && !errors.As(err, &se) {
				t.Errorf("error %v is not a *SyntaxError", err)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n  <b></c>\n</a>")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestDeeplyNested(t *testing.T) {
	const depth = 500
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<a>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</a>")
	}
	doc := mustParse(t, sb.String())
	if doc.Root.TextContent() != "x" {
		t.Error("deep nesting lost text")
	}
}

func TestElementsNamedAndFirst(t *testing.T) {
	doc := mustParse(t, `<r><x/><y/><x/></r>`)
	if got := len(doc.Root.ElementsNamed("x")); got != 2 {
		t.Errorf("ElementsNamed(x) = %d", got)
	}
	if _, ok := doc.Root.First("z"); ok {
		t.Error("First(z) found element")
	}
}

func TestParseReader(t *testing.T) {
	doc, err := Parse(strings.NewReader(`<a>b</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.TextContent() != "b" {
		t.Error("Parse via reader failed")
	}
}

// Property: escaping then parsing yields the original text.
func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// Strip control chars and invalid UTF-8 that XML forbids outright.
		clean := strings.Map(func(r rune) rune {
			if r == '�' || (r < 0x20 && r != '\t' && r != '\n' && r != '\r') {
				return -1
			}
			return r
		}, s)
		clean = strings.ReplaceAll(clean, "\r", "") // parser keeps \r; writers vary
		doc, err := ParseString("<a>" + EscapeText(clean) + "</a>")
		if err != nil {
			return false
		}
		return doc.Root.TextContent() == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAttrEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '�' || (r < 0x20 && r != '\t' && r != '\n') {
				return -1
			}
			return r
		}, s)
		doc, err := ParseString(`<a v="` + EscapeAttr(clean) + `"/>`)
		if err != nil {
			return false
		}
		v, _ := doc.Root.Attr("v")
		return v == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNameString(t *testing.T) {
	if (Name{Prefix: "xsd", Local: "element"}).String() != "xsd:element" {
		t.Error("prefixed Name.String wrong")
	}
	if (Name{Local: "element"}).String() != "element" {
		t.Error("bare Name.String wrong")
	}
}
