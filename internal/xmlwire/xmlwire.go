// Package xmlwire implements the approach the paper argues against: using
// XML text itself as the wire format, the way XML-RPC and similar systems
// do. Records are serialized as ASCII element trees and parsed back on
// receipt.
//
// The package exists as the measured baseline for two of the paper's
// quantitative claims: that binary NDR transmission outperforms text-based
// XML transmission by roughly an order of magnitude, and that ASCII-encoded
// records expand to 6–8x the size of the binary original. It is implemented
// carefully (strconv, no fmt on hot paths, single-pass parsing) so that the
// comparison is against a competent text implementation, not a strawman.
package xmlwire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"openmeta/internal/pbio"
	"openmeta/internal/xmltext"
)

// Decoding errors.
var (
	ErrWrongRoot  = errors.New("xmlwire: root element does not match format")
	ErrBadElement = errors.New("xmlwire: unexpected element")
	ErrBadValue   = errors.New("xmlwire: cannot parse value")
	ErrBadCount   = errors.New("xmlwire: element count does not match format")
)

// EncodeRecord serializes rec as an XML text message:
//
//	<ASDOffEvent><cntrID>ZTL</cntrID>...<off>10</off><off>20</off>...</ASDOffEvent>
//
// Arrays repeat their element; nested records nest their elements; dynamic
// array counts are implicit in the repetition (count fields are not
// serialized), matching how XML-RPC-era systems carried structured data.
func EncodeRecord(f *pbio.Format, rec pbio.Record) ([]byte, error) {
	var sb strings.Builder
	sb.Grow(f.Size * 8)
	if err := appendRecord(&sb, f, rec); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func appendRecord(sb *strings.Builder, f *pbio.Format, rec pbio.Record) error {
	sb.WriteByte('<')
	sb.WriteString(f.Name)
	sb.WriteByte('>')
	for i := range f.Fields {
		fl := &f.Fields[i]
		if isCountField(f, fl) {
			continue
		}
		val := rec[fl.Name]
		if err := appendField(sb, f, fl, val); err != nil {
			return fmt.Errorf("xmlwire: field %q: %w", fl.Name, err)
		}
	}
	sb.WriteString("</")
	sb.WriteString(f.Name)
	sb.WriteByte('>')
	return nil
}

func isCountField(f *pbio.Format, fl *pbio.Field) bool {
	for i := range f.Fields {
		if f.Fields[i].Dynamic && f.Fields[i].CountField == fl.Name {
			return true
		}
	}
	return false
}

func appendField(sb *strings.Builder, f *pbio.Format, fl *pbio.Field, val interface{}) error {
	if fl.Dynamic || fl.Count > 1 {
		elems, err := sliceElements(val)
		if err != nil {
			return err
		}
		if !fl.Dynamic && len(elems) > fl.Count {
			return fmt.Errorf("%w: %d elements for static array of %d", ErrBadCount, len(elems), fl.Count)
		}
		for _, e := range elems {
			if err := appendOne(sb, f, fl, e); err != nil {
				return err
			}
		}
		// Static arrays serialize missing trailing elements as zeros so the
		// receiver reconstructs the full extent.
		if !fl.Dynamic {
			for i := len(elems); i < fl.Count; i++ {
				if err := appendOne(sb, f, fl, nil); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return appendOne(sb, f, fl, val)
}

func appendOne(sb *strings.Builder, f *pbio.Format, fl *pbio.Field, val interface{}) error {
	if fl.Kind == pbio.Nested {
		sub, ok := val.(pbio.Record)
		if !ok {
			if m, isMap := val.(map[string]interface{}); isMap {
				sub = pbio.Record(m)
			} else if val == nil {
				sub = pbio.Record{}
			} else {
				return fmt.Errorf("%w: got %T, want Record", ErrBadValue, val)
			}
		}
		sb.WriteByte('<')
		sb.WriteString(fl.Name)
		sb.WriteByte('>')
		if err := appendRecord(sb, fl.Nested, sub); err != nil {
			return err
		}
		sb.WriteString("</")
		sb.WriteString(fl.Name)
		sb.WriteByte('>')
		return nil
	}
	text, err := scalarText(fl, val)
	if err != nil {
		return err
	}
	sb.WriteByte('<')
	sb.WriteString(fl.Name)
	sb.WriteByte('>')
	sb.WriteString(text)
	sb.WriteString("</")
	sb.WriteString(fl.Name)
	sb.WriteByte('>')
	return nil
}

func scalarText(fl *pbio.Field, val interface{}) (string, error) {
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		switch v := val.(type) {
		case nil:
			return "0", nil
		case int:
			return strconv.Itoa(v), nil
		case int64:
			return strconv.FormatInt(v, 10), nil
		case int32:
			return strconv.FormatInt(int64(v), 10), nil
		case uint64:
			return strconv.FormatInt(int64(v), 10), nil
		}
	case pbio.Uint:
		switch v := val.(type) {
		case nil:
			return "0", nil
		case uint64:
			return strconv.FormatUint(v, 10), nil
		case uint32:
			return strconv.FormatUint(uint64(v), 10), nil
		case int:
			return strconv.FormatUint(uint64(v), 10), nil
		case int64:
			return strconv.FormatUint(uint64(v), 10), nil
		}
	case pbio.Float:
		switch v := val.(type) {
		case nil:
			return "0", nil
		case float64:
			return strconv.FormatFloat(v, 'g', -1, 64), nil
		case float32:
			return strconv.FormatFloat(float64(v), 'g', -1, 32), nil
		}
	case pbio.Bool:
		switch v := val.(type) {
		case nil:
			return "false", nil
		case bool:
			return strconv.FormatBool(v), nil
		}
	case pbio.String:
		switch v := val.(type) {
		case nil:
			return "", nil
		case string:
			return xmltext.EscapeText(v), nil
		}
	}
	return "", fmt.Errorf("%w: %T for %s field", ErrBadValue, val, fl.Kind)
}

// DecodeRecord parses an XML text message back into a generic record using
// the format as its schema. The count fields of dynamic arrays are
// reconstructed from the number of repeated elements.
func DecodeRecord(f *pbio.Format, data []byte) (pbio.Record, error) {
	doc, err := xmltext.ParseString(string(data))
	if err != nil {
		return nil, err
	}
	return decodeElement(f, doc.Root)
}

func decodeElement(f *pbio.Format, root *xmltext.Element) (pbio.Record, error) {
	if root.Name.Local != f.Name {
		return nil, fmt.Errorf("%w: <%s>, want <%s>", ErrWrongRoot, root.Name.Local, f.Name)
	}
	// Group child elements by name, preserving order.
	groups := make(map[string][]*xmltext.Element, len(f.Fields))
	for _, el := range root.Elements() {
		groups[el.Name.Local] = append(groups[el.Name.Local], el)
	}
	for name := range groups {
		if _, ok := f.FieldByName(name); !ok {
			return nil, fmt.Errorf("%w: <%s> not in format %q", ErrBadElement, name, f.Name)
		}
	}
	rec := make(pbio.Record, len(f.Fields))
	for i := range f.Fields {
		fl := &f.Fields[i]
		if isCountField(f, fl) {
			continue
		}
		els := groups[fl.Name]
		switch {
		case fl.Dynamic:
			vals, err := decodeGroup(f, fl, els)
			if err != nil {
				return nil, err
			}
			rec[fl.Name] = vals
			rec[fl.CountField] = int64(len(els))
		case fl.Count > 1:
			if len(els) != fl.Count {
				return nil, fmt.Errorf("%w: field %q has %d elements, want %d",
					ErrBadCount, fl.Name, len(els), fl.Count)
			}
			vals, err := decodeGroup(f, fl, els)
			if err != nil {
				return nil, err
			}
			rec[fl.Name] = vals
		default:
			if len(els) != 1 {
				return nil, fmt.Errorf("%w: field %q has %d elements, want 1",
					ErrBadCount, fl.Name, len(els))
			}
			v, err := decodeOne(f, fl, els[0])
			if err != nil {
				return nil, err
			}
			rec[fl.Name] = v
		}
	}
	return rec, nil
}

func decodeGroup(f *pbio.Format, fl *pbio.Field, els []*xmltext.Element) (interface{}, error) {
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		out := make([]int64, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int64)
		}
		return out, nil
	case pbio.Uint:
		out := make([]uint64, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(uint64)
		}
		return out, nil
	case pbio.Float:
		out := make([]float64, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	case pbio.Bool:
		out := make([]bool, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(bool)
		}
		return out, nil
	case pbio.String:
		out := make([]string, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(string)
		}
		return out, nil
	case pbio.Nested:
		out := make([]pbio.Record, len(els))
		for i, el := range els {
			v, err := decodeOne(f, fl, el)
			if err != nil {
				return nil, err
			}
			out[i] = v.(pbio.Record)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: kind %v", ErrBadValue, fl.Kind)
	}
}

func decodeOne(f *pbio.Format, fl *pbio.Field, el *xmltext.Element) (interface{}, error) {
	if fl.Kind == pbio.Nested {
		inner := el.Elements()
		if len(inner) != 1 {
			return nil, fmt.Errorf("%w: nested field %q has %d children", ErrBadElement, fl.Name, len(inner))
		}
		return decodeElement(fl.Nested, inner[0])
	}
	text := el.TextContent()
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		v, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %q", ErrBadValue, fl.Name, text)
		}
		return v, nil
	case pbio.Uint:
		v, err := strconv.ParseUint(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %q", ErrBadValue, fl.Name, text)
		}
		return v, nil
	case pbio.Float:
		v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %q", ErrBadValue, fl.Name, text)
		}
		return v, nil
	case pbio.Bool:
		v, err := strconv.ParseBool(strings.TrimSpace(text))
		if err != nil {
			return nil, fmt.Errorf("%w: field %q: %q", ErrBadValue, fl.Name, text)
		}
		return v, nil
	case pbio.String:
		return text, nil
	default:
		return nil, fmt.Errorf("%w: kind %v", ErrBadValue, fl.Kind)
	}
}

func sliceElements(val interface{}) ([]interface{}, error) {
	switch v := val.(type) {
	case nil:
		return nil, nil
	case []interface{}:
		return v, nil
	case []int64:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	case []uint64:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	case []float64:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	case []string:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	case []bool:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	case []pbio.Record:
		out := make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: got %T, want slice", ErrBadValue, val)
	}
}
