package xmlwire

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func structureB(t *testing.T) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("ASDOffEvent", []pbio.FieldSpec{
		{Name: "cntrID", Kind: pbio.String},
		{Name: "arln", Kind: pbio.String},
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "equip", Kind: pbio.String},
		{Name: "org", Kind: pbio.String},
		{Name: "dest", Kind: pbio.String},
		{Name: "off", Kind: pbio.Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func sampleRec() pbio.Record {
	return pbio.Record{
		"cntrID": "ZTL", "arln": "DL", "fltNum": int64(1842),
		"equip": "B757", "org": "ATL", "dest": "MCO",
		"off": []uint64{10, 20, 30, 40, 50},
		"eta": []uint64{1000, 2000, 3000},
	}
}

func TestRoundTrip(t *testing.T) {
	f := structureB(t)
	data, err := EncodeRecord(f, sampleRec())
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "<ASDOffEvent>") || !strings.HasSuffix(text, "</ASDOffEvent>") {
		t.Errorf("text = %q", text)
	}
	if strings.Count(text, "<off>") != 5 || strings.Count(text, "<eta>") != 3 {
		t.Errorf("repetition wrong: %q", text)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "ZTL" || out["fltNum"] != int64(1842) {
		t.Errorf("out = %v", out)
	}
	if !reflect.DeepEqual(out["off"], []uint64{10, 20, 30, 40, 50}) {
		t.Errorf("off = %v", out["off"])
	}
	if !reflect.DeepEqual(out["eta"], []uint64{1000, 2000, 3000}) {
		t.Errorf("eta = %v", out["eta"])
	}
	if out["eta_count"] != int64(3) {
		t.Errorf("eta_count = %v", out["eta_count"])
	}
}

func TestExpansionFactor(t *testing.T) {
	// The paper cites 6–8x expansion for ASCII encoding of binary data.
	// Verify the text form is several times the NDR form for numeric data.
	ctx, _ := pbio.NewContext(machine.X86_64)
	f, err := ctx.RegisterSpec("Nums", []pbio.FieldSpec{
		{Name: "vals", Kind: pbio.Float, CType: machine.CDouble, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 0.1234567890123 * float64(i+1)
	}
	rec := pbio.Record{"vals": vals}
	ndr, err := f.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	text, err := EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(text)) / float64(len(ndr))
	if ratio < 3 {
		t.Errorf("expansion ratio = %.1f, expected several-fold expansion", ratio)
	}
}

func TestEscaping(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	f, err := ctx.RegisterSpec("Msg", []pbio.FieldSpec{
		{Name: "body", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := pbio.Record{"body": `a <b> & "c"`}
	data, err := EncodeRecord(f, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["body"] != in["body"] {
		t.Errorf("body = %q", out["body"])
	}
}

func TestNestedRoundTrip(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	if _, err := ctx.RegisterSpec("Point", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Float, CType: machine.CDouble},
		{Name: "y", Kind: pbio.Float, CType: machine.CDouble},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Seg", []pbio.FieldSpec{
		{Name: "a", Kind: pbio.Nested, NestedName: "Point"},
		{Name: "pts", Kind: pbio.Nested, NestedName: "Point", Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		{Name: "ok", Kind: pbio.Bool, CType: machine.CChar},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := pbio.Record{
		"a":   pbio.Record{"x": 1.5, "y": 2.5},
		"pts": []pbio.Record{{"x": 3.0, "y": 4.0}},
		"ok":  true,
	}
	data, err := EncodeRecord(f, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	a := out["a"].(pbio.Record)
	if a["x"] != 1.5 {
		t.Errorf("a = %v", a)
	}
	pts := out["pts"].([]pbio.Record)
	if len(pts) != 1 || pts[0]["y"] != 4.0 {
		t.Errorf("pts = %v", out["pts"])
	}
	if out["ok"] != true {
		t.Errorf("ok = %v", out["ok"])
	}
}

func TestDecodeErrors(t *testing.T) {
	f := structureB(t)
	cases := []struct {
		name string
		text string
		want error
	}{
		{"wrong root", "<Other></Other>", ErrWrongRoot},
		{"unknown element", "<ASDOffEvent><bogus>1</bogus></ASDOffEvent>", ErrBadElement},
		{"missing scalar", "<ASDOffEvent></ASDOffEvent>", ErrBadCount},
		{"bad number", strings.Replace(valid(t, f), "<fltNum>1842</fltNum>", "<fltNum>xyz</fltNum>", 1), ErrBadValue},
		{"wrong static count", strings.Replace(valid(t, f), "<off>10</off>", "", 1), ErrBadCount},
		{"duplicate scalar", strings.Replace(valid(t, f), "<fltNum>1842</fltNum>", "<fltNum>1</fltNum><fltNum>2</fltNum>", 1), ErrBadCount},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DecodeRecord(f, []byte(tt.text))
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
	if _, err := DecodeRecord(f, []byte("not xml")); err == nil {
		t.Error("malformed XML accepted")
	}
}

func valid(t *testing.T, f *pbio.Format) string {
	t.Helper()
	data, err := EncodeRecord(f, sampleRec())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEncodeErrors(t *testing.T) {
	f := structureB(t)
	if _, err := EncodeRecord(f, pbio.Record{"fltNum": "nope"}); err == nil {
		t.Error("bad scalar accepted")
	}
	if _, err := EncodeRecord(f, pbio.Record{"off": 7}); err == nil {
		t.Error("bad array accepted")
	}
	if _, err := EncodeRecord(f, pbio.Record{"off": []uint64{1, 2, 3, 4, 5, 6}}); err == nil {
		t.Error("oversized static array accepted")
	}
}

func TestZeroRecord(t *testing.T) {
	f := structureB(t)
	data, err := EncodeRecord(f, pbio.Record{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "" || out["eta_count"] != int64(0) {
		t.Errorf("out = %v", out)
	}
	if !reflect.DeepEqual(out["off"], []uint64{0, 0, 0, 0, 0}) {
		t.Errorf("off = %v", out["off"])
	}
}
