package xmlwire

import (
	"reflect"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func allKindsFormat(t *testing.T) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(machine.X86_64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterSpec("P", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Float, CType: machine.CFloat},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("All", []pbio.FieldSpec{
		{Name: "i", Kind: pbio.Int, CType: machine.CInt},
		{Name: "u", Kind: pbio.Uint, CType: machine.CUInt},
		{Name: "fl", Kind: pbio.Float, CType: machine.CFloat},
		{Name: "b", Kind: pbio.Bool, CType: machine.CChar},
		{Name: "c", Kind: pbio.Char, CType: machine.CChar},
		{Name: "s", Kind: pbio.String},
		{Name: "p", Kind: pbio.Nested, NestedName: "P"},
		{Name: "ints", Kind: pbio.Int, CType: machine.CShort, Count: 2},
		{Name: "bools", Kind: pbio.Bool, CType: machine.CChar, Dynamic: true, CountField: "nb"},
		{Name: "nb", Kind: pbio.Int, CType: machine.CInt},
		{Name: "ps", Kind: pbio.Nested, NestedName: "P", Dynamic: true, CountField: "np"},
		{Name: "np", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAllKindsXMLRoundTrip(t *testing.T) {
	f := allKindsFormat(t)
	rec := pbio.Record{
		"i": int64(-3), "u": uint64(7), "fl": float64(float32(1.5)),
		"b": true, "c": int64('q'), "s": "txt",
		"p":     pbio.Record{"x": 0.25},
		"ints":  []int64{5, 6},
		"bools": []bool{false, true},
		"ps":    []pbio.Record{{"x": 1.0}, {"x": 2.0}},
	}
	data, err := EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["i"] != int64(-3) || out["u"] != uint64(7) || out["fl"] != float64(float32(1.5)) {
		t.Errorf("numbers: %v %v %v", out["i"], out["u"], out["fl"])
	}
	if out["b"] != true || out["c"] != int64('q') || out["s"] != "txt" {
		t.Errorf("scalars: %v %v %v", out["b"], out["c"], out["s"])
	}
	if out["p"].(pbio.Record)["x"] != 0.25 {
		t.Errorf("p: %v", out["p"])
	}
	if !reflect.DeepEqual(out["ints"], []int64{5, 6}) {
		t.Errorf("ints: %v", out["ints"])
	}
	if !reflect.DeepEqual(out["bools"], []bool{false, true}) || out["nb"] != int64(2) {
		t.Errorf("bools: %v nb=%v", out["bools"], out["nb"])
	}
	ps := out["ps"].([]pbio.Record)
	if len(ps) != 2 || ps[1]["x"] != 2.0 {
		t.Errorf("ps: %v", out["ps"])
	}
}

func TestXMLScalarTextVariants(t *testing.T) {
	f := allKindsFormat(t)
	// Alternate Go types on encode: int, int32, uint32, float32, map nested.
	rec := pbio.Record{
		"i": int(4), "u": uint32(9), "fl": float32(2.5),
		"p":  map[string]interface{}{"x": 1.5},
		"ps": []interface{}{pbio.Record{"x": 3.0}},
	}
	data, err := EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["i"] != int64(4) || out["u"] != uint64(9) || out["fl"] != 2.5 {
		t.Errorf("coerced: %v %v %v", out["i"], out["u"], out["fl"])
	}
	if out["p"].(pbio.Record)["x"] != 1.5 {
		t.Errorf("p: %v", out["p"])
	}
}

func TestXMLDecodeKindErrors(t *testing.T) {
	f := allKindsFormat(t)
	good, err := EncodeRecord(f, pbio.Record{})
	if err != nil {
		t.Fatal(err)
	}
	text := string(good)
	cases := []struct{ name, from, to string }{
		{"bad uint", "<u>0</u>", "<u>-1</u>"},
		{"bad float", "<fl>0</fl>", "<fl>zz</fl>"},
		{"bad bool", "<b>false</b>", "<b>maybe</b>"},
		{"nested not element", "<p><P><x>0</x></P></p>", "<p>text</p>"},
		{"nested extra children", "<p><P><x>0</x></P></p>", "<p><P><x>0</x></P><P><x>0</x></P></p>"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			bad := replaceOnce(t, text, tt.from, tt.to)
			if _, err := DecodeRecord(f, []byte(bad)); err == nil {
				t.Errorf("accepted: %s", bad)
			}
		})
	}
}

func replaceOnce(t *testing.T, s, from, to string) string {
	t.Helper()
	i := indexOf(s, from)
	if i < 0 {
		t.Fatalf("fixture missing %q in %s", from, s)
	}
	return s[:i] + to + s[i+len(from):]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestXMLEncodeBadValues(t *testing.T) {
	f := allKindsFormat(t)
	cases := []pbio.Record{
		{"b": "yes"},
		{"s": 5},
		{"p": "not a record"},
		{"fl": "fast"},
		{"u": []byte{1}},
	}
	for i, rec := range cases {
		if _, err := EncodeRecord(f, rec); err == nil {
			t.Errorf("case %d accepted: %v", i, rec)
		}
	}
}
