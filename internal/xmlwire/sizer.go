package xmlwire

import "openmeta/internal/pbio"

// Register this package's encoder as pbio's XML-text sizer, powering the
// per-format pbio.format.xml.expansion_pct gauge: any process that links
// xmlwire (every daemon and the benchmarks do, via the facade) gets live
// NDR-vs-XML-text expansion ratios for free. The import direction rules out
// a plain call — xmlwire already imports pbio — hence the hook.
func init() {
	pbio.SetXMLTextSizer(func(f *pbio.Format, rec pbio.Record) (int, error) {
		b, err := EncodeRecord(f, rec)
		return len(b), err
	})
}
