// Package histdb is a fixed-memory in-process time-series ring over an obsv
// registry: every interval it samples the whole instrument set — counters as
// per-tick deltas, gauges (and snapshot funcs) as instantaneous values,
// histograms as count-delta plus p50/p95/p99 — into circular buffers holding
// the last ~720 samples (one hour at the 5s default). /debug/history serves
// the ring as JSON, so a latency spike or queue-depth excursion that ends
// before an operator attaches omtop still leaves evidence, and the alert
// package evaluates its rules against the same samples.
//
// Sampling-path contract: the per-tick path performs no allocations once the
// instrument set is stable (guarded by testing.AllocsPerRun in the package
// tests). The sampler caches a flattened plan — instrument pointers plus the
// derived series key strings — and rebuilds it only when the registry's
// Generation moves, i.e. when an instrument or labeled child is created.
// Snapshot funcs run inside the sampling lock; they must be cheap and must
// not call back into the DB.
package histdb

import (
	"sync"
	"time"

	"openmeta/internal/obsv"
)

// Kind classifies how a series' points were derived.
type Kind uint8

const (
	// Counter series store per-tick deltas of a monotone counter (or of a
	// histogram's sample count), so each point is "events this interval".
	Counter Kind = iota + 1
	// Gauge series store the sampled instantaneous value (gauges, snapshot
	// funcs, histogram quantiles).
	Gauge
)

// String names the kind for the /debug/history JSON.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	default:
		return "unknown"
	}
}

// DefaultCapacity is the ring length: 720 samples = one hour of history at
// the 5-second default interval, ~6 KiB per series.
const DefaultCapacity = 720

// DefaultInterval is the default sampling period.
const DefaultInterval = 5 * time.Second

// histSuffixes are the per-histogram derived series, appended to the
// histogram's name. The count series carries per-tick deltas (Counter kind);
// the quantiles are instantaneous (Gauge kind).
var histSuffixes = [4]string{".count", ".p50", ".p95", ".p99"}

// Option configures a DB built with New.
type Option func(*DB)

// WithInterval sets the sampling period (default 5s; minimum 1ms).
func WithInterval(d time.Duration) Option {
	return func(db *DB) {
		if d >= time.Millisecond {
			db.interval = d
		}
	}
}

// WithCapacity sets how many samples the ring retains (default 720).
func WithCapacity(n int) Option {
	return func(db *DB) {
		if n > 0 {
			db.capacity = n
		}
	}
}

// series is one named column of the ring.
type series struct {
	kind  Kind
	start int     // tick index of the first stored value
	vals  []int64 // ring, indexed tick % capacity
}

// planEntry is one cached instrument binding. Exactly one of c/g/h/f is set;
// histograms fan out into the four derived series in hs, scalars into s.
type planEntry struct {
	c *obsv.Counter
	g *obsv.Gauge
	h *obsv.Histogram
	f func() int64

	prev int64 // counters and histogram counts: last raw value
	s    *series
	hs   [len(histSuffixes)]*series
}

// DB samples a registry into fixed-memory rings. Create with New, start the
// sampling goroutine with Start (or drive ticks explicitly with Sample in
// tests), and serve the contents with Handler.
type DB struct {
	reg      *obsv.Registry
	interval time.Duration
	capacity int

	mu     sync.RWMutex
	times  []int64 // unix ns per tick, ring
	ticks  int     // total samples taken
	series map[string]*series
	plan   []planEntry
	gen    uint64
	built  bool

	listeners []func()

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New returns a DB sampling reg. The DB is inert until Start (the daemons'
// -history-interval flag) or explicit Sample calls (tests).
func New(reg *obsv.Registry, opts ...Option) *DB {
	db := &DB{
		reg:      reg,
		interval: DefaultInterval,
		capacity: DefaultCapacity,
		series:   make(map[string]*series),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(db)
	}
	db.times = make([]int64, db.capacity)
	return db
}

// Interval returns the sampling period (what alert rules' For durations are
// divided by to get a tick count).
func (db *DB) Interval() time.Duration { return db.interval }

// Capacity returns the ring length in samples.
func (db *DB) Capacity() int { return db.capacity }

// OnSample registers fn to run after every sample, outside the DB's lock —
// the alert engine's evaluation hook. Register before Start.
func (db *DB) OnSample(fn func()) {
	if db == nil || fn == nil {
		return
	}
	db.mu.Lock()
	db.listeners = append(db.listeners, fn)
	db.mu.Unlock()
}

// Start launches the sampling goroutine and returns the DB (chainable).
// Stop ends it; starting twice is undefined.
func (db *DB) Start() *DB {
	go func() {
		defer close(db.done)
		t := time.NewTicker(db.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				db.Sample()
			case <-db.stop:
				return
			}
		}
	}()
	return db
}

// Stop ends the sampling goroutine and waits for it to exit. Safe to call
// more than once; the ring remains readable afterwards.
func (db *DB) Stop() {
	db.stopOnce.Do(func() { close(db.stop) })
	<-db.done
}

// Sample takes one sample now. Exported so tests (and callers that own their
// own cadence) can drive ticks deterministically; Start calls it on the
// interval. The steady-state path — no new instruments since the last tick —
// performs no allocations.
func (db *DB) Sample() {
	now := time.Now().UnixNano()
	db.mu.Lock()
	if g := db.reg.Generation(); !db.built || g != db.gen {
		db.rebuildLocked(g)
	}
	idx := db.ticks % db.capacity
	db.times[idx] = now
	for i := range db.plan {
		e := &db.plan[i]
		switch {
		case e.c != nil:
			v := e.c.Load()
			e.s.vals[idx] = v - e.prev
			e.prev = v
		case e.g != nil:
			e.s.vals[idx] = e.g.Load()
		case e.f != nil:
			e.s.vals[idx] = e.f()
		case e.h != nil:
			hv := e.h.Value()
			e.hs[0].vals[idx] = hv.Count - e.prev
			e.prev = hv.Count
			e.hs[1].vals[idx] = hv.Quantile(0.50)
			e.hs[2].vals[idx] = hv.Quantile(0.95)
			e.hs[3].vals[idx] = hv.Quantile(0.99)
		}
	}
	db.ticks++
	ls := db.listeners
	db.mu.Unlock()
	for _, fn := range ls {
		fn()
	}
}

// rebuildLocked refreshes the cached sampling plan from the registry. Called
// with db.mu held, only when the registry generation moved — the allocating
// slow path that keeps the per-tick path allocation-free. Counter baselines
// carry over from the old plan: a rebuild happens on the first tick after the
// registry grew, exactly when existing counters may also have accrued events,
// and re-seeding them from the live value would swallow that tick's deltas.
// Only instruments the plan has never seen seed from the live value, so their
// first delta counts from now, not from zero.
func (db *DB) rebuildLocked(gen uint64) {
	prevs := make(map[*series]int64, len(db.plan))
	for i := range db.plan {
		e := &db.plan[i]
		switch {
		case e.c != nil:
			prevs[e.s] = e.prev
		case e.h != nil:
			prevs[e.hs[0]] = e.prev
		}
	}
	refs := db.reg.Instruments()
	plan := make([]planEntry, 0, len(refs))
	for _, ref := range refs {
		var e planEntry
		switch ref.Kind {
		case obsv.KindCounter:
			e.c = ref.Counter
			e.s = db.seriesLocked(ref.Name, Counter)
			if p, ok := prevs[e.s]; ok {
				e.prev = p
			} else {
				e.prev = ref.Counter.Load()
			}
		case obsv.KindGauge:
			e.g = ref.Gauge
			e.s = db.seriesLocked(ref.Name, Gauge)
		case obsv.KindFunc:
			e.f = ref.Func
			e.s = db.seriesLocked(ref.Name, Gauge)
		case obsv.KindHistogram:
			e.h = ref.Histogram
			for i, suffix := range histSuffixes {
				kind := Gauge
				if i == 0 {
					kind = Counter
				}
				e.hs[i] = db.seriesLocked(ref.Name+suffix, kind)
			}
			if p, ok := prevs[e.hs[0]]; ok {
				e.prev = p
			} else {
				e.prev = ref.Histogram.Value().Count
			}
		default:
			continue
		}
		plan = append(plan, e)
	}
	db.plan = plan
	db.gen = gen
	db.built = true
}

// seriesLocked resolves (creating if new) the ring for one series key. A
// series created mid-flight remembers its start tick, so reads never surface
// the zeroes before it existed. Re-resolving an existing series keeps its
// history; its counter baseline lives in the plan entry and survives rebuilds
// via the carry-over map in rebuildLocked.
func (db *DB) seriesLocked(key string, kind Kind) *series {
	if s := db.series[key]; s != nil {
		return s
	}
	s := &series{kind: kind, start: db.ticks, vals: make([]int64, db.capacity)}
	db.series[key] = s
	return s
}

// Point is one sample of one series.
type Point struct {
	T int64 `json:"t"` // unix milliseconds
	V int64 `json:"v"`
}

// Series is the queryable view of one metric's history.
type Series struct {
	Kind   string  `json:"kind"`
	Points []Point `json:"points"`
}

// Ticks returns how many samples have been taken in total (including those
// the ring has overwritten).
func (db *DB) Ticks() int {
	if db == nil {
		return 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ticks
}

// Keys returns the series keys present in the ring, unsorted.
func (db *DB) Keys() []string {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for k := range db.series {
		out = append(out, k)
	}
	return out
}

// Latest returns the most recent sample of the series (ok = false if the
// series does not exist or has no samples yet) — what alert rules evaluate.
func (db *DB) Latest(key string) (int64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[key]
	if s == nil || db.ticks == 0 || s.start >= db.ticks {
		return 0, false
	}
	return s.vals[(db.ticks-1)%db.capacity], true
}

// Query returns the retained points of every series match accepts (nil
// matches everything), at or after since (zero time: the whole ring).
func (db *DB) Query(match func(key string) bool, since time.Time) map[string]Series {
	if db == nil {
		return map[string]Series{}
	}
	sinceNS := int64(0)
	if !since.IsZero() {
		sinceNS = since.UnixNano()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	first := 0
	if db.ticks > db.capacity {
		first = db.ticks - db.capacity
	}
	out := make(map[string]Series, len(db.series))
	for key, s := range db.series {
		if match != nil && !match(key) {
			continue
		}
		from := first
		if s.start > from {
			from = s.start
		}
		pts := make([]Point, 0, db.ticks-from)
		for t := from; t < db.ticks; t++ {
			ns := db.times[t%db.capacity]
			if ns < sinceNS {
				continue
			}
			pts = append(pts, Point{T: ns / int64(time.Millisecond), V: s.vals[t%db.capacity]})
		}
		out[key] = Series{Kind: s.kind.String(), Points: pts}
	}
	return out
}
