package histdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

func TestCounterDeltasAndGaugeValues(t *testing.T) {
	r := obsv.New()
	c := r.Counter("reqs")
	g := r.Gauge("depth")
	db := New(r, WithCapacity(16))

	c.Add(5)
	g.Set(10)
	db.Sample()
	c.Add(3)
	g.Set(7)
	db.Sample()
	c.Add(2)
	db.Sample()

	got := db.Query(nil, time.Time{})
	reqs := got["reqs"]
	if reqs.Kind != "counter" {
		t.Fatalf("reqs kind = %q", reqs.Kind)
	}
	// The plan was built inside the first Sample, after c.Add(5): prev seeds
	// at 5, so the first stored delta is 0, then 3, then 2.
	wantDeltas := []int64{0, 3, 2}
	if len(reqs.Points) != len(wantDeltas) {
		t.Fatalf("reqs points = %d, want %d", len(reqs.Points), len(wantDeltas))
	}
	for i, w := range wantDeltas {
		if reqs.Points[i].V != w {
			t.Fatalf("reqs delta[%d] = %d, want %d", i, reqs.Points[i].V, w)
		}
	}
	depth := got["depth"]
	if depth.Kind != "gauge" {
		t.Fatalf("depth kind = %q", depth.Kind)
	}
	for i, w := range []int64{10, 7, 7} {
		if depth.Points[i].V != w {
			t.Fatalf("depth[%d] = %d, want %d", i, depth.Points[i].V, w)
		}
	}
	for i := 1; i < len(reqs.Points); i++ {
		if reqs.Points[i].T < reqs.Points[i-1].T {
			t.Fatalf("timestamps not monotone: %v", reqs.Points)
		}
	}
}

// TestRebuildPreservesCounterBaselines covers the tick right after the
// registry grows: the plan rebuild must carry existing counters' baselines
// over, not re-seed them from the live value — re-seeding would swallow the
// deltas accrued since the previous tick (exactly the tick a new stream's
// first burst of traffic lands on).
func TestRebuildPreservesCounterBaselines(t *testing.T) {
	r := obsv.New()
	c := r.Counter("reqs")
	h := r.Histogram("lat")
	db := New(r, WithCapacity(16))
	db.Sample()

	// Accrue events, then grow the registry before the next tick.
	c.Add(7)
	h.Observe(100)
	h.Observe(200)
	r.Counter("newcomer").Add(3)
	db.Sample()

	got := db.Query(nil, time.Time{})
	if v := got["reqs"].Points[1].V; v != 7 {
		t.Fatalf("reqs delta across rebuild = %d, want 7", v)
	}
	if v := got["lat.count"].Points[1].V; v != 2 {
		t.Fatalf("lat.count delta across rebuild = %d, want 2", v)
	}
	// The newcomer itself seeds from its live value: first delta is 0.
	nc := got["newcomer"]
	if len(nc.Points) != 1 || nc.Points[0].V != 0 {
		t.Fatalf("newcomer points = %+v, want one zero delta", nc.Points)
	}
}

func TestHistogramSeriesExpansion(t *testing.T) {
	r := obsv.New()
	h := r.Histogram("lat")
	db := New(r, WithCapacity(8))
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	db.Sample()
	for i := 0; i < 50; i++ {
		h.Observe(1000)
	}
	db.Sample()

	got := db.Query(nil, time.Time{})
	for _, key := range []string{"lat.count", "lat.p50", "lat.p95", "lat.p99"} {
		if _, ok := got[key]; !ok {
			t.Fatalf("missing derived series %q (have %d series)", key, len(got))
		}
	}
	cnt := got["lat.count"]
	if cnt.Kind != "counter" || len(cnt.Points) != 2 {
		t.Fatalf("lat.count = %+v", cnt)
	}
	// prev seeded at plan build inside the first Sample (count already 100):
	// delta 0 then 50.
	if cnt.Points[0].V != 0 || cnt.Points[1].V != 50 {
		t.Fatalf("lat.count deltas = %d, %d", cnt.Points[0].V, cnt.Points[1].V)
	}
	if got["lat.p50"].Kind != "gauge" {
		t.Fatalf("lat.p50 kind = %q", got["lat.p50"].Kind)
	}
	// After the second batch p99 must sit in the 1000-sample bucket range.
	p99 := got["lat.p99"].Points[1].V
	if p99 < 512 {
		t.Fatalf("p99 after slow batch = %d, want >= 512", p99)
	}
}

func TestRingWrapKeepsOnlyLastCapacity(t *testing.T) {
	r := obsv.New()
	g := r.Gauge("v")
	db := New(r, WithCapacity(4))
	for i := 0; i < 10; i++ {
		g.Set(int64(i))
		db.Sample()
	}
	got := db.Query(nil, time.Time{})["v"]
	if len(got.Points) != 4 {
		t.Fatalf("points after wrap = %d, want 4", len(got.Points))
	}
	for i, w := range []int64{6, 7, 8, 9} {
		if got.Points[i].V != w {
			t.Fatalf("point[%d] = %d, want %d", i, got.Points[i].V, w)
		}
	}
	if db.Ticks() != 10 {
		t.Fatalf("Ticks = %d, want 10", db.Ticks())
	}
}

func TestLateCreatedSeriesStartsAtItsTick(t *testing.T) {
	r := obsv.New()
	r.Gauge("early").Set(1)
	db := New(r, WithCapacity(16))
	db.Sample()
	db.Sample()
	r.Gauge("late").Set(9) // bumps generation; plan rebuilds next tick
	db.Sample()

	got := db.Query(nil, time.Time{})
	if n := len(got["early"].Points); n != 3 {
		t.Fatalf("early points = %d, want 3", n)
	}
	late := got["late"]
	if n := len(late.Points); n != 1 {
		t.Fatalf("late points = %d, want 1 (no zero backfill)", n)
	}
	if late.Points[0].V != 9 {
		t.Fatalf("late value = %d", late.Points[0].V)
	}
}

func TestLatest(t *testing.T) {
	r := obsv.New()
	c := r.Counter("c")
	db := New(r, WithCapacity(8))
	if _, ok := db.Latest("c"); ok {
		t.Fatal("Latest before any sample must be !ok")
	}
	db.Sample()
	c.Add(4)
	db.Sample()
	v, ok := db.Latest("c")
	if !ok || v != 4 {
		t.Fatalf("Latest(c) = %d,%v want 4,true", v, ok)
	}
	if _, ok := db.Latest("nope"); ok {
		t.Fatal("Latest of unknown series must be !ok")
	}
	var nilDB *DB
	if _, ok := nilDB.Latest("c"); ok || nilDB.Ticks() != 0 || nilDB.Keys() != nil {
		t.Fatal("nil DB not inert")
	}
}

func TestOnSampleListener(t *testing.T) {
	r := obsv.New()
	db := New(r)
	n := 0
	db.OnSample(func() { n++ })
	db.OnSample(nil) // ignored
	db.Sample()
	db.Sample()
	if n != 2 {
		t.Fatalf("listener ran %d times, want 2", n)
	}
}

func TestStartStop(t *testing.T) {
	r := obsv.New()
	r.Gauge("g").Set(1)
	db := New(r, WithInterval(2*time.Millisecond), WithCapacity(64)).Start()
	deadline := time.Now().Add(2 * time.Second)
	for db.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	db.Stop()
	db.Stop() // idempotent
	if db.Ticks() < 3 {
		t.Fatalf("only %d ticks after Start", db.Ticks())
	}
	n := db.Ticks()
	time.Sleep(10 * time.Millisecond)
	if db.Ticks() != n {
		t.Fatal("sampling continued after Stop")
	}
}

func TestHandlerFiltersAndShape(t *testing.T) {
	r := obsv.New()
	r.Counter("eventbus.frames").Add(1)
	r.Counter("eventbus.bytes").Add(10)
	r.Gauge("dcg.plans").Set(5)
	db := New(r, WithInterval(10*time.Millisecond), WithCapacity(32))
	db.Sample()
	time.Sleep(5 * time.Millisecond)
	mid := time.Now()
	time.Sleep(5 * time.Millisecond)
	db.Sample()

	get := func(q string) (int, map[string]Series) {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/history"+q, nil)
		rec := httptest.NewRecorder()
		Handler(db).ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", q, rec.Code, rec.Body.String())
		}
		var body struct {
			IntervalMS int64             `json:"interval_ms"`
			Ticks      int               `json:"ticks"`
			Capacity   int               `json:"capacity"`
			Series     map[string]Series `json:"series"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", q, err)
		}
		if body.IntervalMS != 10 || body.Capacity != 32 {
			t.Fatalf("GET %s: shape = %+v", q, body)
		}
		return body.Ticks, body.Series
	}

	ticks, all := get("")
	if ticks != 2 || len(all) != 3 {
		t.Fatalf("unfiltered: ticks=%d series=%d", ticks, len(all))
	}
	if _, s := get("?key=dcg.plans"); len(s) != 1 || len(s["dcg.plans"].Points) != 2 {
		t.Fatalf("key=dcg.plans: %+v", s)
	}
	if _, s := get("?key=eventbus.*"); len(s) != 2 {
		t.Fatalf("key=eventbus.*: %d series", len(s))
	}
	if _, s := get("?key=eventbus.frames&key=dcg.plans"); len(s) != 2 {
		t.Fatalf("repeated key: %d series", len(s))
	}
	if _, s := get("?key=nope"); len(s) != 0 {
		t.Fatalf("key=nope: %d series", len(s))
	}
	// since= as RFC3339 cuts the first point off.
	if _, s := get("?since=" + mid.UTC().Format(time.RFC3339Nano)); len(s["dcg.plans"].Points) != 1 {
		t.Fatalf("since=RFC3339: %+v", s["dcg.plans"])
	}
	// since= as a duration keeps everything (window well wider than the gap).
	if _, s := get("?since=1h"); len(s["dcg.plans"].Points) != 2 {
		t.Fatalf("since=1h: %+v", s["dcg.plans"])
	}

	req := httptest.NewRequest("GET", "/debug/history?since=bogus", nil)
	rec := httptest.NewRecorder()
	Handler(db).ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history", nil))
	if rec.Code != 503 {
		t.Fatalf("nil db: status %d, want 503", rec.Code)
	}
}

// populate builds a registry resembling a busy broker: many counters, gauges,
// histograms and labeled children — the workload the sampling budget is
// stated against.
func populate(r *obsv.Registry) {
	for i := 0; i < 100; i++ {
		r.Counter(fmt.Sprintf("c.%03d", i)).Add(int64(i))
	}
	for i := 0; i < 50; i++ {
		r.Gauge(fmt.Sprintf("g.%03d", i)).Set(int64(i))
	}
	for i := 0; i < 20; i++ {
		h := r.Histogram(fmt.Sprintf("h.%03d", i))
		for j := 0; j < 32; j++ {
			h.Observe(int64(j * 100))
		}
	}
	cv := r.CounterVec("wire.records", "stream")
	for i := 0; i < 10; i++ {
		cv.With(fmt.Sprintf("stream-%d", i)).Inc()
	}
}

// TestSampleAllocationFree is the acceptance gate from ISSUE.md: once the
// instrument set is stable the per-tick sampling path must not allocate.
// (Snapshot funcs are excluded here on purpose — a Func's closure is caller
// code and may allocate; the DB's own path must not.)
func TestSampleAllocationFree(t *testing.T) {
	r := obsv.New()
	populate(r)
	db := New(r, WithCapacity(128))
	db.Sample() // build the plan
	allocs := testing.AllocsPerRun(100, func() { db.Sample() })
	if allocs != 0 {
		t.Fatalf("Sample allocates %.1f per tick, want 0", allocs)
	}
}

// BenchmarkSample is gated by scripts/bench.sh -compare under an absolute
// per-sample ns/op budget (HISTDB_BUDGET_NS): sampling a busy registry must
// stay cheap enough to run forever at a 5s cadence.
func BenchmarkSample(b *testing.B) {
	r := obsv.New()
	populate(r)
	db := New(r, WithCapacity(DefaultCapacity))
	db.Sample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Sample()
	}
}
