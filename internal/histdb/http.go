package histdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler serves the ring's contents as JSON — the /debug/history endpoint on
// the DebugMux. Query parameters narrow the dump:
//
//	?key=K       only series K; repeatable; a trailing '*' matches a prefix
//	             (key=eventbus.* selects every eventbus series)
//	?since=S     only points at or after S: a duration back from now ("5m"),
//	             unix seconds, or RFC3339
//
// The response is {interval_ms, ticks, capacity, series: {name: {kind,
// points: [{t, v}]}}} with t in unix milliseconds; counter series carry
// per-interval deltas, gauge series instantaneous values. A nil db answers
// 503 so daemons can mount the endpoint unconditionally and light it up only
// when -history-interval enables sampling.
func Handler(db *DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if db == nil {
			http.Error(w, "histdb: history disabled", http.StatusServiceUnavailable)
			return
		}
		q := req.URL.Query()

		var since time.Time
		if v := q.Get("since"); v != "" {
			t, err := parseSince(v)
			if err != nil {
				http.Error(w, "histdb: bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = t
		}

		var match func(string) bool
		if keys := q["key"]; len(keys) > 0 {
			exact := make(map[string]bool, len(keys))
			var prefixes []string
			for _, k := range keys {
				if p, ok := strings.CutSuffix(k, "*"); ok {
					prefixes = append(prefixes, p)
				} else {
					exact[k] = true
				}
			}
			match = func(key string) bool {
				if exact[key] {
					return true
				}
				for _, p := range prefixes {
					if strings.HasPrefix(key, p) {
						return true
					}
				}
				return false
			}
		}

		resp := struct {
			IntervalMS int64             `json:"interval_ms"`
			Ticks      int               `json:"ticks"`
			Capacity   int               `json:"capacity"`
			Series     map[string]Series `json:"series"`
		}{
			IntervalMS: db.Interval().Milliseconds(),
			Ticks:      db.Ticks(),
			Capacity:   db.Capacity(),
			Series:     db.Query(match, since),
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}

// parseSince accepts the three ?since= spellings: a duration back from now,
// unix seconds, or RFC3339.
func parseSince(v string) (time.Time, error) {
	if d, err := time.ParseDuration(v); err == nil {
		return time.Now().Add(-d), nil
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	return time.Parse(time.RFC3339, v)
}
