package obsv

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestVecCardinalityClamp is the guard against unbounded label growth: a
// misbehaving label source (a stream name carrying a request id, say) must
// not grow /metrics without bound. Beyond the registry's max children per
// vec, new combinations share one overflow child and are counted.
func TestVecCardinalityClamp(t *testing.T) {
	r := New()
	r.SetMaxLabelChildren(3)
	cv := r.CounterVec("eventbus.wire.records", "stream")
	for i := 0; i < 10; i++ {
		cv.With(fmt.Sprintf("stream-%d", i)).Inc()
	}

	snap := r.Snapshot()
	distinct := 0
	for k := range snap {
		if strings.HasPrefix(k, "eventbus.wire.records{") && !strings.Contains(k, overflowLabel) {
			distinct++
		}
	}
	if distinct != 3 {
		t.Fatalf("distinct children = %d, want 3 (clamped)\nsnapshot: %v", distinct, Names(snap))
	}
	over := snap[`eventbus.wire.records{stream="overflow"}`]
	if over != 7 {
		t.Fatalf("overflow child = %d, want 7", over)
	}
	if got := snap[DroppedLabelsCounter]; got != 7 {
		t.Fatalf("%s = %d, want 7", DroppedLabelsCounter, got)
	}

	// Existing children keep resolving directly even at the bound.
	cv.With("stream-0").Inc()
	if got := r.Snapshot()[`eventbus.wire.records{stream="stream-0"}`]; got != 2 {
		t.Fatalf("existing child after clamp = %d, want 2", got)
	}
	// And the clamp applies per vec: a second family gets its own budget.
	gv := r.GaugeVec("other.depth", "k")
	for i := 0; i < 5; i++ {
		gv.With(fmt.Sprintf("v%d", i)).Set(int64(i))
	}
	if got := r.Snapshot()[`other.depth{k="overflow"}`]; got == 0 && len(gv.v.m) > 3 {
		t.Fatalf("second vec not clamped: %d children", len(gv.v.m))
	}
}

func TestVecUnlimitedWhenBoundRemoved(t *testing.T) {
	r := New()
	r.SetMaxLabelChildren(0)
	cv := r.CounterVec("c", "k")
	for i := 0; i < 2*DefaultMaxVecChildren; i++ {
		cv.With(fmt.Sprintf("v%d", i)).Inc()
	}
	if got := len(cv.v.m); got != 2*DefaultMaxVecChildren {
		t.Fatalf("children = %d, want %d (unlimited)", got, 2*DefaultMaxVecChildren)
	}
	if _, ok := r.Snapshot()[DroppedLabelsCounter]; ok {
		t.Fatal("labels.dropped counter created with no drops")
	}
}

// TestGenerationTracksInstrumentCreation: the generation only moves when the
// instrument set grows, which is what lets histdb cache its sampling plan.
func TestGenerationTracksInstrumentCreation(t *testing.T) {
	r := New()
	g0 := r.Generation()
	c := r.Counter("a")
	if r.Generation() == g0 {
		t.Fatal("generation unchanged after counter creation")
	}
	g1 := r.Generation()
	c.Add(5)
	r.Counter("a") // lookup, not creation
	if r.Generation() != g1 {
		t.Fatal("generation moved on lookup/Add")
	}
	r.Gauge("b")
	r.Histogram("h")
	r.Func("f", func() int64 { return 1 })
	cv := r.CounterVec("v", "k")
	g2 := r.Generation()
	cv.With("x")
	if r.Generation() == g2 {
		t.Fatal("generation unchanged after vec child creation")
	}
}

func TestInstrumentsEnumeration(t *testing.T) {
	r := New()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(100)
	r.Func("f", func() int64 { return 42 })
	r.CounterVec("cv", "k").With("x").Add(9)

	refs := r.Instruments()
	byName := map[string]InstrumentRef{}
	for _, ref := range refs {
		byName[ref.Name] = ref
	}
	if ref := byName["c"]; ref.Kind != KindCounter || ref.Counter.Load() != 3 {
		t.Fatalf("counter ref = %+v", ref)
	}
	if ref := byName["g"]; ref.Kind != KindGauge || ref.Gauge.Load() != 7 {
		t.Fatalf("gauge ref = %+v", ref)
	}
	if ref := byName["h"]; ref.Kind != KindHistogram || ref.Histogram.Value().Count != 1 {
		t.Fatalf("histogram ref = %+v", ref)
	}
	if ref := byName["f"]; ref.Kind != KindFunc || ref.Func() != 42 {
		t.Fatalf("func ref = %+v", ref)
	}
	if ref := byName[`cv{k="x"}`]; ref.Kind != KindCounter || ref.Counter.Load() != 9 {
		t.Fatalf("vec child ref = %+v", ref)
	}
	var nilReg *Registry
	if nilReg.Instruments() != nil || nilReg.Generation() != 0 {
		t.Fatal("nil registry not inert")
	}
}

// TestDebugIndexListsEverything: every built-in endpoint and every mounted
// extra must appear on the /debug index page with its description.
func TestDebugIndexListsEverything(t *testing.T) {
	r := New()
	mux := DebugMux(r,
		DebugEndpoint{Path: "/debug/trace", Handler: r.Handler(), Desc: "recent spans"},
		DebugEndpoint{Path: "/debug/history", Handler: r.Handler(), Desc: "metric history ring"},
		DebugEndpoint{Path: "/debug/profiles/", Handler: r.Handler(), Desc: "anomaly profile captures"},
	)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	req := httptest.NewRequest("GET", "/debug", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /debug: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"/stats", "/debug/stats", "/metrics", "/debug/flight", "/debug/trace",
		"/debug/history", "/debug/profiles/", "/healthz", "/readyz",
		"/debug/vars", "/debug/pprof/",
		"recent spans", "metric history ring", "anomaly profile captures",
		"Prometheus", "flight recorder", "readiness",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug index missing %q:\n%s", want, body)
		}
	}
}
