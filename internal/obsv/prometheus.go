package obsv

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format (version 0.0.4), mounted at /metrics by DebugMux. Counters and
// gauges map directly; a Histogram is exported with cumulative _bucket
// series whose le bounds are the histogram's power-of-two bucket upper
// bounds (bucket i covers [2^(i-1), 2^i), so le="2^i - 1"), plus the usual
// _sum and _count. Snapshot functions are exported as gauges. Instrument
// names are sanitized for Prometheus ("." and "-" become "_").
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		r.writePrometheus(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

func (r *Registry) writePrometheus(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.RUnlock()

	for _, n := range sortedKeys(counters) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n].Load())
	}
	for _, n := range sortedKeys(gauges) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[n].Load())
	}
	for _, n := range sortedKeys(funcs) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", pn, pn, funcs[n]())
	}
	for _, n := range sortedKeys(hists) {
		pn := promName(n)
		v := hists[n].Value()
		fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
		// Emit buckets only up to the highest populated one; cumulative
		// counts keep the series well-formed and +Inf closes it out.
		last := 0
		for i, c := range v.Buckets {
			if c > 0 {
				last = i
			}
		}
		var cum int64
		for i := 0; i <= last; i++ {
			cum += v.Buckets[i]
			// Upper bound of bucket i is 2^i - 1 (bucket 0 holds zeros);
			// computed in floating point because bucket 64's bound
			// overflows int64.
			le := math.Ldexp(1, i) - 1
			fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", pn, le, cum)
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", pn, v.Count)
		fmt.Fprintf(b, "%s_sum %d\n", pn, v.Sum)
		fmt.Fprintf(b, "%s_count %d\n", pn, v.Count)
	}
}

// promName maps a registry instrument name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing anything else with "_".
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
