package obsv

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format (version 0.0.4), mounted at /metrics by DebugMux. Counters and
// gauges map directly; a Histogram is exported with cumulative _bucket
// series whose le bounds are the histogram's power-of-two bucket upper
// bounds (bucket i covers [2^(i-1), 2^i), so le="2^i - 1"), plus the usual
// _sum and _count. Snapshot functions are exported as gauges. Instrument
// names are sanitized for Prometheus ("." and "-" become "_").
//
// Clients that send an Accept header naming application/openmetrics-text get
// the OpenMetrics dialect instead: the same series, a trailing # EOF marker,
// and — only on histogram _bucket lines whose bucket holds an exemplar — the
// OpenMetrics exemplar suffix # {trace_id="<hex>"} <value> <unix seconds>,
// linking the bucket to a real traced request.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		openMetrics := strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
		if openMetrics {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		var b strings.Builder
		r.writePrometheus(&b, openMetrics)
		if openMetrics {
			b.WriteString("# EOF\n")
		}
		_, _ = w.Write([]byte(b.String()))
	})
}

func (r *Registry) writePrometheus(b *strings.Builder, openMetrics bool) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for n, v := range r.histVecs {
		histVecs[n] = v
	}
	r.mu.RUnlock()

	for _, n := range sortedKeys(counters) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n].Load())
	}
	for _, n := range sortedKeys(counterVecs) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s counter\n", pn)
		for _, c := range counterVecs[n].v.children() {
			fmt.Fprintf(b, "%s%s %d\n", pn, c.labels.String(), c.inst.Load())
		}
	}
	for _, n := range sortedKeys(gauges) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[n].Load())
	}
	for _, n := range sortedKeys(gaugeVecs) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n", pn)
		for _, c := range gaugeVecs[n].v.children() {
			fmt.Fprintf(b, "%s%s %d\n", pn, c.labels.String(), c.inst.Load())
		}
	}
	for _, n := range sortedKeys(funcs) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", pn, pn, funcs[n]())
	}
	for _, n := range sortedKeys(hists) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
		writePromHistogram(b, pn, nil, hists[n], openMetrics)
	}
	for _, n := range sortedKeys(histVecs) {
		pn := promName(n)
		fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
		for _, c := range histVecs[n].v.children() {
			writePromHistogram(b, pn, c.labels, c.inst, openMetrics)
		}
	}
}

// writePromHistogram emits one histogram series (optionally labeled) in the
// text exposition format: cumulative _bucket lines with power-of-two le
// bounds up to the highest populated bucket, +Inf, then _sum and _count. In
// OpenMetrics mode, a bucket line whose bucket holds an exemplar carries the
// exemplar suffix (exemplars attach to _bucket series only).
func writePromHistogram(b *strings.Builder, pn string, labels LabelSet, h *Histogram, openMetrics bool) {
	v := h.Value()
	// prefix opens the label braces for bucket lines so le can be appended;
	// plain renders the labels alone for the _sum/_count lines.
	prefix, plain := "{", ""
	if len(labels) > 0 {
		plain = labels.String()
		prefix = plain[:len(plain)-1] + ","
	}
	last := 0
	for i, c := range v.Buckets {
		if c > 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last; i++ {
		cum += v.Buckets[i]
		// Upper bound of bucket i is 2^i - 1 (bucket 0 holds zeros);
		// computed in floating point because bucket 64's bound overflows
		// int64.
		le := math.Ldexp(1, i) - 1
		fmt.Fprintf(b, "%s%sle=\"%g\"} %d", pn+"_bucket", prefix, le, cum)
		if openMetrics {
			if ex, ok := h.exemplarFor(i); ok {
				fmt.Fprintf(b, " # {trace_id=\"%s\"} %d %d.%09d",
					escapeLabelValue(ex.TraceID), ex.Value,
					ex.TimeUnixNS/1e9, ex.TimeUnixNS%1e9)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s%sle=\"+Inf\"} %d\n", pn+"_bucket", prefix, v.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", pn, plain, v.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", pn, plain, v.Count)
}

// promName maps a registry instrument name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing anything else with "_".
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
