package obsv

import (
	"sort"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to a labeled instrument.
type Label struct {
	Key, Value string
}

// LabelSet is an ordered list of labels. Order follows the vector's declared
// key order, so two children of the same vector always render their labels
// identically.
type LabelSet []Label

// String renders the set in the snapshot/Prometheus form {k="v",k2="v2"}
// (empty string for an empty set).
func (ls LabelSet) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules to a
// label value (backslash, double quote and newline).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// vecKeySep joins child label values into a map key; it cannot appear in
// sane label values, and a collision would only merge two children's counts.
const vecKeySep = "\x1f"

// overflowLabel is the label value of the shared clamp child a vector hands
// out once it reaches the registry's max-children bound.
const overflowLabel = "overflow"

// DroppedLabelsCounter is the counter (created lazily on first drop) that
// counts label combinations clamped onto a vector's overflow child.
const DroppedLabelsCounter = "obsv.labels.dropped"

// vec is the shared child-management core of the three vector kinds. reg
// points back at the owning registry for the cardinality bound, the
// labels-dropped counter and the generation counter samplers watch.
type vec[T any] struct {
	name     string
	keys     []string
	reg      *Registry
	mu       sync.RWMutex
	m        map[string]*vecChild[T]
	overflow *vecChild[T]
}

type vecChild[T any] struct {
	labels LabelSet
	inst   *T
}

func newVec[T any](reg *Registry, name string, keys []string) *vec[T] {
	return &vec[T]{name: name, keys: keys, reg: reg, m: make(map[string]*vecChild[T])}
}

// with resolves (creating if new) the child for the given label values.
// Missing values are filled with ""; extra values are ignored. Once the vec
// holds the registry's max children, unseen label combinations share one
// overflow child (every label value "overflow") and bump obsv.labels.dropped
// instead of growing the map.
func (v *vec[T]) with(values []string) *T {
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c.inst
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[key]; c == nil {
		if max := v.reg.maxVec.Load(); max > 0 && int64(len(v.m)) >= max {
			if v.overflow == nil {
				ls := make(LabelSet, len(v.keys))
				for i, k := range v.keys {
					ls[i] = Label{Key: k, Value: overflowLabel}
				}
				v.overflow = &vecChild[T]{labels: ls, inst: new(T)}
				v.reg.gen.Add(1)
			}
			v.reg.Counter(DroppedLabelsCounter).Inc()
			return v.overflow.inst
		}
		ls := make(LabelSet, len(v.keys))
		for i, k := range v.keys {
			ls[i].Key = k
			if i < len(values) {
				ls[i].Value = values[i]
			}
		}
		c = &vecChild[T]{labels: ls, inst: new(T)}
		v.m[key] = c
		v.reg.gen.Add(1)
	}
	return c.inst
}

// children returns a stable copy of the child list (including the overflow
// child once clamping has begun) sorted by rendered labels.
func (v *vec[T]) children() []*vecChild[T] {
	v.mu.RLock()
	out := make([]*vecChild[T], 0, len(v.m)+1)
	for _, c := range v.m {
		out = append(out, c)
	}
	if v.overflow != nil {
		out = append(out, v.overflow)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].labels.String() < out[j].labels.String()
	})
	return out
}

// CounterVec is a family of counters that share a name and differ by label
// values — the per-format × per-stream wire accounting instrument. Resolve
// children once with With and hold the *Counter; With itself takes a lock
// and may allocate, the child does not. A nil *CounterVec hands out nil
// (no-op) counters.
type CounterVec struct {
	v *vec[Counter]
}

// With returns the counter for the given label values (in the vector's
// declared key order).
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(values)
}

// GaugeVec is a family of gauges sharing a name. A nil *GaugeVec hands out
// nil gauges.
type GaugeVec struct {
	v *vec[Gauge]
}

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(values)
}

// HistogramVec is a family of histograms sharing a name. A nil *HistogramVec
// hands out nil histograms.
type HistogramVec struct {
	v *vec[Histogram]
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(values)
}

// CounterVec returns the labeled counter family registered under name,
// creating it with the given label keys if new. Looking the name up again
// returns the same family (the original key declaration wins).
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	cv := r.counterVecs[name]
	r.mu.RUnlock()
	if cv != nil {
		return cv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cv = r.counterVecs[name]; cv == nil {
		cv = &CounterVec{v: newVec[Counter](r, name, keys)}
		r.counterVecs[name] = cv
	}
	return cv
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	gv := r.gaugeVecs[name]
	r.mu.RUnlock()
	if gv != nil {
		return gv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if gv = r.gaugeVecs[name]; gv == nil {
		gv = &GaugeVec{v: newVec[Gauge](r, name, keys)}
		r.gaugeVecs[name] = gv
	}
	return gv
}

// HistogramVec returns the labeled histogram family registered under name.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	hv := r.histVecs[name]
	r.mu.RUnlock()
	if hv != nil {
		return hv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if hv = r.histVecs[name]; hv == nil {
		hv = &HistogramVec{v: newVec[Histogram](r, name, keys)}
		r.histVecs[name] = hv
	}
	return hv
}

// CounterVec returns the scoped labeled counter family.
func (s Scope) CounterVec(name string, keys ...string) *CounterVec {
	return s.r.CounterVec(s.prefix+name, keys...)
}

// GaugeVec returns the scoped labeled gauge family.
func (s Scope) GaugeVec(name string, keys ...string) *GaugeVec {
	return s.r.GaugeVec(s.prefix+name, keys...)
}

// HistogramVec returns the scoped labeled histogram family.
func (s Scope) HistogramVec(name string, keys ...string) *HistogramVec {
	return s.r.HistogramVec(s.prefix+name, keys...)
}
