package obsv

import (
	"runtime"
	"strings"
	"testing"
)

// TestRuntimeBridgeSample proves the bridge populates the registry from the
// live runtime: forced GC cycles must surface as pause samples and a cycle
// count, and the gauges must read as a real process (goroutines > 0, heap
// > 0).
func TestRuntimeBridgeSample(t *testing.T) {
	r := New()
	b := NewRuntimeBridge(r)
	runtime.GC()
	runtime.GC()
	b.Sample()
	snap := r.Snapshot()

	if snap["runtime.goroutines"] < 1 {
		t.Fatalf("runtime.goroutines = %d, want >= 1", snap["runtime.goroutines"])
	}
	if snap["runtime.heap.alloc_bytes"] <= 0 {
		t.Fatalf("runtime.heap.alloc_bytes = %d, want > 0", snap["runtime.heap.alloc_bytes"])
	}
	if snap["runtime.mem.total_bytes"] <= 0 {
		t.Fatalf("runtime.mem.total_bytes = %d, want > 0", snap["runtime.mem.total_bytes"])
	}
	if snap["runtime.gc.cycles"] < 2 {
		t.Fatalf("runtime.gc.cycles = %d, want >= 2 after two forced GCs", snap["runtime.gc.cycles"])
	}
	if snap["runtime.gc.pause_ns.count"] < 2 {
		t.Fatalf("runtime.gc.pause_ns.count = %d, want >= 2 after two forced GCs", snap["runtime.gc.pause_ns.count"])
	}
	// Histograms expand with the standard six siblings, so histdb samples
	// them and alert rules can watch runtime.gc.pause_ns.p99.
	for _, k := range []string{".count", ".sum", ".max", ".p50", ".p95", ".p99"} {
		if _, ok := snap["runtime.gc.pause_ns"+k]; !ok {
			t.Fatalf("snapshot lacks runtime.gc.pause_ns%s", k)
		}
	}

	// A second sample replays only deltas: cumulative counts never regress.
	before := snap["runtime.gc.pause_ns.count"]
	runtime.GC()
	b.Sample()
	after := r.Snapshot()["runtime.gc.pause_ns.count"]
	if after < before+1 {
		t.Fatalf("pause count went %d -> %d, want at least one new sample", before, after)
	}
}

// TestMergeLabeledRuntimeKeys covers the fleet path: an instance's snapshot
// containing runtime-bridge gauges and histograms must merge under instance
// labels with the histogram suffix kept terminal — the shape omcollect's
// /fleet/stats serves and omtop's fleet view parses back.
func TestMergeLabeledRuntimeKeys(t *testing.T) {
	r := New()
	b := NewRuntimeBridge(r)
	runtime.GC()
	b.Sample()

	dst := make(map[string]int64)
	MergeLabeled(dst, r.Snapshot(), "instance", "broker")

	if _, ok := dst[`runtime.goroutines{instance="broker"}`]; !ok {
		t.Fatalf("merged snapshot lacks labeled goroutine gauge; keys: %v", keysLike(dst, "runtime."))
	}
	// Histogram family: suffix stays terminal after the label block.
	for _, k := range []string{".count", ".p50", ".p99", ".max"} {
		want := `runtime.gc.pause_ns{instance="broker"}` + k
		if _, ok := dst[want]; !ok {
			t.Fatalf("merged snapshot lacks %s; keys: %v", want, keysLike(dst, "runtime.gc"))
		}
	}
	if _, ok := dst[`runtime.sched.latency_ns{instance="broker"}.count`]; !ok {
		t.Fatalf("merged snapshot lacks labeled sched-latency family; keys: %v", keysLike(dst, "runtime.sched"))
	}
}

func keysLike(m map[string]int64, prefix string) []string {
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	return out
}
