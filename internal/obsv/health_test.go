package obsv

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
)

func getJSON(t *testing.T, h *Health, handler string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest("GET", "/"+handler, nil)
	rec := httptest.NewRecorder()
	switch handler {
	case "healthz":
		h.LiveHandler().ServeHTTP(rec, req)
	case "readyz":
		h.ReadyHandler().ServeHTTP(rec, req)
	}
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON: %v", handler, err)
	}
	return rec.Code, body
}

func TestLiveHandlerAlwaysOK(t *testing.T) {
	h := NewHealth()
	h.Register("doomed", func() error { return errors.New("down") })
	code, body := getJSON(t, h, "healthz")
	if code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if body["uptime"] == "" {
		t.Fatal("healthz missing uptime")
	}
}

func TestReadyHandlerProbeTransitions(t *testing.T) {
	h := NewHealth()

	// No probes: ready.
	if code, _ := getJSON(t, h, "readyz"); code != 200 {
		t.Fatalf("empty readyz = %d, want 200", code)
	}

	var fail error = errors.New("listener closed")
	h.Register("broker", func() error { return fail })
	h.Register("cache", func() error { return nil })

	code, body := getJSON(t, h, "readyz")
	if code != 503 || body["status"] != "unavailable" {
		t.Fatalf("failing readyz = %d %v", code, body)
	}
	probes := body["probes"].(map[string]interface{})
	if probes["broker"] != "listener closed" || probes["cache"] != "ok" {
		t.Fatalf("probes = %v", probes)
	}

	// Probe recovers: ready again.
	fail = nil
	if code, body = getJSON(t, h, "readyz"); code != 200 || body["status"] != "ok" {
		t.Fatalf("recovered readyz = %d %v", code, body)
	}

	// Re-registering replaces; nil check removes.
	h.Register("broker", nil)
	if got := h.ProbeNames(); len(got) != 1 || got[0] != "cache" {
		t.Fatalf("ProbeNames = %v", got)
	}
}

func TestDebugMuxServesHealthAndFlight(t *testing.T) {
	mux := DebugMux(New())
	for _, path := range []string{"/healthz", "/readyz", "/debug/flight"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}
