package obsv

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// logSink collects StartStatsLogger output safely across goroutines.
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *logSink) logf(format string, args ...interface{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
}

func (s *logSink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestStatsLoggerEmitsDeltas(t *testing.T) {
	r := New()
	sink := &logSink{}
	stop := StartStatsLogger(r, 5*time.Millisecond, sink.logf)
	defer stop()

	// Activity after the logger starts must show in the first delta line.
	r.Counter("bus.published").Add(3)
	if !waitFor(t, 2*time.Second, func() bool { return len(sink.snapshot()) > 0 }) {
		t.Fatal("no stats line emitted")
	}
	lines := sink.snapshot()
	if !strings.Contains(lines[0], "bus.published=+3") {
		t.Fatalf("first line = %q, want bus.published=+3", lines[0])
	}

	// Quiet intervals log nothing: wait a few ticks, count must not grow.
	base := len(sink.snapshot())
	time.Sleep(30 * time.Millisecond)
	if got := len(sink.snapshot()); got != base {
		t.Fatalf("quiet interval logged %d extra lines", got-base)
	}

	// Next activity shows as a fresh delta, not a cumulative total.
	r.Counter("bus.published").Add(2)
	if !waitFor(t, 2*time.Second, func() bool {
		ls := sink.snapshot()
		return len(ls) > base && strings.Contains(ls[len(ls)-1], "bus.published=+2")
	}) {
		t.Fatalf("second delta not emitted: %v", sink.snapshot())
	}
}

func TestStatsLoggerStopIdempotent(t *testing.T) {
	r := New()
	sink := &logSink{}
	stop := StartStatsLogger(r, time.Millisecond, sink.logf)
	stop()
	stop() // second call must not panic (close of closed channel)
	stop()

	// After stop, activity produces no further lines.
	n := len(sink.snapshot())
	r.Counter("c").Inc()
	time.Sleep(20 * time.Millisecond)
	if got := len(sink.snapshot()); got != n {
		t.Fatalf("logger emitted %d lines after stop", got-n)
	}
}

func TestStatsLoggerDegenerateArgs(t *testing.T) {
	// nil registry, non-positive interval, nil logf: all return a no-op stop.
	for _, stop := range []func(){
		StartStatsLogger(nil, time.Second, func(string, ...interface{}) {}),
		StartStatsLogger(New(), 0, func(string, ...interface{}) {}),
		StartStatsLogger(New(), time.Second, nil),
	} {
		stop()
		stop()
	}
}

func TestFormatStatsDeltaLevelsVsTotals(t *testing.T) {
	prev := map[string]int64{"c": 1, "h.p99": 10, "h.max": 10}
	cur := map[string]int64{"c": 4, "h.p99": 20, "h.max": 30, "new": 2}
	line := formatStatsDelta(prev, cur)
	for _, want := range []string{"c=+3", "h.p99=20", "h.max=30", "new=+2"} {
		if !strings.Contains(line, want) {
			t.Errorf("delta line %q missing %q", line, want)
		}
	}
	if formatStatsDelta(cur, cur) != "" {
		t.Fatal("unchanged snapshot should render empty")
	}
}
