package obsv

import (
	"encoding/hex"
	"sync"
	"testing"
)

func testTraceID(b byte) [16]byte {
	var tid [16]byte
	for i := range tid {
		tid[i] = b
	}
	return tid
}

func TestObserveExemplarRecordsPerBucket(t *testing.T) {
	r := New()
	h := r.Histogram("lat.ns")
	tidA, tidB := testTraceID(0xaa), testTraceID(0xbb)
	h.ObserveExemplar(100, tidA)  // bucket 7 (le=127)
	h.ObserveExemplar(1000, tidB) // bucket 10 (le=1023)
	h.Observe(5)                  // untraced: counts only

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].Bucket != 7 || ex[0].Value != 100 || ex[0].TraceID != hex.EncodeToString(tidA[:]) {
		t.Fatalf("bucket-7 exemplar = %+v", ex[0])
	}
	if ex[1].Bucket != 10 || ex[1].Value != 1000 || ex[1].TraceID != hex.EncodeToString(tidB[:]) {
		t.Fatalf("bucket-10 exemplar = %+v", ex[1])
	}
	if ex[0].TimeUnixNS <= 0 || ex[1].TimeUnixNS <= 0 {
		t.Fatalf("timestamps not stamped: %+v", ex)
	}
	// The histogram counts include every observation, traced or not.
	if v := h.Value(); v.Count != 3 || v.Sum != 1105 {
		t.Fatalf("count=%d sum=%d, want 3/1105", v.Count, v.Sum)
	}
	// A later traced observation in the same bucket replaces the exemplar.
	tidC := testTraceID(0xcc)
	h.ObserveExemplar(99, tidC)
	if got := h.Exemplars()[0]; got.Value != 99 || got.TraceID != hex.EncodeToString(tidC[:]) {
		t.Fatalf("bucket-7 exemplar after overwrite = %+v", got)
	}
}

func TestObserveExemplarZeroTraceIDAndDisabled(t *testing.T) {
	t.Cleanup(func() { SetExemplars(true) })
	h := New().Histogram("lat.ns")
	h.ObserveExemplar(100, [16]byte{}) // unsampled request: no exemplar
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("zero TraceID recorded an exemplar: %+v", ex)
	}
	SetExemplars(false)
	if ExemplarsEnabled() {
		t.Fatal("ExemplarsEnabled() after SetExemplars(false)")
	}
	h.ObserveExemplar(100, testTraceID(1))
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("disabled capture recorded an exemplar: %+v", ex)
	}
	if v := h.Value(); v.Count != 2 {
		t.Fatalf("count = %d, want 2 (observations must still count)", v.Count)
	}
	SetExemplars(true)
	h.ObserveExemplar(100, testTraceID(1))
	if len(h.Exemplars()) != 1 {
		t.Fatal("re-enabled capture recorded nothing")
	}
}

func TestNilHistogramExemplars(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, testTraceID(1)) // must not panic
	if h.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
	var r *Registry
	if got := r.Exemplars(); len(got) != 0 {
		t.Fatalf("nil registry exemplars = %v", got)
	}
	if r.FindHistogram("x") != nil {
		t.Fatal("nil registry found a histogram")
	}
}

func TestRegistryExemplarsIncludesLabeledChildren(t *testing.T) {
	r := New()
	r.Histogram("plain.ns").ObserveExemplar(7, testTraceID(2))
	r.Histogram("silent.ns").Observe(7) // no exemplar: omitted
	hv := r.HistogramVec("rt.ns", "stream")
	hv.With("orders").ObserveExemplar(300, testTraceID(3))

	got := r.Exemplars()
	if len(got) != 2 {
		t.Fatalf("exemplar keys = %v, want plain.ns and rt.ns{stream=\"orders\"}", got)
	}
	if _, ok := got["plain.ns"]; !ok {
		t.Fatalf("missing plain.ns in %v", got)
	}
	ex, ok := got[`rt.ns{stream="orders"}`]
	if !ok || len(ex) != 1 || ex[0].Value != 300 {
		t.Fatalf("labeled child exemplars = %+v (ok=%v)", ex, ok)
	}
}

func TestFindHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat.ns")
	hv := r.HistogramVec("rt.ns", "stream")
	child := hv.With("orders")

	if got := r.FindHistogram("lat.ns"); got != h {
		t.Fatalf("FindHistogram(lat.ns) = %p, want %p", got, h)
	}
	if got := r.FindHistogram(`rt.ns{stream="orders"}`); got != child {
		t.Fatalf("FindHistogram(labeled) = %p, want %p", got, child)
	}
	for _, name := range []string{"nope", `rt.ns{stream="unknown"}`, `nope{a="b"}`} {
		if got := r.FindHistogram(name); got != nil {
			t.Fatalf("FindHistogram(%q) = %p, want nil (must not create)", name, got)
		}
	}
	// FindHistogram must never have created instruments as a side effect.
	if n := len(r.Snapshot()); n != 12 {
		t.Fatalf("snapshot has %d keys after lookups, want 12", n)
	}
}

// TestExemplarHotPathAllocs pins the hot-path contract the bench gate
// enforces: recording with a zero TraceID, with capture disabled, and in
// steady state with capture on are all allocation-free. (AllocsPerRun's
// warm-up call absorbs the one-time slot-array allocation.)
func TestExemplarHotPathAllocs(t *testing.T) {
	t.Cleanup(func() { SetExemplars(true) })
	h := New().Histogram("lat.ns")
	tid := testTraceID(4)

	if n := testing.AllocsPerRun(1000, func() { h.ObserveExemplar(42, [16]byte{}) }); n != 0 {
		t.Fatalf("unsampled ObserveExemplar allocates %v per run", n)
	}
	SetExemplars(false)
	if n := testing.AllocsPerRun(1000, func() { h.ObserveExemplar(42, tid) }); n != 0 {
		t.Fatalf("disabled ObserveExemplar allocates %v per run", n)
	}
	SetExemplars(true)
	if n := testing.AllocsPerRun(1000, func() { h.ObserveExemplar(42, tid) }); n != 0 {
		t.Fatalf("steady-state sampled ObserveExemplar allocates %v per run", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.ObserveExemplar(42, tid) }); n != 0 {
		t.Fatalf("nil ObserveExemplar allocates %v per run", n)
	}
}

// TestExemplarConcurrent hammers one histogram from writer and reader
// goroutines — the seqlock must never hand a reader a torn exemplar (a
// TraceID that was not written whole with its value).
func TestExemplarConcurrent(t *testing.T) {
	h := New().Histogram("lat.ns")
	valid := map[string]int64{
		hex.EncodeToString(append(make([]byte, 15), 1)): 100,
		hex.EncodeToString(append(make([]byte, 15), 2)): 101,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := [16]byte{15: byte(1 + w%2)}
			v := int64(100 + w%2)
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveExemplar(v, tid)
				}
			}
		}(w)
	}
	for i := 0; i < 2000; i++ {
		for _, ex := range h.Exemplars() {
			want, ok := valid[ex.TraceID]
			if !ok {
				t.Errorf("torn read: unknown TraceID %q", ex.TraceID)
			} else if ex.Value != want {
				t.Errorf("torn read: TraceID %q with value %d, want %d", ex.TraceID, ex.Value, want)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkObserveExemplar is the bench gate's absolute-budget subject
// (EXEMPLAR_BUDGET_NS in scripts/bench.sh): one traced observation on the
// steady-state hot path.
func BenchmarkObserveExemplar(b *testing.B) {
	h := New().Histogram("lat.ns")
	tid := testTraceID(5)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveExemplar(42, tid)
		}
	})
}
