package obsv

import (
	"encoding/json"
	"expvar"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"openmeta/internal/flight"
)

// Handler serves the registry snapshot as a sorted JSON object — the stats
// endpoint mounted at /stats by DebugMux and exposed at the facade as
// openmeta.StatsHandler(). The default shape stays a flat map so existing
// scrapers keep parsing it; ?exemplars=1 switches to the rich shape
// {"metrics": <flat map>, "exemplars": {"<hist name>": [exemplar...]}}
// carrying each histogram's per-bucket trace exemplars.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if req.URL.Query().Get("exemplars") != "" {
			_ = enc.Encode(StatsWithExemplars{
				Metrics:   r.Snapshot(),
				Exemplars: r.Exemplars(),
			})
			return
		}
		_ = enc.Encode(r.Snapshot()) // maps marshal with sorted keys
	})
}

// StatsWithExemplars is the rich /stats?exemplars=1 response shape: the flat
// snapshot plus every histogram's populated bucket exemplars, keyed the way
// Snapshot keys histograms. It is also the wire shape telemetry scrapes and
// re-serves fleet-wide from /fleet/stats?exemplars=1.
type StatsWithExemplars struct {
	Metrics   map[string]int64      `json:"metrics"`
	Exemplars map[string][]Exemplar `json:"exemplars"`
}

// DebugEndpoint is an extra handler mounted onto DebugMux alongside the
// built-in endpoints — how the facade attaches /debug/trace, /debug/history
// and /debug/profiles without obsv importing those packages. Desc is the
// one-line description shown on the /debug index page.
type DebugEndpoint struct {
	Path    string
	Handler http.Handler
	Desc    string
}

// DebugMux returns the debug endpoint served behind the daemons'
// -debug-addr flag:
//
//	/debug            index of every mounted endpoint
//	/stats            registry snapshot as JSON
//	/debug/stats      alias of /stats
//	/metrics          Prometheus text exposition (see MetricsHandler)
//	/debug/flight     flight-recorder dump (see the flight package)
//	/healthz          liveness: 200 while the server answers
//	/readyz           readiness: 200 once every registered probe passes
//	/debug/contention tracked-lock snapshots + mutex/block profile deltas
//	/debug/vars       expvar (includes the registry, see PublishExpvar)
//	/debug/pprof/...  net/http/pprof profiles
//
// Additional endpoints (such as the tracer's /debug/trace or the
// self-monitoring layer's /debug/history and /debug/profiles) are mounted
// via extra. Health endpoints use the process-wide probe set and the flight
// endpoint the process-wide recorder; use DebugMuxFor to serve isolated
// instances.
func DebugMux(r *Registry, extra ...DebugEndpoint) *http.ServeMux {
	return DebugMuxFor(r, DefaultHealth(), flight.Default(), extra...)
}

// DebugMuxFor is DebugMux with the health probe set and flight recorder made
// explicit, for processes (and tests) that keep per-component instances
// instead of the process-wide defaults.
func DebugMuxFor(r *Registry, h *Health, rec *flight.Recorder, extra ...DebugEndpoint) *http.ServeMux {
	PublishExpvar("obsv", r)
	mux := http.NewServeMux()
	index := []DebugEndpoint{
		{Path: "/debug", Desc: "this index"},
		{Path: "/stats", Desc: "instrument registry snapshot as flat JSON (?exemplars=1 adds per-bucket trace exemplars)"},
		{Path: "/debug/stats", Desc: "alias of /stats"},
		{Path: "/metrics", Desc: "Prometheus text exposition of the registry (Accept: application/openmetrics-text for exemplars)"},
		{Path: "/debug/flight", Desc: "protocol flight recorder, newest first (?conn=&stream=&kind=&n=; ?since_seq= scrapes incrementally from a seq cursor)"},
		{Path: "/healthz", Desc: "liveness: 200 while the process serves HTTP"},
		{Path: "/readyz", Desc: "readiness: 200 once every registered probe passes"},
		{Path: "/debug/vars", Desc: "expvar variables (includes the registry)"},
		{Path: "/debug/pprof/", Desc: "net/http/pprof profile index"},
		{Path: "/debug/contention", Desc: "tracked-lock wait/hold snapshots plus mutex/block profile deltas (enable runtime profiles with -contention-rate)"},
	}
	mux.Handle("/stats", r.Handler())
	mux.Handle("/debug/stats", r.Handler())
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/flight", flight.Handler(rec))
	mux.Handle("/healthz", h.LiveHandler())
	mux.Handle("/readyz", h.ReadyHandler())
	mux.Handle("/debug/contention", ContentionHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Path != "" && e.Handler != nil {
			mux.Handle(e.Path, e.Handler)
			index = append(index, e)
		}
	}
	mux.Handle("/debug", debugIndex(index))
	return mux
}

// debugIndex serves the /debug index page: every mounted endpoint with its
// one-line description, so operators discover the debug surface without the
// README. Rendered as minimal HTML that still reads cleanly through curl.
func debugIndex(endpoints []DebugEndpoint) http.Handler {
	sorted := make([]DebugEndpoint, len(endpoints))
	copy(sorted, endpoints)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>debug endpoints</title></head><body>\n")
		fmt.Fprint(w, "<h1>debug endpoints</h1>\n<table>\n")
		for _, e := range sorted {
			desc := e.Desc
			if desc == "" {
				desc = "(no description)"
			}
			fmt.Fprintf(w, "<tr><td><a href=%q>%s</a></td><td>%s</td></tr>\n",
				e.Path, html.EscapeString(e.Path), html.EscapeString(desc))
		}
		fmt.Fprint(w, "</table>\n</body></html>\n")
	})
}

// ListenAndServeDebug starts the DebugMux on addr in a background goroutine
// and returns the bound address ("host:0" picks a free port). The server
// lives for the rest of the process — it is the daemons' -debug-addr
// endpoint, torn down with the process itself.
func ListenAndServeDebug(addr string, r *Registry, extra ...DebugEndpoint) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(r, extra...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// expvarPublished guards against expvar.Publish's panic on duplicate names
// when several components export the same registry.
var expvarPublished sync.Map

// PublishExpvar exposes the registry under the given expvar name (idempotent
// per name; later registries publishing an already-used name are ignored).
func PublishExpvar(name string, r *Registry) {
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
