package obsv

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"openmeta/internal/flight"
)

// Handler serves the registry snapshot as a sorted JSON object — the stats
// endpoint mounted at /stats by DebugMux and exposed at the facade as
// openmeta.StatsHandler().
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap) // maps marshal with sorted keys
	})
}

// DebugEndpoint is an extra handler mounted onto DebugMux alongside the
// built-in endpoints — how the facade attaches /debug/trace without obsv
// importing the trace package.
type DebugEndpoint struct {
	Path    string
	Handler http.Handler
}

// DebugMux returns the debug endpoint served behind the daemons'
// -debug-addr flag:
//
//	/stats            registry snapshot as JSON
//	/debug/stats      alias of /stats
//	/metrics          Prometheus text exposition (see MetricsHandler)
//	/debug/flight     flight-recorder dump (see the flight package)
//	/healthz          liveness: 200 while the server answers
//	/readyz           readiness: 200 once every registered probe passes
//	/debug/vars       expvar (includes the registry, see PublishExpvar)
//	/debug/pprof/...  net/http/pprof profiles
//
// Additional endpoints (such as the tracer's /debug/trace) are mounted via
// extra.
func DebugMux(r *Registry, extra ...DebugEndpoint) *http.ServeMux {
	PublishExpvar("obsv", r)
	mux := http.NewServeMux()
	mux.Handle("/stats", r.Handler())
	mux.Handle("/debug/stats", r.Handler())
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/flight", flight.Handler(flight.Default()))
	mux.Handle("/healthz", DefaultHealth().LiveHandler())
	mux.Handle("/readyz", DefaultHealth().ReadyHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Path != "" && e.Handler != nil {
			mux.Handle(e.Path, e.Handler)
		}
	}
	return mux
}

// ListenAndServeDebug starts the DebugMux on addr in a background goroutine
// and returns the bound address ("host:0" picks a free port). The server
// lives for the rest of the process — it is the daemons' -debug-addr
// endpoint, torn down with the process itself.
func ListenAndServeDebug(addr string, r *Registry, extra ...DebugEndpoint) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugMux(r, extra...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// expvarPublished guards against expvar.Publish's panic on duplicate names
// when several components export the same registry.
var expvarPublished sync.Map

// PublishExpvar exposes the registry under the given expvar name (idempotent
// per name; later registries publishing an already-used name are ignored).
func PublishExpvar(name string, r *Registry) {
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
