package obsv

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// The runtime/metrics bridge: a sampler that copies the Go runtime's own
// telemetry into an obsv Registry, so GC pauses, scheduler latency, heap size
// and goroutine counts ride the exact same rails as application metrics —
// histdb samples them into /debug/history, alert rules fire on their
// quantiles, and omcollect instance-labels them fleet-wide. The runtime
// exposes its histograms as cumulative bucket counts; Sample replays the
// per-tick count deltas into the striped obsv histograms via
// Histogram.AddSamples, using each bucket's upper bound (in nanoseconds) as
// the representative value, so .p50/.p95/.p99 read as conservative
// (pessimistic-by-one-bucket) quantiles.

// Registered names, all under the "runtime" scope:
//
//	runtime.gc.pause_ns          histogram of stop-the-world GC pauses
//	runtime.sched.latency_ns     histogram of goroutine scheduling latency
//	runtime.heap.alloc_bytes     gauge: bytes in live + dead heap objects
//	runtime.mem.total_bytes      gauge: total memory mapped by the runtime
//	runtime.goroutines           gauge: live goroutine count
//	runtime.gc.cycles            gauge: completed GC cycles since start

// RuntimeBridge samples runtime/metrics into a Registry. Create one per
// process (per registry) and drive it with Start or explicit Sample calls.
type RuntimeBridge struct {
	gcPause  *Histogram
	schedLat *Histogram
	heap     *Gauge
	total    *Gauge
	gor      *Gauge
	gcCycles *Gauge

	// chosen runtime metric names (empty when the running Go version lacks
	// the metric; the preference lists below tolerate renames across
	// versions rather than silently sampling nothing).
	gcPauseName, schedLatName, heapName, totalName, gorName, gcCyclesName string

	mu      sync.Mutex
	samples []metrics.Sample
	prev    map[string][]uint64 // previous cumulative bucket counts
}

// NewRuntimeBridge registers the runtime instruments under r's "runtime"
// scope and returns a bridge that has not yet sampled.
func NewRuntimeBridge(r *Registry) *RuntimeBridge {
	s := r.Scope("runtime")
	b := &RuntimeBridge{
		gcPause:  s.Histogram("gc.pause_ns"),
		schedLat: s.Histogram("sched.latency_ns"),
		heap:     s.Gauge("heap.alloc_bytes"),
		total:    s.Gauge("mem.total_bytes"),
		gor:      s.Gauge("goroutines"),
		gcCycles: s.Gauge("gc.cycles"),
		prev:     make(map[string][]uint64),
	}
	avail := make(map[string]bool)
	for _, d := range metrics.All() {
		avail[d.Name] = true
	}
	pick := func(names ...string) string {
		for _, n := range names {
			if avail[n] {
				b.samples = append(b.samples, metrics.Sample{Name: n})
				return n
			}
		}
		return ""
	}
	b.gcPauseName = pick("/sched/pauses/total/gc:seconds", "/gc/pauses:seconds")
	b.schedLatName = pick("/sched/latencies:seconds")
	b.heapName = pick("/memory/classes/heap/objects:bytes")
	b.totalName = pick("/memory/classes/total:bytes")
	b.gorName = pick("/sched/goroutines:goroutines")
	b.gcCyclesName = pick("/gc/cycles/total:gc-cycles")
	return b
}

// Sample reads the runtime metrics once and folds them into the registry:
// gauges are set, histograms get the bucket-count deltas since the previous
// Sample (the first Sample replays the process-lifetime counts, matching the
// cumulative-since-start semantics of every other obsv histogram).
func (b *RuntimeBridge) Sample() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.samples) == 0 {
		return
	}
	metrics.Read(b.samples)
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case b.gcPauseName:
			b.replay(s, b.gcPause)
		case b.schedLatName:
			b.replay(s, b.schedLat)
		case b.heapName:
			b.heap.Set(uintGauge(s))
		case b.totalName:
			b.total.Set(uintGauge(s))
		case b.gorName:
			b.gor.Set(uintGauge(s))
		case b.gcCyclesName:
			b.gcCycles.Set(uintGauge(s))
		}
	}
}

func uintGauge(s *metrics.Sample) int64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	v := s.Value.Uint64()
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// replay folds one cumulative Float64Histogram (unit: seconds) into h as
// nanosecond samples, one AddSamples per bucket whose count grew.
func (b *RuntimeBridge) replay(s *metrics.Sample, h *Histogram) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return
	}
	fh := s.Value.Float64Histogram()
	if fh == nil || len(fh.Buckets) != len(fh.Counts)+1 {
		return
	}
	prev := b.prev[s.Name]
	for i, c := range fh.Counts {
		var p uint64
		if i < len(prev) {
			p = prev[i]
		}
		if c <= p {
			continue
		}
		// Representative value: the bucket's upper bound in ns; the +Inf
		// tail bucket falls back to its (finite) lower bound.
		bound := fh.Buckets[i+1]
		if math.IsInf(bound, 0) {
			bound = fh.Buckets[i]
		}
		if math.IsInf(bound, 0) || math.IsNaN(bound) {
			bound = 0
		}
		h.AddSamples(int64(bound*1e9), int64(c-p))
	}
	if len(prev) != len(fh.Counts) {
		prev = make([]uint64, len(fh.Counts))
	}
	copy(prev, fh.Counts)
	b.prev[s.Name] = prev
}

// Start samples every interval (default 1s) until the returned stop function
// is called. Safe to call stop more than once.
func (b *RuntimeBridge) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				b.Sample()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// StartRuntimeMetrics is the one-call daemon form: register the bridge on r,
// take an immediate first sample so the instruments are populated before the
// first scrape, and start the periodic pump. Returns the stop function.
func StartRuntimeMetrics(r *Registry, interval time.Duration) (stop func()) {
	b := NewRuntimeBridge(r)
	b.Sample()
	return b.Start(interval)
}
