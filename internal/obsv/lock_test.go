package obsv

import (
	"sync"
	"testing"
	"time"
)

// TestTrackedMutexConcurrent hammers one tracked mutex from many goroutines
// (meaningful under -race) and checks the books: every acquisition shows up
// in both histograms, the protected counter is exact, and the wait quantiles
// are monotone (p50 ≤ p95 ≤ p99 ≤ max).
func TestTrackedMutexConcurrent(t *testing.T) {
	r := New()
	m := NewTrackedMutex("test_mu", r.Scope("locks"))
	const goroutines, perG = 8, 200
	var shared int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != goroutines*perG {
		t.Fatalf("shared = %d, want %d (critical section raced)", shared, goroutines*perG)
	}
	wait := r.Histogram("locks.test_mu.wait_ns").Value()
	hold := r.Histogram("locks.test_mu.hold_ns").Value()
	if wait.Count != goroutines*perG {
		t.Fatalf("wait count = %d, want %d", wait.Count, goroutines*perG)
	}
	if hold.Count != goroutines*perG {
		t.Fatalf("hold count = %d, want %d", hold.Count, goroutines*perG)
	}
	p50, p95, p99 := wait.Quantile(0.50), wait.Quantile(0.95), wait.Quantile(0.99)
	if p50 > p95 || p95 > p99 || p99 > wait.Max {
		t.Fatalf("wait quantiles not monotone: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, wait.Max)
	}
}

func TestTrackedRWMutexConcurrent(t *testing.T) {
	r := New()
	m := NewTrackedRWMutex("test_rwmu", r.Scope("locks"))
	const readers, writers, perG = 6, 2, 100
	var shared int
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.RLock()
				_ = shared
				m.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != writers*perG {
		t.Fatalf("shared = %d, want %d", shared, writers*perG)
	}
	if got := r.Histogram("locks.test_rwmu.wait_ns").Value().Count; got != writers*perG {
		t.Fatalf("writer wait count = %d, want %d", got, writers*perG)
	}
	if got := r.Histogram("locks.test_rwmu.rwait_ns").Value().Count; got != readers*perG {
		t.Fatalf("reader wait count = %d, want %d", got, readers*perG)
	}
}

// TestTrackedMutexAllocs pins the fast path at zero allocations — the
// property that lets the tracked lock live on the broker's routing hot path
// permanently instead of only during debugging.
func TestTrackedMutexAllocs(t *testing.T) {
	r := New()
	m := NewTrackedMutex("alloc_mu", r.Scope("locks"))
	if n := testing.AllocsPerRun(1000, func() {
		m.Lock()
		m.Unlock()
	}); n != 0 {
		t.Fatalf("TrackedMutex Lock/Unlock allocates %.1f per op, want 0", n)
	}
	rw := NewTrackedRWMutex("alloc_rwmu", r.Scope("locks"))
	if n := testing.AllocsPerRun(1000, func() {
		rw.RLock()
		rw.RUnlock()
		rw.Lock()
		rw.Unlock()
	}); n != 0 {
		t.Fatalf("TrackedRWMutex lock cycle allocates %.1f per op, want 0", n)
	}
}

// TestTrackedMutexZeroValue: the zero value must behave like a plain
// sync.Mutex (no histograms, no panic) so embedding stays safe.
func TestTrackedMutexZeroValue(t *testing.T) {
	var m TrackedMutex
	m.Lock()
	m.Unlock() //nolint:staticcheck // exercising the empty critical section
	m.LockExemplar([16]byte{1})
	m.Unlock()
	var rw TrackedRWMutex
	rw.Lock()
	rw.Unlock() //nolint:staticcheck
	rw.RLock()
	rw.RUnlock()
}

func TestLockSnapshots(t *testing.T) {
	r := New()
	m := NewTrackedMutex("broker_mu", r.Scope("eventbus"))
	rw := NewTrackedRWMutex("plan_cache_mu", r.Scope("dcg"))
	m.LockExemplar([16]byte{42})
	time.Sleep(time.Millisecond)
	m.Unlock()
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()

	snaps := r.LockSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("LockSnapshots returned %d locks, want 2: %+v", len(snaps), snaps)
	}
	// Sorted by name: dcg.plan_cache_mu before eventbus.broker_mu.
	if snaps[0].Name != "dcg.plan_cache_mu" || snaps[1].Name != "eventbus.broker_mu" {
		t.Fatalf("lock names = %q, %q", snaps[0].Name, snaps[1].Name)
	}
	if snaps[0].RWait == nil || snaps[0].RWait.Count != 1 {
		t.Fatalf("rw lock rwait = %+v, want count 1", snaps[0].RWait)
	}
	if snaps[1].RWait != nil {
		t.Fatalf("plain mutex reports rwait %+v", *snaps[1].RWait)
	}
	if snaps[1].Wait.Count != 1 || snaps[1].Hold.Count != 1 {
		t.Fatalf("broker_mu wait/hold counts = %d/%d, want 1/1", snaps[1].Wait.Count, snaps[1].Hold.Count)
	}
	if snaps[1].Hold.MaxNS < time.Millisecond.Nanoseconds() {
		t.Fatalf("broker_mu hold max = %dns, want >= 1ms (the slept critical section)", snaps[1].Hold.MaxNS)
	}

	// The exemplar-capable acquisition stamped its trace id.
	exs := r.Exemplars()["eventbus.broker_mu.wait_ns"]
	if len(exs) == 0 {
		t.Fatal("no exemplar recorded for eventbus.broker_mu.wait_ns")
	}

	// A second lock registered under the same name shares the histograms
	// but not the lock table entry (no duplicate snapshot rows).
	_ = NewTrackedMutex("broker_mu", r.Scope("eventbus"))
	if got := len(r.LockSnapshots()); got != 2 {
		t.Fatalf("re-registering a lock name grew the table to %d entries", got)
	}
}

// BenchmarkTrackedMutex is the uncontended fast-path cost of one tracked
// Lock/Unlock pair — gated absolutely in scripts/bench.sh under
// TRACKEDMUTEX_BUDGET_NS and required to report 0 allocs.
func BenchmarkTrackedMutex(b *testing.B) {
	r := New()
	m := NewTrackedMutex("bench_mu", r.Scope("locks"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock() //nolint:staticcheck // empty critical section is the subject
	}
}
