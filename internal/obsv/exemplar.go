// Exemplars link latency histograms to real traces: alongside its bucket
// counts, a histogram remembers, per power-of-two bucket, the last sampled
// observation that arrived with a TraceID — value, TraceID and wall-clock
// timestamp. A p99 excursion in /stats is then not just a number: the bucket
// the p99 falls in carries the ID of an actual request that landed there,
// resolvable through /debug/trace (one process) or /fleet/trace/<id> (the
// whole fleet) into an assembled span tree.
//
// The recording path shares the histogram hot-path contract: ObserveExemplar
// performs no allocation after the slot array exists (it is created once, on
// the first sampled observation) and takes no locks. Each bucket slot is a
// seqlock — a writer that loses the CAS on the sequence word simply skips
// (exemplars are best-effort samples; dropping one under contention is
// fine), so writers never spin, and readers retry a bounded number of times.
package obsv

import (
	"encoding/binary"
	"encoding/hex"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// exemplarsEnabled is the process-wide exemplar switch (daemons expose it as
// -exemplars). Disabled, ObserveExemplar degrades to plain Observe.
var exemplarsEnabled atomic.Bool

func init() { exemplarsEnabled.Store(true) }

// SetExemplars enables or disables exemplar capture process-wide. Recording
// sites keep calling ObserveExemplar; with capture off only the histogram
// counts are updated.
func SetExemplars(on bool) { exemplarsEnabled.Store(on) }

// ExemplarsEnabled reports whether exemplar capture is on.
func ExemplarsEnabled() bool { return exemplarsEnabled.Load() }

// exemplarSlot is one bucket's seqlocked exemplar: an odd seq means a write
// is in flight, and seq==0 means the slot has never been written. The TraceID
// is split across two words so the whole record stays plain atomics.
type exemplarSlot struct {
	seq   atomic.Uint64
	value atomic.Int64
	tidHi atomic.Uint64
	tidLo atomic.Uint64
	ts    atomic.Int64
}

// store publishes one exemplar. A concurrent writer makes the CAS fail and
// the sample is dropped — best-effort by design, so the hot path never spins.
func (s *exemplarSlot) store(v int64, hi, lo uint64, ts int64) {
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		return
	}
	s.value.Store(v)
	s.tidHi.Store(hi)
	s.tidLo.Store(lo)
	s.ts.Store(ts)
	s.seq.Store(seq + 2)
}

// load returns a consistent exemplar snapshot, or ok=false if the slot is
// empty or a writer kept it busy across every retry.
func (s *exemplarSlot) load() (v int64, hi, lo uint64, ts int64, ok bool) {
	for range 4 {
		seq := s.seq.Load()
		if seq == 0 {
			return
		}
		if seq&1 != 0 {
			continue
		}
		v = s.value.Load()
		hi = s.tidHi.Load()
		lo = s.tidLo.Load()
		ts = s.ts.Load()
		if s.seq.Load() == seq {
			ok = true
			return
		}
	}
	return 0, 0, 0, 0, false
}

// ObserveExemplar records one sample like Observe and, when tid is non-zero
// and exemplars are enabled, stamps it as the exemplar of the bucket it lands
// in. tid is an unnamed [16]byte so trace.TraceID values pass directly
// without this package importing the trace package; the zero TraceID
// (unsampled request) short-circuits to a plain observation.
func (h *Histogram) ObserveExemplar(v int64, tid [16]byte) {
	if h == nil {
		return
	}
	h.Observe(v)
	if tid == ([16]byte{}) || !exemplarsEnabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	slots := h.ex.Load()
	if slots == nil {
		// One-time lazy allocation so exemplar-free histograms stay as small
		// as before; losing the CAS means another observer installed it.
		slots = new([histBuckets]exemplarSlot)
		if !h.ex.CompareAndSwap(nil, slots) {
			slots = h.ex.Load()
		}
	}
	hi := binary.BigEndian.Uint64(tid[0:8])
	lo := binary.BigEndian.Uint64(tid[8:16])
	slots[bucketIndex(v)].store(v, hi, lo, time.Now().UnixNano())
}

// Exemplar is one bucket's exported exemplar: the bucket index (the sample
// lies in [2^(bucket-1), 2^bucket), i.e. under the le=2^bucket-1 bound the
// Prometheus exposition uses), the sampled value, the hex TraceID and the
// capture time.
type Exemplar struct {
	Bucket     int    `json:"bucket"`
	Value      int64  `json:"value"`
	TraceID    string `json:"trace_id"`
	TimeUnixNS int64  `json:"ts_unix_ns"`
}

// Exemplars returns every populated bucket exemplar, lowest bucket first.
// Nil for a nil or exemplar-free histogram.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	slots := h.ex.Load()
	if slots == nil {
		return nil
	}
	var out []Exemplar
	for i := range slots {
		if ex, ok := readExemplar(&slots[i], i); ok {
			out = append(out, ex)
		}
	}
	return out
}

// exemplarFor returns the exemplar for one bucket, if populated.
func (h *Histogram) exemplarFor(bucket int) (Exemplar, bool) {
	if h == nil || bucket < 0 || bucket >= histBuckets {
		return Exemplar{}, false
	}
	slots := h.ex.Load()
	if slots == nil {
		return Exemplar{}, false
	}
	return readExemplar(&slots[bucket], bucket)
}

func readExemplar(s *exemplarSlot, bucket int) (Exemplar, bool) {
	v, hi, lo, ts, ok := s.load()
	if !ok {
		return Exemplar{}, false
	}
	var tid [16]byte
	binary.BigEndian.PutUint64(tid[0:8], hi)
	binary.BigEndian.PutUint64(tid[8:16], lo)
	return Exemplar{Bucket: bucket, Value: v, TraceID: hex.EncodeToString(tid[:]), TimeUnixNS: ts}, true
}

// Exemplars returns every histogram's populated exemplars, keyed the same
// way Snapshot keys histograms (name, or name{k="v",...} for labeled vector
// children). Histograms without exemplars are omitted.
func (r *Registry) Exemplars() map[string][]Exemplar {
	out := map[string][]Exemplar{}
	if r == nil {
		return out
	}
	// Two phases, like Snapshot: copy the maps under the registry lock, walk
	// vector children after releasing it.
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for n, v := range r.histVecs {
		histVecs[n] = v
	}
	r.mu.RUnlock()
	for n, h := range hists {
		if ex := h.Exemplars(); len(ex) > 0 {
			out[n] = ex
		}
	}
	for n, v := range histVecs {
		for _, c := range v.v.children() {
			if ex := c.inst.Exemplars(); len(ex) > 0 {
				out[n+c.labels.String()] = ex
			}
		}
	}
	return out
}

// FindHistogram returns the histogram registered under name without creating
// it — nil if the name is unknown. name may be a labeled vector child in its
// snapshot form, name{k="v",...}.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
	}
	r.mu.RLock()
	h := r.hists[base]
	v := r.histVecs[base]
	r.mu.RUnlock()
	if labels == "" {
		return h
	}
	if v == nil {
		return nil
	}
	for _, c := range v.v.children() {
		if c.labels.String() == labels {
			return c.inst
		}
	}
	return nil
}

// bucketIndex returns the histogram bucket a (non-negative) sample lands in —
// the same power-of-two rule Observe uses.
func bucketIndex(v int64) int { return bits.Len64(uint64(v)) }
