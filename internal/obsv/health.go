package obsv

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Health is a registry of named readiness probes. Components register a
// check function (broker accepting, discovery reachable, plan-cache within
// bound); the ReadyHandler runs them all on each request and answers 503
// until every probe passes. The LiveHandler is deliberately probe-free —
// liveness means "the process is up and serving", and coupling it to
// dependency checks turns one sick dependency into a restart loop.
type Health struct {
	mu     sync.RWMutex
	probes map[string]func() error
	start  time.Time
}

// NewHealth returns an empty probe set.
func NewHealth() *Health {
	return &Health{probes: make(map[string]func() error), start: time.Now()}
}

var defaultHealth = NewHealth()

// DefaultHealth returns the process-wide probe set served by DebugMux's
// /healthz and /readyz endpoints.
func DefaultHealth() *Health { return defaultHealth }

// RegisterProbe adds (or replaces) a named readiness probe on the default
// probe set. The check runs on every /readyz request; it should be cheap and
// return nil when the component is ready.
func RegisterProbe(name string, check func() error) { defaultHealth.Register(name, check) }

// Register adds (or replaces) a named readiness probe. A nil check removes
// the probe.
func (h *Health) Register(name string, check func() error) {
	if h == nil || name == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if check == nil {
		delete(h.probes, name)
		return
	}
	h.probes[name] = check
}

// Check runs every probe and returns the per-probe error (nil for passing
// probes). Probes run without the set's lock held.
func (h *Health) Check() map[string]error {
	if h == nil {
		return map[string]error{}
	}
	h.mu.RLock()
	probes := make(map[string]func() error, len(h.probes))
	for n, p := range h.probes {
		probes[n] = p
	}
	h.mu.RUnlock()
	out := make(map[string]error, len(probes))
	for n, p := range probes {
		out[n] = p()
	}
	return out
}

// probeReport is the JSON body served by both health endpoints.
type probeReport struct {
	Status string            `json:"status"` // "ok" or "unavailable"
	Uptime string            `json:"uptime,omitempty"`
	Probes map[string]string `json:"probes,omitempty"` // name -> "ok" or error text
}

// LiveHandler serves /healthz: always 200 with the process uptime while the
// HTTP server can answer at all.
func (h *Health) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, probeReport{
			Status: "ok",
			Uptime: time.Since(h.startTime()).Round(time.Millisecond).String(),
		})
	})
}

// ReadyHandler serves /readyz: 200 with per-probe status when every
// registered probe passes, 503 naming the failing probes otherwise. With no
// probes registered it reports ready — a daemon that registers nothing is as
// ready as it will ever be.
func (h *Health) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		results := h.Check()
		report := probeReport{Status: "ok", Probes: make(map[string]string, len(results))}
		code := http.StatusOK
		for _, n := range sortedKeys(results) {
			if err := results[n]; err != nil {
				report.Probes[n] = err.Error()
				report.Status = "unavailable"
				code = http.StatusServiceUnavailable
			} else {
				report.Probes[n] = "ok"
			}
		}
		writeJSON(w, code, report)
	})
}

func (h *Health) startTime() time.Time {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.start
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ProbeNames returns the sorted names of the registered probes.
func (h *Health) ProbeNames() []string {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.probes))
	for n := range h.probes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
