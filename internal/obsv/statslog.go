package obsv

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StartStatsLogger periodically snapshots the registry and logs a one-line
// summary of what changed since the previous tick — counter and histogram
// deltas plus the current value of any gauge that moved. Intervals where
// nothing changed log nothing. The returned stop function ends the loop
// (idempotent). logf follows the log.Printf contract.
//
// This backs the daemons' -stats-interval flag: a broker left running with
// -stats-interval=10s prints a compact activity line every ten seconds
// without anyone having to poll /stats.
func StartStatsLogger(r *Registry, interval time.Duration, logf func(format string, args ...interface{})) (stop func()) {
	if r == nil || interval <= 0 || logf == nil {
		return func() {}
	}
	done := make(chan struct{})
	prev := r.Snapshot() // baseline taken before returning, so callers'
	// subsequent activity is guaranteed to show in the first delta
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			cur := r.Snapshot()
			line := formatStatsDelta(prev, cur)
			prev = cur
			if line != "" {
				logf("stats: %s", line)
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}

// formatStatsDelta renders the changed keys between two snapshots as
// "name=+delta" pairs (sorted), using the absolute new value for keys that
// read like levels rather than totals (gauges and histogram max/quantiles).
func formatStatsDelta(prev, cur map[string]int64) string {
	keys := make([]string, 0, len(cur))
	for k, v := range cur {
		if v != prev[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if isLevelKey(k) {
			parts = append(parts, fmt.Sprintf("%s=%d", k, cur[k]))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%+d", k, cur[k]-prev[k]))
		}
	}
	return strings.Join(parts, " ")
}

// isLevelKey reports whether a snapshot key carries an instantaneous level
// (report the value) rather than a cumulative total (report the delta).
// Histogram-derived max and quantile keys are levels; counts and sums are
// totals. Everything else defaults to delta, which is right for counters
// and close enough for gauges (a gauge's delta still shows direction).
func isLevelKey(k string) bool {
	for _, suffix := range []string{".max", ".p50", ".p95", ".p99"} {
		if strings.HasSuffix(k, suffix) {
			return true
		}
	}
	return false
}
