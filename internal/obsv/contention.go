package obsv

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// /debug/contention: where cycles are lost rather than where time is spent.
// The endpoint combines two sources into one JSON document: the registry's
// tracked-lock snapshots (lock.go — always on, allocation-free) and the Go
// runtime's mutex/block profiles (sampled, enabled by SetContentionProfiling
// via the daemons' -contention-rate flag). Profile counters are cumulative
// for the life of the process, so the handler also reports per-site deltas
// since the previous GET — a scraper polling the endpoint sees "contention
// this interval" without keeping state of its own.

// blockProfileRate mirrors the rate passed to runtime.SetBlockProfileRate,
// which has no runtime getter (unlike SetMutexProfileFraction(-1)).
var blockProfileRate atomic.Int64

// SetContentionProfiling sets the Go runtime's mutex and block profiling
// rates that feed /debug/contention: rate <= 0 disables both; rate N samples
// an average of 1-in-N mutex contention events and every blocking event
// lasting >= N nanoseconds. Modest rates (5–100) are cheap enough for
// production; the tracked-lock snapshots are unaffected by the rate.
func SetContentionProfiling(rate int) {
	if rate < 0 {
		rate = 0
	}
	runtime.SetMutexProfileFraction(rate)
	runtime.SetBlockProfileRate(rate)
	blockProfileRate.Store(int64(rate))
}

// ContentionSite is one aggregated stack site from a runtime profile.
// Cycles are raw CPU ticks (the runtime does not export its tick-to-ns
// factor); they rank sites and form meaningful deltas, not wall time.
type ContentionSite struct {
	Site        string `json:"site"` // deepest non-runtime/sync frame: func (file:line)
	Count       int64  `json:"count"`
	Cycles      int64  `json:"cycles"`
	CountDelta  int64  `json:"count_delta"`
	CyclesDelta int64  `json:"cycles_delta"`
}

// ContentionSnapshot is the /debug/contention response body.
type ContentionSnapshot struct {
	NowUnixNS            int64            `json:"now_unix_ns"`
	MutexProfileFraction int              `json:"mutex_profile_fraction"`
	BlockProfileRateNS   int64            `json:"block_profile_rate_ns"`
	Locks                []LockSnapshot   `json:"locks"`
	Mutex                []ContentionSite `json:"mutex"`
	Block                []ContentionSite `json:"block"`
}

// contentionTopSites caps each profile listing to the hottest sites by
// cumulative cycles, keeping the JSON scrape-sized under heavy contention.
const contentionTopSites = 32

type contentionState struct {
	mu        sync.Mutex
	prevMutex map[string][2]int64 // site → {count, cycles} at last GET
	prevBlock map[string][2]int64
}

// ContentionHandler serves the combined contention snapshot for r. Each
// handler keeps its own delta baseline, so mount one handler per mux rather
// than constructing one per request.
func ContentionHandler(r *Registry) http.Handler {
	st := &contentionState{
		prevMutex: make(map[string][2]int64),
		prevBlock: make(map[string][2]int64),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := st.snapshot(r)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

func (st *contentionState) snapshot(r *Registry) ContentionSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := ContentionSnapshot{
		NowUnixNS:            time.Now().UnixNano(),
		MutexProfileFraction: runtime.SetMutexProfileFraction(-1),
		BlockProfileRateNS:   blockProfileRate.Load(),
		Locks:                r.LockSnapshots(),
		Mutex:                profileSites(runtime.MutexProfile, st.prevMutex),
		Block:                profileSites(runtime.BlockProfile, st.prevBlock),
	}
	if snap.Locks == nil {
		snap.Locks = []LockSnapshot{}
	}
	return snap
}

// profileSites collects one runtime profile, aggregates records by
// symbolized site, computes deltas against prev (updating it in place), and
// returns the top sites by cumulative cycles.
func profileSites(profile func([]runtime.BlockProfileRecord) (int, bool), prev map[string][2]int64) []ContentionSite {
	n, _ := profile(nil)
	var recs []runtime.BlockProfileRecord
	if n > 0 {
		recs = make([]runtime.BlockProfileRecord, n+n/2+8)
		for {
			m, ok := profile(recs)
			if ok {
				recs = recs[:m]
				break
			}
			recs = make([]runtime.BlockProfileRecord, len(recs)*2)
		}
	}
	agg := make(map[string][2]int64, len(recs))
	for i := range recs {
		site := siteOf(recs[i].Stack())
		cur := agg[site]
		agg[site] = [2]int64{cur[0] + recs[i].Count, cur[1] + recs[i].Cycles}
	}
	out := make([]ContentionSite, 0, len(agg))
	for site, cur := range agg {
		p := prev[site]
		prev[site] = cur
		out = append(out, ContentionSite{
			Site:        site,
			Count:       cur[0],
			Cycles:      cur[1],
			CountDelta:  cur[0] - p[0],
			CyclesDelta: cur[1] - p[1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	if len(out) > contentionTopSites {
		out = out[:contentionTopSites]
	}
	if out == nil {
		out = []ContentionSite{}
	}
	return out
}

// siteOf symbolizes a profile stack into its deepest frame outside the
// runtime and sync packages — the application line that contended.
func siteOf(stk []uintptr) string {
	if len(stk) == 0 {
		return "unknown"
	}
	frames := runtime.CallersFrames(stk)
	fallback := ""
	for {
		f, more := frames.Next()
		if f.Function != "" {
			if fallback == "" {
				fallback = f.Function
			}
			if !strings.HasPrefix(f.Function, "runtime.") && !strings.HasPrefix(f.Function, "sync.") {
				return f.Function + " (" + filepath.Base(f.File) + ":" + strconv.Itoa(f.Line) + ")"
			}
		}
		if !more {
			break
		}
	}
	if fallback == "" {
		return "unknown"
	}
	return fallback
}
