package obsv

import (
	"fmt"
	"io"
	"log/slog"
)

// NewSlog builds a slog.Logger writing to w in the given exposition format:
// "text" (human-oriented key=value lines) or "json" (one JSON object per
// line, for log shippers). The daemons' -log-format flags feed this.
func NewSlog(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obsv: unknown log format %q (want text or json)", format)
	}
}
