package obsv

import "strings"

// This file is the fleet-merge half of the labeled-vector machinery: a
// collector scraping several processes' /stats snapshots folds them into one
// map by attaching an extra label (conventionally instance="name") to every
// key, so the merged registry keeps the same flat shape tools already parse
// (omtop, histdb, scripts) while every series stays attributable.

// histogramSuffixes are the six keys Registry.Snapshot expands a histogram
// into. Their shared base name identifies a histogram family in a flat
// snapshot.
var histogramSuffixes = []string{".count", ".sum", ".max", ".p50", ".p95", ".p99"}

// HistogramSuffixes returns the snapshot key suffixes a histogram expands to
// (a copy; callers may not mutate the canonical list).
func HistogramSuffixes() []string {
	out := make([]string, len(histogramSuffixes))
	copy(out, histogramSuffixes)
	return out
}

// histogramSuffixOf reports the histogram suffix carried by key, checking
// that every sibling key of the same family exists in the snapshot — the
// same six-sibling rule omtop uses, so ".count" in an ordinary counter name
// is not mistaken for a histogram member.
func histogramSuffixOf(key string, snap map[string]int64) (string, bool) {
	for _, s := range histogramSuffixes {
		if !strings.HasSuffix(key, s) {
			continue
		}
		base := strings.TrimSuffix(key, s)
		all := true
		for _, s2 := range histogramSuffixes {
			if _, ok := snap[base+s2]; !ok {
				all = false
				break
			}
		}
		if all {
			return s, true
		}
	}
	return "", false
}

// AddLabel rewrites one snapshot key to carry one more label:
//
//	name                  -> name{k="v"}
//	name{a="b"}           -> name{a="b",k="v"}
//	name{a="b"}.count     -> name{a="b",k="v"}.count
//	hist.count            -> hist{k="v"}.count   (histSuffix = ".count")
//
// histSuffix is the histogram suffix the key carries ("" for none): labeled
// histogram children keep their suffix *after* the label block, matching
// Registry.Snapshot's rendering, so suffix-grouping tools keep working on
// merged snapshots. The label value is escaped with the same rules as
// LabelSet.String.
func AddLabel(key, histSuffix, labelKey, labelValue string) string {
	pair := labelKey + `="` + escapeLabelValue(labelValue) + `"`
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if j := strings.LastIndexByte(key, '}'); j > i {
			return key[:j] + "," + pair + key[j:]
		}
	}
	if histSuffix != "" {
		base := strings.TrimSuffix(key, histSuffix)
		return base + "{" + pair + "}" + histSuffix
	}
	return key + "{" + pair + "}"
}

// MergeLabeled folds one instance's flat snapshot into dst, attaching
// labelKey="labelValue" to every key via AddLabel. Histogram families are
// detected with the six-sibling rule so their suffixes stay terminal. Keys
// that collide after rewriting (the same instance merged twice) are simply
// overwritten — the newest scrape wins.
func MergeLabeled(dst, snap map[string]int64, labelKey, labelValue string) {
	for k, v := range snap {
		suffix, _ := histogramSuffixOf(k, snap)
		dst[AddLabel(k, suffix, labelKey, labelValue)] = v
	}
}

// MergeLabeledExemplars folds one instance's exemplar map (as produced by
// Registry.Exemplars) into dst, rewriting each histogram key with
// labelKey="labelValue" exactly like MergeLabeled rewrites its snapshot
// keys, so a merged exemplar stays attached to the same series name its
// histogram family carries in the merged snapshot. Exemplar keys never carry
// a histogram suffix (they name the histogram itself), so no suffix handling
// is needed. Colliding keys are overwritten — the newest scrape wins.
func MergeLabeledExemplars(dst map[string][]Exemplar, exemplars map[string][]Exemplar, labelKey, labelValue string) {
	for k, ex := range exemplars {
		dst[AddLabel(k, "", labelKey, labelValue)] = ex
	}
}
