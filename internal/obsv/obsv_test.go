package obsv

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestRegistryConcurrent exercises the registry under -race: parallel
// increments, observations and lookups interleaved with snapshots.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.counter")
			ga := r.Gauge("test.gauge")
			h := r.Histogram("test.hist")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Set(int64(i))
				h.Observe(int64(i))
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	// Snapshot continuously while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	snap := r.Snapshot()
	if got := snap["test.counter"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap["test.hist.count"]; got != goroutines*perG {
		t.Errorf("hist count = %d, want %d", got, goroutines*perG)
	}
	if got := snap["test.hist.max"]; got != perG-1 {
		t.Errorf("hist max = %d, want %d", got, perG-1)
	}
}

// TestHotPathAllocs guards the issue's zero-allocation contract for the
// counter/gauge/histogram hot paths.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("allocs.counter")
	g := r.Gauge("allocs.gauge")
	h := r.Histogram("allocs.hist")
	var i int64
	if n := testing.AllocsPerRun(1000, func() { i++; c.Add(i) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { i++; g.Set(i) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { i++; h.Observe(i) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op, want 0", n)
	}
	// Nil instruments must be free no-ops too.
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() { nc.Inc(); nh.Observe(1) }); n != 0 {
		t.Errorf("nil instrument ops allocate %.1f per op, want 0", n)
	}
}

// TestStatsHandlerJSON verifies the HTTP export: valid JSON containing the
// registered instrument names.
func TestStatsHandlerJSON(t *testing.T) {
	r := New()
	r.Counter("pbio.formats.registered").Add(3)
	r.Gauge("eventbus.queue_depth").Set(7)
	r.Histogram("dcg.plan.compile_ns").Observe(1500)
	r.Func("cache.size", func() int64 { return 42 })

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	var snap map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	want := map[string]int64{
		"pbio.formats.registered":   3,
		"eventbus.queue_depth":      7,
		"dcg.plan.compile_ns.count": 1,
		"dcg.plan.compile_ns.sum":   1500,
		"cache.size":                42,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	v := h.Value()
	if v.Count != 1000 || v.Max != 1000 {
		t.Fatalf("count=%d max=%d", v.Count, v.Max)
	}
	p50 := v.Quantile(0.50)
	// Bucketed estimate: the true median 500 lives in the [512,1023] or
	// [256,511] bucket; accept the power-of-two bound.
	if p50 < 255 || p50 > 1023 {
		t.Errorf("p50 = %d, outside plausible bucket bounds", p50)
	}
	if p99 := v.Quantile(0.99); p99 != 1000 {
		t.Errorf("p99 = %d, want clamped max 1000", p99)
	}
	if z := (HistogramValue{}).Quantile(0.5); z != 0 {
		t.Errorf("empty quantile = %d, want 0", z)
	}
}

func TestScopeAndDelta(t *testing.T) {
	r := New()
	s := r.Scope("eventbus")
	s.Counter("published").Add(5)
	before := r.Snapshot()
	s.Counter("published").Add(2)
	after := r.Snapshot()
	if before["eventbus.published"] != 5 || after["eventbus.published"] != 7 {
		t.Fatalf("scoped counter wrong: %v -> %v", before, after)
	}
	if d := Delta(before, after); d["eventbus.published"] != 2 {
		t.Errorf("delta = %d, want 2", d["eventbus.published"])
	}
	// Same name resolves to the same instrument.
	if r.Counter("eventbus.published").Load() != 7 {
		t.Error("scope and registry disagree on instrument identity")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Func("x", func() int64 { return 1 })
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot = %v, want empty", snap)
	}
}
