package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func debugGet(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, string(body)
}

func TestDebugMuxStatsEndpoint(t *testing.T) {
	r := New()
	r.Counter("evb.published").Add(9)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	for _, path := range []string{"/stats", "/debug/stats"} {
		resp, body := debugGet(t, srv, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: content type %q", path, ct)
		}
		var snap map[string]int64
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if snap["evb.published"] != 9 {
			t.Fatalf("%s: snapshot %v", path, snap)
		}
	}
}

func TestDebugMuxExpvarEndpoint(t *testing.T) {
	r := New()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, body := debugGet(t, srv, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var vars map[string]interface{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	if _, ok := vars["obsv"]; !ok {
		t.Fatalf("expvar missing obsv registry: has %v", keysOf(vars))
	}
}

func keysOf(m map[string]interface{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDebugMuxExtraEndpoint(t *testing.T) {
	r := New()
	extra := DebugEndpoint{
		Path: "/debug/trace",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Write([]byte(`{"spans":[]}`))
		}),
	}
	srv := httptest.NewServer(DebugMux(r, extra))
	defer srv.Close()

	resp, body := debugGet(t, srv, "/debug/trace")
	if resp.StatusCode != http.StatusOK || body != `{"spans":[]}` {
		t.Fatalf("extra endpoint not mounted: %d %q", resp.StatusCode, body)
	}
}

// TestMetricsEndpointPrometheusFormat parses /metrics line by line against
// the text exposition format: every series line is "name value" or
// "name{le=\"bound\"} value", histogram buckets are cumulative and end at
// +Inf with the total count, and _sum/_count agree with the instruments.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("pbio.encode.calls").Add(5)
	r.Gauge("evb.queue-depth").Set(3)
	r.Func("dcg.cache_size", func() int64 { return 11 })
	h := r.Histogram("lat.ns")
	for _, v := range []int64{0, 1, 3, 100, 1000} {
		h.Observe(v)
	}
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, body := debugGet(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	types := map[string]string{}
	values := map[string]float64{}
	var bucketCums []float64
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", i)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", i, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", i, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", i, valStr, err)
		}
		if j := strings.IndexByte(name, '{'); j >= 0 {
			series, label := name[:j], name[j:]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("line %d: unexpected label %q", i, label)
			}
			if series == "lat_ns_bucket" {
				bucketCums = append(bucketCums, val)
			}
			name = series
			values[name+label] = val
			continue
		}
		// Metric names must be within the Prometheus alphabet.
		for _, c := range name {
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", i, name)
			}
		}
		values[name] = val
	}

	if types["pbio_encode_calls"] != "counter" || values["pbio_encode_calls"] != 5 {
		t.Fatalf("counter: type=%q value=%v", types["pbio_encode_calls"], values["pbio_encode_calls"])
	}
	if types["evb_queue_depth"] != "gauge" || values["evb_queue_depth"] != 3 {
		t.Fatalf("gauge: type=%q value=%v", types["evb_queue_depth"], values["evb_queue_depth"])
	}
	if types["dcg_cache_size"] != "gauge" || values["dcg_cache_size"] != 11 {
		t.Fatalf("func gauge: type=%q value=%v", types["dcg_cache_size"], values["dcg_cache_size"])
	}
	if types["lat_ns"] != "histogram" {
		t.Fatalf("histogram type %q", types["lat_ns"])
	}
	if values["lat_ns_count"] != 5 || values["lat_ns_sum"] != 1104 {
		t.Fatalf("histogram sum/count: %v/%v", values["lat_ns_sum"], values["lat_ns_count"])
	}
	if got := values[`lat_ns_bucket{le="+Inf"}`]; got != 5 {
		t.Fatalf("+Inf bucket = %v, want 5", got)
	}
	if len(bucketCums) == 0 {
		t.Fatal("no le buckets emitted")
	}
	for i := 1; i < len(bucketCums); i++ {
		if bucketCums[i] < bucketCums[i-1] {
			t.Fatalf("buckets not cumulative: %v", bucketCums)
		}
	}
	// Zeros land in the le="0" bucket; all five samples are <= 1023.
	if got := values[`lat_ns_bucket{le="0"}`]; got != 1 {
		t.Fatalf(`le="0" bucket = %v, want 1`, got)
	}
	if got := values[`lat_ns_bucket{le="1023"}`]; got != 5 {
		t.Fatalf(`le="1023" bucket = %v, want 5`, got)
	}
}

// TestMetricsEndpointOpenMetricsFormat mirrors the Prometheus parse test for
// the OpenMetrics dialect negotiated via the Accept header: same series, a
// trailing # EOF, and exemplar suffixes that appear only on histogram
// _bucket lines — on exactly the bucket whose le bound covers the traced
// sample, carrying the sample's hex TraceID, value and a wall-clock
// timestamp.
func TestMetricsEndpointOpenMetricsFormat(t *testing.T) {
	r := New()
	r.Counter("pbio.encode.calls").Add(5)
	h := r.Histogram("lat.ns")
	var tid [16]byte
	for i := range tid {
		tid[i] = 0xab
	}
	h.ObserveExemplar(100, tid) // bucket 7: le="127"
	h.Observe(3)                // untraced sample, counts only
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text; version=1.0.0") {
		t.Fatalf("content type %q", ct)
	}

	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if last := lines[len(lines)-1]; last != "# EOF" {
		t.Fatalf("last line %q, want # EOF", last)
	}
	exemplarLines := 0
	for i, line := range lines[:len(lines)-1] {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", i)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.Index(line, " # ")
		if idx < 0 {
			// An ordinary series line: "name value" with a single separator.
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: no value separator in %q", i, line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Fatalf("line %d: bad value in %q: %v", i, line, err)
			}
			continue
		}
		exemplarLines++
		series, ex := line[:idx], line[idx+3:]
		name := series
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		if !strings.HasSuffix(name, "_bucket") {
			t.Fatalf("line %d: exemplar on non-bucket series %q", i, series)
		}
		// The exemplar labelset is exactly {trace_id="<32 hex chars>"}.
		const open = `{trace_id="`
		if !strings.HasPrefix(ex, open) {
			t.Fatalf("line %d: malformed exemplar %q", i, ex)
		}
		rest := ex[len(open):]
		end := strings.Index(rest, `"} `)
		if end < 0 {
			t.Fatalf("line %d: unterminated exemplar labelset %q", i, ex)
		}
		gotTid := rest[:end]
		if len(gotTid) != 32 {
			t.Fatalf("line %d: trace_id %q is not 32 hex chars", i, gotTid)
		}
		for _, c := range gotTid {
			if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
				t.Fatalf("line %d: trace_id %q not hex-escaped", i, gotTid)
			}
		}
		if gotTid != strings.Repeat("ab", 16) {
			t.Fatalf("line %d: trace_id %q, want %s", i, gotTid, strings.Repeat("ab", 16))
		}
		fields := strings.Fields(rest[end+len(`"} `):])
		if len(fields) != 2 {
			t.Fatalf("line %d: exemplar tail %q, want value and timestamp", i, ex)
		}
		if v, err := strconv.ParseFloat(fields[0], 64); err != nil || v != 100 {
			t.Fatalf("line %d: exemplar value %q, want 100 (%v)", i, fields[0], err)
		}
		if ts, err := strconv.ParseFloat(fields[1], 64); err != nil || ts <= 0 {
			t.Fatalf("line %d: exemplar timestamp %q (%v)", i, fields[1], err)
		}
		if !strings.Contains(series, `le="127"`) {
			t.Fatalf("line %d: exemplar on %q, want the le=\"127\" bucket", i, series)
		}
	}
	if exemplarLines != 1 {
		t.Fatalf("exemplar lines = %d, want exactly 1", exemplarLines)
	}

	// The plain Prometheus exposition is unchanged: no exemplars, no EOF.
	_, plain := debugGet(t, srv, "/metrics")
	if strings.Contains(plain, "trace_id") || strings.Contains(plain, "# EOF") {
		t.Fatalf("plain /metrics leaked OpenMetrics syntax:\n%s", plain)
	}
}

// TestStatsEndpointExemplars pins the /stats contract both ways: the default
// response stays a flat map[string]int64 (existing scrapers), and
// ?exemplars=1 returns the rich {metrics, exemplars} shape.
func TestStatsEndpointExemplars(t *testing.T) {
	r := New()
	var tid [16]byte
	tid[15] = 7
	r.Histogram("lat.ns").ObserveExemplar(100, tid)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	_, flatBody := debugGet(t, srv, "/stats")
	var flat map[string]int64
	if err := json.Unmarshal([]byte(flatBody), &flat); err != nil {
		t.Fatalf("default /stats is no longer a flat map: %v", err)
	}
	if flat["lat.ns.count"] != 1 {
		t.Fatalf("flat snapshot = %v", flat)
	}

	_, richBody := debugGet(t, srv, "/stats?exemplars=1")
	var rich StatsWithExemplars
	if err := json.Unmarshal([]byte(richBody), &rich); err != nil {
		t.Fatalf("rich /stats: %v", err)
	}
	if rich.Metrics["lat.ns.count"] != 1 {
		t.Fatalf("rich metrics = %v", rich.Metrics)
	}
	ex := rich.Exemplars["lat.ns"]
	if len(ex) != 1 || ex[0].Value != 100 || ex[0].TraceID != "00000000000000000000000000000007" {
		t.Fatalf("rich exemplars = %+v", rich.Exemplars)
	}
}

func TestSnapshotIncludesP95(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	snap := r.Snapshot()
	for _, k := range []string{"lat.p50", "lat.p95", "lat.p99"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %s: %v", k, Names(snap))
		}
	}
	if snap["lat.p50"] > snap["lat.p95"] || snap["lat.p95"] > snap["lat.p99"] {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d",
			snap["lat.p50"], snap["lat.p95"], snap["lat.p99"])
	}
}

func TestStatsLogger(t *testing.T) {
	r := New()
	c := r.Counter("evb.published")
	var mu []string
	done := make(chan string, 16)
	logf := func(format string, args ...interface{}) {
		select {
		case done <- strings.TrimSpace(fmt.Sprintf(format, args...)):
		default:
		}
	}
	stop := StartStatsLogger(r, 20*time.Millisecond, logf)
	defer stop()

	c.Add(7)
	select {
	case line := <-done:
		mu = append(mu, line)
	case <-time.After(5 * time.Second):
		t.Fatal("no stats line logged")
	}
	if !strings.Contains(mu[0], "evb.published=+7") {
		t.Fatalf("unexpected stats line %q", mu[0])
	}
	stop()
	stop() // idempotent
}
