package obsv

import (
	"reflect"
	"testing"
)

func TestAddLabel(t *testing.T) {
	cases := []struct {
		key, histSuffix, want string
	}{
		{"eventbus.published", "", `eventbus.published{instance="a"}`},
		{`eventbus.wire.records{stream="s",format="f"}`, "", `eventbus.wire.records{stream="s",format="f",instance="a"}`},
		{`pbio.encode_ns{format="f"}.count`, ".count", `pbio.encode_ns{format="f",instance="a"}.count`},
		{"pbio.encode_ns.p99", ".p99", `pbio.encode_ns{instance="a"}.p99`},
		// no hist suffix claimed: the dotted name is left whole
		{"dcg.plan_cache.count", "", `dcg.plan_cache.count{instance="a"}`},
	}
	for _, c := range cases {
		if got := AddLabel(c.key, c.histSuffix, "instance", "a"); got != c.want {
			t.Errorf("AddLabel(%q, %q) = %q, want %q", c.key, c.histSuffix, got, c.want)
		}
	}
	// label values are escaped like LabelSet.String
	if got := AddLabel("x", "", "instance", `a"b`); got != `x{instance="a\"b"}` {
		t.Errorf("escaping: got %q", got)
	}
}

func TestMergeLabeledHistogramFamilies(t *testing.T) {
	snap := map[string]int64{
		"eventbus.published": 10,
		// full histogram family: suffix must stay terminal after the label
		"lat.count": 4, "lat.sum": 100, "lat.max": 50,
		"lat.p50": 20, "lat.p95": 45, "lat.p99": 50,
		// counter that merely ends in .count: not a family (siblings missing)
		"conversions.count": 7,
		// already-labeled histogram child
		`enc{format="f"}.count`: 1, `enc{format="f"}.sum`: 2, `enc{format="f"}.max`: 3,
		`enc{format="f"}.p50`: 1, `enc{format="f"}.p95`: 2, `enc{format="f"}.p99`: 3,
	}
	dst := map[string]int64{}
	MergeLabeled(dst, snap, "instance", "broker-1")
	want := map[string]int64{
		`eventbus.published{instance="broker-1"}`:   10,
		`lat{instance="broker-1"}.count`:            4,
		`lat{instance="broker-1"}.sum`:              100,
		`lat{instance="broker-1"}.max`:              50,
		`lat{instance="broker-1"}.p50`:              20,
		`lat{instance="broker-1"}.p95`:              45,
		`lat{instance="broker-1"}.p99`:              50,
		`conversions.count{instance="broker-1"}`:    7,
		`enc{format="f",instance="broker-1"}.count`: 1,
		`enc{format="f",instance="broker-1"}.sum`:   2,
		`enc{format="f",instance="broker-1"}.max`:   3,
		`enc{format="f",instance="broker-1"}.p50`:   1,
		`enc{format="f",instance="broker-1"}.p95`:   2,
		`enc{format="f",instance="broker-1"}.p99`:   3,
	}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("merged snapshot mismatch:\n got %v\nwant %v", dst, want)
	}

	// A second instance merges alongside, not over, the first.
	MergeLabeled(dst, map[string]int64{"eventbus.published": 3}, "instance", "broker-2")
	if dst[`eventbus.published{instance="broker-1"}`] != 10 ||
		dst[`eventbus.published{instance="broker-2"}`] != 3 {
		t.Fatalf("second instance clobbered the first: %v", dst)
	}
}

// TestMergeLabeledExemplarsRoundTrip drives a real registry's exemplars
// through the same instance-labeling merge as MergeLabeled and checks the
// merged exemplar keys still name histogram families present in the merged
// snapshot — the invariant /fleet/stats?exemplars=1 relies on to resolve an
// exemplar back to its series.
func TestMergeLabeledExemplarsRoundTrip(t *testing.T) {
	r := New()
	var tid [16]byte
	tid[0] = 0xfe
	r.Histogram("pbio.encode_ns").ObserveExemplar(100, tid)
	r.HistogramVec("rt.ns", "stream").With("orders").ObserveExemplar(2000, tid)

	snap := r.Snapshot()
	mergedStats := map[string]int64{}
	mergedEx := map[string][]Exemplar{}
	MergeLabeled(mergedStats, snap, "instance", "pub")
	MergeLabeledExemplars(mergedEx, r.Exemplars(), "instance", "pub")

	wantKeys := []string{
		`pbio.encode_ns{instance="pub"}`,
		`rt.ns{stream="orders",instance="pub"}`,
	}
	if len(mergedEx) != len(wantKeys) {
		t.Fatalf("merged exemplar keys = %v, want %v", mergedEx, wantKeys)
	}
	for _, k := range wantKeys {
		ex, ok := mergedEx[k]
		if !ok || len(ex) != 1 {
			t.Fatalf("missing merged exemplars under %q: %v", k, mergedEx)
		}
		if ex[0].TraceID != ex[0].TraceID[:32] || ex[0].TraceID[:2] != "fe" {
			t.Fatalf("exemplar under %q lost its TraceID: %+v", k, ex[0])
		}
		// The merged snapshot must still carry the full histogram family
		// under the same rewritten base name.
		for _, s := range HistogramSuffixes() {
			if _, ok := mergedStats[k+s]; !ok {
				t.Fatalf("merged snapshot missing %s%s for exemplar key %q", k, s, k)
			}
		}
	}

	// A second instance's exemplars merge alongside, not over, the first.
	MergeLabeledExemplars(mergedEx, map[string][]Exemplar{
		"pbio.encode_ns": {{Bucket: 7, Value: 101, TraceID: "aa"}},
	}, "instance", "sub")
	if len(mergedEx[`pbio.encode_ns{instance="pub"}`]) != 1 ||
		len(mergedEx[`pbio.encode_ns{instance="sub"}`]) != 1 {
		t.Fatalf("second instance clobbered the first: %v", mergedEx)
	}
}
