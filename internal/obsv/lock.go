package obsv

import (
	"sort"
	"sync"
	"time"
)

// Tracked locks: drop-in sync.Mutex / sync.RWMutex replacements whose
// acquisition wait time and critical-section hold time land in the registry's
// striped histograms. The fast path is allocation-free — two time.Now calls
// and two histogram observations around the underlying lock — so a tracked
// lock can sit on a hot path (Broker.mu, the dcg plan cache) permanently
// rather than only during debugging sessions. Each tracked lock also
// registers itself in the owning Registry's lock table so /debug/contention
// can serve a named wait/hold snapshot per lock (see contention.go).

// TrackedMutex is a sync.Mutex that records wait time (Lock entry → lock
// acquired) into <scope>.<name>.wait_ns and hold time (acquired → Unlock)
// into <scope>.<name>.hold_ns. The zero value is a plain untracked mutex.
type TrackedMutex struct {
	mu   sync.Mutex
	wait *Histogram
	hold *Histogram
	// lockedAt is owned by the lock holder: written after acquisition, read
	// before release, never touched without the mutex held.
	lockedAt time.Time
}

// NewTrackedMutex returns a mutex whose wait/hold histograms are registered
// under s as <name>.wait_ns and <name>.hold_ns, and which appears in the
// registry's LockSnapshots under the scoped name.
func NewTrackedMutex(name string, s Scope) *TrackedMutex {
	m := &TrackedMutex{
		wait: s.Histogram(name + ".wait_ns"),
		hold: s.Histogram(name + ".hold_ns"),
	}
	s.registerLock(name, m.wait, m.hold, nil)
	return m
}

// Lock acquires the mutex, recording the wait.
func (m *TrackedMutex) Lock() {
	if m.wait == nil { // zero value: behave like sync.Mutex
		m.mu.Lock()
		return
	}
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	m.wait.Observe(now.Sub(start).Nanoseconds())
	m.lockedAt = now
}

// LockExemplar is Lock with a trace exemplar: the wait observation stamps tid
// onto its histogram bucket, so a long lock wait in /stats?exemplars=1 links
// back to the publish trace that suffered it. A zero tid records plainly.
func (m *TrackedMutex) LockExemplar(tid [16]byte) {
	if m.wait == nil {
		m.mu.Lock()
		return
	}
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	m.wait.ObserveExemplar(now.Sub(start).Nanoseconds(), tid)
	m.lockedAt = now
}

// Unlock releases the mutex, recording the hold time.
func (m *TrackedMutex) Unlock() {
	if m.wait == nil {
		m.mu.Unlock()
		return
	}
	held := time.Since(m.lockedAt).Nanoseconds()
	m.mu.Unlock()
	m.hold.Observe(held)
}

// TrackedRWMutex is a sync.RWMutex recording writer wait into
// <name>.wait_ns, writer hold into <name>.hold_ns, and reader wait into
// <name>.rwait_ns. Reader hold time is not tracked: concurrent readers would
// need per-reader state to time their critical sections, and reader *wait* is
// the contention signal (readers only wait when a writer is in or queued).
// The zero value is a plain untracked RWMutex.
type TrackedRWMutex struct {
	mu       sync.RWMutex
	wait     *Histogram
	hold     *Histogram
	rwait    *Histogram
	lockedAt time.Time // owned by the writer, like TrackedMutex.lockedAt
}

// NewTrackedRWMutex returns an RWMutex registered under s as <name>.wait_ns,
// <name>.hold_ns and <name>.rwait_ns, listed in the registry's LockSnapshots.
func NewTrackedRWMutex(name string, s Scope) *TrackedRWMutex {
	m := &TrackedRWMutex{
		wait:  s.Histogram(name + ".wait_ns"),
		hold:  s.Histogram(name + ".hold_ns"),
		rwait: s.Histogram(name + ".rwait_ns"),
	}
	s.registerLock(name, m.wait, m.hold, m.rwait)
	return m
}

// Lock acquires the write lock, recording the writer wait.
func (m *TrackedRWMutex) Lock() {
	if m.wait == nil {
		m.mu.Lock()
		return
	}
	start := time.Now()
	m.mu.Lock()
	now := time.Now()
	m.wait.Observe(now.Sub(start).Nanoseconds())
	m.lockedAt = now
}

// Unlock releases the write lock, recording the writer hold time.
func (m *TrackedRWMutex) Unlock() {
	if m.wait == nil {
		m.mu.Unlock()
		return
	}
	held := time.Since(m.lockedAt).Nanoseconds()
	m.mu.Unlock()
	m.hold.Observe(held)
}

// RLock acquires the read lock, recording the reader wait.
func (m *TrackedRWMutex) RLock() {
	if m.rwait == nil {
		m.mu.RLock()
		return
	}
	start := time.Now()
	m.mu.RLock()
	m.rwait.Observe(time.Since(start).Nanoseconds())
}

// RUnlock releases the read lock.
func (m *TrackedRWMutex) RUnlock() { m.mu.RUnlock() }

// lockFamily groups the histograms behind one named tracked lock so the
// contention endpoint can snapshot them by lock rather than by raw metric.
type lockFamily struct {
	wait, hold, rwait *Histogram
}

// registerLock records a tracked lock's histograms in the registry's lock
// table under the scoped name. Re-registering a name is a no-op: the first
// lock's histograms already are the registry's histograms for those names,
// so a second lock constructed with the same name shares them.
func (s Scope) registerLock(name string, wait, hold, rwait *Histogram) {
	r := s.r
	if r == nil {
		return
	}
	full := s.prefix + name
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.locks == nil {
		r.locks = make(map[string]*lockFamily)
	}
	if _, ok := r.locks[full]; !ok {
		r.locks[full] = &lockFamily{wait: wait, hold: hold, rwait: rwait}
		r.gen.Add(1)
	}
}

// LockStat is one histogram of a tracked lock, expanded for JSON.
type LockStat struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

func lockStat(h *Histogram) LockStat {
	v := h.Value()
	return LockStat{
		Count: v.Count,
		SumNS: v.Sum,
		MaxNS: v.Max,
		P50NS: v.Quantile(0.50),
		P95NS: v.Quantile(0.95),
		P99NS: v.Quantile(0.99),
	}
}

// LockSnapshot is the point-in-time state of one tracked lock.
type LockSnapshot struct {
	Name string   `json:"name"`
	Wait LockStat `json:"wait"`
	Hold LockStat `json:"hold"`
	// RWait is the reader-wait distribution; nil for plain mutexes.
	RWait *LockStat `json:"rwait,omitempty"`
}

// LockSnapshots returns every tracked lock registered in r, sorted by name.
func (r *Registry) LockSnapshots() []LockSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make(map[string]*lockFamily, len(r.locks))
	for name, f := range r.locks {
		fams[name] = f
	}
	r.mu.RUnlock()

	out := make([]LockSnapshot, 0, len(fams))
	for name, f := range fams {
		snap := LockSnapshot{Name: name, Wait: lockStat(f.wait), Hold: lockStat(f.hold)}
		if f.rwait != nil {
			rs := lockStat(f.rwait)
			snap.RWait = &rs
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
