package obsv

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"openmeta/internal/flight"
)

// TestContentionHandler drives the endpoint end to end: contend a tracked
// lock with runtime profiling on, GET twice, and check both halves of the
// response — the tracked-lock snapshot and the profile site deltas.
func TestContentionHandler(t *testing.T) {
	SetContentionProfiling(1)
	defer SetContentionProfiling(0)

	r := New()
	m := NewTrackedMutex("hot_mu", r.Scope("testpkg"))
	const goroutines, perG = 8, 300
	var wg sync.WaitGroup
	var shared int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Lock()
				shared++
				m.Unlock()
			}
		}()
	}
	wg.Wait()

	srv := httptest.NewServer(ContentionHandler(r))
	defer srv.Close()

	get := func() ContentionSnapshot {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap ContentionSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return snap
	}

	first := get()
	if first.MutexProfileFraction != 1 {
		t.Fatalf("mutex_profile_fraction = %d, want 1", first.MutexProfileFraction)
	}
	if first.BlockProfileRateNS != 1 {
		t.Fatalf("block_profile_rate_ns = %d, want 1", first.BlockProfileRateNS)
	}
	var lock *LockSnapshot
	for i := range first.Locks {
		if first.Locks[i].Name == "testpkg.hot_mu" {
			lock = &first.Locks[i]
		}
	}
	if lock == nil {
		t.Fatalf("tracked lock testpkg.hot_mu missing from %+v", first.Locks)
	}
	if lock.Wait.Count != goroutines*perG || lock.Hold.Count != goroutines*perG {
		t.Fatalf("lock wait/hold counts = %d/%d, want %d", lock.Wait.Count, lock.Hold.Count, goroutines*perG)
	}
	if lock.Wait.P50NS > lock.Wait.P99NS {
		t.Fatalf("wait p50 %d > p99 %d", lock.Wait.P50NS, lock.Wait.P99NS)
	}

	// Deltas: the second GET's per-site deltas measure since the first GET,
	// so with no new contention every delta must be <= its cumulative count.
	second := get()
	for _, s := range second.Mutex {
		if s.CountDelta > s.Count || s.CyclesDelta > s.Cycles {
			t.Fatalf("delta exceeds cumulative for site %+v", s)
		}
	}
	_ = shared
}

// TestDebugIndexListsContention: the /debug index page must advertise the
// endpoint (the satellite fix), and the mux must actually serve it.
func TestDebugIndexListsContention(t *testing.T) {
	r := New()
	srv := httptest.NewServer(DebugMuxFor(r, NewHealth(), flight.New(16)))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/contention") {
		t.Fatalf("/debug index does not list /debug/contention:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/contention")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/contention = %d", resp.StatusCode)
	}
	var snap ContentionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Locks == nil || snap.Mutex == nil || snap.Block == nil {
		t.Fatalf("snapshot fields must be non-null arrays: %+v", snap)
	}
}
