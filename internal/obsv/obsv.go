// Package obsv is the repo's observability layer: a lightweight,
// allocation-free counter/gauge/histogram registry built on atomics, with no
// dependencies outside the standard library.
//
// The paper's central claims are performance claims (Table 1: xml2wire
// registration ≈ 2x native PBIO, NDR ≫ XML-text per message), so the hot
// layers — pbio registration and codec paths, dcg plan compilation and
// caching, the event backbone, and metadata discovery — expose their costs
// here as named instruments. openmeta.Stats() snapshots the default
// registry, and DebugMux serves it over HTTP next to net/http/pprof so every
// later performance PR can prove its win against live counters.
//
// Hot-path contract: Counter.Add, Gauge.Set and Histogram.Observe perform no
// allocation and take no locks (guarded by testing.AllocsPerRun in the
// package tests). Instrument lookup (Registry.Counter etc.) takes a mutex
// and may allocate; resolve instruments once at setup time and hold the
// pointers. All instrument methods are nil-receiver safe, so optional
// instrumentation can be left nil without branching at call sites.
package obsv

import (
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is unusable;
// obtain counters from a Registry. A nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (queue depths,
// cache sizes). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histStripes spreads histogram updates over independent cache lines so
// concurrent observers do not serialize on one set of atomics. Must be a
// power of two.
const histStripes = 8

// histBuckets is one bucket per power of two of the observed value:
// bucket i counts values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i).
// Bucket 0 counts zeros.
const histBuckets = 65

type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
	// pad the stripe out so adjacent stripes never share a cache line.
	_ [64]byte
}

// Histogram records a distribution of non-negative int64 samples
// (nanoseconds, byte counts) in power-of-two buckets, striped to stay cheap
// under concurrency. A nil *Histogram is a no-op.
type Histogram struct {
	stripes [histStripes]histStripe
	// ex holds the per-bucket exemplar slots (exemplar.go), allocated once
	// on the first traced observation so untraced histograms pay nothing.
	ex atomic.Pointer[[histBuckets]exemplarSlot]
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.stripes[rand.Uint64()&(histStripes-1)]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// AddSamples records n samples of value v in one stripe update — the bulk
// path the runtime/metrics bridge uses to replay bucket-count deltas from the
// Go runtime's cumulative histograms without looping Observe per sample.
// Negative v clamps to zero; n <= 0 is a no-op.
func (h *Histogram) AddSamples(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.stripes[rand.Uint64()&(histStripes-1)]
	s.count.Add(n)
	s.sum.Add(v * n)
	s.buckets[bits.Len64(uint64(v))].Add(n)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// HistogramValue is the merged view of a histogram at snapshot time.
type HistogramValue struct {
	Count, Sum, Max int64
	// Buckets[i] counts samples in [2^(i-1), 2^i); Buckets[0] counts zeros.
	Buckets [histBuckets]int64
}

// Value reads the merged histogram state.
func (h *Histogram) Value() HistogramValue {
	var out HistogramValue
	if h == nil {
		return out
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		if m := s.max.Load(); m > out.Max {
			out.Max = m
		}
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q.
func (v HistogramValue) Quantile(q float64) int64 {
	if v.Count == 0 {
		return 0
	}
	target := int64(q * float64(v.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range v.Buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<uint(i) - 1
			if upper > v.Max {
				upper = v.Max
			}
			return upper
		}
	}
	return v.Max
}

// Registry is a named collection of instruments. Instruments are created on
// first lookup and live for the life of the registry; looking a name up
// again returns the same instrument, so counts survive component restarts.
// A nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	funcs       map[string]func() int64
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
	locks       map[string]*lockFamily // tracked locks by full name (lock.go)
	gen         atomic.Uint64          // bumped on every instrument / labeled-child creation
	maxVec      atomic.Int64           // max children per labeled vector (0 = unlimited)
}

// DefaultMaxVecChildren bounds each labeled vector to this many children
// unless SetMaxLabelChildren overrides it — large enough for every legitimate
// stream × format product in the repo, small enough that a misbehaving label
// source cannot grow /metrics without bound.
const DefaultMaxVecChildren = 1024

// New returns an empty registry.
func New() *Registry {
	r := &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		funcs:       make(map[string]func() int64),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
	r.maxVec.Store(DefaultMaxVecChildren)
	return r
}

// Generation returns a counter that increases whenever a new instrument (or
// a new child of a labeled vector) is created in the registry. Samplers that
// cache a flattened view of the instrument set (internal/histdb) compare
// generations to decide when to rebuild instead of re-walking the maps every
// tick.
func (r *Registry) Generation() uint64 {
	if r == nil {
		return 0
	}
	return r.gen.Load()
}

// SetMaxLabelChildren bounds every labeled vector in the registry to at most
// n children (n <= 0 removes the bound). Label combinations beyond the bound
// are clamped onto a shared overflow child and counted in the
// obsv.labels.dropped counter rather than allocated, so one misbehaving
// label source cannot grow snapshots and /metrics without bound.
func (r *Registry) SetMaxLabelChildren(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.maxVec.Store(int64(n))
}

var defaultRegistry = New()

// Default returns the process-wide registry that openmeta.Stats() snapshots
// and that components use unless given a registry of their own.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.gen.Add(1)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.gen.Add(1)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if new.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
		r.gen.Add(1)
	}
	return h
}

// Func registers a read-only gauge computed at snapshot time (queue depths,
// cache sizes). Registering the same name again replaces the function. The
// function is called without registry locks held, so it may take its own.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
	r.gen.Add(1)
}

// Scope is a name-prefixed view of a registry: Scope("dcg").Counter("hits")
// is Registry.Counter("dcg.hits").
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a view that prefixes every instrument name with prefix+".".
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix + "."} }

// Counter returns the scoped counter.
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.prefix + name) }

// Gauge returns the scoped gauge.
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.prefix + name) }

// Histogram returns the scoped histogram.
func (s Scope) Histogram(name string) *Histogram { return s.r.Histogram(s.prefix + name) }

// Func registers a scoped snapshot-time gauge.
func (s Scope) Func(name string, fn func() int64) { s.r.Func(s.prefix+name, fn) }

// Snapshot returns a point-in-time flattened view of every instrument.
// Counters and gauges appear under their names; a histogram named h expands
// to h.count, h.sum, h.max, h.p50, h.p95 and h.p99; snapshot functions appear
// under their names. Labeled instruments appear once per child under
// name{k="v",...} keys (a labeled histogram child expands to
// name{...}.count and friends, keeping the suffix terminal so tools that
// group histogram families by suffix keep working). Functions are evaluated
// with no registry locks held.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return map[string]int64{}
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for n, v := range r.histVecs {
		histVecs[n] = v
	}
	r.mu.RUnlock()

	out := make(map[string]int64, len(counters)+len(gauges)+6*len(hists)+len(funcs))
	for n, c := range counters {
		out[n] = c.Load()
	}
	for n, g := range gauges {
		out[n] = g.Load()
	}
	for n, h := range hists {
		expandHistogram(out, n, h)
	}
	for n, v := range counterVecs {
		for _, c := range v.v.children() {
			out[n+c.labels.String()] = c.inst.Load()
		}
	}
	for n, v := range gaugeVecs {
		for _, c := range v.v.children() {
			out[n+c.labels.String()] = c.inst.Load()
		}
	}
	for n, v := range histVecs {
		for _, c := range v.v.children() {
			expandHistogram(out, n+c.labels.String(), c.inst)
		}
	}
	for n, f := range funcs {
		out[n] = f()
	}
	return out
}

// expandHistogram flattens one histogram into the six derived snapshot keys.
func expandHistogram(out map[string]int64, name string, h *Histogram) {
	v := h.Value()
	out[name+".count"] = v.Count
	out[name+".sum"] = v.Sum
	out[name+".max"] = v.Max
	out[name+".p50"] = v.Quantile(0.50)
	out[name+".p95"] = v.Quantile(0.95)
	out[name+".p99"] = v.Quantile(0.99)
}

// Names returns the sorted instrument names of a snapshot — a convenience
// for stable diagnostic output.
func Names(snap map[string]int64) []string {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Delta returns after-minus-before for every key in after. Keys missing from
// before count from zero; gauge-style keys can go negative.
func Delta(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for n, v := range after {
		out[n] = v - before[n]
	}
	return out
}

// InstrumentKind classifies an entry returned by Instruments.
type InstrumentKind uint8

const (
	KindCounter InstrumentKind = iota + 1
	KindGauge
	KindHistogram
	KindFunc
)

// InstrumentRef names one live instrument. Exactly one of Counter, Gauge,
// Histogram and Func is non-nil, matching Kind; children of labeled vectors
// appear as independent refs under their rendered name{k="v"} names.
type InstrumentRef struct {
	Name      string
	Kind      InstrumentKind
	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
	Func      func() int64
}

// Instruments lists every instrument currently registered, including labeled
// vector children. The refs point at the live instruments, so a sampler can
// enumerate once per Generation change and read the held pointers on every
// tick without touching registry locks (internal/histdb's sampling path).
func (r *Registry) Instruments() []InstrumentRef {
	if r == nil {
		return nil
	}
	// Two phases, like Snapshot: copy the maps under the registry lock, walk
	// vector children after releasing it — children() takes the vec lock,
	// which with() holds while creating the labels-dropped counter (which
	// takes the registry lock), so nesting the locks here would deadlock.
	r.mu.RLock()
	out := make([]InstrumentRef, 0,
		len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for n, c := range r.counters {
		out = append(out, InstrumentRef{Name: n, Kind: KindCounter, Counter: c})
	}
	for n, g := range r.gauges {
		out = append(out, InstrumentRef{Name: n, Kind: KindGauge, Gauge: g})
	}
	for n, h := range r.hists {
		out = append(out, InstrumentRef{Name: n, Kind: KindHistogram, Histogram: h})
	}
	for n, f := range r.funcs {
		out = append(out, InstrumentRef{Name: n, Kind: KindFunc, Func: f})
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for n, v := range r.histVecs {
		histVecs[n] = v
	}
	r.mu.RUnlock()
	for n, v := range counterVecs {
		for _, c := range v.v.children() {
			out = append(out, InstrumentRef{Name: n + c.labels.String(), Kind: KindCounter, Counter: c.inst})
		}
	}
	for n, v := range gaugeVecs {
		for _, c := range v.v.children() {
			out = append(out, InstrumentRef{Name: n + c.labels.String(), Kind: KindGauge, Gauge: c.inst})
		}
	}
	for n, v := range histVecs {
		for _, c := range v.v.children() {
			out = append(out, InstrumentRef{Name: n + c.labels.String(), Kind: KindHistogram, Histogram: c.inst})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
