package obsv

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterVecChildren(t *testing.T) {
	r := New()
	wire := r.CounterVec("wire.bytes", "stream", "format")
	wire.With("orders", "f1").Add(100)
	wire.With("orders", "f1").Add(50) // same child
	wire.With("orders", "f2").Add(7)
	wire.With("audit", "f1").Add(1)

	snap := r.Snapshot()
	cases := map[string]int64{
		`wire.bytes{stream="orders",format="f1"}`: 150,
		`wire.bytes{stream="orders",format="f2"}`: 7,
		`wire.bytes{stream="audit",format="f1"}`:  1,
	}
	for k, want := range cases {
		if snap[k] != want {
			t.Errorf("snap[%q] = %d, want %d (snapshot: %v)", k, snap[k], want, snap)
		}
	}
	// Same name resolves to the same vector.
	if r.CounterVec("wire.bytes", "stream", "format") != wire {
		t.Fatal("CounterVec not idempotent")
	}
}

func TestGaugeAndHistogramVecSnapshot(t *testing.T) {
	r := New()
	r.GaugeVec("ratio", "format").With("f1").Set(642)
	h := r.HistogramVec("lat", "op").With("enc")
	h.Observe(100)
	h.Observe(200)

	snap := r.Snapshot()
	if snap[`ratio{format="f1"}`] != 642 {
		t.Fatalf("gauge child missing: %v", snap)
	}
	if snap[`lat{op="enc"}.count`] != 2 || snap[`lat{op="enc"}.sum`] != 300 {
		t.Fatalf("hist child missing: %v", snap)
	}
	// The .count suffix stays terminal so suffix-driven tools group the family.
	if !strings.HasSuffix(`lat{op="enc"}.count`, ".count") {
		t.Fatal("suffix not terminal")
	}
}

func TestVecNilSafe(t *testing.T) {
	var r *Registry
	r.CounterVec("x", "k").With("v").Add(1) // all no-ops
	r.GaugeVec("x", "k").With("v").Set(1)
	r.HistogramVec("x", "k").With("v").Observe(1)
}

func TestVecMissingAndExtraValues(t *testing.T) {
	r := New()
	v := r.CounterVec("c", "a", "b")
	v.With("only").Add(1)              // missing b -> ""
	v.With("x", "y", "ignored").Add(2) // extra value dropped
	snap := r.Snapshot()
	if snap[`c{a="only",b=""}`] != 1 || snap[`c{a="x",b="y"}`] != 2 {
		t.Fatalf("snapshot: %v", snap)
	}
}

func TestLabelSetEscaping(t *testing.T) {
	ls := LabelSet{{Key: "k", Value: `a"b\c` + "\n"}}
	want := `{k="a\"b\\c\n"}`
	if got := ls.String(); got != want {
		t.Fatalf("LabelSet.String() = %q, want %q", got, want)
	}
	if (LabelSet{}).String() != "" {
		t.Fatal("empty LabelSet should render empty")
	}
}

func TestVecChildHotPathAllocationFree(t *testing.T) {
	r := New()
	c := r.CounterVec("c", "k").With("v")
	g := r.GaugeVec("g", "k").With("v")
	h := r.HistogramVec("h", "k").With("v")
	if allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	}); allocs != 0 {
		t.Fatalf("labeled child hot path allocates %.1f per run", allocs)
	}
}

func TestScopedVecs(t *testing.T) {
	r := New()
	r.Scope("bus").CounterVec("wire.records", "stream").With("s1").Inc()
	if got := r.Snapshot()[`bus.wire.records{stream="s1"}`]; got != 1 {
		t.Fatalf("scoped vec child = %d, want 1", got)
	}
}

func TestPrometheusLabeledSeries(t *testing.T) {
	r := New()
	r.CounterVec("pbio.wire.bytes", "format", "dir").With("point3d", "enc").Add(4096)
	r.GaugeVec("pbio.xml.expansion", "format").With("point3d").Set(700)
	hv := r.HistogramVec("bus.frame.bytes", "stream")
	hv.With("orders").Observe(100)
	hv.With("orders").Observe(3)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, req)
	body := rec.Body.String()

	for _, want := range []string{
		"# TYPE pbio_wire_bytes counter\n",
		`pbio_wire_bytes{format="point3d",dir="enc"} 4096` + "\n",
		"# TYPE pbio_xml_expansion gauge\n",
		`pbio_xml_expansion{format="point3d"} 700` + "\n",
		"# TYPE bus_frame_bytes histogram\n",
		`bus_frame_bytes_bucket{stream="orders",le="+Inf"} 2` + "\n",
		`bus_frame_bytes_sum{stream="orders"} 103` + "\n",
		`bus_frame_bytes_count{stream="orders"} 2` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, body)
		}
	}
	// Labeled buckets must carry both the stream label and a le bound.
	if !strings.Contains(body, `bus_frame_bytes_bucket{stream="orders",le="127"}`) {
		t.Errorf("labeled bucket with le bound missing\n---\n%s", body)
	}
}
