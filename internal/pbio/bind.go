package pbio

import (
	"errors"
	"fmt"
	"reflect"
	"strings"

	"openmeta/internal/machine"
)

// Binding associates a message format with a concrete Go struct type — the
// paper's "binding" step. Construction analyzes the pairing once (matching
// fields by name or `pbio` tag, resolving index paths, building child
// bindings for nested formats) so that Encode and Decode run from
// precomputed tables. This per-pair preparation is the Go analogue of PBIO's
// dynamically generated conversion routines: the expensive analysis happens
// once per (format, type), not once per message.
//
// Bindings implement PBIO's restricted format evolution: format fields with
// no matching struct field are skipped on decode and encoded as zero values;
// struct fields with no matching format field are left untouched. A receiver
// bound to an older struct therefore tolerates records whose format has
// grown new fields.
type Binding struct {
	// Format is the bound message format.
	Format *Format
	// Type is the bound struct type.
	Type reflect.Type

	progs []fieldProg
}

type fieldProg struct {
	fl  *Field
	idx int // struct field index, -1 if unbound
	// isCount marks fields that carry a dynamic array's length; on encode
	// they are always derived from the array, never from the struct, so the
	// count and the data cannot disagree.
	isCount bool
	// lenOf is the struct index of the slice whose length drives this count
	// field on encode (-1 when the array itself is unbound: count is 0).
	lenOf int
	child *Binding // for nested fields
}

// Binding errors.
var (
	ErrNotStruct    = errors.New("pbio: binding requires a struct or pointer to struct")
	ErrNoBoundField = errors.New("pbio: no struct field matches any format field")
	ErrTypeMismatch = errors.New("pbio: struct field type incompatible with format field")
)

// Bind analyzes the pairing of format f with the struct type of sample
// (a struct value or pointer to struct).
func (f *Format) Bind(sample interface{}) (*Binding, error) {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("%w: got %T", ErrNotStruct, sample)
	}
	return f.bindType(t)
}

func (f *Format) bindType(t reflect.Type) (*Binding, error) {
	b := &Binding{Format: f, Type: t, progs: make([]fieldProg, 0, len(f.Fields))}

	// Index the struct fields by every name they answer to.
	byName := make(map[string]int)
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		if tag, ok := sf.Tag.Lookup("pbio"); ok && tag != "" && tag != "-" {
			byName[tag] = i
			continue
		}
		byName[sf.Name] = i
		lower := strings.ToLower(sf.Name)
		if _, taken := byName[lower]; !taken {
			byName[lower] = i
		}
	}
	match := func(name string) int {
		if i, ok := byName[name]; ok {
			return i
		}
		if i, ok := byName[strings.ToLower(name)]; ok {
			return i
		}
		return -1
	}

	// Every dynamic array's count field is driven by the array binding.
	lenOf := make(map[string]int)
	for i := range f.Fields {
		fl := &f.Fields[i]
		if fl.Dynamic {
			lenOf[fl.CountField] = match(fl.Name) // -1 when the array is unbound
		}
	}

	bound := 0
	for i := range f.Fields {
		fl := &f.Fields[i]
		prog := fieldProg{fl: fl, idx: match(fl.Name), lenOf: -1}
		if li, ok := lenOf[fl.Name]; ok {
			prog.isCount = true
			prog.lenOf = li
		}
		if prog.idx >= 0 {
			sf := t.Field(prog.idx)
			if err := checkBindable(fl, sf.Type); err != nil {
				return nil, fmt.Errorf("field %q -> %s.%s: %w", fl.Name, t.Name(), sf.Name, err)
			}
			if fl.Kind == Nested {
				elem := sf.Type
				for elem.Kind() == reflect.Slice || elem.Kind() == reflect.Array || elem.Kind() == reflect.Ptr {
					elem = elem.Elem()
				}
				child, err := fl.Nested.bindType(elem)
				if err != nil {
					return nil, err
				}
				prog.child = child
			}
			bound++
		}
		b.progs = append(b.progs, prog)
	}
	if bound == 0 {
		return nil, fmt.Errorf("%w: format %q, type %s", ErrNoBoundField, f.Name, t)
	}
	return b, nil
}

// checkBindable validates that a struct field's type can hold the format
// field's values.
func checkBindable(fl *Field, t reflect.Type) error {
	if fl.Dynamic || fl.Count > 1 {
		if t.Kind() != reflect.Slice && t.Kind() != reflect.Array {
			return fmt.Errorf("%w: %s needs a slice or array, got %s", ErrTypeMismatch, fl.TypeString(), t)
		}
		t = t.Elem()
	}
	switch fl.Kind {
	case Int, Char, Uint:
		switch t.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return nil
		}
	case Float:
		switch t.Kind() {
		case reflect.Float32, reflect.Float64:
			return nil
		}
	case Bool:
		if t.Kind() == reflect.Bool {
			return nil
		}
	case String:
		if t.Kind() == reflect.String {
			return nil
		}
	case Nested:
		if t.Kind() == reflect.Ptr {
			t = t.Elem()
		}
		if t.Kind() == reflect.Struct {
			return nil
		}
	}
	return fmt.Errorf("%w: %s field cannot bind to %s", ErrTypeMismatch, fl.Kind, t)
}

// Encode marshals a bound struct value (or pointer to one) into NDR form.
func (b *Binding) Encode(v interface{}) ([]byte, error) {
	return b.AppendEncode(make([]byte, 0, b.Format.Size*2), v)
}

// AppendEncode appends the encoded struct to dst for buffer reuse.
func (b *Binding) AppendEncode(dst []byte, v interface{}) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Ptr {
		if rv.IsNil() {
			return nil, fmt.Errorf("pbio: encode nil %s", rv.Type())
		}
		rv = rv.Elem()
	}
	if rv.Type() != b.Type {
		return nil, fmt.Errorf("%w: bound to %s, got %s", ErrTypeMismatch, b.Type, rv.Type())
	}
	base := len(dst)
	dst = append(dst, make([]byte, b.Format.Size)...)
	out, err := b.encodeFixed(dst, base, base, rv)
	if err == nil {
		b.Format.obs.encodeCalls.Add(1)
		b.Format.obs.encodeBytes.Add(int64(len(out) - base))
	}
	return out, err
}

func (b *Binding) encodeFixed(dst []byte, recBase, fixedBase int, rv reflect.Value) ([]byte, error) {
	f := b.Format
	order := f.Arch.Order
	var err error
	for pi := range b.progs {
		prog := &b.progs[pi]
		fl := prog.fl
		off := fixedBase + fl.Offset
		if prog.isCount {
			// Count fields always mirror the bound slice's length (zero when
			// the array itself is unbound), never a struct value.
			n := 0
			if prog.lenOf >= 0 {
				n = rv.Field(prog.lenOf).Len()
			}
			machine.PutUint(dst[off:], order, fl.ElemSize, machine.TruncInt(int64(n), fl.ElemSize))
			continue
		}
		if prog.idx < 0 {
			continue // unbound: zero value
		}
		fv := rv.Field(prog.idx)
		switch {
		case fl.Dynamic:
			dst, err = b.encodeDynamic(dst, recBase, off, prog, fv)
		case fl.Count > 1:
			n := fv.Len()
			if n > fl.Count {
				err = fmt.Errorf("%w: %d values for static array of %d", ErrBadCount, n, fl.Count)
				break
			}
			for i := 0; i < n && err == nil; i++ {
				dst, err = b.encodeElem(dst, recBase, off+i*fl.ElemSize, prog, fv.Index(i))
			}
		default:
			dst, err = b.encodeElem(dst, recBase, off, prog, fv)
		}
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", fl.Name, err)
		}
	}
	return dst, nil
}

func (b *Binding) encodeElem(dst []byte, recBase, off int, prog *fieldProg, fv reflect.Value) ([]byte, error) {
	f := b.Format
	fl := prog.fl
	order := f.Arch.Order
	switch fl.Kind {
	case Int, Char:
		machine.PutUint(dst[off:], order, fl.ElemSize, machine.TruncInt(reflectInt(fv), fl.ElemSize))
	case Uint:
		machine.PutUint(dst[off:], order, fl.ElemSize, reflectUint(fv))
	case Float:
		machine.PutFloat(dst[off:], order, fl.ElemSize, fv.Float())
	case Bool:
		if fv.Bool() {
			dst[off] = 1
		}
	case String:
		return f.encodeStringRef(dst, recBase, off, fv.String())
	case Nested:
		for fv.Kind() == reflect.Ptr {
			if fv.IsNil() {
				return dst, nil // zero nested record
			}
			fv = fv.Elem()
		}
		return prog.child.encodeFixed(dst, recBase, off, fv)
	}
	return dst, nil
}

func (b *Binding) encodeDynamic(dst []byte, recBase, slotOff int, prog *fieldProg, fv reflect.Value) ([]byte, error) {
	f := b.Format
	fl := prog.fl
	n := fv.Len()
	if n == 0 {
		return dst, nil
	}
	align := f.Arch.Align(fl.ElemSize)
	if fl.Kind == Nested {
		align = fl.Nested.Align
	}
	pad := alignUp(len(dst)-recBase, align) - (len(dst) - recBase)
	dst = append(dst, make([]byte, pad)...)
	ref := len(dst) - recBase
	start := len(dst)
	dst = append(dst, make([]byte, n*fl.ElemSize)...)
	var err error
	for i := 0; i < n; i++ {
		dst, err = b.encodeElem(dst, recBase, start+i*fl.ElemSize, prog, fv.Index(i))
		if err != nil {
			return nil, err
		}
	}
	machine.PutUint(dst[slotOff:], f.Arch.Order, f.Arch.PointerSize, uint64(ref))
	return dst, nil
}

// Decode unmarshals an NDR record into out, which must be a non-nil pointer
// to the bound struct type. Values are converted from the source format's
// representation (byte order, integer and float sizes) to the struct's —
// the "receiver makes right" conversion the paper describes, applied only
// when representations differ.
func (b *Binding) Decode(data []byte, out interface{}) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return fmt.Errorf("pbio: decode target must be a non-nil pointer, got %T", out)
	}
	rv = rv.Elem()
	if rv.Type() != b.Type {
		return fmt.Errorf("%w: bound to %s, got %s", ErrTypeMismatch, b.Type, rv.Type())
	}
	if len(data) < b.Format.Size {
		return fmt.Errorf("%w: %d bytes, fixed region needs %d", ErrTruncated, len(data), b.Format.Size)
	}
	if err := b.decodeFixed(data, 0, rv); err != nil {
		return err
	}
	b.Format.obs.decodeCalls.Add(1)
	b.Format.obs.decodeBytes.Add(int64(len(data)))
	return nil
}

func (b *Binding) decodeFixed(data []byte, fixedBase int, rv reflect.Value) error {
	f := b.Format
	if fixedBase < 0 || fixedBase+f.Size > len(data) {
		return fmt.Errorf("%w: nested record at %d exceeds %d bytes", ErrTruncated, fixedBase, len(data))
	}
	for pi := range b.progs {
		prog := &b.progs[pi]
		fl := prog.fl
		if prog.idx < 0 {
			continue
		}
		off := fixedBase + fl.Offset
		fv := rv.Field(prog.idx)
		var err error
		switch {
		case fl.Dynamic:
			err = b.decodeDynamic(data, fixedBase, off, prog, fv)
		case fl.Count > 1:
			err = b.decodeArrayInto(data, off, fl.Count, prog, fv)
		default:
			err = b.decodeElem(data, off, prog, fv)
		}
		if err != nil {
			return fmt.Errorf("field %q: %w", fl.Name, err)
		}
	}
	return nil
}

func (b *Binding) decodeElem(data []byte, off int, prog *fieldProg, fv reflect.Value) error {
	f := b.Format
	fl := prog.fl
	order := f.Arch.Order
	switch fl.Kind {
	case Int, Char:
		raw := machine.Uint(data[off:], order, fl.ElemSize)
		return setInt(fv, machine.SignExtend(raw, fl.ElemSize))
	case Uint:
		return setUint(fv, machine.Uint(data[off:], order, fl.ElemSize))
	case Float:
		fv.SetFloat(machine.Float(data[off:], order, fl.ElemSize))
	case Bool:
		fv.SetBool(data[off] != 0)
	case String:
		s, err := f.decodeString(data, off)
		if err != nil {
			return err
		}
		fv.SetString(s)
	case Nested:
		if fv.Kind() == reflect.Ptr {
			if fv.IsNil() {
				fv.Set(reflect.New(fv.Type().Elem()))
			}
			fv = fv.Elem()
		}
		return prog.child.decodeFixed(data, off, fv)
	}
	return nil
}

func (b *Binding) decodeArrayInto(data []byte, off, n int, prog *fieldProg, fv reflect.Value) error {
	fl := prog.fl
	if off < 0 || off+n*fl.ElemSize > len(data) {
		return fmt.Errorf("%w: array of %d x %d bytes at %d in %d-byte record",
			ErrBadReference, n, fl.ElemSize, off, len(data))
	}
	if fv.Kind() == reflect.Slice {
		if fv.Cap() >= n {
			fv.SetLen(n)
		} else {
			fv.Set(reflect.MakeSlice(fv.Type(), n, n))
		}
	} else if fv.Len() < n {
		return fmt.Errorf("%w: %d elements into array of %d", ErrBadCount, n, fv.Len())
	}
	for i := 0; i < n; i++ {
		if err := b.decodeElem(data, off+i*fl.ElemSize, prog, fv.Index(i)); err != nil {
			return err
		}
	}
	return nil
}

func (b *Binding) decodeDynamic(data []byte, fixedBase, slotOff int, prog *fieldProg, fv reflect.Value) error {
	f := b.Format
	fl := prog.fl
	ci := f.byName[fl.CountField]
	cf := &f.Fields[ci]
	raw := machine.Uint(data[fixedBase+cf.Offset:], f.Arch.Order, cf.ElemSize)
	n := machine.SignExtend(raw, cf.ElemSize)
	if cf.Kind == Uint {
		n = int64(raw)
	}
	if n < 0 {
		return fmt.Errorf("%w: negative count %d", ErrCountMismatch, n)
	}
	if n == 0 {
		if fv.Kind() == reflect.Slice {
			fv.SetLen(0)
		}
		return nil
	}
	if n*int64(fl.ElemSize) > int64(len(data)) {
		return fmt.Errorf("%w: count %d x %d bytes exceeds record size %d",
			ErrBadReference, n, fl.ElemSize, len(data))
	}
	ref := machine.Uint(data[slotOff:], f.Arch.Order, f.Arch.PointerSize)
	if ref == 0 {
		return fmt.Errorf("%w: count %d but nil array pointer", ErrCountMismatch, n)
	}
	if ref >= uint64(len(data)) {
		return fmt.Errorf("%w: array at %d in %d-byte record", ErrBadReference, ref, len(data))
	}
	return b.decodeArrayInto(data, int(ref), int(n), prog, fv)
}

// --- reflect numeric helpers ----------------------------------------------

func reflectInt(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return int64(v.Uint())
	default:
		return v.Int()
	}
}

func reflectUint(v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return uint64(v.Int())
	default:
		return v.Uint()
	}
}

func setInt(v reflect.Value, x int64) error {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := uint64(x)
		if v.OverflowUint(u) {
			return fmt.Errorf("%w: value %d overflows %s", ErrTypeMismatch, x, v.Type())
		}
		v.SetUint(u)
	default:
		if v.OverflowInt(x) {
			return fmt.Errorf("%w: value %d overflows %s", ErrTypeMismatch, x, v.Type())
		}
		v.SetInt(x)
	}
	return nil
}

func setUint(v reflect.Value, x uint64) error {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		i := int64(x)
		if i < 0 || v.OverflowInt(i) {
			return fmt.Errorf("%w: value %d overflows %s", ErrTypeMismatch, x, v.Type())
		}
		v.SetInt(i)
	default:
		if v.OverflowUint(x) {
			return fmt.Errorf("%w: value %d overflows %s", ErrTypeMismatch, x, v.Type())
		}
		v.SetUint(x)
	}
	return nil
}
