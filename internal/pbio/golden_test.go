package pbio_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"openmeta/internal/bench"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSlugs maps the Appendix A registration cases (paper order) to
// stable file names.
var goldenSlugs = []string{"structure_a", "structure_b", "structure_cd"}

// TestGoldenNDRImages pins the exact NDR byte images and format metadata
// for the paper's Appendix A structures on the SPARC evaluation
// architecture. Any byte-level drift in the encoder, the layout engine or
// the metadata marshaler is a wire-compatibility break and fails here.
func TestGoldenNDRImages(t *testing.T) {
	cases := bench.RegistrationCases()
	if len(cases) != len(goldenSlugs) {
		t.Fatalf("have %d registration cases, want %d", len(cases), len(goldenSlugs))
	}
	for i, c := range cases {
		slug := goldenSlugs[i]
		t.Run(slug, func(t *testing.T) {
			ctx, err := pbio.NewContext(machine.Sparc)
			if err != nil {
				t.Fatal(err)
			}
			var f *pbio.Format
			for _, nf := range c.Formats {
				if f, err = ctx.Register(nf.Name, nf.Fields); err != nil {
					t.Fatal(err)
				}
			}
			record, err := f.Encode(c.Record)
			if err != nil {
				t.Fatal(err)
			}
			meta := pbio.MarshalMeta(f)

			checkGolden(t, slug+".ndr.golden", record)
			checkGolden(t, slug+".meta.golden", meta)

			// The metadata image must reconstruct a format that decodes the
			// golden record back to the source values on a different
			// architecture.
			remote, err := pbio.UnmarshalMeta(meta)
			if err != nil {
				t.Fatal(err)
			}
			if remote.ID != f.ID {
				t.Fatalf("metadata round trip changed ID: %s != %s", remote.ID, f.ID)
			}
			if _, err := remote.Decode(record); err != nil {
				t.Fatalf("golden record undecodable via metadata: %v", err)
			}
		})
	}
}

// checkGolden compares got against testdata/name, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden image (%d bytes, want %d)\ngot:  %s\nwant: %s",
			name, len(got), len(want), hexdump(got), hexdump(want))
	}
}

func hexdump(b []byte) string {
	const max = 96
	if len(b) > max {
		return fmt.Sprintf("%x… (+%d bytes)", b[:max], len(b)-max)
	}
	return fmt.Sprintf("%x", b)
}
