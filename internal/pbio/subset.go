package pbio

import (
	"errors"
	"fmt"
)

// ErrEmptySubset reports a subset selection that keeps no fields.
var ErrEmptySubset = errors.New("pbio: subset keeps no fields")

// DeriveSubset builds a new format containing only the named fields of f
// (plus the count fields any kept dynamic arrays need), re-laid-out
// compactly for f's architecture. The derived format is what the paper's
// §4.4 calls a "slice" of an information stream: a broker can expose it to
// a subscriber instead of the full format, converting records with a
// compiled plan, so hidden fields never reach that subscriber.
//
// Field order follows the original format. The derived format's name is
// "<name>#<field,field,...>" so different slices of one format stay
// distinguishable in catalogs.
func DeriveSubset(f *Format, fields []string) (*Format, error) {
	keep := make(map[string]bool, len(fields))
	for _, name := range fields {
		fl, ok := f.FieldByName(name)
		if !ok {
			return nil, fmt.Errorf("pbio: subset: format %q has no field %q", f.Name, name)
		}
		keep[name] = true
		if fl.Dynamic {
			keep[fl.CountField] = true
		}
	}
	if len(keep) == 0 {
		return nil, ErrEmptySubset
	}

	sub := &Format{
		Name:   subsetName(f.Name, fields),
		Arch:   f.Arch,
		Fields: make([]Field, 0, len(keep)),
		byName: make(map[string]int, len(keep)),
		Align:  1,
	}
	offset := 0
	for i := range f.Fields {
		src := &f.Fields[i]
		if !keep[src.Name] {
			continue
		}
		fl := *src // copies Kind/ElemSize/Count/Dynamic/CountField/Nested
		align := fieldAlign(f.Arch, &fl)
		offset = alignUp(offset, align)
		fl.Offset = offset
		offset += fl.Slot
		if align > sub.Align {
			sub.Align = align
		}
		sub.byName[fl.Name] = len(sub.Fields)
		sub.Fields = append(sub.Fields, fl)
	}
	sub.Size = alignUp(offset, sub.Align)
	sub.ID = computeID(sub)
	return sub, nil
}

func subsetName(base string, fields []string) string {
	name := base + "#"
	for i, f := range fields {
		if i > 0 {
			name += ","
		}
		name += f
	}
	return name
}
