package pbio

import (
	"errors"
	"fmt"

	"openmeta/internal/machine"
)

// Format metadata travels between peers in a compact, self-contained binary
// encoding: every nested format a record format depends on is included, in
// dependency order, so a receiver can reconstruct the full format graph from
// one message. The encoding is deliberately simple and versioned:
//
//	magic   [4]byte  "PBF1"
//	count   u8       number of formats, dependency-ordered; last is the root
//	formats:
//	  name      str      (u16 length + bytes)
//	  order     u8       1 = little endian, 2 = big endian
//	  ptrSize   u8
//	  maxAlign  u8
//	  archName  str
//	  size      u32      fixed-region size
//	  align     u16
//	  nfields   u16
//	  fields:
//	    name       str
//	    kind       u8
//	    elemSize   u32
//	    count      u32
//	    flags      u8    bit0 = dynamic
//	    countField str
//	    offset     u32
//	    slot       u32
//	    nestedIdx  u8    index into the formats array (0xFF = none)
//
// All multi-byte integers are big-endian. The same bytes feed the format ID
// hash, so "identical metadata" and "identical ID" coincide.

var metaMagic = [4]byte{'P', 'B', 'F', '1'}

// ErrBadMeta reports malformed format metadata.
var ErrBadMeta = errors.New("pbio: malformed format metadata")

// MarshalMeta serializes f and its nested format dependencies.
func MarshalMeta(f *Format) []byte {
	metaMarshals.Add(1)
	buf := marshalMeta(f)
	metaBytesVec.With(f.Name).Add(int64(len(buf)))
	return buf
}

func marshalMeta(f *Format) []byte {
	var deps []*Format
	seen := make(map[*Format]int)
	var collect func(*Format)
	collect = func(g *Format) {
		if _, ok := seen[g]; ok {
			return
		}
		for i := range g.Fields {
			if n := g.Fields[i].Nested; n != nil {
				collect(n)
			}
		}
		seen[g] = len(deps)
		deps = append(deps, g)
	}
	collect(f)

	buf := make([]byte, 0, 64+64*len(f.Fields))
	buf = append(buf, metaMagic[:]...)
	buf = append(buf, byte(len(deps)))
	for _, g := range deps {
		buf = appendStr(buf, g.Name)
		buf = append(buf, byte(g.Arch.Order), byte(g.Arch.PointerSize), byte(g.Arch.MaxAlign))
		buf = appendStr(buf, g.Arch.Name)
		buf = appendU32(buf, uint32(g.Size))
		buf = appendU16(buf, uint16(g.Align))
		buf = appendU16(buf, uint16(len(g.Fields)))
		for i := range g.Fields {
			fl := &g.Fields[i]
			buf = appendStr(buf, fl.Name)
			buf = append(buf, byte(fl.Kind))
			buf = appendU32(buf, uint32(fl.ElemSize))
			buf = appendU32(buf, uint32(fl.Count))
			var flags byte
			if fl.Dynamic {
				flags |= 1
			}
			buf = append(buf, flags)
			buf = appendStr(buf, fl.CountField)
			buf = appendU32(buf, uint32(fl.Offset))
			buf = appendU32(buf, uint32(fl.Slot))
			if fl.Nested != nil {
				buf = append(buf, byte(seen[fl.Nested]))
			} else {
				buf = append(buf, 0xFF)
			}
		}
	}
	return buf
}

// UnmarshalMeta reconstructs a format (and its dependencies) from metadata
// produced by MarshalMeta, typically on a different machine. The returned
// format carries a synthetic Arch with the origin's byte order, pointer size
// and alignment cap, which is everything decoding needs.
func UnmarshalMeta(data []byte) (*Format, error) {
	metaUnmarshals.Add(1)
	r := &metaReader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err != nil || magic != metaMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	count := int(r.u8())
	if count == 0 {
		return nil, fmt.Errorf("%w: zero formats", ErrBadMeta)
	}
	formats := make([]*Format, 0, count)
	for fi := 0; fi < count; fi++ {
		name := r.str()
		order := machine.ByteOrder(r.u8())
		ptrSize := int(r.u8())
		maxAlign := int(r.u8())
		archName := r.str()
		size := int(r.u32())
		align := int(r.u16())
		nfields := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		if order != machine.LittleEndian && order != machine.BigEndian {
			return nil, fmt.Errorf("%w: bad byte order %d", ErrBadMeta, order)
		}
		if ptrSize <= 0 || maxAlign <= 0 {
			return nil, fmt.Errorf("%w: bad arch sizes", ErrBadMeta)
		}
		f := &Format{
			Name:   name,
			Arch:   syntheticArch(archName, order, ptrSize, maxAlign),
			Size:   size,
			Align:  align,
			Fields: make([]Field, 0, nfields),
			byName: make(map[string]int, nfields),
		}
		for i := 0; i < nfields; i++ {
			fl := Field{
				Name: r.str(),
				Kind: Kind(r.u8()),
			}
			fl.ElemSize = int(r.u32())
			fl.Count = int(r.u32())
			flags := r.u8()
			fl.Dynamic = flags&1 != 0
			fl.CountField = r.str()
			fl.Offset = int(r.u32())
			fl.Slot = int(r.u32())
			nestedIdx := r.u8()
			if r.err != nil {
				return nil, r.err
			}
			if nestedIdx != 0xFF {
				if int(nestedIdx) >= len(formats) {
					return nil, fmt.Errorf("%w: nested index %d out of range", ErrBadMeta, nestedIdx)
				}
				fl.Nested = formats[nestedIdx]
			}
			if fl.Kind == Nested && fl.Nested == nil {
				return nil, fmt.Errorf("%w: nested field %q without nested format", ErrBadMeta, fl.Name)
			}
			if _, dup := f.byName[fl.Name]; dup {
				return nil, fmt.Errorf("%w: duplicate field %q", ErrBadMeta, fl.Name)
			}
			f.byName[fl.Name] = len(f.Fields)
			f.Fields = append(f.Fields, fl)
		}
		if err := validateRemote(f); err != nil {
			return nil, err
		}
		f.ID = computeID(f)
		formats = append(formats, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != r.pos {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMeta, len(r.data)-r.pos)
	}
	root := formats[len(formats)-1]
	metaBytesVec.With(root.Name).Add(int64(len(data)))
	return root, nil
}

// MetaRootName extracts the root format's name from marshaled metadata
// without reconstructing the format graph and without touching the metadata
// accounting counters. Brokers use it to label per-format wire metrics for
// payloads they route but never decode.
func MetaRootName(data []byte) (string, error) {
	r := &metaReader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err != nil || magic != metaMagic {
		return "", fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	count := int(r.u8())
	if count == 0 {
		return "", fmt.Errorf("%w: zero formats", ErrBadMeta)
	}
	var name string
	for fi := 0; fi < count; fi++ {
		name = r.str() // formats are dependency-ordered; the last name wins
		r.u8()         // byte order
		r.u8()         // pointer size
		r.u8()         // max align
		r.str()        // arch name
		r.u32()        // size
		r.u16()        // align
		nfields := int(r.u16())
		for i := 0; i < nfields && r.err == nil; i++ {
			r.str() // field name
			r.u8()  // kind
			r.u32() // elem size
			r.u32() // count
			r.u8()  // flags
			r.str() // count field
			r.u32() // offset
			r.u32() // slot
			r.u8()  // nested index
		}
		if r.err != nil {
			return "", r.err
		}
	}
	return name, nil
}

// validateRemote applies the safety checks decode relies on, since remote
// metadata cannot be trusted to be well-formed.
func validateRemote(f *Format) error {
	if len(f.Fields) == 0 {
		return fmt.Errorf("%w: format %q has no fields", ErrBadMeta, f.Name)
	}
	if f.Size <= 0 {
		return fmt.Errorf("%w: format %q has size %d", ErrBadMeta, f.Name, f.Size)
	}
	for i := range f.Fields {
		fl := &f.Fields[i]
		if fl.Kind == Nested {
			if fl.ElemSize != fl.Nested.Size {
				return fmt.Errorf("%w: field %q elem size %d != nested size %d",
					ErrBadMeta, fl.Name, fl.ElemSize, fl.Nested.Size)
			}
		} else if !validSize(fl.Kind, fl.ElemSize, f.Arch.PointerSize) {
			return fmt.Errorf("%w: field %q: %s of size %d", ErrBadMeta, fl.Name, fl.Kind, fl.ElemSize)
		}
		if fl.Count < 1 {
			return fmt.Errorf("%w: field %q count %d", ErrBadMeta, fl.Name, fl.Count)
		}
		wantSlot := fl.ElemSize * fl.Count
		if fl.Dynamic {
			wantSlot = f.Arch.PointerSize
		}
		if fl.Slot != wantSlot {
			return fmt.Errorf("%w: field %q slot %d, want %d", ErrBadMeta, fl.Name, fl.Slot, wantSlot)
		}
		if fl.Offset < 0 || fl.Offset+fl.Slot > f.Size {
			return fmt.Errorf("%w: field %q extends past record end", ErrBadMeta, fl.Name)
		}
		if fl.Dynamic {
			ci, ok := f.byName[fl.CountField]
			if !ok {
				return fmt.Errorf("%w: field %q references missing count field %q",
					ErrBadMeta, fl.Name, fl.CountField)
			}
			cf := &f.Fields[ci]
			if (cf.Kind != Int && cf.Kind != Uint) || cf.Count != 1 || cf.Dynamic {
				return fmt.Errorf("%w: count field %q is not a scalar integer", ErrBadMeta, cf.Name)
			}
		}
		if fl.Kind == String && fl.Dynamic {
			return fmt.Errorf("%w: field %q: dynamic string arrays unsupported", ErrBadMeta, fl.Name)
		}
	}
	return nil
}

// syntheticArch builds an Arch carrying the properties metadata transmits.
// Sizes not carried by metadata are filled with conventional values; decode
// never consults them (element sizes travel per field).
func syntheticArch(name string, order machine.ByteOrder, ptrSize, maxAlign int) *machine.Arch {
	return &machine.Arch{
		Name: name, Order: order,
		CharSize: 1, ShortSize: 2, IntSize: 4,
		LongSize: ptrSize, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8,
		PointerSize: ptrSize, MaxAlign: maxAlign,
	}
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

type metaReader struct {
	data []byte
	pos  int
	err  error
}

func (r *metaReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated", ErrBadMeta)
	}
}

func (r *metaReader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.pos+len(dst) > len(r.data) {
		r.fail()
		return
	}
	copy(dst, r.data[r.pos:])
	r.pos += len(dst)
}

func (r *metaReader) u8() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *metaReader) u16() uint16 {
	var b [2]byte
	r.bytes(b[:])
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *metaReader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *metaReader) str() string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail()
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}
