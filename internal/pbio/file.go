package pbio

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// PBIO stands for Portable Binary I/O: the same encoding that crosses
// networks can be "written to data files in a heterogeneous computing
// environment" (the paper's description of PBIO). A record file is
// self-describing — format metadata precedes the first record of each
// format, exactly as on a connection — so a file written on one machine is
// readable on any other, years later, without the writing program:
//
//	header  "PBIOF" version(1)
//	frames  the wire protocol's format/record frames
var fileMagic = [6]byte{'P', 'B', 'I', 'O', 'F', 1}

// ErrBadFileHeader reports a file that is not a PBIO record file.
var ErrBadFileHeader = errors.New("pbio: not a PBIO record file")

// FileWriter appends self-describing records to a stream or file.
type FileWriter struct {
	w  io.Writer
	c  io.Closer // nil when wrapping a plain writer
	pw *Writer
}

// NewFileWriter starts a record file on w (header written immediately).
func NewFileWriter(w io.Writer) (*FileWriter, error) {
	if _, err := w.Write(fileMagic[:]); err != nil {
		return nil, fmt.Errorf("pbio: write file header: %w", err)
	}
	return &FileWriter{w: w, pw: NewWriter(w)}, nil
}

// CreateFile creates (or truncates) a record file at path.
func CreateFile(path string) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pbio: %w", err)
	}
	fw, err := NewFileWriter(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	fw.c = f
	return fw, nil
}

// WriteRecord appends one encoded record, preceding it with format metadata
// the first time the format appears in this file.
func (fw *FileWriter) WriteRecord(f *Format, record []byte) error {
	return fw.pw.WriteRecord(f, record)
}

// WriteValue encodes a generic record and appends it.
func (fw *FileWriter) WriteValue(f *Format, rec Record) error {
	data, err := f.Encode(rec)
	if err != nil {
		return err
	}
	return fw.pw.WriteRecord(f, data)
}

// Close closes the underlying file, if this writer owns one.
func (fw *FileWriter) Close() error {
	if fw.c == nil {
		return nil
	}
	return fw.c.Close()
}

// FileReader reads a self-describing record file, adopting its formats into
// a Context.
type FileReader struct {
	c  io.Closer
	pr *Reader
}

// NewFileReader opens a record stream on r, verifying the header. Formats
// found in the file are adopted into ctx.
func NewFileReader(r io.Reader, ctx *Context) (*FileReader, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFileHeader, err)
	}
	if hdr != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFileHeader, hdr[:5])
	}
	return &FileReader{pr: NewReader(r, ctx)}, nil
}

// OpenFile opens the record file at path.
func OpenFile(path string, ctx *Context) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pbio: %w", err)
	}
	fr, err := NewFileReader(f, ctx)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	fr.c = f
	return fr, nil
}

// ReadRecord returns the next record and its format. io.EOF signals a clean
// end of file. The returned bytes are valid until the next call.
func (fr *FileReader) ReadRecord() (*Format, []byte, error) {
	return fr.pr.ReadRecord()
}

// ReadValue decodes the next record generically.
func (fr *FileReader) ReadValue() (*Format, Record, error) {
	f, data, err := fr.pr.ReadRecord()
	if err != nil {
		return nil, nil, err
	}
	rec, err := f.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	return f, rec, nil
}

// Close closes the underlying file, if this reader owns one.
func (fr *FileReader) Close() error {
	if fr.c == nil {
		return nil
	}
	return fr.c.Close()
}
