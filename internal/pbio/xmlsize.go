package pbio

import "sync/atomic"

// XMLTextSizer reports the XML-text wire size of rec encoded under f — what
// an XML-RPC-era system would have put on the wire for the same record. The
// hook exists so pbio can publish a live NDR-vs-XML-text expansion ratio per
// format without importing the xmlwire package (which imports pbio);
// xmlwire registers its encoder here from an init function.
type XMLTextSizer func(f *Format, rec Record) (int, error)

var xmlSizer atomic.Pointer[XMLTextSizer]

// SetXMLTextSizer installs the sizer used for expansion-ratio probes.
// Passing nil disables probing.
func SetXMLTextSizer(fn XMLTextSizer) {
	if fn == nil {
		xmlSizer.Store(nil)
		return
	}
	xmlSizer.Store(&fn)
}

// expansionProbeInterval spaces out expansion probes: the first encode of a
// format is probed (so the gauge appears as soon as traffic flows), then one
// in every interval encodes, keeping the text-encoding cost amortized to
// noise on the NDR hot path.
const expansionProbeInterval = 1024

// maybeProbeExpansion updates the format's xml.expansion_pct gauge — the
// XML-text size of this record as a percentage of its NDR size (642 = the
// paper's 6.42x) — on the first and then every 1024th successful encode.
func (f *Format) maybeProbeExpansion(rec Record, ndrBytes int) {
	if f.facct.expansion == nil || ndrBytes <= 0 {
		return
	}
	n := f.encProbes.Add(1)
	if n != 1 && n%expansionProbeInterval != 0 {
		return
	}
	fn := xmlSizer.Load()
	if fn == nil {
		return
	}
	if xmlLen, err := (*fn)(f, rec); err == nil && xmlLen > 0 {
		f.facct.expansion.Set(int64(xmlLen) * 100 / int64(ndrBytes))
	}
}
