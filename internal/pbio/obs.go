package pbio

import "openmeta/internal/obsv"

// obsMetrics bundles the instruments a Context (and the formats it owns)
// reports into. It is held by value so a zero obsMetrics — e.g. on a Format
// built by UnmarshalMeta that has not been adopted into a context — is a
// set of nil, no-op instruments.
type obsMetrics struct {
	registered  *obsv.Counter // formats registered locally
	adopted     *obsv.Counter // formats adopted from remote peers
	encodeCalls *obsv.Counter
	encodeBytes *obsv.Counter
	decodeCalls *obsv.Counter
	decodeBytes *obsv.Counter

	// Codec latency histograms, observed by the EncodeCtx/DecodeCtx wrappers
	// (the plain Encode/Decode hot paths stay untimed). A sampled request's
	// TraceID rides along as the bucket exemplar, so a p99 excursion in
	// pbio.encode_ns points at a resolvable trace.
	encNS *obsv.Histogram // pbio.encode_ns
	decNS *obsv.Histogram // pbio.decode_ns

	// Labeled per-format families. Children are resolved once per format at
	// adopt time (see formatMetrics), so the codec hot paths never touch the
	// vector maps.
	encRecVec    *obsv.CounterVec // pbio.format.encoded.records{format}
	encByteVec   *obsv.CounterVec // pbio.format.encoded.bytes{format}
	decRecVec    *obsv.CounterVec // pbio.format.decoded.records{format}
	decByteVec   *obsv.CounterVec // pbio.format.decoded.bytes{format}
	expansionVec *obsv.GaugeVec   // pbio.format.xml.expansion_pct{format}
}

// formatMetrics is one format's resolved slice of the labeled families: the
// per-format children the Encode/Decode hot paths add to directly. Zero (all
// nil, no-op) for formats not adopted into a context.
type formatMetrics struct {
	encRecords *obsv.Counter
	encBytes   *obsv.Counter
	decRecords *obsv.Counter
	decBytes   *obsv.Counter
	expansion  *obsv.Gauge
}

// formatMetrics resolves the labeled children for one format name.
func (m obsMetrics) formatMetrics(name string) formatMetrics {
	return formatMetrics{
		encRecords: m.encRecVec.With(name),
		encBytes:   m.encByteVec.With(name),
		decRecords: m.decRecVec.With(name),
		decBytes:   m.decByteVec.With(name),
		expansion:  m.expansionVec.With(name),
	}
}

func contextMetrics(r *obsv.Registry) obsMetrics {
	s := r.Scope("pbio")
	return obsMetrics{
		registered:   s.Counter("formats.registered"),
		adopted:      s.Counter("formats.adopted"),
		encodeCalls:  s.Counter("encode.calls"),
		encodeBytes:  s.Counter("encode.bytes"),
		decodeCalls:  s.Counter("decode.calls"),
		decodeBytes:  s.Counter("decode.bytes"),
		encNS:        s.Histogram("encode_ns"),
		decNS:        s.Histogram("decode_ns"),
		encRecVec:    s.CounterVec("format.encoded.records", "format"),
		encByteVec:   s.CounterVec("format.encoded.bytes", "format"),
		decRecVec:    s.CounterVec("format.decoded.records", "format"),
		decByteVec:   s.CounterVec("format.decoded.bytes", "format"),
		expansionVec: s.GaugeVec("format.xml.expansion_pct", "format"),
	}
}

// Package-level instruments on the default registry. Created at init so the
// metric names are present (zero-valued) in openmeta.Stats() from process
// start, and shared by every Context that does not bring its own registry.
var (
	defaultMetrics = contextMetrics(obsv.Default())

	metaMarshals   = obsv.Default().Counter("pbio.meta.marshals")
	metaUnmarshals = obsv.Default().Counter("pbio.meta.unmarshals")

	// metaBytesVec attributes metadata bytes crossing the wire to the format
	// they describe; counted in MarshalMeta/UnmarshalMeta, which are package
	// functions, so the family lives on the default registry regardless of
	// which context later adopts the format.
	metaBytesVec = obsv.Default().CounterVec("pbio.format.meta.bytes", "format")
)

// ContextOption configures a Context at construction.
type ContextOption func(*Context)

// WithObserver directs the context's metrics (format registrations and
// adoptions, encode/decode calls and bytes) into r instead of the process
// default registry.
func WithObserver(r *obsv.Registry) ContextOption {
	return func(c *Context) { c.obs = contextMetrics(r) }
}
