package pbio

import "openmeta/internal/obsv"

// obsMetrics bundles the instruments a Context (and the formats it owns)
// reports into. It is held by value so a zero obsMetrics — e.g. on a Format
// built by UnmarshalMeta that has not been adopted into a context — is a
// set of nil, no-op instruments.
type obsMetrics struct {
	registered  *obsv.Counter // formats registered locally
	adopted     *obsv.Counter // formats adopted from remote peers
	encodeCalls *obsv.Counter
	encodeBytes *obsv.Counter
	decodeCalls *obsv.Counter
	decodeBytes *obsv.Counter
}

func contextMetrics(r *obsv.Registry) obsMetrics {
	s := r.Scope("pbio")
	return obsMetrics{
		registered:  s.Counter("formats.registered"),
		adopted:     s.Counter("formats.adopted"),
		encodeCalls: s.Counter("encode.calls"),
		encodeBytes: s.Counter("encode.bytes"),
		decodeCalls: s.Counter("decode.calls"),
		decodeBytes: s.Counter("decode.bytes"),
	}
}

// Package-level instruments on the default registry. Created at init so the
// metric names are present (zero-valued) in openmeta.Stats() from process
// start, and shared by every Context that does not bring its own registry.
var (
	defaultMetrics = contextMetrics(obsv.Default())

	metaMarshals   = obsv.Default().Counter("pbio.meta.marshals")
	metaUnmarshals = obsv.Default().Counter("pbio.meta.unmarshals")
)

// ContextOption configures a Context at construction.
type ContextOption func(*Context)

// WithObserver directs the context's metrics (format registrations and
// adoptions, encode/decode calls and bytes) into r instead of the process
// default registry.
func WithObserver(r *obsv.Registry) ContextOption {
	return func(c *Context) { c.obs = contextMetrics(r) }
}
