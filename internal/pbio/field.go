// Package pbio is a reimplementation of the PBIO binary communication
// mechanism the paper builds on (Eisenhauer & Daley, "Fast heterogeneous
// binary data interchange", HCW 2000).
//
// PBIO transmits records in NDR — Natural Data Representation, the sender's
// own in-memory layout — together with compact metadata identifying the
// precise format of the transmitted bytes. Senders therefore marshal with a
// straight memory copy plus pointer-to-offset fixups; receivers convert only
// when their native representation actually differs, using conversion
// programs compiled once per (source format, destination) pair.
//
// The package provides:
//
//   - format registration from paper-style IOField lists or from layout
//     specifications (Context.Register / Context.RegisterSpec);
//   - a Catalog of formats addressable by name and by 8-byte format ID;
//   - NDR encoding of generic records and of bound Go structs;
//   - decoding with full byte-order / size / alignment conversion, including
//     PBIO's restricted format evolution (receivers tolerate added fields);
//   - portable binary format metadata for transmission (meta.go) and a
//     connection protocol that sends each format once per peer (wire.go).
package pbio

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a field for marshaling purposes. As in PBIO, the kind
// selects a marshaling technique and is independent of the field's size.
type Kind int

// Field kinds.
const (
	Int    Kind = iota + 1 // signed two's-complement integer
	Uint                   // unsigned integer
	Float                  // IEEE 754 binary floating point
	Char                   // single character (1-byte integer)
	String                 // NUL-terminated string, stored by reference
	Bool                   // single byte, 0 or 1
	Nested                 // previously registered record format
)

var kindNames = map[Kind]string{
	Int:    "integer",
	Uint:   "unsigned integer",
	Float:  "float",
	Char:   "char",
	String: "string",
	Bool:   "boolean",
	Nested: "nested",
}

// String returns the PBIO spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IOField is the paper's programmer-facing field descriptor (Figure 5): a
// name, a type string such as "integer", "unsigned integer[5]" or
// "integer[eta_count]" or the name of a previously registered format, the
// element size from sizeof, and the byte offset from IOOffset.
type IOField struct {
	Name   string
	Type   string
	Size   int
	Offset int
}

// Field is the resolved, internal form of a field after registration.
type Field struct {
	// Name is the field name.
	Name string
	// Kind selects the marshaling technique.
	Kind Kind
	// ElemSize is the size in bytes of one element in the record's memory
	// image. For String and dynamic arrays this is the pointer size.
	ElemSize int
	// Count is the static element count (1 for scalars).
	Count int
	// Dynamic marks a dynamically sized array; its length is carried by the
	// integer field named CountField.
	Dynamic bool
	// CountField names the length-carrying field for dynamic arrays.
	CountField string
	// Nested is the element format for Kind == Nested.
	Nested *Format
	// Offset is the field's byte offset within the fixed region.
	Offset int
	// Slot is the number of bytes the field occupies in the fixed region:
	// ElemSize*Count for inline data, the pointer size for dynamic arrays
	// (which live in the variable region behind a pointer slot).
	Slot int
}

// Reference reports whether the field's fixed-region slot holds a reference
// into the variable region rather than the data itself.
func (f *Field) Reference() bool { return f.Kind == String || f.Dynamic }

// TypeString renders the field's type the way the paper writes it, e.g.
// "integer[eta_count]" or "ASDOffEvent".
func (f *Field) TypeString() string {
	base := f.Kind.String()
	if f.Kind == Nested {
		base = f.Nested.Name
	}
	switch {
	case f.Dynamic:
		return base + "[" + f.CountField + "]"
	case f.Count > 1:
		return base + "[" + strconv.Itoa(f.Count) + "]"
	default:
		return base
	}
}

// Registration errors.
var (
	ErrBadFieldType   = errors.New("pbio: malformed field type")
	ErrUnknownFormat  = errors.New("pbio: unknown format")
	ErrDuplicateField = errors.New("pbio: duplicate field name")
	ErrBadCountField  = errors.New("pbio: invalid count field")
	ErrBadFieldSize   = errors.New("pbio: field size does not match type")
	ErrFieldOverlap   = errors.New("pbio: field layout overlaps or is misaligned")
)

// parseTypeString splits a paper-style type string into its base type and
// array suffix. Returns kind (or nested format name), static count, dynamic
// flag and count-field name.
func parseTypeString(typ string) (base string, count int, dynamic bool, countField string, err error) {
	base = typ
	count = 1
	if i := strings.IndexByte(typ, '['); i >= 0 {
		if !strings.HasSuffix(typ, "]") {
			return "", 0, false, "", fmt.Errorf("%w: %q", ErrBadFieldType, typ)
		}
		base = typ[:i]
		inner := typ[i+1 : len(typ)-1]
		if inner == "" {
			return "", 0, false, "", fmt.Errorf("%w: %q", ErrBadFieldType, typ)
		}
		if n, aerr := strconv.Atoi(inner); aerr == nil {
			if n < 1 {
				return "", 0, false, "", fmt.Errorf("%w: %q", ErrBadFieldType, typ)
			}
			count = n
		} else {
			dynamic = true
			countField = inner
		}
	}
	if base == "" {
		return "", 0, false, "", fmt.Errorf("%w: %q", ErrBadFieldType, typ)
	}
	return base, count, dynamic, countField, nil
}

// kindByName maps PBIO base type spellings to kinds.
var kindByName = map[string]Kind{
	"integer":          Int,
	"unsigned integer": Uint,
	"unsigned":         Uint,
	"float":            Float,
	"double":           Float,
	"char":             Char,
	"string":           String,
	"boolean":          Bool,
}

// validSizes lists the element sizes each kind accepts.
func validSize(k Kind, size, pointerSize int) bool {
	switch k {
	case Int, Uint:
		return size == 1 || size == 2 || size == 4 || size == 8
	case Float:
		return size == 4 || size == 8
	case Char, Bool:
		return size == 1
	case String:
		return size == pointerSize
	default:
		return size > 0
	}
}
