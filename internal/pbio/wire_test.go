package pbio

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"

	"openmeta/internal/machine"
)

func TestWireRoundTrip(t *testing.T) {
	f := registerB(t, machine.Sparc)
	var buf bytes.Buffer
	w := NewWriter(&buf)

	recs := []Record{sampleASDOff(), {"cntrID": "ZME", "fltNum": 77}, sampleASDOff()}
	for _, r := range recs {
		data, err := f.Encode(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteRecord(f, data); err != nil {
			t.Fatal(err)
		}
	}

	rctx := newCtx(t, machine.X86_64) // receiver on a different machine
	r := NewReader(&buf, rctx)
	for i, want := range recs {
		gf, data, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if gf.ID != f.ID {
			t.Errorf("record %d: format %s, want %s", i, gf.ID, f.ID)
		}
		out, err := gf.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if out["cntrID"] != want["cntrID"] {
			t.Errorf("record %d: cntrID = %v", i, out["cntrID"])
		}
	}
	if _, _, err := r.ReadRecord(); !errors.Is(err, io.EOF) {
		t.Errorf("after stream end: err = %v, want io.EOF", err)
	}
}

func TestWireFormatSentOnce(t *testing.T) {
	f := registerB(t, machine.X86)
	data, err := f.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}

	var once bytes.Buffer
	w := NewWriter(&once)
	for i := 0; i < 10; i++ {
		if err := w.WriteRecord(f, data); err != nil {
			t.Fatal(err)
		}
	}

	var every bytes.Buffer
	w2 := NewWriter(&every)
	w2.SetResendMetadata(true)
	for i := 0; i < 10; i++ {
		if err := w2.WriteRecord(f, data); err != nil {
			t.Fatal(err)
		}
	}

	meta := len(MarshalMeta(f))
	wantOnce := (5 + meta) + 10*(5+8+len(data))
	if once.Len() != wantOnce {
		t.Errorf("cached stream = %d bytes, want %d", once.Len(), wantOnce)
	}
	wantEvery := 10 * ((5 + meta) + (5 + 8 + len(data)))
	if every.Len() != wantEvery {
		t.Errorf("uncached stream = %d bytes, want %d", every.Len(), wantEvery)
	}
}

func TestWireWriteFormatIdempotent(t *testing.T) {
	f := registerB(t, machine.X86)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFormat(f); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.WriteFormat(f); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("WriteFormat resent metadata")
	}
}

func TestWireMultipleFormats(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	fa, err := ctx.Register("A", []IOField{{Name: "x", Type: "integer", Size: 4}})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ctx.Register("B", []IOField{{Name: "y", Type: "float", Size: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	da, _ := fa.Encode(Record{"x": 1})
	db, _ := fb.Encode(Record{"y": 2.0})
	for _, pair := range []struct {
		f *Format
		d []byte
	}{{fa, da}, {fb, db}, {fa, da}} {
		if err := w.WriteRecord(pair.f, pair.d); err != nil {
			t.Fatal(err)
		}
	}
	rctx := newCtx(t, machine.X86)
	r := NewReader(&buf, rctx)
	names := []string{"A", "B", "A"}
	for i, want := range names {
		gf, _, err := r.ReadRecord()
		if err != nil {
			t.Fatal(err)
		}
		if gf.Name != want {
			t.Errorf("record %d: format %q, want %q", i, gf.Name, want)
		}
	}
}

func TestWireErrors(t *testing.T) {
	rctx := newCtx(t, machine.X86)

	t.Run("unknown frame type", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte{9, 0, 0, 0, 0}), rctx)
		if _, _, err := r.ReadRecord(); !errors.Is(err, ErrUnknownFrame) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("oversized frame", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte{2, 0xFF, 0xFF, 0xFF, 0xFF}), rctx)
		if _, _, err := r.ReadRecord(); !errors.Is(err, ErrFrameTooBig) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("record before format", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write([]byte{frameRecord, 0, 0, 0, 9})
		buf.Write(make([]byte, 9))
		r := NewReader(&buf, rctx)
		if _, _, err := r.ReadRecord(); !errors.Is(err, ErrNoSuchFormatID) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("short record frame", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write([]byte{frameRecord, 0, 0, 0, 3, 1, 2, 3})
		r := NewReader(&buf, rctx)
		if _, _, err := r.ReadRecord(); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad format frame", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write([]byte{frameFormat, 0, 0, 0, 2, 'X', 'Y'})
		r := NewReader(&buf, rctx)
		if _, _, err := r.ReadRecord(); !errors.Is(err, ErrBadMeta) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		r := NewReader(bytes.NewReader([]byte{frameRecord, 0, 0, 0, 20, 1, 2}), rctx)
		if _, _, err := r.ReadRecord(); err == nil {
			t.Error("want error")
		}
	})
}

func TestWireOverTCP(t *testing.T) {
	// End-to-end over a real socket: sender on simulated SPARC, receiver
	// decoding into a Go struct.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	f := registerB(t, machine.Sparc)
	in := sampleStruct()
	b, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		w := NewWriter(conn)
		data, err := b.Encode(in)
		if err != nil {
			errc <- err
			return
		}
		for i := 0; i < 3; i++ {
			if err := w.WriteRecord(f, data); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rctx := newCtx(t, machine.X86_64)
	r := NewReader(conn, rctx)
	for i := 0; i < 3; i++ {
		gf, data, err := r.ReadRecord()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := gf.Bind(asdOff{})
		if err != nil {
			t.Fatal(err)
		}
		var out asdOff
		if err := rb.Decode(data, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("record %d: %+v != %+v", i, out, in)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
