package pbio

import (
	"bytes"
	"testing"

	"openmeta/internal/machine"
)

// fuzzSeedMetas builds valid metadata images covering strings, dynamic
// arrays and nesting, so the fuzzer starts from the interesting corners of
// the encoding.
func fuzzSeedMetas(f *testing.F) [][]byte {
	f.Helper()
	ctx, err := NewContext(machine.Sparc)
	if err != nil {
		f.Fatal(err)
	}
	flat, err := ctx.RegisterSpec("Flat", []FieldSpec{
		{Name: "id", Kind: String},
		{Name: "n", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		f.Fatal(err)
	}
	dyn, err := ctx.RegisterSpec("Dyn", []FieldSpec{
		{Name: "eta", Kind: Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		f.Fatal(err)
	}
	nested, err := ctx.Register("Nested", []IOField{
		{Name: "inner", Type: "Flat", Size: flat.Size, Offset: 0},
		{Name: "x", Type: "double", Size: 8, Offset: 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	return [][]byte{MarshalMeta(flat), MarshalMeta(dyn), MarshalMeta(nested)}
}

// FuzzDecodeFormatMeta throws arbitrary bytes at UnmarshalMeta. The decoder
// must never panic, and any metadata it accepts must survive a
// re-marshal/re-unmarshal round trip with the format's identity intact —
// the property the event bus relies on when it replays format metadata
// after a reconnect.
func FuzzDecodeFormatMeta(f *testing.F) {
	for _, seed := range fuzzSeedMetas(f) {
		f.Add(seed)
		// Truncations and bit flips of valid images probe the error paths.
		f.Add(seed[:len(seed)/2])
		mut := append([]byte(nil), seed...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte("PBF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalMeta(data)
		if err != nil {
			return
		}
		again := MarshalMeta(g)
		h, err := UnmarshalMeta(again)
		if err != nil {
			t.Fatalf("re-marshal of accepted metadata rejected: %v", err)
		}
		if h.Name != g.Name || h.ID != g.ID || len(h.Fields) != len(g.Fields) {
			t.Fatalf("round trip changed identity: %q/%s/%d fields -> %q/%s/%d fields",
				g.Name, g.ID, len(g.Fields), h.Name, h.ID, len(h.Fields))
		}
		// The canonical form is a fixed point: marshaling again is stable.
		if !bytes.Equal(again, MarshalMeta(h)) {
			t.Fatal("re-marshal is not a fixed point")
		}
	})
}
