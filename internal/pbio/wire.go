package pbio

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// The connection protocol frames two message types over any reliable byte
// stream. Formats are transmitted once per connection and referenced by
// their 8-byte ID afterwards — the format-caching optimization that lets
// NDR's per-message metadata cost approach zero:
//
//	frame := type(1) length(u32 BE) payload
//	type 1 (format): payload = MarshalMeta bytes
//	type 2 (record): payload = FormatID(8) || NDR record bytes
const (
	frameFormat byte = 1
	frameRecord byte = 2
)

// MaxFrameSize bounds a single frame; larger frames indicate corruption.
const MaxFrameSize = MaxRecordSize

// Wire protocol errors.
var (
	ErrFrameTooBig    = errors.New("pbio: frame exceeds maximum size")
	ErrUnknownFrame   = errors.New("pbio: unknown frame type")
	ErrNoSuchFormatID = errors.New("pbio: record references unknown format ID")
)

// Writer sends formats and records over a byte stream. It remembers which
// format IDs the peer has already seen so metadata travels at most once.
// Writer is safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	w    io.Writer
	sent map[FormatID]bool
	// resendMeta disables the format cache: metadata is retransmitted with
	// every record. Exists for the ablation benchmark; always false in
	// normal operation.
	resendMeta bool
	scratch    []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, sent: make(map[FormatID]bool)}
}

// SetResendMetadata controls whether format metadata is retransmitted with
// every record (true) or sent once per connection (false, the default).
func (w *Writer) SetResendMetadata(resend bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.resendMeta = resend
}

// WriteRecord sends one encoded record of format f, preceding it with the
// format's metadata if this connection has not carried it yet.
func (w *Writer) WriteRecord(f *Format, record []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.resendMeta || !w.sent[f.ID] {
		if err := w.writeFrame(frameFormat, nil, MarshalMeta(f)); err != nil {
			return err
		}
		w.sent[f.ID] = true
	}
	return w.writeFrame(frameRecord, f.ID[:], record)
}

// WriteFormat proactively sends a format's metadata (idempotent per
// connection).
func (w *Writer) WriteFormat(f *Format) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.sent[f.ID] && !w.resendMeta {
		return nil
	}
	if err := w.writeFrame(frameFormat, nil, MarshalMeta(f)); err != nil {
		return err
	}
	w.sent[f.ID] = true
	return nil
}

func (w *Writer) writeFrame(typ byte, prefix, payload []byte) error {
	total := len(prefix) + len(payload)
	if total > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, total)
	}
	need := 5 + total
	if cap(w.scratch) < need {
		w.scratch = make([]byte, 0, need*2)
	}
	buf := w.scratch[:0]
	buf = append(buf, typ, byte(total>>24), byte(total>>16), byte(total>>8), byte(total))
	buf = append(buf, prefix...)
	buf = append(buf, payload...)
	w.scratch = buf
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("pbio: write frame: %w", err)
	}
	return nil
}

// Reader receives formats and records from a byte stream, adopting incoming
// format metadata into a Context so records can be decoded. Reader is not
// safe for concurrent use (a stream has one reading position).
type Reader struct {
	r   io.Reader
	ctx *Context
	buf []byte
}

// NewReader returns a Reader over r that adopts formats into ctx.
func NewReader(r io.Reader, ctx *Context) *Reader {
	return &Reader{r: r, ctx: ctx}
}

// ReadRecord reads frames until a record arrives, returning the record's
// format and its NDR bytes. The returned slice is only valid until the next
// call. io.EOF is returned verbatim at a clean end of stream.
func (r *Reader) ReadRecord() (*Format, []byte, error) {
	for {
		typ, payload, err := r.readFrame()
		if err != nil {
			return nil, nil, err
		}
		switch typ {
		case frameFormat:
			f, err := UnmarshalMeta(payload)
			if err != nil {
				return nil, nil, err
			}
			if _, err := r.ctx.Adopt(f); err != nil {
				return nil, nil, err
			}
		case frameRecord:
			if len(payload) < len(FormatID{}) {
				return nil, nil, fmt.Errorf("%w: record frame of %d bytes", ErrTruncated, len(payload))
			}
			var id FormatID
			copy(id[:], payload)
			f, ok := r.ctx.LookupID(id)
			if !ok {
				return nil, nil, fmt.Errorf("%w: %s", ErrNoSuchFormatID, id)
			}
			return f, payload[len(id):], nil
		default:
			return nil, nil, fmt.Errorf("%w: %d", ErrUnknownFrame, typ)
		}
	}
}

func (r *Reader) readFrame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("pbio: read frame header: %w", err)
	}
	n := int(hdr[1])<<24 | int(hdr[2])<<16 | int(hdr[3])<<8 | int(hdr[4])
	if n < 0 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n*2)
	}
	payload := r.buf[:n]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return 0, nil, fmt.Errorf("pbio: read frame payload: %w", err)
	}
	return hdr[0], payload, nil
}
