package pbio

import (
	"math/rand"
	"testing"

	"openmeta/internal/machine"
)

// Records, format metadata and frames arrive from the network; nothing in
// them may be trusted. These tests feed mutated and random bytes through
// every untrusted entry point and require an error or a success — never a
// panic, never an out-of-range access (the race/bounds detectors catch
// those under `go test`).

func noPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s panicked: %v", name, r)
		}
	}()
	fn()
}

func TestDecodeNeverPanicsOnMutatedRecords(t *testing.T) {
	f := registerB(t, machine.Sparc)
	good, err := f.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), good...)
		// Flip 1-4 random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		noPanic(t, "Decode", func() { _, _ = f.Decode(bad) })
	}
	// Random truncations.
	for n := 0; n <= len(good); n++ {
		cut := good[:n]
		noPanic(t, "Decode(truncated)", func() { _, _ = f.Decode(cut) })
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := registerB(t, machine.X86_64)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		noPanic(t, "Decode", func() { _, _ = f.Decode(data) })
	}
}

func TestBindingDecodeNeverPanicsOnMutatedRecords(t *testing.T) {
	f := registerB(t, machine.Sparc)
	b, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := b.Encode(sampleStruct())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), good...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		var out asdOff
		noPanic(t, "Binding.Decode", func() { _ = b.Decode(bad, &out) })
	}
}

func TestUnmarshalMetaNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := registerB(t, machine.Sparc)
	good := MarshalMeta(f)
	for trial := 0; trial < 2000; trial++ {
		bad := append([]byte(nil), good...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		}
		noPanic(t, "UnmarshalMeta", func() {
			// Whatever parsed must stay internally safe to use. A flipped
			// byte may declare a huge (but valid) record size; skip the
			// decode probe then rather than allocate gigabytes.
			if g, err := UnmarshalMeta(bad); err == nil && g.Size < 1<<20 {
				_, _ = g.Decode(make([]byte, g.Size))
			}
		})
	}
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(256))
		rng.Read(data)
		noPanic(t, "UnmarshalMeta(random)", func() { _, _ = UnmarshalMeta(data) })
	}
}

func TestReaderNeverPanicsOnRandomFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		stream := make([]byte, rng.Intn(200))
		rng.Read(stream)
		// Constrain the declared length so ReadFull terminates quickly.
		if len(stream) >= 5 {
			stream[1], stream[2] = 0, 0
		}
		ctx := newCtx(t, machine.X86_64)
		r := NewReader(&sliceReader{data: stream}, ctx)
		noPanic(t, "ReadRecord", func() {
			for i := 0; i < 4; i++ {
				if _, _, err := r.ReadRecord(); err != nil {
					return
				}
			}
		})
	}
}

type sliceReader struct {
	data []byte
	pos  int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, errEOF{}
	}
	n := copy(p, s.data[s.pos:])
	s.pos += n
	return n, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

func TestDecodeIdempotentReencode(t *testing.T) {
	// decode(encode(x)) re-encodes to identical bytes — the canonical-form
	// property MatchBinary relies on.
	f := registerB(t, machine.Sparc64)
	recs := []Record{
		sampleASDOff(),
		{},
		{"cntrID": "", "eta": []uint64{}},
		{"off": []uint64{1, 0, 3, 0, 5}},
	}
	for i, rec := range recs {
		first, err := f.Encode(rec)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := f.Decode(first)
		if err != nil {
			t.Fatal(err)
		}
		second, err := f.Encode(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Errorf("record %d: re-encode differs (%d vs %d bytes)", i, len(first), len(second))
		}
	}
}
