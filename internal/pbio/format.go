package pbio

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"openmeta/internal/machine"
)

// FormatID is the compact identifier under which a format travels on the
// wire after its metadata has been exchanged once. It is a stable 64-bit
// hash of the format's canonical metadata, so identical formats registered
// on identical architectures hash identically.
type FormatID [8]byte

// String renders the ID as hex for diagnostics.
func (id FormatID) String() string { return fmt.Sprintf("%x", id[:]) }

// Format is a registered message format: the complete recipe for moving a
// record of this shape between memory and the wire on a given architecture.
// A Format is immutable after registration.
type Format struct {
	// Name is the format name.
	Name string
	// Arch is the architecture whose layout the format describes. For
	// formats received from remote peers this carries at least the byte
	// order and pointer size of the origin machine.
	Arch *machine.Arch
	// Fields are the resolved fields in declaration order.
	Fields []Field
	// Size is the fixed-region size: what C sizeof reports for the struct.
	Size int
	// Align is the overall record alignment.
	Align int
	// ID is the wire identifier.
	ID FormatID

	byName map[string]int
	// obs carries the owning context's instruments so Encode/Decode on the
	// hot path report without a context lookup. Zero (all-nil) for formats
	// that are not adopted into a context.
	obs obsMetrics
	// facct holds this format's children of the labeled per-format families
	// (wire accounting and expansion ratio), resolved once at adopt time.
	facct formatMetrics
	// encProbes counts successful encodes to pace expansion-ratio probes.
	encProbes atomic.Uint64
}

// FieldByName returns the field with the given name.
func (f *Format) FieldByName(name string) (*Field, bool) {
	i, ok := f.byName[name]
	if !ok {
		return nil, false
	}
	return &f.Fields[i], true
}

// IOFields renders the format back as the paper-style IOField list, the way
// cmd/xml2wire dumps registered metadata.
func (f *Format) IOFields() []IOField {
	out := make([]IOField, len(f.Fields))
	for i := range f.Fields {
		fl := &f.Fields[i]
		out[i] = IOField{Name: fl.Name, Type: fl.TypeString(), Size: fl.ElemSize, Offset: fl.Offset}
	}
	return out
}

// Context owns a Catalog of registered formats, addressable by name and by
// format ID. It corresponds to PBIO's IOContext. A Context is safe for
// concurrent use.
type Context struct {
	arch *machine.Arch
	obs  obsMetrics

	mu      sync.RWMutex
	byName  map[string]*Format
	byID    map[FormatID]*Format
	ordered []*Format
}

// NewContext creates a Context registering formats laid out for arch. Pass
// machine.Native for the local machine. Options configure observability and
// future knobs.
func NewContext(arch *machine.Arch, opts ...ContextOption) (*Context, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	c := &Context{
		arch:   arch,
		obs:    defaultMetrics,
		byName: make(map[string]*Format),
		byID:   make(map[FormatID]*Format),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Arch returns the architecture this context lays formats out for.
func (c *Context) Arch() *machine.Arch { return c.arch }

// Lookup returns the format registered under name.
func (c *Context) Lookup(name string) (*Format, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.byName[name]
	return f, ok
}

// LookupID returns the format with the given wire ID, whether registered
// locally or adopted from a peer.
func (c *Context) LookupID(id FormatID) (*Format, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.byID[id]
	return f, ok
}

// Formats returns the registered formats in registration order.
func (c *Context) Formats() []*Format {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Format, len(c.ordered))
	copy(out, c.ordered)
	return out
}

// Register resolves and registers a format from a paper-style IOField list
// with explicit sizes and offsets (the compiled-in metadata path). The field
// list must be in declaration order. Nested type names must already be
// registered, as must count fields for dynamic arrays.
func (c *Context) Register(name string, fields []IOField) (*Format, error) {
	if name == "" {
		return nil, fmt.Errorf("pbio: register: empty format name")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("pbio: register %q: no fields", name)
	}
	f := &Format{
		Name:   name,
		Arch:   c.arch,
		Fields: make([]Field, 0, len(fields)),
		byName: make(map[string]int, len(fields)),
		Align:  1,
	}
	c.mu.RLock()
	for _, io := range fields {
		fl, err := c.resolveLocked(name, io)
		if err != nil {
			c.mu.RUnlock()
			return nil, err
		}
		if _, dup := f.byName[fl.Name]; dup {
			c.mu.RUnlock()
			return nil, fmt.Errorf("%w: %q in format %q", ErrDuplicateField, fl.Name, name)
		}
		f.byName[fl.Name] = len(f.Fields)
		f.Fields = append(f.Fields, fl)
	}
	c.mu.RUnlock()
	if err := finishFormat(f); err != nil {
		return nil, err
	}
	return c.adopt(f, true)
}

// resolveLocked converts one IOField; caller holds at least a read lock.
func (c *Context) resolveLocked(formatName string, io IOField) (Field, error) {
	base, count, dynamic, countField, err := parseTypeString(io.Type)
	if err != nil {
		return Field{}, fmt.Errorf("format %q field %q: %w", formatName, io.Name, err)
	}
	fl := Field{
		Name:       io.Name,
		ElemSize:   io.Size,
		Count:      count,
		Dynamic:    dynamic,
		CountField: countField,
		Offset:     io.Offset,
	}
	if io.Name == "" {
		return Field{}, fmt.Errorf("pbio: format %q: field with empty name", formatName)
	}
	if kind, ok := kindByName[base]; ok {
		fl.Kind = kind
	} else {
		nested, ok := c.byName[base]
		if !ok {
			return Field{}, fmt.Errorf("format %q field %q: %w: %q",
				formatName, io.Name, ErrUnknownFormat, base)
		}
		fl.Kind = Nested
		fl.Nested = nested
		if io.Size != nested.Size {
			return Field{}, fmt.Errorf("format %q field %q: %w: size %d, nested format %q has size %d",
				formatName, io.Name, ErrBadFieldSize, io.Size, base, nested.Size)
		}
	}
	if fl.Kind == String && fl.Dynamic {
		return Field{}, fmt.Errorf("pbio: format %q field %q: dynamic arrays of strings are not supported",
			formatName, io.Name)
	}
	if fl.Kind != Nested && !validSize(fl.Kind, io.Size, c.arch.PointerSize) {
		return Field{}, fmt.Errorf("format %q field %q: %w: %s of size %d",
			formatName, io.Name, ErrBadFieldSize, fl.Kind, io.Size)
	}
	if fl.Dynamic {
		fl.Slot = c.arch.PointerSize
	} else {
		fl.Slot = fl.ElemSize * fl.Count
	}
	return fl, nil
}

// finishFormat validates the layout (ordering, overlap, alignment), fills in
// Size/Align and computes the format ID.
func finishFormat(f *Format) error {
	sorted := make([]*Field, len(f.Fields))
	for i := range f.Fields {
		sorted[i] = &f.Fields[i]
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	end := 0
	for _, fl := range sorted {
		if fl.Offset < 0 {
			return fmt.Errorf("pbio: format %q field %q: negative offset", f.Name, fl.Name)
		}
		if fl.Offset < end {
			return fmt.Errorf("%w: format %q field %q at offset %d overlaps previous field",
				ErrFieldOverlap, f.Name, fl.Name, fl.Offset)
		}
		align := fieldAlign(f.Arch, fl)
		if fl.Offset%align != 0 {
			return fmt.Errorf("%w: format %q field %q at offset %d requires alignment %d",
				ErrFieldOverlap, f.Name, fl.Name, fl.Offset, align)
		}
		if align > f.Align {
			f.Align = align
		}
		end = fl.Offset + fl.Slot
	}
	f.Size = alignUp(end, f.Align)

	// Count fields must exist and be scalar integers.
	for i := range f.Fields {
		fl := &f.Fields[i]
		if !fl.Dynamic {
			continue
		}
		ci, ok := f.byName[fl.CountField]
		if !ok {
			return fmt.Errorf("%w: format %q field %q sized by missing field %q",
				ErrBadCountField, f.Name, fl.Name, fl.CountField)
		}
		cf := &f.Fields[ci]
		if (cf.Kind != Int && cf.Kind != Uint) || cf.Count != 1 || cf.Dynamic {
			return fmt.Errorf("%w: format %q field %q is not a scalar integer",
				ErrBadCountField, f.Name, cf.Name)
		}
	}
	f.ID = computeID(f)
	return nil
}

// fieldAlign returns the natural alignment of a field's fixed-region slot.
func fieldAlign(arch *machine.Arch, fl *Field) int {
	size := fl.ElemSize
	if fl.Reference() {
		size = arch.PointerSize
	}
	if fl.Kind == Nested && !fl.Dynamic {
		// A nested record aligns to its own record alignment.
		return fl.Nested.Align
	}
	return arch.Align(size)
}

// computeID hashes the canonical metadata of the format.
func computeID(f *Format) FormatID {
	h := fnv.New64a()
	h.Write(marshalMeta(f)) //nolint:errcheck // hash.Hash never errors
	var id FormatID
	sum := h.Sum64()
	for i := 0; i < 8; i++ {
		id[i] = byte(sum >> (8 * (7 - i)))
	}
	return id
}

// adopt inserts a finished format into the catalog. When rename is true and
// the name is taken by a different format, registration fails; adopting an
// identical format (same ID) is idempotent and returns the existing one.
func (c *Context) adopt(f *Format, local bool) (*Format, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.byID[f.ID]; ok {
		return existing, nil
	}
	f.obs = c.obs
	f.facct = c.obs.formatMetrics(f.Name)
	if existing, ok := c.byName[f.Name]; ok {
		if local {
			return nil, fmt.Errorf("pbio: format %q already registered with different definition (id %s vs %s)",
				f.Name, existing.ID, f.ID)
		}
		// Remote format with a colliding name: keep it addressable by ID
		// only. Name lookup continues to find the local definition.
		c.obs.adopted.Add(1)
		c.byID[f.ID] = f
		c.ordered = append(c.ordered, f)
		return f, nil
	}
	if local {
		c.obs.registered.Add(1)
	} else {
		c.obs.adopted.Add(1)
	}
	c.byName[f.Name] = f
	c.byID[f.ID] = f
	c.ordered = append(c.ordered, f)
	return f, nil
}

// Adopt registers a format received from a peer (typically unmarshaled by
// UnmarshalMeta). Adopting the same format twice is idempotent.
func (c *Context) Adopt(f *Format) (*Format, error) {
	if f == nil || len(f.Fields) == 0 {
		return nil, fmt.Errorf("pbio: adopt: nil or empty format")
	}
	return c.adopt(f, false)
}

func alignUp(n, align int) int {
	if align <= 1 {
		return n
	}
	if rem := n % align; rem != 0 {
		return n + align - rem
	}
	return n
}
