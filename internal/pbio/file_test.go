package pbio

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"openmeta/internal/machine"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.pbio")

	f := registerB(t, machine.Sparc) // write on a simulated big-endian box
	fw, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		sampleASDOff(),
		{"cntrID": "ZME", "fltNum": 77},
		{"cntrID": "ZNY", "eta": []uint64{1, 2, 3, 4}},
	}
	for _, r := range recs {
		if err := fw.WriteValue(f, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Read on a different "machine".
	rctx := newCtx(t, machine.X86_64)
	fr, err := OpenFile(path, rctx)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	for i, want := range recs {
		gf, rec, err := fr.ReadValue()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if gf.Name != "ASDOffEvent" {
			t.Errorf("record %d format = %q", i, gf.Name)
		}
		if rec["cntrID"] != want["cntrID"] {
			t.Errorf("record %d cntrID = %v", i, rec["cntrID"])
		}
	}
	if _, _, err := fr.ReadRecord(); !errors.Is(err, io.EOF) {
		t.Errorf("after last record: %v, want io.EOF", err)
	}
}

func TestFileMultipleFormats(t *testing.T) {
	var buf bytes.Buffer
	ctx := newCtx(t, machine.X86_64)
	fa, err := ctx.RegisterSpec("A", []FieldSpec{{Name: "x", Kind: Int, CType: machine.CInt}})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ctx.RegisterSpec("B", []FieldSpec{{Name: "y", Kind: String}})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := NewFileWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteValue(fa, Record{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteValue(fb, Record{"y": "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteValue(fa, Record{"x": 2}); err != nil {
		t.Fatal(err)
	}

	fr, err := NewFileReader(&buf, newCtx(t, machine.Sparc))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	var xs []int64
	for {
		gf, rec, err := fr.ReadValue()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, gf.Name)
		if v, ok := rec["x"].(int64); ok {
			xs = append(xs, v)
		}
	}
	if !reflect.DeepEqual(names, []string{"A", "B", "A"}) {
		t.Errorf("names = %v", names)
	}
	if !reflect.DeepEqual(xs, []int64{1, 2}) {
		t.Errorf("xs = %v", xs)
	}
}

func TestFileBadHeader(t *testing.T) {
	ctx := newCtx(t, machine.X86_64)
	if _, err := NewFileReader(bytes.NewReader([]byte("JUNKY!")), ctx); !errors.Is(err, ErrBadFileHeader) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := NewFileReader(bytes.NewReader([]byte("PB")), ctx); !errors.Is(err, ErrBadFileHeader) {
		t.Errorf("short header err = %v", err)
	}
	// Wrong version byte.
	if _, err := NewFileReader(bytes.NewReader([]byte{'P', 'B', 'I', 'O', 'F', 9}), ctx); !errors.Is(err, ErrBadFileHeader) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	f := registerB(t, machine.X86)
	fw, err := NewFileWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteValue(f, sampleASDOff()); err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-record.
	data := buf.Bytes()[:buf.Len()-5]
	fr, err := NewFileReader(bytes.NewReader(data), newCtx(t, machine.X86_64))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.ReadRecord(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestFileOpenErrors(t *testing.T) {
	ctx := newCtx(t, machine.X86_64)
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.pbio"), ctx); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := CreateFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Error("uncreatable path accepted")
	}
}

func TestFileCloseWithoutOwnership(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Errorf("Close on non-owned writer: %v", err)
	}
	fr, err := NewFileReader(&buf, newCtx(t, machine.X86_64))
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Close(); err != nil {
		t.Errorf("Close on non-owned reader: %v", err)
	}
}
