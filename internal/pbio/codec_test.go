package pbio

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"openmeta/internal/machine"
)

// sampleASDOff returns a record for Structure B.
func sampleASDOff() Record {
	return Record{
		"cntrID": "ZTL",
		"arln":   "DL",
		"fltNum": int64(1842),
		"equip":  "B757",
		"org":    "ATL",
		"dest":   "MCO",
		"off":    []uint64{10, 20, 30, 40, 50},
		"eta":    []uint64{1000, 2000, 3000},
	}
}

func registerB(t *testing.T, arch *machine.Arch) *Format {
	t.Helper()
	ctx := newCtx(t, arch)
	f, err := ctx.RegisterSpec("ASDOffEvent", []FieldSpec{
		{Name: "cntrID", Kind: String},
		{Name: "arln", Kind: String},
		{Name: "fltNum", Kind: Int, CType: machine.CInt},
		{Name: "equip", Kind: String},
		{Name: "org", Kind: String},
		{Name: "dest", Kind: String},
		{Name: "off", Kind: Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEncodeDecodeRoundTripAllArches(t *testing.T) {
	for _, arch := range []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc,
		machine.Sparc64, machine.Legacy16} {
		t.Run(arch.Name, func(t *testing.T) {
			f := registerB(t, arch)
			in := sampleASDOff()
			data, err := f.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := f.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if out["cntrID"] != "ZTL" || out["dest"] != "MCO" {
				t.Errorf("strings: %v %v", out["cntrID"], out["dest"])
			}
			if out["fltNum"] != int64(1842) {
				t.Errorf("fltNum = %v (%T)", out["fltNum"], out["fltNum"])
			}
			if !reflect.DeepEqual(out["off"], []uint64{10, 20, 30, 40, 50}) {
				t.Errorf("off = %v", out["off"])
			}
			if !reflect.DeepEqual(out["eta"], []uint64{1000, 2000, 3000}) {
				t.Errorf("eta = %v", out["eta"])
			}
			// The count field was auto-filled.
			if out["eta_count"] != int64(3) {
				t.Errorf("eta_count = %v", out["eta_count"])
			}
		})
	}
}

func TestEncodeNDRIsNativeLayout(t *testing.T) {
	// The fixed region must be exactly the sender's in-memory layout: field
	// values at their compiler offsets in the sender's byte order.
	ctx := newCtx(t, machine.Sparc)
	f, err := ctx.Register("T", []IOField{
		{Name: "a", Type: "integer", Size: 4, Offset: 0},
		{Name: "b", Type: "unsigned integer", Size: 2, Offset: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"a": int64(0x01020304), "b": uint64(0xBEEF)})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 8 || len(data) != 8 {
		t.Fatalf("size = %d, encoded = %d", f.Size, len(data))
	}
	want := []byte{0x01, 0x02, 0x03, 0x04, 0xBE, 0xEF, 0, 0}
	if !reflect.DeepEqual(data, want) {
		t.Errorf("NDR bytes = %x, want %x", data, want)
	}

	// Same record on a little-endian machine is byte-swapped — the whole
	// point of transmitting in the sender's natural representation.
	ctxLE := newCtx(t, machine.X86)
	fLE, err := ctxLE.Register("T", []IOField{
		{Name: "a", Type: "integer", Size: 4, Offset: 0},
		{Name: "b", Type: "unsigned integer", Size: 2, Offset: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	dataLE, err := fLE.Encode(Record{"a": int64(0x01020304), "b": uint64(0xBEEF)})
	if err != nil {
		t.Fatal(err)
	}
	wantLE := []byte{0x04, 0x03, 0x02, 0x01, 0xEF, 0xBE, 0, 0}
	if !reflect.DeepEqual(dataLE, wantLE) {
		t.Errorf("LE NDR bytes = %x, want %x", dataLE, wantLE)
	}
}

func TestCrossArchDecode(t *testing.T) {
	// Encode on big-endian 32-bit, decode using the sender's format on any
	// receiver — metadata carries everything needed.
	f := registerB(t, machine.Sparc)
	data, err := f.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}
	meta := MarshalMeta(f)
	remote, err := UnmarshalMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	out, err := remote.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["fltNum"] != int64(1842) || out["cntrID"] != "ZTL" {
		t.Errorf("cross-arch decode: %v", out)
	}
}

func TestEncodeZeroAndMissingFields(t *testing.T) {
	f := registerB(t, machine.X86_64)
	data, err := f.Encode(Record{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "" {
		t.Errorf("missing string = %q", out["cntrID"])
	}
	if out["fltNum"] != int64(0) {
		t.Errorf("missing int = %v", out["fltNum"])
	}
	if !reflect.DeepEqual(out["eta"], []uint64{}) {
		t.Errorf("missing dynamic array = %#v", out["eta"])
	}
	if !reflect.DeepEqual(out["off"], []uint64{0, 0, 0, 0, 0}) {
		t.Errorf("missing static array = %v", out["off"])
	}
}

func TestEncodeNested(t *testing.T) {
	ctx := newCtx(t, machine.Sparc64)
	_, err := ctx.RegisterSpec("Point", []FieldSpec{
		{Name: "x", Kind: Float, CType: machine.CDouble},
		{Name: "y", Kind: Float, CType: machine.CDouble},
		{Name: "label", Kind: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Track", []FieldSpec{
		{Name: "id", Kind: Int, CType: machine.CInt},
		{Name: "start", Kind: Nested, NestedName: "Point"},
		{Name: "waypoints", Kind: Nested, NestedName: "Point", Dynamic: true, CountField: "n"},
		{Name: "n", Kind: Int, CType: machine.CInt},
		{Name: "pair", Kind: Nested, NestedName: "Point", Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := Record{
		"id":    7,
		"start": Record{"x": 1.5, "y": -2.5, "label": "origin"},
		"waypoints": []interface{}{
			Record{"x": 3.0, "y": 4.0, "label": "wp1"},
			map[string]interface{}{"x": 5.0, "y": 6.0, "label": "wp2"},
		},
		"pair": []interface{}{
			Record{"x": 7.0, "y": 8.0, "label": "a"},
			Record{"x": 9.0, "y": 10.0, "label": "b"},
		},
	}
	data, err := f.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	start, ok := out["start"].(Record)
	if !ok || start["x"] != 1.5 || start["label"] != "origin" {
		t.Errorf("start = %v", out["start"])
	}
	wps, ok := out["waypoints"].([]Record)
	if !ok || len(wps) != 2 || wps[1]["label"] != "wp2" || wps[0]["y"] != 4.0 {
		t.Errorf("waypoints = %v", out["waypoints"])
	}
	pair, ok := out["pair"].([]Record)
	if !ok || len(pair) != 2 || pair[1]["x"] != 9.0 {
		t.Errorf("pair = %v", out["pair"])
	}
	if out["n"] != int64(2) {
		t.Errorf("n = %v", out["n"])
	}
}

func TestEncodeBoolCharFloat32(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	f, err := ctx.RegisterSpec("Mixed", []FieldSpec{
		{Name: "flag", Kind: Bool, CType: machine.CChar},
		{Name: "letter", Kind: Char, CType: machine.CChar},
		{Name: "ratio", Kind: Float, CType: machine.CFloat},
		{Name: "flags", Kind: Bool, CType: machine.CChar, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{
		"flag": true, "letter": int64('Z'), "ratio": float32(0.5),
		"flags": []bool{true, false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["flag"] != true || out["letter"] != int64('Z') || out["ratio"] != 0.5 {
		t.Errorf("out = %v", out)
	}
	if !reflect.DeepEqual(out["flags"], []bool{true, false, true}) {
		t.Errorf("flags = %v", out["flags"])
	}
}

func TestEncodeStaticStringArray(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	f, err := ctx.RegisterSpec("Names", []FieldSpec{
		{Name: "names", Kind: String, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"names": []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out["names"], []string{"alpha", "beta", ""}) {
		t.Errorf("names = %v", out["names"])
	}
}

func TestEncodeErrors(t *testing.T) {
	f := registerB(t, machine.X86)
	cases := []struct {
		name string
		rec  Record
		want error
	}{
		{"string with NUL", Record{"cntrID": "a\x00b"}, ErrStringHasNUL},
		{"wrong type for string", Record{"cntrID": 42}, ErrBadValue},
		{"wrong type for int", Record{"fltNum": "x"}, ErrBadValue},
		{"wrong type for array", Record{"off": 42}, ErrBadValue},
		{"static overflow", Record{"off": []uint64{1, 2, 3, 4, 5, 6}}, ErrBadCount},
		{"count mismatch", Record{"eta": []uint64{1}, "eta_count": 5}, ErrBadCount},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := f.Encode(tt.rec)
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSharedCountFieldConsistency(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	f, err := ctx.RegisterSpec("T", []FieldSpec{
		{Name: "a", Kind: Int, CType: machine.CInt, Dynamic: true, CountField: "n"},
		{Name: "b", Kind: Int, CType: machine.CInt, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(Record{"a": []int64{1, 2}, "b": []int64{1, 2, 3}}); !errors.Is(err, ErrBadCount) {
		t.Errorf("mismatched shared count err = %v", err)
	}
	data, err := f.Encode(Record{"a": []int64{1, 2}, "b": []int64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out["b"], []int64{3, 4}) {
		t.Errorf("b = %v", out["b"])
	}
}

func TestDecodeErrors(t *testing.T) {
	f := registerB(t, machine.X86)
	good, err := f.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated fixed", func(t *testing.T) {
		if _, err := f.Decode(good[:f.Size-1]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("string ref out of bounds", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		// cntrID pointer slot at offset 0 (4 bytes LE on x86).
		machine.PutUint(bad[0:], machine.LittleEndian, 4, uint64(len(bad)+100))
		if _, err := f.Decode(bad); !errors.Is(err, ErrBadReference) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unterminated string", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		// Point cntrID into the string area, then chop the trailing NUL off.
		for i := len(bad) - 1; i >= 0; i-- {
			if bad[i] == 0 {
				bad = bad[:i]
				break
			}
		}
		machine.PutUint(bad[0:], machine.LittleEndian, 4, uint64(len(bad)-2))
		if _, err := f.Decode(bad); !errors.Is(err, ErrBadReference) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("negative dynamic count", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		cf, _ := f.FieldByName("eta_count")
		machine.PutUint(bad[cf.Offset:], machine.LittleEndian, 4, machine.TruncInt(-5, 4))
		if _, err := f.Decode(bad); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("huge dynamic count", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		cf, _ := f.FieldByName("eta_count")
		machine.PutUint(bad[cf.Offset:], machine.LittleEndian, 4, 1<<28)
		if _, err := f.Decode(bad); !errors.Is(err, ErrBadReference) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("count without pointer", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		eta, _ := f.FieldByName("eta")
		machine.PutUint(bad[eta.Offset:], machine.LittleEndian, 4, 0)
		if _, err := f.Decode(bad); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("err = %v", err)
		}
	})
}

// Property: encode/decode round-trips arbitrary records on arbitrary arches.
func TestCodecRoundTripProperty(t *testing.T) {
	arches := []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc,
		machine.Sparc64, machine.Legacy16}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		arch := arches[rng.Intn(len(arches))]
		ctx, err := NewContext(arch)
		if err != nil {
			return false
		}
		f, err := ctx.RegisterSpec("P", []FieldSpec{
			{Name: "i8", Kind: Int, CType: machine.CChar},
			{Name: "i16", Kind: Int, CType: machine.CShort},
			{Name: "i64", Kind: Int, CType: machine.CLongLong},
			{Name: "u32", Kind: Uint, CType: machine.CUInt},
			{Name: "d", Kind: Float, CType: machine.CDouble},
			{Name: "s", Kind: String},
			{Name: "arr", Kind: Int, CType: machine.CShort, Dynamic: true, CountField: "n"},
			{Name: "n", Kind: Int, CType: machine.CInt},
		})
		if err != nil {
			return false
		}
		nArr := rng.Intn(10)
		arr := make([]int64, nArr)
		for i := range arr {
			arr[i] = int64(int16(rng.Uint64()))
		}
		// Values must fit the on-arch C types (unsigned int is 2 bytes on
		// the legacy16 profile; wider values truncate exactly as C does).
		uintMask := uint64(1)<<(uint(arch.SizeOf(machine.CUInt))*8) - 1
		in := Record{
			"i8":  int64(int8(rng.Uint64())),
			"i16": int64(int16(rng.Uint64())),
			"i64": int64(rng.Uint64()),
			"u32": rng.Uint64() & uintMask,
			"d":   rng.NormFloat64(),
			"s":   randString(rng),
			"arr": arr,
		}
		data, err := f.Encode(in)
		if err != nil {
			return false
		}
		out, err := f.Decode(data)
		if err != nil {
			return false
		}
		return out["i8"] == in["i8"] && out["i16"] == in["i16"] &&
			out["i64"] == in["i64"] && out["u32"] == in["u32"] &&
			out["d"] == in["d"] && out["s"] == in["s"] &&
			reflect.DeepEqual(out["arr"], arr) && out["n"] == int64(nArr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(255) + 1) // no NUL
	}
	return string(b)
}

func TestAppendEncodeReuse(t *testing.T) {
	f := registerB(t, machine.X86_64)
	buf := make([]byte, 0, 1024)
	rec := sampleASDOff()
	one, err := f.AppendEncode(buf, rec)
	if err != nil {
		t.Fatal(err)
	}
	n := len(one)
	// Appending a second record after the first must not disturb the first.
	two, err := f.AppendEncode(one, rec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.Decode(two[:n])
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Decode(two[n:])
	if err != nil {
		t.Fatal(err)
	}
	if first["cntrID"] != "ZTL" || second["cntrID"] != "ZTL" {
		t.Error("AppendEncode corrupted records")
	}
}
