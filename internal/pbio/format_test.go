package pbio

import (
	"errors"
	"testing"

	"openmeta/internal/machine"
)

// asdOffIOFields returns the paper's Figure 5 metadata (Structure A) with
// sizes and offsets for the given 32-bit-pointer architecture (the paper's
// evaluation machine was a 32-bit SPARC: pointers and longs are 4 bytes).
func asdOffIOFields() []IOField {
	return []IOField{
		{Name: "cntrID", Type: "string", Size: 4, Offset: 0},
		{Name: "arln", Type: "string", Size: 4, Offset: 4},
		{Name: "fltNum", Type: "integer", Size: 4, Offset: 8},
		{Name: "equip", Type: "string", Size: 4, Offset: 12},
		{Name: "org", Type: "string", Size: 4, Offset: 16},
		{Name: "dest", Type: "string", Size: 4, Offset: 20},
		{Name: "off", Type: "unsigned integer", Size: 4, Offset: 24},
		{Name: "eta", Type: "unsigned integer", Size: 4, Offset: 28},
	}
}

// asdOffBIOFields is Figure 8: Structure B with static and dynamic arrays.
func asdOffBIOFields() []IOField {
	return []IOField{
		{Name: "cntrID", Type: "string", Size: 4, Offset: 0},
		{Name: "arln", Type: "string", Size: 4, Offset: 4},
		{Name: "fltNum", Type: "integer", Size: 4, Offset: 8},
		{Name: "equip", Type: "string", Size: 4, Offset: 12},
		{Name: "org", Type: "string", Size: 4, Offset: 16},
		{Name: "dest", Type: "string", Size: 4, Offset: 20},
		{Name: "off", Type: "unsigned integer[5]", Size: 4, Offset: 24},
		{Name: "eta", Type: "unsigned integer[eta_count]", Size: 4, Offset: 44},
		{Name: "eta_count", Type: "integer", Size: 4, Offset: 48},
	}
}

func newCtx(t *testing.T, arch *machine.Arch) *Context {
	t.Helper()
	ctx, err := NewContext(arch)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestRegisterStructureA(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	f, err := ctx.Register("ASDOffEvent", asdOffIOFields())
	if err != nil {
		t.Fatal(err)
	}
	// Structure Size from Table 1, row 1: 32 bytes.
	if f.Size != 32 {
		t.Errorf("size = %d, want 32 (Table 1)", f.Size)
	}
	if len(f.Fields) != 8 {
		t.Errorf("fields = %d", len(f.Fields))
	}
	fl, ok := f.FieldByName("fltNum")
	if !ok || fl.Kind != Int || fl.Offset != 8 {
		t.Errorf("fltNum = %+v", fl)
	}
	if got, ok := ctx.Lookup("ASDOffEvent"); !ok || got != f {
		t.Error("Lookup failed")
	}
	if got, ok := ctx.LookupID(f.ID); !ok || got != f {
		t.Error("LookupID failed")
	}
}

func TestRegisterStructureB(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	f, err := ctx.Register("ASDOffEvent", asdOffBIOFields())
	if err != nil {
		t.Fatal(err)
	}
	// Structure Size from Table 1, row 2: 52 bytes.
	if f.Size != 52 {
		t.Errorf("size = %d, want 52 (Table 1)", f.Size)
	}
	off, _ := f.FieldByName("off")
	if off.Count != 5 || off.Dynamic || off.Slot != 20 {
		t.Errorf("off = %+v", off)
	}
	eta, _ := f.FieldByName("eta")
	if !eta.Dynamic || eta.CountField != "eta_count" || eta.Slot != 4 || eta.ElemSize != 4 {
		t.Errorf("eta = %+v", eta)
	}
	if eta.TypeString() != "unsigned integer[eta_count]" {
		t.Errorf("eta type string = %q", eta.TypeString())
	}
	if off.TypeString() != "unsigned integer[5]" {
		t.Errorf("off type string = %q", off.TypeString())
	}
}

func TestRegisterStructuresCD(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	if _, err := ctx.Register("ASDOffEvent", asdOffBIOFields()); err != nil {
		t.Fatal(err)
	}
	// Figure 11: threeASDOffs nests ASDOffEvent. On SPARC (doubles align 8)
	// the last member ends at byte 180 — the "180 bytes" of Table 1, row 3.
	// A conforming C compiler pads sizeof to a multiple of the struct's
	// 8-byte alignment, so the true sizeof is 184; the paper evidently
	// reported the unpadded extent. EXPERIMENTS.md records the discrepancy.
	three, err := ctx.Register("threeASDOffs", []IOField{
		{Name: "one", Type: "ASDOffEvent", Size: 52, Offset: 0},
		{Name: "bart", Type: "double", Size: 8, Offset: 56},
		{Name: "two", Type: "ASDOffEvent", Size: 52, Offset: 64},
		{Name: "lisa", Type: "double", Size: 8, Offset: 120},
		{Name: "three", Type: "ASDOffEvent", Size: 52, Offset: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if three.Size != 184 {
		t.Errorf("size = %d, want 184 (Table 1 reports 180, the unpadded extent)", three.Size)
	}
	one, _ := three.FieldByName("one")
	if one.Kind != Nested || one.Nested.Name != "ASDOffEvent" {
		t.Errorf("one = %+v", one)
	}
	if one.TypeString() != "ASDOffEvent" {
		t.Errorf("one type string = %q", one.TypeString())
	}
}

func TestRegisterSpecMatchesExplicit(t *testing.T) {
	// The spec path (computing layout) must produce the same format as the
	// explicit IOField path with compiler-provided offsets.
	ctx1 := newCtx(t, machine.Sparc)
	f1, err := ctx1.Register("ASDOffEvent", asdOffBIOFields())
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := newCtx(t, machine.Sparc)
	f2, err := ctx2.RegisterSpec("ASDOffEvent", []FieldSpec{
		{Name: "cntrID", Kind: String},
		{Name: "arln", Kind: String},
		{Name: "fltNum", Kind: Int, CType: machine.CInt},
		{Name: "equip", Kind: String},
		{Name: "org", Kind: String},
		{Name: "dest", Kind: String},
		{Name: "off", Kind: Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f1.ID != f2.ID {
		t.Errorf("explicit and spec registration disagree:\n%+v\n%+v", f1.IOFields(), f2.IOFields())
	}
	if f2.Size != 52 {
		t.Errorf("spec size = %d, want 52", f2.Size)
	}
}

func TestRegisterErrors(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	cases := []struct {
		name   string
		fields []IOField
		want   error
	}{
		{"empty fields", nil, nil},
		{"bad type", []IOField{{Name: "a", Type: "integer[", Size: 4}}, ErrBadFieldType},
		{"zero count", []IOField{{Name: "a", Type: "integer[0]", Size: 4}}, ErrBadFieldType},
		{"empty type", []IOField{{Name: "a", Type: "", Size: 4}}, ErrBadFieldType},
		{"unknown nested", []IOField{{Name: "a", Type: "NoSuch", Size: 4}}, ErrUnknownFormat},
		{"bad int size", []IOField{{Name: "a", Type: "integer", Size: 3}}, ErrBadFieldSize},
		{"bad float size", []IOField{{Name: "a", Type: "float", Size: 2}}, ErrBadFieldSize},
		{"bad string size", []IOField{{Name: "a", Type: "string", Size: 8}}, ErrBadFieldSize},
		{"dup field", []IOField{
			{Name: "a", Type: "integer", Size: 4, Offset: 0},
			{Name: "a", Type: "integer", Size: 4, Offset: 4},
		}, ErrDuplicateField},
		{"overlap", []IOField{
			{Name: "a", Type: "integer", Size: 4, Offset: 0},
			{Name: "b", Type: "integer", Size: 4, Offset: 2},
		}, ErrFieldOverlap},
		{"misaligned", []IOField{{Name: "a", Type: "integer", Size: 4, Offset: 2}}, ErrFieldOverlap},
		{"negative offset", []IOField{{Name: "a", Type: "integer", Size: 4, Offset: -4}}, nil},
		{"missing count", []IOField{
			{Name: "a", Type: "integer[n]", Size: 4, Offset: 0},
		}, ErrBadCountField},
		{"count is array", []IOField{
			{Name: "n", Type: "integer[2]", Size: 4, Offset: 0},
			{Name: "a", Type: "integer[n]", Size: 4, Offset: 8},
		}, ErrBadCountField},
		{"count is float", []IOField{
			{Name: "n", Type: "float", Size: 4, Offset: 0},
			{Name: "a", Type: "integer[n]", Size: 4, Offset: 4},
		}, ErrBadCountField},
		{"dynamic strings", []IOField{
			{Name: "n", Type: "integer", Size: 4, Offset: 0},
			{Name: "a", Type: "string[n]", Size: 4, Offset: 4},
		}, nil},
		{"empty field name", []IOField{{Name: "", Type: "integer", Size: 4}}, nil},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ctx.Register("T", tt.fields)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
	if _, err := ctx.Register("", asdOffIOFields()); err == nil {
		t.Error("empty format name: want error")
	}
}

func TestRegisterConflict(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	if _, err := ctx.Register("T", []IOField{{Name: "a", Type: "integer", Size: 4}}); err != nil {
		t.Fatal(err)
	}
	// Same name, same definition: idempotent.
	f2, err := ctx.Register("T", []IOField{{Name: "a", Type: "integer", Size: 4}})
	if err != nil {
		t.Fatalf("re-register identical: %v", err)
	}
	if got, _ := ctx.Lookup("T"); got != f2 {
		t.Error("re-register returned a different format")
	}
	// Same name, different definition: rejected.
	if _, err := ctx.Register("T", []IOField{{Name: "b", Type: "integer", Size: 4}}); err == nil {
		t.Error("conflicting re-register: want error")
	}
}

func TestFormatIDStableAcrossContexts(t *testing.T) {
	ctx1 := newCtx(t, machine.Sparc)
	ctx2 := newCtx(t, machine.Sparc)
	f1, _ := ctx1.Register("ASDOffEvent", asdOffIOFields())
	f2, _ := ctx2.Register("ASDOffEvent", asdOffIOFields())
	if f1.ID != f2.ID {
		t.Error("same format on same arch should have the same ID")
	}
	ctx3 := newCtx(t, machine.X86)
	f3, err := ctx3.Register("ASDOffEvent", asdOffIOFields())
	if err != nil {
		t.Fatal(err)
	}
	if f3.ID == f1.ID {
		t.Error("same layout on different arch must have a different ID (byte order differs)")
	}
}

func TestFormatsOrder(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	_, _ = ctx.Register("A", []IOField{{Name: "x", Type: "integer", Size: 4}})
	_, _ = ctx.Register("B", []IOField{{Name: "y", Type: "integer", Size: 4}})
	fs := ctx.Formats()
	if len(fs) != 2 || fs[0].Name != "A" || fs[1].Name != "B" {
		t.Errorf("Formats() = %v", fs)
	}
}

func TestNewContextRejectsBadArch(t *testing.T) {
	if _, err := NewContext(&machine.Arch{}); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestIOFieldsRoundTrip(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	f, _ := ctx.Register("ASDOffEvent", asdOffBIOFields())
	got := f.IOFields()
	want := asdOffBIOFields()
	// The unsigned spelling canonicalizes; compare structurally.
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Size != want[i].Size || got[i].Offset != want[i].Offset {
			t.Errorf("IOFields[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	ctx2 := newCtx(t, machine.Sparc)
	f2, err := ctx2.Register("ASDOffEvent", got)
	if err != nil {
		t.Fatal(err)
	}
	if f2.ID != f.ID {
		t.Error("IOFields dump does not re-register to the same format")
	}
}

func TestKindString(t *testing.T) {
	if Uint.String() != "unsigned integer" || Nested.String() != "nested" {
		t.Error("Kind.String wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("invalid Kind.String wrong")
	}
}

func TestRegisterSpecErrors(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	cases := []struct {
		name  string
		specs []FieldSpec
	}{
		{"missing ctype", []FieldSpec{{Name: "a", Kind: Int}}},
		{"unknown nested", []FieldSpec{{Name: "a", Kind: Nested, NestedName: "Nope"}}},
		{"dynamic strings", []FieldSpec{
			{Name: "n", Kind: Int, CType: machine.CInt},
			{Name: "a", Kind: String, Dynamic: true, CountField: "n"},
		}},
		{"bad kind", []FieldSpec{{Name: "a", Kind: Kind(77)}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ctx.RegisterSpec("T", tt.specs); err == nil {
				t.Error("want error")
			}
		})
	}
}
