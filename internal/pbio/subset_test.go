package pbio

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"openmeta/internal/machine"
)

func TestDeriveSubsetLayout(t *testing.T) {
	f := registerB(t, machine.Sparc)
	sub, err := DeriveSubset(f, []string{"cntrID", "fltNum"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Fields) != 2 {
		t.Fatalf("fields = %d", len(sub.Fields))
	}
	if sub.Fields[0].Name != "cntrID" || sub.Fields[0].Offset != 0 {
		t.Errorf("cntrID = %+v", sub.Fields[0])
	}
	if sub.Fields[1].Name != "fltNum" || sub.Fields[1].Offset != 4 {
		t.Errorf("fltNum = %+v", sub.Fields[1])
	}
	if sub.Size != 8 {
		t.Errorf("size = %d", sub.Size)
	}
	if !strings.HasPrefix(sub.Name, "ASDOffEvent#") {
		t.Errorf("name = %q", sub.Name)
	}
	if sub.ID == f.ID {
		t.Error("subset shares the full format's ID")
	}
}

func TestDeriveSubsetPullsCountField(t *testing.T) {
	f := registerB(t, machine.X86_64)
	sub, err := DeriveSubset(f, []string{"eta"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.FieldByName("eta_count"); !ok {
		t.Fatal("count field not pulled into subset")
	}
	// The subset must encode and decode on its own.
	data, err := sub.Encode(Record{"eta": []uint64{5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sub.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out["eta"], []uint64{5, 6, 7}) {
		t.Errorf("eta = %v", out["eta"])
	}
}

func TestDeriveSubsetMetaRoundTrips(t *testing.T) {
	f := registerB(t, machine.Sparc)
	sub, err := DeriveSubset(f, []string{"dest", "off"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalMeta(MarshalMeta(sub))
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != sub.ID {
		t.Error("subset metadata does not round-trip")
	}
}

func TestDeriveSubsetErrors(t *testing.T) {
	f := registerB(t, machine.X86)
	if _, err := DeriveSubset(f, []string{"nope"}); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DeriveSubset(f, nil); !errors.Is(err, ErrEmptySubset) {
		t.Errorf("empty subset err = %v", err)
	}
}

func TestDeriveSubsetPreservesOriginalOrder(t *testing.T) {
	f := registerB(t, machine.X86)
	sub, err := DeriveSubset(f, []string{"dest", "cntrID"}) // reversed request
	if err != nil {
		t.Fatal(err)
	}
	if sub.Fields[0].Name != "cntrID" || sub.Fields[1].Name != "dest" {
		t.Errorf("order = %v, %v (must follow the source format)",
			sub.Fields[0].Name, sub.Fields[1].Name)
	}
}
