package pbio

import (
	"errors"
	"fmt"
	"reflect"

	"openmeta/internal/machine"
)

// Record is a generic, dynamically typed record value: field name to value.
// It is the representation used when a format has been discovered at run
// time and no compiled-in Go type exists for it — the situation xml2wire is
// built for. Values may be any Go integer, float, bool or string type;
// arrays may be typed slices or []interface{}; nested records are Records.
type Record map[string]interface{}

// Encoding errors.
var (
	ErrMissingField  = errors.New("pbio: record missing field")
	ErrBadValue      = errors.New("pbio: value has wrong type for field")
	ErrBadCount      = errors.New("pbio: array length does not match count field")
	ErrRecordTooBig  = errors.New("pbio: encoded record exceeds size limit")
	ErrStringHasNUL  = errors.New("pbio: string contains NUL byte")
	ErrTruncated     = errors.New("pbio: encoded record truncated")
	ErrBadReference  = errors.New("pbio: variable-region reference out of bounds")
	ErrCountMismatch = errors.New("pbio: count field does not match data")
)

// MaxRecordSize bounds decoded variable-length data as a defence against
// corrupt or hostile metadata/records.
const MaxRecordSize = 1 << 30

// Encode marshals a generic record into NDR wire form: the fixed region in
// the format's native layout followed by the variable region (string bytes
// and dynamic array elements), with pointer slots holding offsets from the
// start of the record. Missing fields encode as zero values; count fields
// for dynamic arrays are filled in automatically when absent.
func (f *Format) Encode(rec Record) ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, f.Size*2), rec)
}

// AppendEncode appends the encoded record to dst and returns the extended
// slice, allowing buffer reuse on hot paths.
func (f *Format) AppendEncode(dst []byte, rec Record) ([]byte, error) {
	base := len(dst)
	dst = append(dst, make([]byte, f.Size)...)
	out, err := f.encodeFixed(dst, base, base, rec)
	if err == nil {
		n := int64(len(out) - base)
		f.obs.encodeCalls.Add(1)
		f.obs.encodeBytes.Add(n)
		f.facct.encRecords.Add(1)
		f.facct.encBytes.Add(n)
		f.maybeProbeExpansion(rec, int(n))
	}
	return out, err
}

// encodeFixed fills in the fixed region of one (possibly nested) record
// whose region starts at fixedBase, appending variable data at the end of
// dst. recBase is the start of the outermost record; all references are
// relative to it.
func (f *Format) encodeFixed(dst []byte, recBase, fixedBase int, rec Record) ([]byte, error) {
	counts, err := f.dynamicCounts(rec)
	if err != nil {
		return nil, err
	}
	order := f.Arch.Order
	for i := range f.Fields {
		fl := &f.Fields[i]
		off := fixedBase + fl.Offset
		val, ok := rec[fl.Name]
		if !ok || val == nil {
			if n, isCount := counts[fl.Name]; isCount {
				// Auto-filled count field.
				machine.PutUint(dst[off:], order, fl.ElemSize, machine.TruncInt(int64(n), fl.ElemSize))
			}
			continue // zero value already in place
		}
		if n, isCount := counts[fl.Name]; isCount {
			// Explicit count value must agree with the array length.
			given, err := coerceInt(val)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", fl.Name, err)
			}
			if given != int64(n) {
				return nil, fmt.Errorf("%w: field %q is %d, array has %d elements",
					ErrBadCount, fl.Name, given, n)
			}
		}
		switch {
		case fl.Dynamic:
			dst, err = f.encodeDynamic(dst, recBase, off, fl, val)
		case fl.Count > 1:
			dst, err = f.encodeStaticArray(dst, recBase, off, fl, val)
		default:
			dst, err = f.encodeScalar(dst, recBase, off, fl, val)
		}
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", fl.Name, err)
		}
	}
	return dst, nil
}

// dynamicCounts computes the length of every dynamic array in rec, keyed by
// the *count field* name.
func (f *Format) dynamicCounts(rec Record) (map[string]int, error) {
	var counts map[string]int
	for i := range f.Fields {
		fl := &f.Fields[i]
		if !fl.Dynamic {
			continue
		}
		n := 0
		if val, ok := rec[fl.Name]; ok && val != nil {
			sl, err := asSlice(val)
			if err != nil {
				return nil, fmt.Errorf("field %q: %w", fl.Name, err)
			}
			n = sl.Len()
		}
		if counts == nil {
			counts = make(map[string]int)
		}
		if prev, ok := counts[fl.CountField]; ok && prev != n {
			return nil, fmt.Errorf("%w: count field %q shared by arrays of length %d and %d",
				ErrBadCount, fl.CountField, prev, n)
		}
		counts[fl.CountField] = n
	}
	return counts, nil
}

func (f *Format) encodeScalar(dst []byte, recBase, off int, fl *Field, val interface{}) ([]byte, error) {
	order := f.Arch.Order
	switch fl.Kind {
	case Int, Char:
		v, err := coerceInt(val)
		if err != nil {
			return nil, err
		}
		machine.PutUint(dst[off:], order, fl.ElemSize, machine.TruncInt(v, fl.ElemSize))
	case Uint:
		v, err := coerceUint(val)
		if err != nil {
			return nil, err
		}
		machine.PutUint(dst[off:], order, fl.ElemSize, v)
	case Float:
		v, err := coerceFloat(val)
		if err != nil {
			return nil, err
		}
		machine.PutFloat(dst[off:], order, fl.ElemSize, v)
	case Bool:
		v, ok := val.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: got %T, want bool", ErrBadValue, val)
		}
		if v {
			dst[off] = 1
		}
	case String:
		s, ok := val.(string)
		if !ok {
			return nil, fmt.Errorf("%w: got %T, want string", ErrBadValue, val)
		}
		return f.encodeStringRef(dst, recBase, off, s)
	case Nested:
		sub, err := asRecord(val)
		if err != nil {
			return nil, err
		}
		return fl.Nested.encodeFixed(dst, recBase, off, sub)
	default:
		return nil, fmt.Errorf("%w: unknown kind %v", ErrBadValue, fl.Kind)
	}
	return dst, nil
}

// encodeStringRef appends s (NUL-terminated) to the variable region and
// stores its offset in the pointer slot at off. The empty string encodes as
// a NULL pointer — decode collapses NULL and "" anyway, and the convention
// makes decode-then-encode idempotent (MatchBinary relies on that).
func (f *Format) encodeStringRef(dst []byte, recBase, off int, s string) ([]byte, error) {
	if s == "" {
		return dst, nil
	}
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return nil, ErrStringHasNUL
		}
	}
	ref := len(dst) - recBase
	dst = append(dst, s...)
	dst = append(dst, 0)
	machine.PutUint(dst[off:], f.Arch.Order, f.Arch.PointerSize, uint64(ref))
	return dst, nil
}

func (f *Format) encodeStaticArray(dst []byte, recBase, off int, fl *Field, val interface{}) ([]byte, error) {
	sl, err := asSlice(val)
	if err != nil {
		return nil, err
	}
	if sl.Len() > fl.Count {
		return nil, fmt.Errorf("%w: %d values for static array of %d", ErrBadCount, sl.Len(), fl.Count)
	}
	for i := 0; i < sl.Len(); i++ {
		dst, err = f.encodeScalarElem(dst, recBase, off+i*fl.ElemSize, fl, sl.Index(i).Interface())
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// encodeScalarElem encodes one array element at an explicit offset; it is
// encodeScalar minus the static-array/dynamic dispatch.
func (f *Format) encodeScalarElem(dst []byte, recBase, off int, fl *Field, val interface{}) ([]byte, error) {
	elem := *fl
	elem.Count = 1
	elem.Dynamic = false
	return f.encodeScalar(dst, recBase, off, &elem, val)
}

// encodeDynamic appends the array elements to the variable region, aligned
// for their element type, and stores the offset in the pointer slot.
func (f *Format) encodeDynamic(dst []byte, recBase, slotOff int, fl *Field, val interface{}) ([]byte, error) {
	sl, err := asSlice(val)
	if err != nil {
		return nil, err
	}
	n := sl.Len()
	if n == 0 {
		return dst, nil // nil pointer slot, zero count
	}
	// Align the variable data for its element type so receivers can walk it
	// the same way they would walk native memory.
	align := f.Arch.Align(fl.ElemSize)
	if fl.Kind == Nested {
		align = fl.Nested.Align
	}
	pad := alignUp(len(dst)-recBase, align) - (len(dst) - recBase)
	dst = append(dst, make([]byte, pad)...)
	ref := len(dst) - recBase
	start := len(dst)
	dst = append(dst, make([]byte, n*fl.ElemSize)...)
	if done, err := f.encodeTypedElems(dst, start, fl, val); err != nil {
		return nil, err
	} else if !done {
		for i := 0; i < n; i++ {
			dst, err = f.encodeScalarElem(dst, recBase, start+i*fl.ElemSize, fl, sl.Index(i).Interface())
			if err != nil {
				return nil, err
			}
		}
	}
	machine.PutUint(dst[slotOff:], f.Arch.Order, f.Arch.PointerSize, uint64(ref))
	return dst, nil
}

// encodeTypedElems writes the elements of common typed numeric slices
// without per-element reflection — the hot path for bulk scientific data.
// It reports whether it handled the value.
func (f *Format) encodeTypedElems(dst []byte, start int, fl *Field, val interface{}) (bool, error) {
	order := f.Arch.Order
	size := fl.ElemSize
	switch fl.Kind {
	case Int, Char:
		if v, ok := val.([]int64); ok {
			for i, x := range v {
				machine.PutUint(dst[start+i*size:], order, size, machine.TruncInt(x, size))
			}
			return true, nil
		}
	case Uint:
		if v, ok := val.([]uint64); ok {
			for i, x := range v {
				machine.PutUint(dst[start+i*size:], order, size, x)
			}
			return true, nil
		}
	case Float:
		if v, ok := val.([]float64); ok {
			for i, x := range v {
				machine.PutFloat(dst[start+i*size:], order, size, x)
			}
			return true, nil
		}
	case Bool:
		if v, ok := val.([]bool); ok {
			for i, x := range v {
				if x {
					dst[start+i] = 1
				}
			}
			return true, nil
		}
	}
	return false, nil
}

// --- value coercion -------------------------------------------------------

func coerceInt(val interface{}) (int64, error) {
	switch v := val.(type) {
	case int:
		return int64(v), nil
	case int8:
		return int64(v), nil
	case int16:
		return int64(v), nil
	case int32:
		return int64(v), nil
	case int64:
		return v, nil
	case uint:
		return int64(v), nil
	case uint8:
		return int64(v), nil
	case uint16:
		return int64(v), nil
	case uint32:
		return int64(v), nil
	case uint64:
		return int64(v), nil
	default:
		return 0, fmt.Errorf("%w: got %T, want integer", ErrBadValue, val)
	}
}

func coerceUint(val interface{}) (uint64, error) {
	switch v := val.(type) {
	case uint:
		return uint64(v), nil
	case uint8:
		return uint64(v), nil
	case uint16:
		return uint64(v), nil
	case uint32:
		return uint64(v), nil
	case uint64:
		return v, nil
	case int:
		return uint64(v), nil
	case int8:
		return uint64(v), nil
	case int16:
		return uint64(v), nil
	case int32:
		return uint64(v), nil
	case int64:
		return uint64(v), nil
	default:
		return 0, fmt.Errorf("%w: got %T, want unsigned integer", ErrBadValue, val)
	}
}

func coerceFloat(val interface{}) (float64, error) {
	switch v := val.(type) {
	case float32:
		return float64(v), nil
	case float64:
		return v, nil
	case int:
		return float64(v), nil
	case int64:
		return float64(v), nil
	default:
		return 0, fmt.Errorf("%w: got %T, want float", ErrBadValue, val)
	}
}

func asRecord(val interface{}) (Record, error) {
	switch v := val.(type) {
	case Record:
		return v, nil
	case map[string]interface{}:
		return Record(v), nil
	default:
		return nil, fmt.Errorf("%w: got %T, want Record", ErrBadValue, val)
	}
}

// asSlice views any slice or array value reflectively.
func asSlice(val interface{}) (reflect.Value, error) {
	rv := reflect.ValueOf(val)
	if rv.Kind() != reflect.Slice && rv.Kind() != reflect.Array {
		return reflect.Value{}, fmt.Errorf("%w: got %T, want slice", ErrBadValue, val)
	}
	return rv, nil
}
