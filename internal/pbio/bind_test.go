package pbio

import (
	"errors"
	"reflect"
	"testing"

	"openmeta/internal/machine"
)

// asdOff mirrors Structure B from the paper as a Go struct.
type asdOff struct {
	CntrID string `pbio:"cntrID"`
	Arln   string `pbio:"arln"`
	FltNum int32  `pbio:"fltNum"`
	Equip  string `pbio:"equip"`
	Org    string `pbio:"org"`
	Dest   string `pbio:"dest"`
	Off    [5]uint32
	Eta    []uint32
}

func sampleStruct() asdOff {
	return asdOff{
		CntrID: "ZTL", Arln: "DL", FltNum: 1842,
		Equip: "B757", Org: "ATL", Dest: "MCO",
		Off: [5]uint32{10, 20, 30, 40, 50},
		Eta: []uint32{1000, 2000, 3000},
	}
}

func TestBindRoundTrip(t *testing.T) {
	f := registerB(t, machine.Sparc)
	b, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	in := sampleStruct()
	data, err := b.Encode(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out asdOff
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in = %+v\nout = %+v", in, out)
	}
}

func TestBindEncodeMatchesGeneric(t *testing.T) {
	// A bound struct and the equivalent generic record must produce
	// byte-identical NDR.
	f := registerB(t, machine.Sparc)
	b, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	in := sampleStruct()
	fromStruct, err := b.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	fromRecord, err := f.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromStruct, fromRecord) {
		t.Errorf("struct and generic encodings differ:\n%x\n%x", fromStruct, fromRecord)
	}
}

func TestBindHeterogeneousDecode(t *testing.T) {
	// Record encoded on big-endian 32-bit SPARC, decoded into a Go struct
	// via metadata — receiver-makes-right conversion.
	f := registerB(t, machine.Sparc)
	in := sampleStruct()
	bSrc, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := bSrc.Encode(in)
	if err != nil {
		t.Fatal(err)
	}

	remote, err := UnmarshalMeta(MarshalMeta(f))
	if err != nil {
		t.Fatal(err)
	}
	bDst, err := remote.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	var out asdOff
	if err := bDst.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("heterogeneous decode:\n in = %+v\nout = %+v", in, out)
	}
}

func TestBindEvolutionNewFieldsIgnored(t *testing.T) {
	// Sender's format has fields the receiver's struct lacks: PBIO's
	// restricted evolution says the receiver must still decode what it knows.
	ctx := newCtx(t, machine.X86_64)
	f, err := ctx.RegisterSpec("Evt", []FieldSpec{
		{Name: "id", Kind: Int, CType: machine.CInt},
		{Name: "newField", Kind: Float, CType: machine.CDouble}, // added in v2
		{Name: "name", Kind: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"id": 7, "newField": 3.14, "name": "x"})
	if err != nil {
		t.Fatal(err)
	}
	type evtV1 struct {
		ID   int32
		Name string
	}
	b, err := f.Bind(evtV1{})
	if err != nil {
		t.Fatal(err)
	}
	var out evtV1
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Name != "x" {
		t.Errorf("out = %+v", out)
	}
}

func TestBindEvolutionMissingFieldsZero(t *testing.T) {
	// Receiver's struct has fields the sender's format lacks.
	ctx := newCtx(t, machine.X86_64)
	f, err := ctx.RegisterSpec("Evt", []FieldSpec{
		{Name: "id", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	type evtV2 struct {
		ID    int64
		Extra string
	}
	b, err := f.Bind(evtV2{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"id": 9})
	if err != nil {
		t.Fatal(err)
	}
	out := evtV2{Extra: "sentinel"}
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 9 || out.Extra != "sentinel" {
		t.Errorf("out = %+v", out)
	}
}

func TestBindNested(t *testing.T) {
	ctx := newCtx(t, machine.Sparc64)
	if _, err := ctx.RegisterSpec("Point", []FieldSpec{
		{Name: "x", Kind: Float, CType: machine.CDouble},
		{Name: "y", Kind: Float, CType: machine.CDouble},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Track", []FieldSpec{
		{Name: "id", Kind: Int, CType: machine.CInt},
		{Name: "start", Kind: Nested, NestedName: "Point"},
		{Name: "pts", Kind: Nested, NestedName: "Point", Dynamic: true, CountField: "n"},
		{Name: "n", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	type point struct{ X, Y float64 }
	type track struct {
		ID    int
		Start point
		Pts   []point
	}
	b, err := f.Bind(track{})
	if err != nil {
		t.Fatal(err)
	}
	in := track{ID: 3, Start: point{1, 2}, Pts: []point{{3, 4}, {5, 6}}}
	data, err := b.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out track
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("nested round trip:\n in = %+v\nout = %+v", in, out)
	}
}

func TestBindNestedPointer(t *testing.T) {
	ctx := newCtx(t, machine.X86_64)
	if _, err := ctx.RegisterSpec("Inner", []FieldSpec{
		{Name: "v", Kind: Int, CType: machine.CInt},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Outer", []FieldSpec{
		{Name: "in", Kind: Nested, NestedName: "Inner"},
	})
	if err != nil {
		t.Fatal(err)
	}
	type inner struct{ V int32 }
	type outer struct{ In *inner }
	b, err := f.Bind(outer{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode(outer{In: &inner{V: 42}})
	if err != nil {
		t.Fatal(err)
	}
	var out outer
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.In == nil || out.In.V != 42 {
		t.Errorf("out = %+v", out)
	}
	// Nil nested pointer encodes as zeros.
	data2, err := b.Encode(outer{})
	if err != nil {
		t.Fatal(err)
	}
	var out2 outer
	if err := b.Decode(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.In == nil || out2.In.V != 0 {
		t.Errorf("out2 = %+v", out2)
	}
}

func TestBindErrors(t *testing.T) {
	f := registerB(t, machine.X86)
	if _, err := f.Bind(42); !errors.Is(err, ErrNotStruct) {
		t.Errorf("Bind(int) err = %v", err)
	}
	type unrelated struct{ Zzz int }
	if _, err := f.Bind(unrelated{}); !errors.Is(err, ErrNoBoundField) {
		t.Errorf("Bind(unrelated) err = %v", err)
	}
	type wrongKind struct {
		CntrID int `pbio:"cntrID"`
	}
	if _, err := f.Bind(wrongKind{}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Bind(wrongKind) err = %v", err)
	}
	type wrongArray struct {
		Off uint32 `pbio:"off"` // off is an array
	}
	if _, err := f.Bind(wrongArray{}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Bind(wrongArray) err = %v", err)
	}

	b, err := f.Bind(asdOff{})
	if err != nil {
		t.Fatal(err)
	}
	type other struct{ CntrID string }
	if _, err := b.Encode(other{}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Encode(wrong type) err = %v", err)
	}
	var po *asdOff
	if _, err := b.Encode(po); err == nil {
		t.Error("Encode(nil pointer): want error")
	}
	if err := b.Decode(nil, asdOff{}); err == nil {
		t.Error("Decode(non-pointer): want error")
	}
	if err := b.Decode(nil, (*asdOff)(nil)); err == nil {
		t.Error("Decode(nil pointer): want error")
	}
	var out asdOff
	if err := b.Decode([]byte{1, 2}, &out); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(short) err = %v", err)
	}
}

func TestBindExplicitCountFieldIsDerived(t *testing.T) {
	// A struct that declares its own count field: the encoder must ignore
	// the struct value and write the slice length.
	ctx := newCtx(t, machine.X86)
	f, err := ctx.RegisterSpec("T", []FieldSpec{
		{Name: "vals", Kind: Int, CType: machine.CInt, Dynamic: true, CountField: "vals_count"},
		{Name: "vals_count", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	type withCount struct {
		Vals      []int32 `pbio:"vals"`
		ValsCount int32   `pbio:"vals_count"`
	}
	b, err := f.Bind(withCount{})
	if err != nil {
		t.Fatal(err)
	}
	in := withCount{Vals: []int32{1, 2, 3}, ValsCount: 999} // lying count
	data, err := b.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out withCount
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ValsCount != 3 || len(out.Vals) != 3 {
		t.Errorf("out = %+v (count must derive from slice length)", out)
	}
}

func TestBindUnboundDynamicArrayZeroCount(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	f, err := ctx.RegisterSpec("T", []FieldSpec{
		{Name: "vals", Kind: Int, CType: machine.CInt, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: Int, CType: machine.CInt},
		{Name: "keep", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	type partial struct {
		N    int32 // must NOT drive the count: the array is unbound
		Keep int32
	}
	b, err := f.Bind(partial{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode(partial{N: 42, Keep: 7})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec["n"] != int64(0) {
		t.Errorf("n = %v, want 0 (array unbound)", rec["n"])
	}
	if rec["keep"] != int64(7) {
		t.Errorf("keep = %v", rec["keep"])
	}
}

func TestBindCaseInsensitiveMatch(t *testing.T) {
	ctx := newCtx(t, machine.X86)
	f, err := ctx.RegisterSpec("T", []FieldSpec{
		{Name: "fltNum", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	type s struct{ FltNum int32 } // matches via lower-casing
	b, err := f.Bind(s{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode(s{FltNum: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec["fltNum"] != int64(5) {
		t.Errorf("fltNum = %v", rec["fltNum"])
	}
}

func TestBindOverflowChecked(t *testing.T) {
	ctx := newCtx(t, machine.X86_64)
	f, err := ctx.RegisterSpec("T", []FieldSpec{
		{Name: "big", Kind: Int, CType: machine.CLongLong},
	})
	if err != nil {
		t.Fatal(err)
	}
	type narrow struct {
		Big int8
	}
	b, err := f.Bind(narrow{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"big": int64(300)})
	if err != nil {
		t.Fatal(err)
	}
	var out narrow
	if err := b.Decode(data, &out); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("overflow decode err = %v", err)
	}
}
