package pbio

import (
	"time"

	"openmeta/internal/trace"
)

// EncodeCtx is Encode with tracing and latency accounting: the encode is
// timed into the pbio.encode_ns histogram, and when tc is sampled it is also
// recorded as a pbio.encode child span naming the format, with the TraceID
// stamped onto the histogram bucket as its exemplar. The eventbus publisher
// uses this so a sampled record's encode cost appears as the first stage of
// its end-to-end trace — and so the histogram's tail buckets name real
// traces. The plain Encode stays untimed for the codec microbenchmarks.
func (f *Format) EncodeCtx(tc trace.Ctx, rec Record) ([]byte, error) {
	start := time.Now()
	if !tc.Sampled() {
		data, err := f.Encode(rec)
		f.obs.encNS.Observe(time.Since(start).Nanoseconds())
		return data, err
	}
	sp := tc.Child("pbio.encode")
	data, err := f.Encode(rec)
	f.obs.encNS.ObserveExemplar(time.Since(start).Nanoseconds(), tc.Trace())
	sp.FinishDetail(f.Name)
	return data, err
}

// DecodeCtx is Decode with tracing and latency accounting, mirroring
// EncodeCtx on the subscriber side: decodes are timed into pbio.decode_ns,
// and a sampled decode links into the span tree started at the publisher
// while stamping its TraceID as the bucket exemplar.
func (f *Format) DecodeCtx(tc trace.Ctx, data []byte) (Record, error) {
	start := time.Now()
	if !tc.Sampled() {
		rec, err := f.Decode(data)
		f.obs.decNS.Observe(time.Since(start).Nanoseconds())
		return rec, err
	}
	sp := tc.Child("pbio.decode")
	rec, err := f.Decode(data)
	f.obs.decNS.ObserveExemplar(time.Since(start).Nanoseconds(), tc.Trace())
	sp.FinishDetail(f.Name)
	return rec, err
}
