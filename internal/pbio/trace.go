package pbio

import "openmeta/internal/trace"

// EncodeCtx is Encode with tracing: when tc is sampled the encode is
// recorded as a pbio.encode child span naming the format. The eventbus
// publisher uses this so a sampled record's encode cost appears as the first
// stage of its end-to-end trace.
func (f *Format) EncodeCtx(tc trace.Ctx, rec Record) ([]byte, error) {
	if !tc.Sampled() {
		return f.Encode(rec)
	}
	sp := tc.Child("pbio.encode")
	data, err := f.Encode(rec)
	sp.FinishDetail(f.Name)
	return data, err
}

// DecodeCtx is Decode with tracing: when tc is sampled the decode is
// recorded as a pbio.decode child span naming the format. The eventbus
// subscriber uses this so a traced record's decode cost links into the span
// tree started at its publisher.
func (f *Format) DecodeCtx(tc trace.Ctx, data []byte) (Record, error) {
	if !tc.Sampled() {
		return f.Decode(data)
	}
	sp := tc.Child("pbio.decode")
	rec, err := f.Decode(data)
	sp.FinishDetail(f.Name)
	return rec, err
}
