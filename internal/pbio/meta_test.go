package pbio

import (
	"errors"
	"reflect"
	"testing"

	"openmeta/internal/machine"
)

func TestMetaRoundTrip(t *testing.T) {
	f := registerB(t, machine.Sparc)
	meta := MarshalMeta(f)
	g, err := UnmarshalMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.Size != f.Size || g.Align != f.Align {
		t.Errorf("header changed: %+v vs %+v", g, f)
	}
	if g.ID != f.ID {
		t.Errorf("ID changed: %s vs %s", g.ID, f.ID)
	}
	if g.Arch.Order != machine.BigEndian || g.Arch.PointerSize != 4 {
		t.Errorf("arch = %+v", g.Arch)
	}
	if len(g.Fields) != len(f.Fields) {
		t.Fatalf("field count changed")
	}
	for i := range f.Fields {
		a, b := f.Fields[i], g.Fields[i]
		b.Nested = a.Nested // compared separately
		a.Nested = nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("field %d changed: %+v vs %+v", i, f.Fields[i], g.Fields[i])
		}
	}
}

func TestMetaNestedRoundTrip(t *testing.T) {
	ctx := newCtx(t, machine.Sparc)
	if _, err := ctx.Register("ASDOffEvent", asdOffBIOFields()); err != nil {
		t.Fatal(err)
	}
	three, err := ctx.Register("threeASDOffs", []IOField{
		{Name: "one", Type: "ASDOffEvent", Size: 52, Offset: 0},
		{Name: "bart", Type: "double", Size: 8, Offset: 56},
		{Name: "two", Type: "ASDOffEvent", Size: 52, Offset: 64},
		{Name: "lisa", Type: "double", Size: 8, Offset: 120},
		{Name: "three", Type: "ASDOffEvent", Size: 52, Offset: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalMeta(MarshalMeta(three))
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != three.ID {
		t.Errorf("nested meta ID changed: %s vs %s", g.ID, three.ID)
	}
	one, ok := g.FieldByName("one")
	if !ok || one.Nested == nil || one.Nested.Name != "ASDOffEvent" {
		t.Fatalf("one = %+v", one)
	}
	// The two nested references must share one reconstructed format object.
	two, _ := g.FieldByName("two")
	if one.Nested != two.Nested {
		t.Error("nested formats not deduplicated")
	}
	// And a record must decode through the reconstructed graph.
	src, err := three.Encode(Record{
		"one":  sampleASDOff(),
		"bart": 1.5,
		"two":  sampleASDOff(),
		"lisa": 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if out["bart"] != 1.5 {
		t.Errorf("bart = %v", out["bart"])
	}
	oneRec, ok := out["one"].(Record)
	if !ok || oneRec["cntrID"] != "ZTL" {
		t.Errorf("one = %v", out["one"])
	}
}

func TestMetaDeterministic(t *testing.T) {
	f := registerB(t, machine.X86_64)
	m1 := MarshalMeta(f)
	m2 := MarshalMeta(f)
	if !reflect.DeepEqual(m1, m2) {
		t.Error("MarshalMeta is not deterministic")
	}
	g, err := UnmarshalMeta(m1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(MarshalMeta(g), m1) {
		t.Error("re-marshaling reconstructed format changes bytes")
	}
}

func TestUnmarshalMetaRejectsCorruption(t *testing.T) {
	f := registerB(t, machine.Sparc)
	good := MarshalMeta(f)

	t.Run("truncation at every length", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, err := UnmarshalMeta(good[:n]); err == nil {
				t.Fatalf("truncated to %d bytes: accepted", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := UnmarshalMeta(bad); !errors.Is(err, ErrBadMeta) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0xAA)
		if _, err := UnmarshalMeta(bad); !errors.Is(err, ErrBadMeta) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero formats", func(t *testing.T) {
		bad := append([]byte(nil), good[:5]...)
		bad[4] = 0
		if _, err := UnmarshalMeta(bad); !errors.Is(err, ErrBadMeta) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("random flips stay safe", func(t *testing.T) {
		// Whatever a flipped byte does, it must not produce a format whose
		// fields escape its declared size (decode safety depends on it).
		for i := 5; i < len(good); i++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0xFF
			g, err := UnmarshalMeta(bad)
			if err != nil {
				continue
			}
			for _, fl := range g.Fields {
				if fl.Offset < 0 || fl.Offset+fl.Slot > g.Size {
					t.Fatalf("flip at %d: field %q escapes record", i, fl.Name)
				}
			}
		}
	})
}

func TestSyntheticArchUsableForDecode(t *testing.T) {
	// A format reconstructed from metadata must be able to *encode* too —
	// relays re-encode records they route.
	f := registerB(t, machine.Legacy16)
	g, err := UnmarshalMeta(MarshalMeta(f))
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.Encode(sampleASDOff())
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["arln"] != "DL" {
		t.Errorf("arln = %v", out["arln"])
	}
}
