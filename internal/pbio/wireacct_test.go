package pbio

import (
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/obsv"
)

// Per-format wire accounting: encode/decode must attribute records and bytes
// to the format's labeled children in the context's registry.
func TestPerFormatWireAccounting(t *testing.T) {
	reg := obsv.New()
	ctx, err := NewContext(machine.Native, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("point", []FieldSpec{
		{Name: "x", Kind: Int, CType: machine.CInt},
		{Name: "y", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"x": 1, "y": 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(Record{"x": 3, "y": 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Decode(data); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	cases := map[string]int64{
		`pbio.format.encoded.records{format="point"}`: 2,
		`pbio.format.encoded.bytes{format="point"}`:   2 * int64(len(data)),
		`pbio.format.decoded.records{format="point"}`: 1,
		`pbio.format.decoded.bytes{format="point"}`:   int64(len(data)),
	}
	for k, want := range cases {
		if snap[k] != want {
			t.Errorf("snap[%q] = %d, want %d", k, snap[k], want)
		}
	}
	// Aggregate counters keep counting alongside the labeled families.
	if snap["pbio.encode.calls"] != 2 || snap["pbio.decode.calls"] != 1 {
		t.Errorf("aggregate counters = enc %d dec %d", snap["pbio.encode.calls"], snap["pbio.decode.calls"])
	}
}

// Metadata bytes are attributed per format on both marshal and unmarshal
// (the family lives on the default registry; see metaBytesVec).
func TestMetaBytesPerFormat(t *testing.T) {
	ctx, err := NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("metaAcct", []FieldSpec{
		{Name: "v", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := `pbio.format.meta.bytes{format="metaAcct"}`
	before := obsv.Default().Snapshot()[key]
	meta := MarshalMeta(f)
	if _, err := UnmarshalMeta(meta); err != nil {
		t.Fatal(err)
	}
	after := obsv.Default().Snapshot()[key]
	if got, want := after-before, int64(2*len(meta)); got != want {
		t.Fatalf("meta bytes delta = %d, want %d (marshal + unmarshal of %d B)", got, want, len(meta))
	}
}

// A format never adopted into a context must stay safely instrumentation-
// free: encode/decode work and report nothing (all-nil facct).
func TestUnadoptedFormatNoAccounting(t *testing.T) {
	ctx, err := NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("orphanSrc", []FieldSpec{
		{Name: "v", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := UnmarshalMeta(MarshalMeta(f))
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode(Record{"v": 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Decode(data); err != nil { // unadopted: must not panic
		t.Fatal(err)
	}
}

// SetXMLTextSizer(nil) disables probing without disturbing encode.
func TestExpansionProbeDisabled(t *testing.T) {
	old := xmlSizer.Load()
	defer func() {
		if old != nil {
			SetXMLTextSizer(*old)
		}
	}()
	SetXMLTextSizer(nil)

	reg := obsv.New()
	ctx, err := NewContext(machine.Native, WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("noProbe", []FieldSpec{
		{Name: "v", Kind: Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(Record{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot()[`pbio.format.xml.expansion_pct{format="noProbe"}`]; !ok {
		t.Fatal("gauge child missing (should exist, zero-valued)")
	} else if v != 0 {
		t.Fatalf("gauge = %d with sizer disabled, want 0", v)
	}
}
