package pbio

import (
	"fmt"

	"openmeta/internal/machine"
)

// FieldSpec declares a field by its C element type, leaving sizes and
// offsets to be computed for the context's architecture. This is the path
// xml2wire uses after mapping XML Schema types to C types, and the natural
// registration path for Go programs that have no C compiler to ask.
type FieldSpec struct {
	// Name is the field name.
	Name string
	// Kind selects the marshaling technique.
	Kind Kind
	// CType is the C element type for scalar kinds (ignored for String,
	// which is always char*, and for Nested).
	CType machine.CType
	// NestedName names a previously registered format for Kind == Nested.
	NestedName string
	// Count > 1 declares a static array.
	Count int
	// Dynamic declares a dynamically sized array; CountField names the
	// integer field carrying its length.
	Dynamic    bool
	CountField string
}

// RegisterSpec lays the fields out for the context's architecture exactly as
// a C compiler would — computing sizeof and offsets with padding — and
// registers the resulting format.
func (c *Context) RegisterSpec(name string, specs []FieldSpec) (*Format, error) {
	ios, err := c.ResolveSpecs(name, specs)
	if err != nil {
		return nil, err
	}
	return c.Register(name, ios)
}

// ResolveSpecs computes the IOField list (sizes and offsets) for the given
// specs on the context's architecture without registering anything. It is
// exposed so callers can inspect or dump the metadata the way the paper's
// figures show it.
func (c *Context) ResolveSpecs(name string, specs []FieldSpec) ([]IOField, error) {
	members := make([]machine.Member, len(specs))
	elemSizes := make([]int, len(specs))
	for i, s := range specs {
		switch s.Kind {
		case String:
			if s.Dynamic {
				return nil, fmt.Errorf("pbio: format %q field %q: dynamic arrays of strings are not supported",
					name, s.Name)
			}
			members[i] = machine.Member{Name: s.Name, Type: machine.CPointer, Count: s.Count}
			elemSizes[i] = c.arch.PointerSize
		case Nested:
			nested, ok := c.Lookup(s.NestedName)
			if !ok {
				return nil, fmt.Errorf("pbio: format %q field %q: %w: %q",
					name, s.Name, ErrUnknownFormat, s.NestedName)
			}
			elemSizes[i] = nested.Size
			if s.Dynamic {
				members[i] = machine.Member{Name: s.Name, Type: machine.CPointer}
			} else {
				// machine.LayOut only needs the nested record's size, align
				// and arch; synthesize a layout shell from the format.
				shell := &machine.Layout{Arch: c.arch, Size: nested.Size, Align: nested.Align}
				members[i] = machine.Member{Name: s.Name, Record: shell, Count: s.Count}
			}
		case Int, Uint, Float, Char, Bool:
			if s.CType == 0 {
				return nil, fmt.Errorf("pbio: format %q field %q: missing C type", name, s.Name)
			}
			elemSizes[i] = c.arch.SizeOf(s.CType)
			if s.Dynamic {
				members[i] = machine.Member{Name: s.Name, Type: machine.CPointer}
			} else {
				members[i] = machine.Member{Name: s.Name, Type: s.CType, Count: s.Count}
			}
		default:
			return nil, fmt.Errorf("pbio: format %q field %q: invalid kind %v", name, s.Name, s.Kind)
		}
	}
	layout, err := machine.LayOut(c.arch, members)
	if err != nil {
		return nil, fmt.Errorf("pbio: format %q: %w", name, err)
	}
	ios := make([]IOField, len(specs))
	for i, s := range specs {
		typ := specTypeString(s)
		ios[i] = IOField{
			Name:   s.Name,
			Type:   typ,
			Size:   elemSizes[i],
			Offset: layout.Fields[i].Offset,
		}
	}
	return ios, nil
}

func specTypeString(s FieldSpec) string {
	base := s.Kind.String()
	if s.Kind == Nested {
		base = s.NestedName
	}
	switch {
	case s.Dynamic:
		return fmt.Sprintf("%s[%s]", base, s.CountField)
	case s.Count > 1:
		return fmt.Sprintf("%s[%d]", base, s.Count)
	default:
		return base
	}
}
