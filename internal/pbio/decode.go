package pbio

import (
	"fmt"

	"openmeta/internal/machine"
)

// Decode unmarshals an NDR record encoded with format f (possibly on a
// different architecture — f carries the origin's byte order and sizes) into
// a generic Record. Scalar integers decode to int64, unsigned to uint64,
// floats to float64, chars to int64, booleans to bool and strings to string;
// arrays decode to typed slices of those; nested records decode to Record.
func (f *Format) Decode(data []byte) (Record, error) {
	if len(data) < f.Size {
		return nil, fmt.Errorf("%w: %d bytes, fixed region needs %d", ErrTruncated, len(data), f.Size)
	}
	if len(data) > MaxRecordSize {
		return nil, ErrRecordTooBig
	}
	rec, err := f.decodeFixed(data, 0)
	if err == nil {
		f.obs.decodeCalls.Add(1)
		f.obs.decodeBytes.Add(int64(len(data)))
		f.facct.decRecords.Add(1)
		f.facct.decBytes.Add(int64(len(data)))
	}
	return rec, err
}

// decodeFixed decodes one (possibly nested) record whose fixed region starts
// at fixedBase. Variable-region references are relative to the start of
// data (the outermost record).
func (f *Format) decodeFixed(data []byte, fixedBase int) (Record, error) {
	if fixedBase < 0 || fixedBase+f.Size > len(data) {
		return nil, fmt.Errorf("%w: nested record at %d exceeds %d bytes",
			ErrTruncated, fixedBase, len(data))
	}
	rec := make(Record, len(f.Fields))
	for i := range f.Fields {
		fl := &f.Fields[i]
		off := fixedBase + fl.Offset
		var (
			val interface{}
			err error
		)
		switch {
		case fl.Dynamic:
			val, err = f.decodeDynamic(data, fixedBase, fl, off)
		case fl.Count > 1:
			val, err = f.decodeArray(data, fl, off, fl.Count)
		default:
			val, err = f.decodeScalar(data, fl, off)
		}
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", fl.Name, err)
		}
		rec[fl.Name] = val
	}
	return rec, nil
}

func (f *Format) decodeScalar(data []byte, fl *Field, off int) (interface{}, error) {
	order := f.Arch.Order
	switch fl.Kind {
	case Int, Char:
		raw := machine.Uint(data[off:], order, fl.ElemSize)
		return machine.SignExtend(raw, fl.ElemSize), nil
	case Uint:
		return machine.Uint(data[off:], order, fl.ElemSize), nil
	case Float:
		return machine.Float(data[off:], order, fl.ElemSize), nil
	case Bool:
		return data[off] != 0, nil
	case String:
		return f.decodeString(data, off)
	case Nested:
		return fl.Nested.decodeFixed(data, off)
	default:
		return nil, fmt.Errorf("%w: unknown kind %v", ErrBadValue, fl.Kind)
	}
}

// decodeString follows the pointer slot at off into the variable region and
// reads a NUL-terminated string. A zero reference is a NULL char* and
// decodes as the empty string.
func (f *Format) decodeString(data []byte, off int) (string, error) {
	ref := machine.Uint(data[off:], f.Arch.Order, f.Arch.PointerSize)
	if ref == 0 {
		return "", nil
	}
	if ref >= uint64(len(data)) {
		return "", fmt.Errorf("%w: string at %d in %d-byte record", ErrBadReference, ref, len(data))
	}
	start := int(ref)
	for i := start; i < len(data); i++ {
		if data[i] == 0 {
			return string(data[start:i]), nil
		}
	}
	return "", fmt.Errorf("%w: unterminated string at %d", ErrBadReference, ref)
}

// decodeArray decodes n consecutive elements starting at off into a typed
// slice.
func (f *Format) decodeArray(data []byte, fl *Field, off, n int) (interface{}, error) {
	if off < 0 || n < 0 || off+n*fl.ElemSize > len(data) {
		return nil, fmt.Errorf("%w: array of %d x %d bytes at %d in %d-byte record",
			ErrBadReference, n, fl.ElemSize, off, len(data))
	}
	order := f.Arch.Order
	switch fl.Kind {
	case Int, Char:
		out := make([]int64, n)
		for i := range out {
			raw := machine.Uint(data[off+i*fl.ElemSize:], order, fl.ElemSize)
			out[i] = machine.SignExtend(raw, fl.ElemSize)
		}
		return out, nil
	case Uint:
		out := make([]uint64, n)
		for i := range out {
			out[i] = machine.Uint(data[off+i*fl.ElemSize:], order, fl.ElemSize)
		}
		return out, nil
	case Float:
		out := make([]float64, n)
		for i := range out {
			out[i] = machine.Float(data[off+i*fl.ElemSize:], order, fl.ElemSize)
		}
		return out, nil
	case Bool:
		out := make([]bool, n)
		for i := range out {
			out[i] = data[off+i] != 0
		}
		return out, nil
	case String:
		out := make([]string, n)
		for i := range out {
			s, err := f.decodeString(data, off+i*fl.ElemSize)
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	case Nested:
		out := make([]Record, n)
		for i := range out {
			sub, err := fl.Nested.decodeFixed(data, off+i*fl.ElemSize)
			if err != nil {
				return nil, err
			}
			out[i] = sub
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %v", ErrBadValue, fl.Kind)
	}
}

// decodeDynamic reads the count field, follows the pointer slot and decodes
// the variable-region elements.
func (f *Format) decodeDynamic(data []byte, fixedBase int, fl *Field, slotOff int) (interface{}, error) {
	ci := f.byName[fl.CountField]
	cf := &f.Fields[ci]
	raw := machine.Uint(data[fixedBase+cf.Offset:], f.Arch.Order, cf.ElemSize)
	n := machine.SignExtend(raw, cf.ElemSize)
	if cf.Kind == Uint {
		n = int64(raw)
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative count %d", ErrCountMismatch, n)
	}
	if n == 0 {
		return f.emptyArray(fl), nil
	}
	if n*int64(fl.ElemSize) > int64(len(data)) {
		return nil, fmt.Errorf("%w: count %d x %d bytes exceeds record size %d",
			ErrBadReference, n, fl.ElemSize, len(data))
	}
	ref := machine.Uint(data[slotOff:], f.Arch.Order, f.Arch.PointerSize)
	if ref == 0 {
		return nil, fmt.Errorf("%w: count %d but nil array pointer", ErrCountMismatch, n)
	}
	if ref >= uint64(len(data)) {
		return nil, fmt.Errorf("%w: array at %d in %d-byte record", ErrBadReference, ref, len(data))
	}
	return f.decodeArray(data, fl, int(ref), int(n))
}

// emptyArray returns the canonical zero-length slice for the field's kind,
// so callers always see the same types regardless of array length.
func (f *Format) emptyArray(fl *Field) interface{} {
	switch fl.Kind {
	case Int, Char:
		return []int64{}
	case Uint:
		return []uint64{}
	case Float:
		return []float64{}
	case Bool:
		return []bool{}
	case String:
		return []string{}
	case Nested:
		return []Record{}
	default:
		return nil
	}
}
