// Package alert is the SLO rule engine of the self-monitoring stack: rules
// ("eventbus.queue_depth > 192 for 30s") are evaluated against the histdb
// sample ring on every tick, and a rule whose condition has held for its
// whole For window fires. Firing is loud in exactly the channels the repo
// already has — a typed alert_fired event lands in the flight recorder, an
// "alerts" health probe degrades /readyz, alerts.active and
// alerts.fired_total move in the registry, and (when the rule asks for it) a
// profile capture is triggered so the anomaly's CPU and heap evidence exists
// even if nobody was watching. Resolution uses hysteresis: the condition must
// stay clear for the same window before the alert resolves, so a metric
// oscillating around the threshold does not flap the readiness probe.
package alert

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
)

// Op is a rule's comparison operator.
type Op uint8

const (
	OpGT Op = iota + 1 // metric > threshold
	OpGE               // metric >= threshold
	OpLT               // metric < threshold
	OpLE               // metric <= threshold
)

// String returns the operator as written in the rule DSL.
func (o Op) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	default:
		return "?"
	}
}

// Severity ranks how bad a firing rule is. Any firing rule degrades /readyz;
// severity is carried in the flight events and /debug/alerts for triage.
type Severity uint8

const (
	SevInfo Severity = iota + 1
	SevWarn
	SevCritical
)

// String returns the severity as written in the rule DSL.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Rule is one SLO condition over a histdb series. Metric names a series key
// exactly as /debug/history spells it (including derived histogram keys like
// "rpc.latency.p99" and labeled children like `wire.records{stream="x"}`).
// The condition must hold for every sample across For before the rule fires,
// and must stay clear for For before it resolves (hysteresis). Capture asks
// the profile capturer for a CPU/heap/goroutine snapshot at fire time.
type Rule struct {
	Name      string
	Metric    string
	Op        Op
	Threshold int64
	For       time.Duration
	Severity  Severity
	Capture   bool
}

// Condition renders the rule's condition for events and the status JSON,
// e.g. "eventbus.queue_depth > 192 for 30s".
func (r Rule) Condition() string {
	return fmt.Sprintf("%s %s %d for %s", r.Metric, r.Op, r.Threshold, r.For)
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert: rule has no name")
	}
	if r.Metric == "" {
		return fmt.Errorf("alert: rule %q has no metric", r.Name)
	}
	if r.Op < OpGT || r.Op > OpLE {
		return fmt.Errorf("alert: rule %q has no operator", r.Name)
	}
	return nil
}

// holds reports whether v satisfies the rule's condition.
func (r Rule) holds(v int64) bool {
	switch r.Op {
	case OpGT:
		return v > r.Threshold
	case OpGE:
		return v >= r.Threshold
	case OpLT:
		return v < r.Threshold
	case OpLE:
		return v <= r.Threshold
	default:
		return false
	}
}

// Capturer receives fire-time capture requests — satisfied by
// *profcap.Capturer. Trigger must not block: captures run in the engine's
// evaluation path.
type Capturer interface {
	Trigger(reason string)
}

// ruleState tracks one rule's streaks across ticks.
type ruleState struct {
	rule      Rule
	needTicks int // consecutive samples required to fire (and to resolve)

	breachStreak int
	okStreak     int
	firing       bool
	firedAt      time.Time
	lastValue    int64
	// exemplars snapshots the breaching histogram's bucket exemplars at fire
	// time (empty for non-histogram metrics), so the alert carries concrete
	// TraceIDs from the incident window even after the metric recovers.
	exemplars []obsv.Exemplar
}

// Status is one rule's current state, as served by StatusHandler. Exemplars
// carries the breaching histogram's fire-time bucket exemplars (value,
// TraceID, timestamp) so /debug/alerts links the incident to real traces.
type Status struct {
	Rule      string          `json:"rule"`
	Condition string          `json:"condition"`
	Severity  string          `json:"severity"`
	Firing    bool            `json:"firing"`
	FiredAt   time.Time       `json:"fired_at,omitempty"`
	LastValue int64           `json:"last_value"`
	Exemplars []obsv.Exemplar `json:"exemplars,omitempty"`
}

// Option configures an Engine.
type Option func(*Engine)

// WithObserver routes the engine's own metrics (alerts.active,
// alerts.fired_total, alerts.resolved_total) into reg (default: none). The
// registry is also where the engine resolves a breaching histogram metric
// back to its live instrument at fire time, to attach its trace exemplars to
// the alert_fired event and /debug/alerts status.
func WithObserver(reg *obsv.Registry) Option {
	return func(e *Engine) {
		if reg != nil {
			e.reg = reg
			e.active = reg.Gauge("alerts.active")
			e.fired = reg.Counter("alerts.fired_total")
			e.resolved = reg.Counter("alerts.resolved_total")
		}
	}
}

// WithFlightRecorder routes alert_fired / alert_resolved events into rec.
func WithFlightRecorder(rec *flight.Recorder) Option {
	return func(e *Engine) { e.rec = rec }
}

// WithHealth registers an "alerts" probe on h that fails while any rule
// fires, degrading /readyz for the duration of the incident.
func WithHealth(h *obsv.Health) Option {
	return func(e *Engine) {
		if h == nil {
			return
		}
		h.Register("alerts", func() error {
			if names := e.FiringNames(); len(names) > 0 {
				return fmt.Errorf("alert firing: %s", strings.Join(names, ", "))
			}
			return nil
		})
	}
}

// WithCapturer hands fire-time capture requests (rules with Capture: true)
// to capt.
func WithCapturer(capt Capturer) Option {
	return func(e *Engine) { e.capt = capt }
}

// Engine evaluates rules against a histdb ring. Build with New, add rules
// with Add (or the DSL loaders in dsl.go), then Bind to the DB's OnSample
// hook — or call Eval directly from tests.
type Engine struct {
	db   *histdb.DB
	rec  *flight.Recorder
	capt Capturer
	reg  *obsv.Registry // exemplar lookups for breaching histogram metrics

	active   *obsv.Gauge
	fired    *obsv.Counter
	resolved *obsv.Counter

	mu    sync.Mutex
	rules []*ruleState
}

// New returns an engine evaluating against db.
func New(db *histdb.DB, opts ...Option) *Engine {
	e := &Engine{db: db}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Add registers rules. A rule's For window is converted to a consecutive-tick
// count against the DB's sampling interval (minimum one tick, so For: 0
// means "fires on the first breaching sample").
func (e *Engine) Add(rules ...Rule) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return err
		}
		if r.Severity == 0 {
			r.Severity = SevWarn
		}
		need := 1
		if iv := e.db.Interval(); r.For > 0 && iv > 0 {
			if need = int(r.For / iv); need < 1 {
				need = 1
			}
		}
		e.rules = append(e.rules, &ruleState{rule: r, needTicks: need})
	}
	return nil
}

// Bind wires the engine to the DB's post-sample hook so every tick is
// evaluated. Returns the engine (chainable).
func (e *Engine) Bind() *Engine {
	e.db.OnSample(e.Eval)
	return e
}

// Eval evaluates every rule against the latest samples. Bound to the DB's
// OnSample hook by Bind; exported so tests can drive it in lockstep with
// explicit Sample calls.
func (e *Engine) Eval() {
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.rules {
		v, ok := e.db.Latest(st.rule.Metric)
		if !ok {
			continue // series not sampled yet; streaks hold
		}
		st.lastValue = v
		if st.rule.holds(v) {
			st.breachStreak++
			st.okStreak = 0
		} else {
			st.okStreak++
			st.breachStreak = 0
		}
		switch {
		case !st.firing && st.breachStreak >= st.needTicks:
			st.firing = true
			st.firedAt = now
			st.exemplars = e.exemplarsFor(st.rule.Metric)
			e.fired.Inc()
			e.active.Add(1)
			detail := st.rule.Severity.String() + " " + st.rule.Condition()
			if n := len(st.exemplars); n > 0 {
				// The highest populated bucket's exemplar is the worst traced
				// request of the incident — name it in the flight event. The
				// recorder stores details in a 64-byte inline slot, so the
				// event carries the short ID (full IDs are in /debug/alerts).
				tid := st.exemplars[n-1].TraceID
				if len(tid) > 16 {
					tid = tid[:16]
				}
				detail += " exemplar=" + tid
			}
			e.rec.Record(flight.KindAlertFired, 0, st.rule.Name, 0, v, detail)
			if st.rule.Capture && e.capt != nil {
				e.capt.Trigger("alert:" + st.rule.Name)
			}
		case st.firing && st.okStreak >= st.needTicks:
			st.firing = false
			e.resolved.Inc()
			e.active.Add(-1)
			e.rec.Record(flight.KindAlertResolved, 0, st.rule.Name, 0, v,
				st.rule.Severity.String()+" "+st.rule.Condition())
		}
	}
}

// exemplarsFor resolves a rule metric back to its histogram's bucket
// exemplars. Rule metrics name histdb series keys, so a histogram rule
// carries a derived suffix ("pbio.encode_ns.p99") that is stripped to find
// the instrument; non-histogram metrics (or registries without the metric)
// yield nil.
func (e *Engine) exemplarsFor(metric string) []obsv.Exemplar {
	if e.reg == nil {
		return nil
	}
	base := metric
	for _, s := range obsv.HistogramSuffixes() {
		if strings.HasSuffix(metric, s) {
			base = strings.TrimSuffix(metric, s)
			break
		}
	}
	return e.reg.FindHistogram(base).Exemplars()
}

// FiringNames returns the names of currently firing rules, sorted — what the
// "alerts" health probe reports.
func (e *Engine) FiringNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, st := range e.rules {
		if st.firing {
			out = append(out, st.rule.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Statuses returns every rule's current state, sorted by name.
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.rules))
	for _, st := range e.rules {
		s := Status{
			Rule:      st.rule.Name,
			Condition: st.rule.Condition(),
			Severity:  st.rule.Severity.String(),
			Firing:    st.firing,
			LastValue: st.lastValue,
		}
		if st.firing {
			s.FiredAt = st.firedAt
			s.Exemplars = st.exemplars
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}
