package alert

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// The rule DSL — one rule per line (or ';'-separated, for the daemons'
// inline -alert-rules flag), '#' starts a comment:
//
//	<name>: <metric> <op> <threshold> for <duration> [severity <sev>] [capture]
//
//	queue-depth: eventbus.queue_depth > 192 for 30s severity warn capture
//	plan-cache-pressure: dcg.plan_cache.evictions > 0 for 60s
//	p99-latency: rpc.latency_ns.p99 > 50ms for 1m severity critical
//	gc-pause: runtime.gc.pause_ns.p99 > 50ms for 30s severity warn capture
//	broker-lock-wait: eventbus.broker_mu.wait_ns.p99 > 20ms for 30s severity warn capture
//
// The last two watch the runtime/metrics bridge and a tracked lock — any
// series the registry exposes works, including runtime.* and *.wait_ns
// families (see internal/obsv runtime.go and lock.go).
//
// op is one of > >= < <=. threshold is an integer or a Go duration — a
// duration converts to nanoseconds, matching the repo's *_ns histogram
// convention. severity is info|warn|critical (default warn). capture asks
// profcap for a CPU/heap/goroutine snapshot at fire time.

// ParseRules parses the DSL from src ("<file>" tag for error messages).
func ParseRules(name, src string) ([]Rule, error) {
	var rules []Rule
	seen := map[string]bool{}
	lineNo := 0
	for _, line := range strings.Split(src, "\n") {
		lineNo++
		for _, stmt := range strings.Split(line, ";") {
			if i := strings.IndexByte(stmt, '#'); i >= 0 {
				stmt = stmt[:i]
			}
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			r, err := parseRule(stmt)
			if err != nil {
				return nil, fmt.Errorf("alert: %s:%d: %w", name, lineNo, err)
			}
			if seen[r.Name] {
				return nil, fmt.Errorf("alert: %s:%d: duplicate rule %q", name, lineNo, r.Name)
			}
			seen[r.Name] = true
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("alert: %s: no rules", name)
	}
	return rules, nil
}

// LoadRules resolves the daemons' -alert-rules flag value: a path to a rule
// file if one exists at spec, otherwise spec itself as inline DSL.
func LoadRules(spec string) ([]Rule, error) {
	if b, err := os.ReadFile(spec); err == nil {
		return ParseRules(spec, string(b))
	}
	return ParseRules("inline", spec)
}

// parseRule parses one statement of the DSL.
func parseRule(stmt string) (Rule, error) {
	var r Rule
	name, rest, ok := strings.Cut(stmt, ":")
	if !ok {
		return r, fmt.Errorf("missing ':' after rule name in %q", stmt)
	}
	r.Name = strings.TrimSpace(name)
	if r.Name == "" {
		return r, fmt.Errorf("empty rule name in %q", stmt)
	}
	fields := strings.Fields(rest)
	// <metric> <op> <threshold> for <duration>, then optional clauses.
	if len(fields) < 5 || fields[3] != "for" {
		return r, fmt.Errorf("rule %q: want '<metric> <op> <threshold> for <duration>', got %q",
			r.Name, strings.TrimSpace(rest))
	}
	r.Metric = fields[0]
	switch fields[1] {
	case ">":
		r.Op = OpGT
	case ">=":
		r.Op = OpGE
	case "<":
		r.Op = OpLT
	case "<=":
		r.Op = OpLE
	default:
		return r, fmt.Errorf("rule %q: unknown operator %q", r.Name, fields[1])
	}
	thr, err := parseThreshold(fields[2])
	if err != nil {
		return r, fmt.Errorf("rule %q: bad threshold %q: %w", r.Name, fields[2], err)
	}
	r.Threshold = thr
	dur, err := time.ParseDuration(fields[4])
	if err != nil || dur < 0 {
		return r, fmt.Errorf("rule %q: bad duration %q", r.Name, fields[4])
	}
	r.For = dur
	r.Severity = SevWarn

	for i := 5; i < len(fields); i++ {
		switch fields[i] {
		case "severity":
			i++
			if i >= len(fields) {
				return r, fmt.Errorf("rule %q: severity needs a value", r.Name)
			}
			switch fields[i] {
			case "info":
				r.Severity = SevInfo
			case "warn":
				r.Severity = SevWarn
			case "critical":
				r.Severity = SevCritical
			default:
				return r, fmt.Errorf("rule %q: unknown severity %q", r.Name, fields[i])
			}
		case "capture":
			r.Capture = true
		default:
			return r, fmt.Errorf("rule %q: unknown clause %q", r.Name, fields[i])
		}
	}
	return r, nil
}

// parseThreshold accepts an integer or a Go duration (converted to
// nanoseconds, matching the *_ns histogram naming convention).
func parseThreshold(s string) (int64, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Nanoseconds(), nil
}
