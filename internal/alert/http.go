package alert

import (
	"encoding/json"
	"net/http"
)

// StatusHandler serves every rule's current state as JSON — the /debug/alerts
// endpoint on the DebugMux. A nil engine answers 503 so daemons can mount the
// endpoint unconditionally and light it up only when -alert-rules is set.
func StatusHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if e == nil {
			http.Error(w, "alert: no rules loaded", http.StatusServiceUnavailable)
			return
		}
		firing := e.FiringNames()
		if firing == nil {
			firing = []string{} // "firing": [] rather than null
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Firing []string `json:"firing"`
			Rules  []Status `json:"rules"`
		}{Firing: firing, Rules: e.Statuses()})
	})
}
