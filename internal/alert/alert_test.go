package alert

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
)

// harness builds a registry + histdb + engine triple where ticks are driven
// explicitly: each step sets the gauge then samples, so For windows count in
// deterministic ticks (interval 10ms, For 30ms → 3 ticks).
type harness struct {
	reg *obsv.Registry
	g   *obsv.Gauge
	db  *histdb.DB
	eng *Engine
	rec *flight.Recorder
	h   *obsv.Health
}

func newHarness(t *testing.T, rules ...Rule) *harness {
	t.Helper()
	reg := obsv.New()
	h := &harness{
		reg: reg,
		g:   reg.Gauge("depth"),
		db:  histdb.New(reg, histdb.WithInterval(10*time.Millisecond), histdb.WithCapacity(64)),
		rec: flight.New(32),
	}
	h.h = obsv.NewHealth()
	h.eng = New(h.db,
		WithObserver(reg),
		WithFlightRecorder(h.rec),
		WithHealth(h.h),
	)
	if err := h.eng.Add(rules...); err != nil {
		t.Fatalf("Add: %v", err)
	}
	h.eng.Bind()
	return h
}

func (h *harness) step(v int64) {
	h.g.Set(v)
	h.db.Sample() // Eval runs via OnSample
}

func (h *harness) ready() bool {
	rec := httptest.NewRecorder()
	h.h.ReadyHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	return rec.Code == 200
}

var depthRule = Rule{
	Name: "depth-high", Metric: "depth", Op: OpGT, Threshold: 100,
	For: 30 * time.Millisecond, Severity: SevCritical,
}

func TestFireAfterForWindowAndResolveWithHysteresis(t *testing.T) {
	h := newHarness(t, depthRule)

	// Two breaching ticks: not enough (needs 3).
	h.step(150)
	h.step(150)
	if names := h.eng.FiringNames(); len(names) != 0 {
		t.Fatalf("fired early: %v", names)
	}
	if !h.ready() {
		t.Fatal("/readyz degraded before firing")
	}
	// Third breaching tick fires.
	h.step(200)
	if names := h.eng.FiringNames(); len(names) != 1 || names[0] != "depth-high" {
		t.Fatalf("FiringNames = %v", names)
	}
	if h.ready() {
		t.Fatal("/readyz still 200 while firing")
	}
	snap := h.reg.Snapshot()
	if snap["alerts.active"] != 1 || snap["alerts.fired_total"] != 1 {
		t.Fatalf("metrics: active=%d fired=%d", snap["alerts.active"], snap["alerts.fired_total"])
	}

	// Hysteresis: two clear ticks do not resolve, and a re-breach resets.
	h.step(50)
	h.step(50)
	if len(h.eng.FiringNames()) != 1 {
		t.Fatal("resolved before hysteresis window")
	}
	h.step(150) // breach again: ok streak resets
	h.step(50)
	h.step(50)
	if len(h.eng.FiringNames()) != 1 {
		t.Fatal("ok streak not reset by re-breach")
	}
	h.step(50) // third consecutive clear tick resolves
	if len(h.eng.FiringNames()) != 0 {
		t.Fatal("did not resolve after full clear window")
	}
	if !h.ready() {
		t.Fatal("/readyz not restored after resolve")
	}
	snap = h.reg.Snapshot()
	if snap["alerts.active"] != 0 || snap["alerts.resolved_total"] != 1 {
		t.Fatalf("metrics after resolve: %v", snap)
	}

	// Flight events: fired then resolved, in order, with rule name + severity.
	evs := h.rec.Snapshot() // newest first
	var fired, resolved *flight.Event
	for i := range evs {
		switch evs[i].Kind {
		case "alert_fired":
			fired = &evs[i]
		case "alert_resolved":
			resolved = &evs[i]
		}
	}
	if fired == nil || resolved == nil {
		t.Fatalf("missing alert events: %+v", evs)
	}
	if fired.Seq >= resolved.Seq {
		t.Fatalf("fired seq %d not before resolved seq %d", fired.Seq, resolved.Seq)
	}
	if fired.Stream != "depth-high" || !strings.HasPrefix(fired.Detail, "critical depth > 100") {
		t.Fatalf("fired event = %+v", fired)
	}
	if fired.Bytes != 200 {
		t.Fatalf("fired observed value = %d, want 200", fired.Bytes)
	}
}

func TestOscillationDoesNotFlap(t *testing.T) {
	h := newHarness(t, depthRule)
	// Alternating breach/clear never accumulates 3 consecutive of either.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			h.step(150)
		} else {
			h.step(50)
		}
	}
	if snap := h.reg.Snapshot(); snap["alerts.fired_total"] != 0 {
		t.Fatalf("flapped: fired %d times", snap["alerts.fired_total"])
	}
}

func TestForZeroFiresImmediately(t *testing.T) {
	h := newHarness(t, Rule{Name: "instant", Metric: "depth", Op: OpGE, Threshold: 1})
	h.step(1)
	if len(h.eng.FiringNames()) != 1 {
		t.Fatal("For:0 rule did not fire on first breaching sample")
	}
}

func TestMissingMetricNeverFires(t *testing.T) {
	h := newHarness(t, Rule{Name: "ghost", Metric: "no.such.series", Op: OpGT, Threshold: 0})
	for i := 0; i < 5; i++ {
		h.step(int64(i))
	}
	if len(h.eng.FiringNames()) != 0 {
		t.Fatal("rule over a missing series fired")
	}
}

type fakeCapturer struct{ reasons []string }

func (f *fakeCapturer) Trigger(reason string) { f.reasons = append(f.reasons, reason) }

func TestCaptureTriggeredOnFireOnly(t *testing.T) {
	reg := obsv.New()
	g := reg.Gauge("depth")
	db := histdb.New(reg, histdb.WithInterval(10*time.Millisecond))
	capt := &fakeCapturer{}
	eng := New(db, WithCapturer(capt))
	r := depthRule
	r.Capture = true
	if err := eng.Add(r); err != nil {
		t.Fatal(err)
	}
	eng.Bind()
	for i := 0; i < 6; i++ { // fires once at tick 3, stays firing
		g.Set(999)
		db.Sample()
	}
	if len(capt.reasons) != 1 || capt.reasons[0] != "alert:depth-high" {
		t.Fatalf("capture reasons = %v, want one alert:depth-high", capt.reasons)
	}
}

func TestStatusHandler(t *testing.T) {
	h := newHarness(t, depthRule)
	h.step(150)
	h.step(150)
	h.step(150)

	rec := httptest.NewRecorder()
	StatusHandler(h.eng).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Firing []string `json:"firing"`
		Rules  []Status `json:"rules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Firing) != 1 || body.Firing[0] != "depth-high" {
		t.Fatalf("firing = %v", body.Firing)
	}
	if len(body.Rules) != 1 || !body.Rules[0].Firing || body.Rules[0].LastValue != 150 {
		t.Fatalf("rules = %+v", body.Rules)
	}
	if body.Rules[0].Condition != "depth > 100 for 30ms" {
		t.Fatalf("condition = %q", body.Rules[0].Condition)
	}

	rec = httptest.NewRecorder()
	StatusHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != 503 {
		t.Fatalf("nil engine: status %d, want 503", rec.Code)
	}
}

func TestAddValidates(t *testing.T) {
	db := histdb.New(obsv.New())
	eng := New(db)
	for _, bad := range []Rule{
		{Metric: "m", Op: OpGT},             // no name
		{Name: "n", Op: OpGT},               // no metric
		{Name: "n", Metric: "m"},            // no op
		{Name: "n", Metric: "m", Op: Op(9)}, // bogus op
	} {
		if err := eng.Add(bad); err == nil {
			t.Fatalf("Add(%+v) accepted", bad)
		}
	}
}

func TestParseRules(t *testing.T) {
	src := `
# production defaults
queue-depth: eventbus.queue_depth > 192 for 30s severity warn capture
plan-cache: dcg.plan_cache.evictions > 0 for 60s

p99: rpc.latency_ns.p99 >= 50ms for 1m severity critical  # duration threshold
`
	rules, err := ParseRules("test", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	qd := rules[0]
	if qd.Name != "queue-depth" || qd.Metric != "eventbus.queue_depth" ||
		qd.Op != OpGT || qd.Threshold != 192 || qd.For != 30*time.Second ||
		qd.Severity != SevWarn || !qd.Capture {
		t.Fatalf("queue-depth = %+v", qd)
	}
	if rules[1].Capture || rules[1].Severity != SevWarn {
		t.Fatalf("plan-cache = %+v", rules[1])
	}
	p99 := rules[2]
	if p99.Op != OpGE || p99.Threshold != (50*time.Millisecond).Nanoseconds() ||
		p99.Severity != SevCritical {
		t.Fatalf("p99 = %+v", p99)
	}

	// Inline form with ';' separators — the -alert-rules flag spelling.
	rules, err = ParseRules("inline", "a: x > 1 for 5s; b: y < 2 for 10s severity info")
	if err != nil || len(rules) != 2 || rules[1].Severity != SevInfo {
		t.Fatalf("inline: %v %+v", err, rules)
	}

	for _, bad := range []string{
		"",                                 // no rules
		"# only a comment",                 // no rules
		"noname x > 1 for 5s",              // missing ':'
		"r: x ~ 1 for 5s",                  // bad op
		"r: x > wat for 5s",                // bad threshold
		"r: x > 1 for soon",                // bad duration
		"r: x > 1 for 5s flavor",           // unknown clause
		"r: x > 1 for 5s severity",         // severity without value
		"r: x > 1 for 5s severity z",       // unknown severity
		"r: x > 1 for 5s; r: x > 2 for 5s", // duplicate name
	} {
		if _, err := ParseRules("bad", bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestLoadRulesFileAndInline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.conf")
	if err := os.WriteFile(path, []byte("from-file: m > 1 for 5s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil || len(rules) != 1 || rules[0].Name != "from-file" {
		t.Fatalf("file form: %v %+v", err, rules)
	}
	rules, err = LoadRules("inline-rule: m > 1 for 5s")
	if err != nil || len(rules) != 1 || rules[0].Name != "inline-rule" {
		t.Fatalf("inline form: %v %+v", err, rules)
	}
}

// TestFireAttachesHistogramExemplars pins the alert→trace link: a rule on a
// histogram's derived p99 series fires and the alert carries the
// histogram's bucket exemplars — the worst one's TraceID in the alert_fired
// flight detail, all of them in the /debug/alerts status.
func TestFireAttachesHistogramExemplars(t *testing.T) {
	h := newHarness(t, Rule{
		Name: "lat-p99", Metric: "lat.ns.p99", Op: OpGT, Threshold: 100,
		Severity: SevWarn, // For: 0 fires on the first breaching sample
	})
	hist := h.reg.Histogram("lat.ns")
	var slow, fast [16]byte
	slow[15], fast[15] = 1, 2
	hist.ObserveExemplar(50, fast)
	for i := 0; i < 20; i++ {
		hist.ObserveExemplar(5000, slow)
	}
	h.db.Sample()

	if names := h.eng.FiringNames(); len(names) != 1 {
		t.Fatalf("FiringNames = %v", names)
	}
	sts := h.eng.Statuses()
	if len(sts) != 1 || len(sts[0].Exemplars) != 2 {
		t.Fatalf("status exemplars = %+v", sts)
	}
	worst := sts[0].Exemplars[len(sts[0].Exemplars)-1]
	if worst.Value != 5000 || worst.TraceID != "00000000000000000000000000000001" {
		t.Fatalf("worst exemplar = %+v", worst)
	}
	evs := h.rec.Snapshot()
	var fired *flight.Event
	for i := range evs {
		if evs[i].Kind == "alert_fired" {
			fired = &evs[i]
		}
	}
	// The flight recorder's 64-byte detail slot carries the short ID.
	if fired == nil || !strings.Contains(fired.Detail, "exemplar="+worst.TraceID[:16]) {
		t.Fatalf("alert_fired detail missing worst exemplar: %+v", fired)
	}

	// A non-histogram rule keeps firing without exemplars.
	h2 := newHarness(t, depthRule)
	h2.step(150)
	h2.step(150)
	h2.step(150)
	if sts := h2.eng.Statuses(); len(sts) != 1 || sts[0].Exemplars != nil {
		t.Fatalf("gauge rule grew exemplars: %+v", sts)
	}
}
