package core

import (
	"errors"
	"strings"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

const facetSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:simpleType name="CenterID">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="ZTL" />
      <xsd:enumeration value="ZJX" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="FlightNumber">
    <xsd:restriction base="xsd:integer">
      <xsd:minInclusive value="1" />
      <xsd:maxInclusive value="9999" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:simpleType name="Airport">
    <xsd:restriction base="xsd:string">
      <xsd:maxLength value="4" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Leg">
    <xsd:element name="org" type="Airport" />
    <xsd:element name="dest" type="Airport" />
  </xsd:complexType>
  <xsd:complexType name="Movement">
    <xsd:element name="center" type="CenterID" />
    <xsd:element name="flt" type="FlightNumber" />
    <xsd:element name="legs" type="Leg" minOccurs="0" maxOccurs="*" />
    <xsd:element name="alts" type="FlightNumber" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

func facetFixtures(t *testing.T) (*xmlschema.Schema, *pbio.Format) {
	t.Helper()
	s, err := xmlschema.ParseString(facetSchema)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RegisterSchema(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := set.Lookup("Movement")
	if !ok {
		t.Fatal("Movement not registered")
	}
	return s, f
}

func TestValidateRecordAcceptsConforming(t *testing.T) {
	s, f := facetFixtures(t)
	rec := pbio.Record{
		"center": "ZTL", "flt": 1842,
		"legs": []pbio.Record{{"org": "KATL", "dest": "KMCO"}},
		"alts": []int64{100, 200},
	}
	// Through a full wire round trip, as a live message would arrive.
	wire, err := f.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := f.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRecord(s, "Movement", decoded); err != nil {
		t.Errorf("conforming record rejected: %v", err)
	}
}

func TestValidateRecordRejections(t *testing.T) {
	s, _ := facetFixtures(t)
	cases := []struct {
		name string
		rec  pbio.Record
		want string
	}{
		{"bad enumeration", pbio.Record{"center": "ZZZ"}, "enumeration"},
		{"below range", pbio.Record{"flt": int64(0)}, "minInclusive"},
		{"above range", pbio.Record{"flt": int64(10000)}, "maxInclusive"},
		{"nested too long", pbio.Record{
			"legs": []pbio.Record{{"org": "TOOLONG"}},
		}, "maxLength"},
		{"array element out of range", pbio.Record{"alts": []int64{5, 99999}}, "maxInclusive"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := ValidateRecord(s, "Movement", tt.rec)
			if !errors.Is(err, ErrInvalidRecord) {
				t.Fatalf("err = %v, want ErrInvalidRecord", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want mention of %s", err, tt.want)
			}
		})
	}
}

func TestValidateRecordMissingFieldsPass(t *testing.T) {
	s, _ := facetFixtures(t)
	if err := ValidateRecord(s, "Movement", pbio.Record{}); err != nil {
		t.Errorf("empty record rejected: %v", err)
	}
}

func TestValidateRecordUnknownType(t *testing.T) {
	s, _ := facetFixtures(t)
	if err := ValidateRecord(s, "NoSuch", pbio.Record{}); err == nil {
		t.Error("unknown type accepted")
	}
}
