package core

import (
	"errors"
	"fmt"
	"sort"

	"openmeta/internal/pbio"
	"openmeta/internal/xmltext"
	"openmeta/internal/xmlwire"
)

// The paper (§4.1.1) observes that once message structure is represented in
// XML, "schema-checking tools will be applicable to live messages received
// from other parties. This ability could be used to determine which of a
// set of structure definitions a message most closely fits." This file
// implements that capability for both XML text messages and raw NDR
// records.

// MatchScore grades how well one candidate format fits a message.
type MatchScore struct {
	// Format is the candidate.
	Format *pbio.Format
	// Score is the fit in [0, 1]; 1 means the message conforms exactly.
	Score float64
	// Exact reports that the message decodes under the format with no
	// missing, extra or malformed content.
	Exact bool
	// Detail explains the largest deduction, for diagnostics.
	Detail string
}

// ErrNoCandidates is returned when matching against an empty candidate set.
var ErrNoCandidates = errors.New("xml2wire: no candidate formats")

// MatchXML scores an XML text message against candidate formats and returns
// the scores sorted best-first.
func MatchXML(candidates []*pbio.Format, instance []byte) ([]MatchScore, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	doc, err := xmltext.ParseString(string(instance))
	if err != nil {
		return nil, fmt.Errorf("xml2wire: match: %w", err)
	}
	scores := make([]MatchScore, 0, len(candidates))
	for _, f := range candidates {
		scores = append(scores, scoreXML(f, doc.Root, instance))
	}
	sortScores(scores)
	return scores, nil
}

func scoreXML(f *pbio.Format, root *xmltext.Element, instance []byte) MatchScore {
	ms := MatchScore{Format: f}
	// An exact decode is authoritative.
	if _, err := xmlwire.DecodeRecord(f, instance); err == nil {
		ms.Score = 1
		ms.Exact = true
		return ms
	}
	// Otherwise grade structural overlap: root name, field presence and
	// multiplicity, foreign elements.
	var earned, possible float64
	possible++ // root name
	if root.Name.Local == f.Name {
		earned++
	} else {
		ms.Detail = fmt.Sprintf("root <%s> != format %q", root.Name.Local, f.Name)
	}
	counts := make(map[string]int)
	for _, el := range root.Elements() {
		counts[el.Name.Local]++
	}
	for i := range f.Fields {
		fl := &f.Fields[i]
		if isImplicitCount(f, fl) {
			continue
		}
		possible++
		n := counts[fl.Name]
		delete(counts, fl.Name)
		switch {
		case fl.Dynamic:
			earned++ // any multiplicity fits a dynamic array
		case fl.Count > 1:
			if n == fl.Count {
				earned++
			} else if n > 0 {
				earned += 0.5
				if ms.Detail == "" {
					ms.Detail = fmt.Sprintf("field %q has %d elements, want %d", fl.Name, n, fl.Count)
				}
			} else if ms.Detail == "" {
				ms.Detail = fmt.Sprintf("field %q missing", fl.Name)
			}
		default:
			if n == 1 {
				earned++
			} else if n > 1 {
				earned += 0.5
				if ms.Detail == "" {
					ms.Detail = fmt.Sprintf("field %q repeated %d times", fl.Name, n)
				}
			} else if ms.Detail == "" {
				ms.Detail = fmt.Sprintf("field %q missing", fl.Name)
			}
		}
	}
	// Elements the format does not know cost a point each.
	for name, n := range counts {
		possible += float64(n)
		if ms.Detail == "" {
			ms.Detail = fmt.Sprintf("unknown element <%s>", name)
		}
	}
	if possible > 0 {
		ms.Score = earned / possible
	}
	return ms
}

func isImplicitCount(f *pbio.Format, fl *pbio.Field) bool {
	for i := range f.Fields {
		if f.Fields[i].Dynamic && f.Fields[i].CountField == fl.Name {
			return true
		}
	}
	return false
}

// MatchBinary scores a raw NDR record against candidate formats: a
// candidate fits when the record decodes cleanly under it, graded by how
// much of the record the format accounts for (a too-small format "decodes"
// many records by ignoring their tails). Useful when a record's format ID
// is unknown — a corrupted stream, or a file whose metadata frames were
// lost.
func MatchBinary(candidates []*pbio.Format, record []byte) ([]MatchScore, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	scores := make([]MatchScore, 0, len(candidates))
	for _, f := range candidates {
		scores = append(scores, scoreBinary(f, record))
	}
	sortScores(scores)
	return scores, nil
}

func scoreBinary(f *pbio.Format, record []byte) MatchScore {
	ms := MatchScore{Format: f}
	rec, err := f.Decode(record)
	if err != nil {
		ms.Detail = err.Error()
		return ms
	}
	// Re-encode and compare sizes: an exact reconstruction accounts for
	// every byte (modulo padding order, which re-encoding normalizes).
	re, err := f.Encode(rec)
	if err != nil {
		ms.Detail = err.Error()
		return ms
	}
	ratio := float64(len(re)) / float64(len(record))
	if ratio > 1 {
		ratio = 1 / ratio
	}
	ms.Score = ratio
	if len(re) == len(record) {
		ms.Exact = true
		ms.Score = 1
	} else {
		ms.Detail = fmt.Sprintf("format accounts for %d of %d bytes", len(re), len(record))
	}
	return ms
}

func sortScores(scores []MatchScore) {
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Exact != scores[j].Exact {
			return scores[i].Exact
		}
		return scores[i].Score > scores[j].Score
	})
}
