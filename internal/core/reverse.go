package core

import (
	"fmt"

	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

// SchemaForFormats renders registered formats back into an XML Schema
// document model — the inverse of RegisterSchema. It enables the dynamic
// metadata generation of the paper's §4.4: a server can register formats
// programmatically (or adopt them from the wire) and publish their XML
// descriptions on a metadata repository, and it closes the round trip the
// schema-generation tests rely on.
//
// Formats must be passed dependency-first (nested before nesting), the
// same Catalog order registration requires; nested formats referenced but
// not listed are added automatically.
func SchemaForFormats(targetNamespace string, formats ...*pbio.Format) (*xmlschema.Schema, error) {
	s := &xmlschema.Schema{TargetNamespace: targetNamespace}
	seen := make(map[string]*pbio.Format)
	var add func(f *pbio.Format) error
	add = func(f *pbio.Format) error {
		if prev, ok := seen[f.Name]; ok {
			if prev.ID != f.ID {
				return fmt.Errorf("xml2wire: two formats named %q with different definitions", f.Name)
			}
			return nil
		}
		for i := range f.Fields {
			if n := f.Fields[i].Nested; n != nil {
				if err := add(n); err != nil {
					return err
				}
			}
		}
		ct, err := complexTypeForFormat(f)
		if err != nil {
			return err
		}
		seen[f.Name] = f
		s.Types = append(s.Types, ct)
		return nil
	}
	for _, f := range formats {
		if f == nil {
			return nil, fmt.Errorf("xml2wire: nil format")
		}
		if err := add(f); err != nil {
			return nil, err
		}
	}
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("xml2wire: no formats given")
	}
	// Re-parse through the validator to fill internal indexes and prove the
	// generated schema is self-consistent.
	return xmlschema.ParseString(xmlschema.MarshalString(s))
}

// SchemaDocumentForFormats is SchemaForFormats rendered to XML text, ready
// for a Repository.Put.
func SchemaDocumentForFormats(targetNamespace string, formats ...*pbio.Format) (string, error) {
	s, err := SchemaForFormats(targetNamespace, formats...)
	if err != nil {
		return "", err
	}
	return xmlschema.MarshalString(s), nil
}

func complexTypeForFormat(f *pbio.Format) (*xmlschema.ComplexType, error) {
	ct := &xmlschema.ComplexType{Name: f.Name}
	// Count fields that only exist to size a dynamic array are implicit in
	// the schema (maxOccurs="*" regenerates them on registration) — but
	// only when they follow the synthesized naming convention; explicitly
	// named count fields (maxOccurs="n") stay declared.
	implicitCounts := make(map[string]bool)
	for i := range f.Fields {
		fl := &f.Fields[i]
		if fl.Dynamic && fl.CountField == fl.Name+"_count" {
			implicitCounts[fl.CountField] = true
		}
	}
	for i := range f.Fields {
		fl := &f.Fields[i]
		if implicitCounts[fl.Name] {
			continue
		}
		e, err := elementForField(f, fl)
		if err != nil {
			return nil, err
		}
		ct.Elements = append(ct.Elements, e)
	}
	return ct, nil
}

func elementForField(f *pbio.Format, fl *pbio.Field) (xmlschema.Element, error) {
	e := xmlschema.Element{Name: fl.Name, MinOccurs: 1}
	switch {
	case fl.Dynamic && fl.CountField == fl.Name+"_count":
		e.Array = xmlschema.DynamicArray
		e.CountField = fl.CountField
		e.MinOccurs = 0
	case fl.Dynamic:
		e.Array = xmlschema.CountedArray
		e.CountField = fl.CountField
		e.MinOccurs = 0
	case fl.Count > 1:
		e.Array = xmlschema.StaticArray
		e.Size = fl.Count
	}
	if fl.Kind == pbio.Nested {
		e.Type = xmlschema.TypeRef{Named: fl.Nested.Name}
		return e, nil
	}
	p, err := primitiveForField(f, fl)
	if err != nil {
		return e, fmt.Errorf("format %q field %q: %w", f.Name, fl.Name, err)
	}
	e.Type = xmlschema.TypeRef{Primitive: p}
	return e, nil
}

// primitiveForField picks an xsd primitive whose C mapping on the format's
// own architecture reproduces the field's element size, so a schema
// generated from a format re-registers to the same layout on that
// architecture. XML Schema (as the paper uses it) names C types, and some
// sizes have no spelling on some profiles — e.g. an 8-byte integer on a
// 32-bit-long machine — which is reported as an error rather than silently
// changing the format.
func primitiveForField(f *pbio.Format, fl *pbio.Field) (xmlschema.Primitive, error) {
	switch fl.Kind {
	case pbio.String:
		return xmlschema.String, nil
	case pbio.Bool:
		return xmlschema.Boolean, nil
	case pbio.Char:
		return xmlschema.Char, nil
	}
	var candidates []xmlschema.Primitive
	switch fl.Kind {
	case pbio.Float:
		candidates = []xmlschema.Primitive{xmlschema.Float, xmlschema.Double}
	case pbio.Int:
		candidates = []xmlschema.Primitive{xmlschema.Byte, xmlschema.Short,
			xmlschema.Int, xmlschema.Long}
	case pbio.Uint:
		candidates = []xmlschema.Primitive{xmlschema.UnsignedByte, xmlschema.UnsignedShort,
			xmlschema.UnsignedInt, xmlschema.UnsignedLong}
	default:
		return 0, fmt.Errorf("%w: kind %s", ErrUnsupportedSchema, fl.Kind)
	}
	for _, p := range candidates {
		_, ctype, err := MapPrimitive(p)
		if err != nil {
			continue
		}
		if f.Arch.SizeOf(ctype) == fl.ElemSize {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: no xsd primitive is a %d-byte %s on %s",
		ErrUnsupportedSchema, fl.ElemSize, fl.Kind, f.Arch.Name)
}
