package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"openmeta/internal/dcg"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

// This file property-tests the whole pipeline over randomly generated
// schemas: a random schema document must register on any architecture, its
// records must round-trip through NDR, and a conversion plan between any
// two architectures must preserve decoded semantics. This is the closest
// the repository gets to an exhaustiveness argument: the components are not
// just correct on the paper's fixtures but on arbitrary format shapes.

type randomSchema struct {
	doc   string
	types []randomType
}

type randomType struct {
	name   string
	fields []randomField
}

type randomField struct {
	name    string
	prim    xmlschema.Primitive // 0 => nested
	nested  string
	array   xmlschema.ArrayKind
	size    int
	countOf string
}

var randPrims = []xmlschema.Primitive{
	xmlschema.String, xmlschema.Byte, xmlschema.UnsignedByte,
	xmlschema.Short, xmlschema.UnsignedShort, xmlschema.Integer,
	xmlschema.UnsignedInt, xmlschema.Float, xmlschema.Double,
	xmlschema.Boolean, xmlschema.Char,
}

// genSchema builds a random schema with 1-3 types of 1-8 fields each.
func genSchema(rng *rand.Rand) randomSchema {
	var rs randomSchema
	nTypes := 1 + rng.Intn(3)
	for ti := 0; ti < nTypes; ti++ {
		rt := randomType{name: fmt.Sprintf("T%d", ti)}
		nFields := 1 + rng.Intn(8)
		for fi := 0; fi < nFields; fi++ {
			f := randomField{name: fmt.Sprintf("f%d", fi)}
			if ti > 0 && rng.Intn(5) == 0 {
				f.nested = fmt.Sprintf("T%d", rng.Intn(ti))
			} else {
				f.prim = randPrims[rng.Intn(len(randPrims))]
			}
			switch rng.Intn(4) {
			case 0:
				f.array = xmlschema.StaticArray
				f.size = 2 + rng.Intn(4)
			case 1:
				if f.prim != xmlschema.String { // dynamic string arrays unsupported
					f.array = xmlschema.DynamicArray
				}
			}
			rt.fields = append(rt.fields, f)
		}
		rs.types = append(rs.types, rt)
	}
	var sb strings.Builder
	sb.WriteString(`<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">`)
	for _, rt := range rs.types {
		fmt.Fprintf(&sb, `<xsd:complexType name=%q>`, rt.name)
		for _, f := range rt.fields {
			typ := "xsd:" + f.prim.String()
			if f.nested != "" {
				typ = f.nested
			}
			switch f.array {
			case xmlschema.StaticArray:
				fmt.Fprintf(&sb, `<xsd:element name=%q type=%q minOccurs="%d" maxOccurs="%d" />`,
					f.name, typ, f.size, f.size)
			case xmlschema.DynamicArray:
				fmt.Fprintf(&sb, `<xsd:element name=%q type=%q minOccurs="0" maxOccurs="*" />`,
					f.name, typ)
			default:
				fmt.Fprintf(&sb, `<xsd:element name=%q type=%q />`, f.name, typ)
			}
		}
		sb.WriteString(`</xsd:complexType>`)
	}
	sb.WriteString(`</xsd:schema>`)
	rs.doc = sb.String()
	return rs
}

// genValue builds a random value for one element on the given arch.
func genValue(rng *rand.Rand, s *xmlschema.Schema, rt randomType, arch *machine.Arch) pbio.Record {
	rec := make(pbio.Record, len(rt.fields))
	for _, f := range rt.fields {
		n := 1
		switch f.array {
		case xmlschema.StaticArray:
			n = f.size
		case xmlschema.DynamicArray:
			n = rng.Intn(5)
		}
		vals := make([]interface{}, n)
		for i := range vals {
			vals[i] = genScalar(rng, s, f, arch)
		}
		if f.array == xmlschema.NoArray {
			rec[f.name] = vals[0]
		} else {
			rec[f.name] = vals
		}
	}
	return rec
}

func genScalar(rng *rand.Rand, s *xmlschema.Schema, f randomField, arch *machine.Arch) interface{} {
	if f.nested != "" {
		for _, rt := range cachedTypes[s] {
			if rt.name == f.nested {
				return genValue(rng, s, rt, arch)
			}
		}
		return pbio.Record{}
	}
	_, ctype, err := MapPrimitive(f.prim)
	if err != nil {
		return nil
	}
	size := arch.SizeOf(ctype)
	switch f.prim {
	case xmlschema.String:
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	case xmlschema.Boolean:
		return rng.Intn(2) == 0
	case xmlschema.Float:
		return float64(float32(rng.NormFloat64()))
	case xmlschema.Double:
		return rng.NormFloat64()
	case xmlschema.Char:
		return int64(rng.Intn(128))
	case xmlschema.UnsignedByte, xmlschema.UnsignedShort, xmlschema.UnsignedInt, xmlschema.UnsignedLong:
		mask := uint64(1)<<(uint(size)*8) - 1
		return rng.Uint64() & mask
	default: // signed integers
		shift := uint(64 - size*8)
		return int64(rng.Uint64()) << shift >> shift
	}
}

// cachedTypes lets genScalar find sibling type definitions.
var cachedTypes = map[*xmlschema.Schema][]randomType{}

func TestPipelinePropertyRandomSchemas(t *testing.T) {
	arches := []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc, machine.Sparc64}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := genSchema(rng)
		schema, err := xmlschema.ParseString(rs.doc)
		if err != nil {
			t.Logf("seed %d: schema did not parse: %v\n%s", seed, err, rs.doc)
			return false
		}
		cachedTypes[schema] = rs.types
		defer delete(cachedTypes, schema)

		srcArch := arches[rng.Intn(len(arches))]
		dstArch := arches[rng.Intn(len(arches))]
		srcCtx, _ := pbio.NewContext(srcArch)
		srcSet, err := RegisterSchema(srcCtx, schema)
		if err != nil {
			t.Logf("seed %d: register on %s: %v\n%s", seed, srcArch.Name, err, rs.doc)
			return false
		}
		dstCtx, _ := pbio.NewContext(dstArch)
		dstSet, err := RegisterSchema(dstCtx, schema)
		if err != nil {
			t.Logf("seed %d: register on %s: %v", seed, dstArch.Name, err)
			return false
		}

		rt := rs.types[rng.Intn(len(rs.types))]
		srcF, _ := srcSet.Lookup(rt.name)
		dstF, _ := dstSet.Lookup(rt.name)
		// Values must fit the *narrower* of the two representations, or the
		// comparison would fail for C-conversion reasons, not bugs.
		narrow := srcArch
		if dstArch.LongSize < narrow.LongSize {
			narrow = dstArch
		}
		rec := genValue(rng, schema, rt, narrow)

		wire, err := srcF.Encode(rec)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		// Reference: decode at the source.
		want, err := srcF.Decode(wire)
		if err != nil {
			t.Logf("seed %d: src decode: %v", seed, err)
			return false
		}
		// Pipeline: convert to the destination representation, decode there.
		plan, err := dcg.Compile(srcF, dstF)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		conv, err := plan.Convert(wire)
		if err != nil {
			t.Logf("seed %d: convert: %v", seed, err)
			return false
		}
		got, err := dstF.Decode(conv)
		if err != nil {
			t.Logf("seed %d: dst decode: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(want, got) {
			t.Logf("seed %d (%s -> %s): decoded values differ\nwant: %v\ngot:  %v\nschema: %s",
				seed, srcArch.Name, dstArch.Name, want, got, rs.doc)
			return false
		}
		// Meta round trip preserves identity too.
		back, err := pbio.UnmarshalMeta(pbio.MarshalMeta(srcF))
		if err != nil || back.ID != srcF.ID {
			t.Logf("seed %d: meta round trip: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
