// Package core implements xml2wire: the paper's tool for turning XML
// Schema message descriptions into registered formats of the underlying
// binary communication mechanism (PBIO).
//
// The tool deliberately separates the three steps of metadata handling the
// paper identifies:
//
//   - discovery: obtaining the schema document (a file, an in-memory string,
//     or a remote repository via internal/discovery) — this package accepts
//     parsed schema documents and leaves retrieval to the caller, so the
//     discovery method can change without touching binding;
//   - binding: mapping each complexType to a PBIO format laid out for the
//     local architecture (sizeof and offset computation via
//     internal/machine, the Catalog of previously registered types for
//     composition) and registering it;
//   - marshaling: performed entirely by PBIO — xml2wire "does not perform
//     marshaling; the PBIO objects that represent the newly-registered
//     format are made available to the programmer for later use".
package core

import (
	"errors"
	"fmt"
	"io"
	"os"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

// FormatSet is the result of registering one schema document: the PBIO
// format descriptors for every complexType, in document order.
type FormatSet struct {
	// Schema is the parsed source schema.
	Schema *xmlschema.Schema
	// Formats holds the registered formats in document order.
	Formats []*pbio.Format

	byName map[string]*pbio.Format
}

// Lookup returns the registered format for a complexType name.
func (s *FormatSet) Lookup(name string) (*pbio.Format, bool) {
	f, ok := s.byName[name]
	return f, ok
}

// Root returns the last format in the document — by the paper's Catalog
// discipline (types reference only earlier types), the most composed one.
func (s *FormatSet) Root() *pbio.Format {
	return s.Formats[len(s.Formats)-1]
}

// ErrUnsupportedSchema reports schema constructs that cannot be mapped onto
// the BCM (currently: dynamic arrays of strings).
var ErrUnsupportedSchema = errors.New("xml2wire: schema construct not supported by the BCM")

// RegisterSchema binds every complexType of an already-parsed schema to the
// context's architecture and registers it with PBIO. This is the core of
// the xml2wire process (the paper's Figure 2).
func RegisterSchema(ctx *pbio.Context, s *xmlschema.Schema) (*FormatSet, error) {
	set := &FormatSet{
		Schema: s,
		byName: make(map[string]*pbio.Format, len(s.Types)),
	}
	for _, ct := range s.Types {
		specs, err := SpecsForType(ct)
		if err != nil {
			return nil, err
		}
		f, err := ctx.RegisterSpec(ct.Name, specs)
		if err != nil {
			return nil, fmt.Errorf("xml2wire: register %q: %w", ct.Name, err)
		}
		set.Formats = append(set.Formats, f)
		set.byName[ct.Name] = f
	}
	return set, nil
}

// RegisterDocument parses schema text and registers its types.
func RegisterDocument(ctx *pbio.Context, doc []byte) (*FormatSet, error) {
	s, err := xmlschema.ParseString(string(doc))
	if err != nil {
		return nil, err
	}
	return RegisterSchema(ctx, s)
}

// RegisterReader reads a schema document from r and registers its types.
func RegisterReader(ctx *pbio.Context, r io.Reader) (*FormatSet, error) {
	doc, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xml2wire: read schema: %w", err)
	}
	return RegisterDocument(ctx, doc)
}

// RegisterFile loads a schema document from the local file system — the
// discovery mode the paper's prototype used.
func RegisterFile(ctx *pbio.Context, path string) (*FormatSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xml2wire: %w", err)
	}
	defer f.Close()
	return RegisterReader(ctx, f)
}

// SpecsForType maps one complexType to PBIO field specs, synthesizing the
// implicit count field for maxOccurs="*" arrays (the eta / eta_count
// pattern of Appendix A: the count is declared right after the array, as the
// C structure lays it out).
func SpecsForType(ct *xmlschema.ComplexType) ([]pbio.FieldSpec, error) {
	declared := make(map[string]bool, len(ct.Elements))
	for _, e := range ct.Elements {
		declared[e.Name] = true
	}
	specs := make([]pbio.FieldSpec, 0, len(ct.Elements)+2)
	for _, e := range ct.Elements {
		spec, err := specForElement(ct, e)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		if e.Array == xmlschema.DynamicArray && !declared[e.CountField] {
			specs = append(specs, pbio.FieldSpec{
				Name: e.CountField, Kind: pbio.Int, CType: machine.CInt,
			})
			declared[e.CountField] = true
		}
	}
	return specs, nil
}

func specForElement(ct *xmlschema.ComplexType, e xmlschema.Element) (pbio.FieldSpec, error) {
	spec := pbio.FieldSpec{Name: e.Name}
	switch e.Array {
	case xmlschema.StaticArray:
		spec.Count = e.Size
	case xmlschema.DynamicArray, xmlschema.CountedArray:
		spec.Dynamic = true
		spec.CountField = e.CountField
	}
	if e.Type.IsPrimitive() {
		kind, ctype, err := MapPrimitive(e.Type.Primitive)
		if err != nil {
			return spec, fmt.Errorf("type %q element %q: %w", ct.Name, e.Name, err)
		}
		if kind == pbio.String && spec.Dynamic {
			return spec, fmt.Errorf("type %q element %q: %w: dynamic arrays of strings",
				ct.Name, e.Name, ErrUnsupportedSchema)
		}
		spec.Kind = kind
		spec.CType = ctype
		return spec, nil
	}
	spec.Kind = pbio.Nested
	spec.NestedName = e.Type.Named
	return spec, nil
}

// MapPrimitive performs the paper's "straightforward mapping ... between
// the type attribute (which denotes one of the XML Schema data types) and a
// corresponding PBIO type", additionally selecting the C type whose sizeof
// determines the field size on the registering architecture.
func MapPrimitive(p xmlschema.Primitive) (pbio.Kind, machine.CType, error) {
	switch p {
	case xmlschema.String:
		return pbio.String, machine.CPointer, nil
	case xmlschema.Byte:
		return pbio.Int, machine.CChar, nil
	case xmlschema.UnsignedByte:
		return pbio.Uint, machine.CUChar, nil
	case xmlschema.Short:
		return pbio.Int, machine.CShort, nil
	case xmlschema.UnsignedShort:
		return pbio.Uint, machine.CUShort, nil
	case xmlschema.Int, xmlschema.Integer:
		return pbio.Int, machine.CInt, nil
	case xmlschema.UnsignedInt:
		return pbio.Uint, machine.CUInt, nil
	case xmlschema.Long:
		return pbio.Int, machine.CLong, nil
	case xmlschema.UnsignedLong:
		return pbio.Uint, machine.CULong, nil
	case xmlschema.Float:
		return pbio.Float, machine.CFloat, nil
	case xmlschema.Double:
		return pbio.Float, machine.CDouble, nil
	case xmlschema.Boolean:
		return pbio.Bool, machine.CChar, nil
	case xmlschema.Char:
		return pbio.Char, machine.CChar, nil
	default:
		return 0, 0, fmt.Errorf("%w: primitive %v", ErrUnsupportedSchema, p)
	}
}

// DumpIOFields renders the paper-style IOField lists (Figures 5, 8, 11) for
// every type in a schema without touching the caller's context; cmd/xml2wire
// uses it for its -dump mode.
func DumpIOFields(arch *machine.Arch, s *xmlschema.Schema) (map[string][]pbio.IOField, error) {
	scratch, err := pbio.NewContext(arch)
	if err != nil {
		return nil, err
	}
	set, err := RegisterSchema(scratch, s)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]pbio.IOField, len(set.Formats))
	for _, f := range set.Formats {
		out[f.Name] = f.IOFields()
	}
	return out, nil
}
