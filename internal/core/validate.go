package core

import (
	"errors"
	"fmt"
	"strconv"

	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

// ErrInvalidRecord reports a record violating its schema's facets.
var ErrInvalidRecord = errors.New("xml2wire: record violates schema facets")

// ValidateRecord checks a decoded record against the facet constraints its
// schema declares through simple types (enumerations, numeric ranges,
// string lengths) — the "schema-checking tools will be applicable to live
// messages" capability of the paper's §4.1.1, applied after decode. Fields
// whose elements use plain primitives always pass; structural conformance
// is already guaranteed by the format.
func ValidateRecord(s *xmlschema.Schema, typeName string, rec pbio.Record) error {
	ct, ok := s.TypeByName(typeName)
	if !ok {
		return fmt.Errorf("xml2wire: validate: schema has no type %q", typeName)
	}
	for _, e := range ct.Elements {
		val, present := rec[e.Name]
		if !present || val == nil {
			continue
		}
		if e.Type.IsPrimitive() {
			if e.Type.Simple == "" {
				continue
			}
			st, ok := s.SimpleTypeByName(e.Type.Simple)
			if !ok {
				continue
			}
			if err := validateValues(st, e, val); err != nil {
				return fmt.Errorf("%w: type %q element %q: %v", ErrInvalidRecord, typeName, e.Name, err)
			}
			continue
		}
		// Nested complex types validate recursively.
		switch v := val.(type) {
		case pbio.Record:
			if err := ValidateRecord(s, e.Type.Named, v); err != nil {
				return err
			}
		case map[string]interface{}:
			if err := ValidateRecord(s, e.Type.Named, pbio.Record(v)); err != nil {
				return err
			}
		case []pbio.Record:
			for _, sub := range v {
				if err := ValidateRecord(s, e.Type.Named, sub); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateValues(st *xmlschema.SimpleType, e xmlschema.Element, val interface{}) error {
	if e.Array == xmlschema.NoArray {
		return validateOne(st, val)
	}
	switch v := val.(type) {
	case []string:
		for _, x := range v {
			if err := validateOne(st, x); err != nil {
				return err
			}
		}
	case []int64:
		for _, x := range v {
			if err := validateOne(st, x); err != nil {
				return err
			}
		}
	case []uint64:
		for _, x := range v {
			if err := validateOne(st, x); err != nil {
				return err
			}
		}
	case []float64:
		for _, x := range v {
			if err := validateOne(st, x); err != nil {
				return err
			}
		}
	case []interface{}:
		for _, x := range v {
			if err := validateOne(st, x); err != nil {
				return err
			}
		}
	default:
		return validateOne(st, val)
	}
	return nil
}

func validateOne(st *xmlschema.SimpleType, val interface{}) error {
	switch v := val.(type) {
	case string:
		if st.MaxLength >= 0 && len(v) > st.MaxLength {
			return fmt.Errorf("%q exceeds maxLength %d (simpleType %s)", v, st.MaxLength, st.Name)
		}
		if len(st.Enumeration) > 0 && !contains(st.Enumeration, v) {
			return fmt.Errorf("%q not in enumeration of simpleType %s", v, st.Name)
		}
		return checkRangeText(st, v)
	case int64:
		return checkNumeric(st, float64(v), strconv.FormatInt(v, 10))
	case int:
		return checkNumeric(st, float64(v), strconv.Itoa(v))
	case int32:
		return checkNumeric(st, float64(v), strconv.FormatInt(int64(v), 10))
	case uint64:
		return checkNumeric(st, float64(v), strconv.FormatUint(v, 10))
	case float64:
		return checkNumeric(st, v, strconv.FormatFloat(v, 'g', -1, 64))
	case bool:
		return nil
	default:
		return fmt.Errorf("unsupported value type %T for simpleType %s", val, st.Name)
	}
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// checkRangeText applies numeric range facets to a string-typed value only
// when the facets exist and the value parses; non-numeric strings with
// numeric facets are a schema-authoring problem we surface.
func checkRangeText(st *xmlschema.SimpleType, v string) error {
	if st.MinInclusive == "" && st.MaxInclusive == "" {
		return nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("%q is not numeric but simpleType %s has range facets", v, st.Name)
	}
	return checkNumeric(st, f, v)
}

func checkNumeric(st *xmlschema.SimpleType, v float64, text string) error {
	if len(st.Enumeration) > 0 && !contains(st.Enumeration, text) {
		return fmt.Errorf("%s not in enumeration of simpleType %s", text, st.Name)
	}
	if st.MinInclusive != "" {
		min, err := strconv.ParseFloat(st.MinInclusive, 64)
		if err == nil && v < min {
			return fmt.Errorf("%s below minInclusive %s (simpleType %s)", text, st.MinInclusive, st.Name)
		}
	}
	if st.MaxInclusive != "" {
		max, err := strconv.ParseFloat(st.MaxInclusive, 64)
		if err == nil && v > max {
			return fmt.Errorf("%s above maxInclusive %s (simpleType %s)", text, st.MaxInclusive, st.Name)
		}
	}
	return nil
}
