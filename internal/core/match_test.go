package core

import (
	"errors"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlwire"
)

// matchFixtures registers three related formats to discriminate between.
func matchFixtures(t *testing.T) (flight, weather, status *pbio.Format) {
	t.Helper()
	ctx, err := pbio.NewContext(machine.X86_64)
	if err != nil {
		t.Fatal(err)
	}
	flight, err = ctx.RegisterSpec("Flight", []pbio.FieldSpec{
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "dest", Kind: pbio.String},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CUInt, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	weather, err = ctx.RegisterSpec("Weather", []pbio.FieldSpec{
		{Name: "station", Kind: pbio.String},
		{Name: "tempC", Kind: pbio.Float, CType: machine.CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	status, err = ctx.RegisterSpec("Status", []pbio.FieldSpec{
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "dest", Kind: pbio.String},
		{Name: "gate", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	return flight, weather, status
}

func TestMatchXMLExact(t *testing.T) {
	flight, weather, status := matchFixtures(t)
	msg, err := xmlwire.EncodeRecord(flight, pbio.Record{
		"fltNum": 1842, "dest": "MCO", "eta": []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := MatchXML([]*pbio.Format{weather, status, flight}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Format != flight || !scores[0].Exact || scores[0].Score != 1 {
		t.Errorf("best = %q score %.2f exact %v", scores[0].Format.Name, scores[0].Score, scores[0].Exact)
	}
	if scores[len(scores)-1].Format == flight {
		t.Error("flight also ranked last")
	}
}

func TestMatchXMLClosestFit(t *testing.T) {
	flight, weather, status := matchFixtures(t)
	// A message that is *almost* Status: right root missing, extra field.
	msg := []byte(`<Status><fltNum>7</fltNum><dest>BOS</dest><gate>A1</gate><extra>x</extra></Status>`)
	scores, err := MatchXML([]*pbio.Format{flight, weather, status}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Format != status {
		t.Errorf("best = %q, want Status (scores %+v)", scores[0].Format.Name, scores)
	}
	if scores[0].Exact {
		t.Error("inexact message reported exact")
	}
	if scores[0].Score <= scores[1].Score {
		t.Errorf("ranking not strict: %.2f vs %.2f", scores[0].Score, scores[1].Score)
	}
	if scores[0].Detail == "" {
		t.Error("no detail on inexact match")
	}
	// Weather should score worst: nothing overlaps.
	if scores[len(scores)-1].Format != weather {
		t.Errorf("worst = %q, want Weather", scores[len(scores)-1].Format.Name)
	}
}

func TestMatchXMLDynamicToleratesAnyCount(t *testing.T) {
	flight, _, _ := matchFixtures(t)
	// Zero eta elements still fits Flight exactly.
	msg := []byte(`<Flight><fltNum>1</fltNum><dest>LGA</dest></Flight>`)
	scores, err := MatchXML([]*pbio.Format{flight}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !scores[0].Exact {
		t.Errorf("zero-length dynamic array not exact: %+v", scores[0])
	}
}

func TestMatchXMLErrors(t *testing.T) {
	if _, err := MatchXML(nil, []byte(`<x/>`)); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
	flight, _, _ := matchFixtures(t)
	if _, err := MatchXML([]*pbio.Format{flight}, []byte(`not xml`)); err == nil {
		t.Error("malformed instance accepted")
	}
}

func TestMatchBinary(t *testing.T) {
	flight, weather, status := matchFixtures(t)
	record, err := flight.Encode(pbio.Record{
		"fltNum": 1842, "dest": "MCO", "eta": []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := MatchBinary([]*pbio.Format{weather, status, flight}, record)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Format != flight || !scores[0].Exact {
		t.Errorf("best = %q exact %v (scores: %v)",
			scores[0].Format.Name, scores[0].Exact, describe(scores))
	}
}

func TestMatchBinaryRejectsGarbage(t *testing.T) {
	flight, weather, _ := matchFixtures(t)
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	scores, err := MatchBinary([]*pbio.Format{flight, weather}, garbage)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.Exact {
			t.Errorf("garbage matched %q exactly", s.Format.Name)
		}
	}
}

func TestMatchBinaryNoCandidates(t *testing.T) {
	if _, err := MatchBinary(nil, []byte{1}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
}

func describe(scores []MatchScore) []string {
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.Format.Name
	}
	return out
}
