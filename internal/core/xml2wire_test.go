package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

// schemaB is the paper's Figure 9 document (Structure B).
const schemaB = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

// schemaCD is the paper's Figure 12 document (Structures C and D).
var schemaCD = schemaB[:len(schemaB)-len("</xsd:schema>")] + `
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEvent" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEvent" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEvent" />
  </xsd:complexType>
</xsd:schema>`

func TestRegisterSchemaBMatchesCompiledMetadata(t *testing.T) {
	// The central claim of the xml2wire design: registering from the XML
	// description produces exactly the format that compiled-in PBIO
	// metadata (Figure 8) produces — same layout, same ID, same encoding.
	ctx, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := RegisterDocument(ctx, []byte(schemaB))
	if err != nil {
		t.Fatal(err)
	}
	fXML, ok := set.Lookup("ASDOffEvent")
	if !ok {
		t.Fatal("ASDOffEvent not registered")
	}

	ctx2, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		t.Fatal(err)
	}
	fNative, err := ctx2.Register("ASDOffEvent", []pbio.IOField{
		{Name: "cntrID", Type: "string", Size: 4, Offset: 0},
		{Name: "arln", Type: "string", Size: 4, Offset: 4},
		{Name: "fltNum", Type: "integer", Size: 4, Offset: 8},
		{Name: "equip", Type: "string", Size: 4, Offset: 12},
		{Name: "org", Type: "string", Size: 4, Offset: 16},
		{Name: "dest", Type: "string", Size: 4, Offset: 20},
		{Name: "off", Type: "unsigned integer[5]", Size: 4, Offset: 24},
		{Name: "eta", Type: "unsigned integer[eta_count]", Size: 4, Offset: 44},
		{Name: "eta_count", Type: "integer", Size: 4, Offset: 48},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fXML.ID != fNative.ID {
		t.Errorf("xml2wire and compiled-in formats differ:\n%+v\n%+v",
			fXML.IOFields(), fNative.IOFields())
	}
	if fXML.Size != 52 {
		t.Errorf("size = %d, want 52 (Table 1)", fXML.Size)
	}
}

func TestRegisterSchemaSynthesizesCountField(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterDocument(ctx, []byte(schemaB))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	cf, ok := f.FieldByName("eta_count")
	if !ok {
		t.Fatal("eta_count not synthesized")
	}
	if cf.Kind != pbio.Int || cf.ElemSize != 4 {
		t.Errorf("eta_count = %+v", cf)
	}
	// Placed immediately after eta, like the C struct in Figure 7.
	eta, _ := f.FieldByName("eta")
	if cf.Offset != eta.Offset+eta.Slot {
		t.Errorf("eta_count at %d, eta slot ends at %d", cf.Offset, eta.Offset+eta.Slot)
	}
}

func TestRegisterSchemaNested(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterDocument(ctx, []byte(schemaCD))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Formats) != 2 {
		t.Fatalf("formats = %d", len(set.Formats))
	}
	three := set.Root()
	if three.Name != "threeASDOffs" {
		t.Fatalf("root = %q", three.Name)
	}
	one, _ := three.FieldByName("one")
	if one.Kind != pbio.Nested || one.Nested.Name != "ASDOffEvent" {
		t.Errorf("one = %+v", one)
	}
	// Encode/decode through the composed format.
	rec := pbio.Record{
		"one":  pbio.Record{"cntrID": "ZTL", "fltNum": 7, "off": []uint64{1, 2, 3, 4, 5}},
		"bart": 1.5,
		"two":  pbio.Record{"eta": []uint64{9}},
		"lisa": 2.5,
	}
	data, err := three.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := three.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["bart"] != 1.5 {
		t.Errorf("bart = %v", out["bart"])
	}
	two := out["two"].(pbio.Record)
	if !reflect.DeepEqual(two["eta"], []uint64{9}) {
		t.Errorf("two.eta = %v", two["eta"])
	}
}

func TestRegisterSchemaArchDependence(t *testing.T) {
	// "integer may be a 2-word type on some machines and a 4-word type on
	// others" — the same schema must produce per-arch layouts.
	s, err := xmlschema.ParseString(schemaB)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, arch := range []*machine.Arch{machine.X86, machine.X86_64, machine.Legacy16} {
		ctx, _ := pbio.NewContext(arch)
		set, err := RegisterSchema(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		sizes[arch.Name] = set.Root().Size
	}
	if sizes["x86"] != 52 {
		t.Errorf("x86 size = %d, want 52", sizes["x86"])
	}
	if sizes["x86-64"] != 104 {
		// cntrID 0, arln 8, fltNum 16 (int, 4 bytes + pad), equip 24,
		// org 32, dest 40, off[5] of 8-byte longs 48..88, eta ptr 88,
		// eta_count 96..100, tail pad to 104.
		t.Errorf("x86-64 size = %d, want 104", sizes["x86-64"])
	}
	if sizes["legacy16"] >= sizes["x86"] {
		t.Errorf("legacy16 size = %d, should be smaller than x86's %d",
			sizes["legacy16"], sizes["x86"])
	}
}

func TestRegisterSchemaCountedArrayUsesDeclaredField(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="n" type="xsd:integer"/>
	    <xsd:element name="vals" type="xsd:double" minOccurs="0" maxOccurs="n"/>
	  </xsd:complexType>
	</xsd:schema>`
	ctx, _ := pbio.NewContext(machine.X86_64)
	set, err := RegisterDocument(ctx, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	if len(f.Fields) != 2 {
		t.Fatalf("fields = %d (no synthesis expected)", len(f.Fields))
	}
	vals, _ := f.FieldByName("vals")
	if !vals.Dynamic || vals.CountField != "n" {
		t.Errorf("vals = %+v", vals)
	}
}

func TestRegisterSchemaRejectsDynamicStringArrays(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:complexType name="T">
	    <xsd:element name="names" type="xsd:string" minOccurs="0" maxOccurs="*"/>
	  </xsd:complexType>
	</xsd:schema>`
	ctx, _ := pbio.NewContext(machine.X86_64)
	if _, err := RegisterDocument(ctx, []byte(src)); !errors.Is(err, ErrUnsupportedSchema) {
		t.Errorf("err = %v, want ErrUnsupportedSchema", err)
	}
}

func TestRegisterSchemaAllPrimitives(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <xsd:complexType name="All">
	    <xsd:element name="s" type="xsd:string"/>
	    <xsd:element name="b" type="xsd:byte"/>
	    <xsd:element name="ub" type="xsd:unsignedByte"/>
	    <xsd:element name="sh" type="xsd:short"/>
	    <xsd:element name="ush" type="xsd:unsignedShort"/>
	    <xsd:element name="i" type="xsd:int"/>
	    <xsd:element name="ui" type="xsd:unsignedInt"/>
	    <xsd:element name="l" type="xsd:long"/>
	    <xsd:element name="ul" type="xsd:unsignedLong"/>
	    <xsd:element name="f" type="xsd:float"/>
	    <xsd:element name="d" type="xsd:double"/>
	    <xsd:element name="bool" type="xsd:boolean"/>
	    <xsd:element name="c" type="xsd:char"/>
	  </xsd:complexType>
	</xsd:schema>`
	ctx, _ := pbio.NewContext(machine.X86_64)
	set, err := RegisterDocument(ctx, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	rec := pbio.Record{
		"s": "x", "b": -5, "ub": 200, "sh": -1000, "ush": 50000,
		"i": -100000, "ui": 3000000000, "l": int64(-1 << 40), "ul": uint64(1) << 60,
		"f": float32(1.5), "d": 2.5, "bool": true, "c": int64('q'),
	}
	data, err := f.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out["b"] != int64(-5) || out["ub"] != uint64(200) || out["sh"] != int64(-1000) {
		t.Errorf("small ints: %v %v %v", out["b"], out["ub"], out["sh"])
	}
	if out["l"] != int64(-1<<40) || out["ul"] != uint64(1)<<60 {
		t.Errorf("longs: %v %v", out["l"], out["ul"])
	}
	if out["f"] != 1.5 || out["d"] != 2.5 || out["bool"] != true || out["c"] != int64('q') {
		t.Errorf("rest: %v %v %v %v", out["f"], out["d"], out["bool"], out["c"])
	}
}

func TestRegisterFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "asdoff.xsd")
	if err := os.WriteFile(path, []byte(schemaB), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterFile(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if set.Root().Size != 52 {
		t.Errorf("size = %d", set.Root().Size)
	}
	if _, err := RegisterFile(ctx, filepath.Join(dir, "missing.xsd")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRegisterDocumentBadXML(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86)
	if _, err := RegisterDocument(ctx, []byte("<not-a-schema/>")); err == nil {
		t.Error("bad schema accepted")
	}
}

func TestDumpIOFields(t *testing.T) {
	s, err := xmlschema.ParseString(schemaCD)
	if err != nil {
		t.Fatal(err)
	}
	dump, err := DumpIOFields(machine.Sparc, s)
	if err != nil {
		t.Fatal(err)
	}
	asd := dump["ASDOffEvent"]
	if len(asd) != 9 { // 8 elements + synthesized eta_count
		t.Fatalf("ASDOffEvent fields = %d", len(asd))
	}
	if asd[7].Type != "unsigned integer[eta_count]" {
		t.Errorf("eta type = %q", asd[7].Type)
	}
	three := dump["threeASDOffs"]
	if len(three) != 5 || three[0].Type != "ASDOffEvent" {
		t.Errorf("threeASDOffs = %+v", three)
	}
}

func TestFormatSetLookupMiss(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86)
	set, err := RegisterDocument(ctx, []byte(schemaB))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Lookup("NoSuch"); ok {
		t.Error("Lookup(NoSuch) succeeded")
	}
}
