package core

import (
	"strings"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

func TestSchemaForFormatsRoundTrip(t *testing.T) {
	// register (XML) -> generate (XML') -> register (XML') must reproduce
	// identical formats, on every architecture.
	for _, arch := range []*machine.Arch{machine.X86, machine.X86_64, machine.Sparc, machine.Sparc64} {
		t.Run(arch.Name, func(t *testing.T) {
			ctx, _ := pbio.NewContext(arch)
			set, err := RegisterDocument(ctx, []byte(schemaCD))
			if err != nil {
				t.Fatal(err)
			}
			doc, err := SchemaDocumentForFormats("urn:test", set.Formats...)
			if err != nil {
				t.Fatal(err)
			}
			ctx2, _ := pbio.NewContext(arch)
			set2, err := RegisterDocument(ctx2, []byte(doc))
			if err != nil {
				t.Fatalf("re-register generated schema: %v\n%s", err, doc)
			}
			if len(set2.Formats) != len(set.Formats) {
				t.Fatalf("format count %d -> %d", len(set.Formats), len(set2.Formats))
			}
			for i, f := range set.Formats {
				if set2.Formats[i].ID != f.ID {
					t.Errorf("format %q changed identity through generation:\n%v\n%v",
						f.Name, f.IOFields(), set2.Formats[i].IOFields())
				}
			}
		})
	}
}

func TestSchemaForFormatsAddsNestedDependencies(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterDocument(ctx, []byte(schemaCD))
	if err != nil {
		t.Fatal(err)
	}
	// Pass only the outer format: the nested one must be pulled in, first.
	s, err := SchemaForFormats("", set.Root())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Types) != 2 {
		t.Fatalf("types = %d", len(s.Types))
	}
	if s.Types[0].Name != "ASDOffEvent" || s.Types[1].Name != "threeASDOffs" {
		t.Errorf("order = %s, %s", s.Types[0].Name, s.Types[1].Name)
	}
}

func TestSchemaForFormatsImplicitCountElided(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterDocument(ctx, []byte(schemaB))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SchemaForFormats("", set.Root())
	if err != nil {
		t.Fatal(err)
	}
	ct := s.Types[0]
	for _, e := range ct.Elements {
		if e.Name == "eta_count" {
			t.Error("synthesized count field leaked into the generated schema")
		}
		if e.Name == "eta" && e.Array != xmlschema.DynamicArray {
			t.Errorf("eta = %+v, want dynamic array", e)
		}
	}
}

func TestSchemaForFormatsExplicitCountKept(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	f, err := ctx.RegisterSpec("T", []pbio.FieldSpec{
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		{Name: "vals", Kind: pbio.Float, CType: machine.CDouble, Dynamic: true, CountField: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SchemaForFormats("", f)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.Types[0]
	if len(ct.Elements) != 2 {
		t.Fatalf("elements = %+v", ct.Elements)
	}
	if ct.Elements[0].Name != "n" {
		t.Error("explicit count field dropped")
	}
	if ct.Elements[1].Array != xmlschema.CountedArray || ct.Elements[1].CountField != "n" {
		t.Errorf("vals = %+v", ct.Elements[1])
	}
}

func TestSchemaForFormatsAdoptedRemoteFormat(t *testing.T) {
	// The §4.4 scenario: a broker adopts a format from the wire and
	// publishes its XML description.
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := RegisterDocument(ctx, []byte(schemaB))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pbio.UnmarshalMeta(pbio.MarshalMeta(set.Root()))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := SchemaDocumentForFormats("urn:adopted", remote)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `name="ASDOffEvent"`) {
		t.Errorf("doc = %s", doc)
	}
	// And the document must register back to the same layout on sparc.
	ctx2, _ := pbio.NewContext(machine.Sparc)
	set2, err := RegisterDocument(ctx2, []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if set2.Root().ID != set.Root().ID {
		t.Error("adopted-format schema does not reproduce the original format")
	}
}

func TestSchemaForFormatsErrors(t *testing.T) {
	if _, err := SchemaForFormats(""); err == nil {
		t.Error("no formats: want error")
	}
	if _, err := SchemaForFormats("", nil); err == nil {
		t.Error("nil format: want error")
	}
	// An 8-byte integer on a 32-bit-long machine has no xsd spelling.
	ctx, _ := pbio.NewContext(machine.Sparc)
	f, err := ctx.RegisterSpec("T", []pbio.FieldSpec{
		{Name: "big", Kind: pbio.Int, CType: machine.CLongLong},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SchemaForFormats("", f); err == nil {
		t.Error("unrepresentable field: want error")
	}
	// Name collision between different formats.
	ctxA, _ := pbio.NewContext(machine.X86)
	fa, _ := ctxA.RegisterSpec("T", []pbio.FieldSpec{{Name: "a", Kind: pbio.Int, CType: machine.CInt}})
	ctxB, _ := pbio.NewContext(machine.X86)
	fb, _ := ctxB.RegisterSpec("T", []pbio.FieldSpec{{Name: "b", Kind: pbio.Int, CType: machine.CInt}})
	if _, err := SchemaForFormats("", fa, fb); err == nil {
		t.Error("conflicting formats with one name: want error")
	}
}
