package loadgen

import (
	"math"
	"math/bits"
)

// Hist is a log-linear latency histogram: values are bucketed with 64
// sub-buckets per power of two, bounding the relative quantile error at
// 1/64 (~1.6%) while keeping the footprint fixed (~29KB) regardless of how
// many samples are recorded. Recording is O(1) and allocation-free, so a
// subscriber hot loop can feed one directly; per-goroutine histograms merge
// exactly (bucket counts are commutative), which makes every reported
// quantile independent of sample arrival order.
//
// Hist is not safe for concurrent use; give each goroutine its own and
// Merge at the end.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
	// ex holds one exemplar per octave (power of two), linking a recorded
	// latency to the trace that produced it. Octave granularity (65 slots vs
	// 3712 buckets) keeps the footprint small while still letting a quantile
	// be resolved to a traced sample within 2× of its value.
	ex [histOctaves]histExemplar
}

// histOctaves is one slot per power of two of the int64 range (bits.Len64
// yields 0..64).
const histOctaves = 65

// histExemplar is one octave's remembered traced sample.
type histExemplar struct {
	value int64
	tid   [16]byte
	ts    int64
	set   bool
}

// octaveIdx maps a value to its exemplar slot; negatives clamp to 0 like
// bucketIdx.
func octaveIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	return bits.Len64(uint64(v))
}

const (
	// histSubBits fixes 2^6 = 64 sub-buckets per power of two.
	histSubBits  = 6
	histSubCount = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: values below 64
	// get one exact bucket each, then 64 buckets per remaining octave.
	histBuckets = (63 - histSubBits + 1) * histSubCount
)

// bucketIdx maps a value to its bucket. Negative values (clock skew between
// the publish timestamp and the receive clock) clamp to bucket zero.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(exp-histSubBits)) & (histSubCount - 1))
	return (exp-histSubBits+1)*histSubCount + sub
}

// bucketUpper is the largest value that maps to bucket idx — the value a
// quantile lookup reports for the bucket, so reported quantiles never
// undershoot the true sample.
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx/histSubCount + histSubBits - 1
	sub := idx % histSubCount
	width := int64(1) << uint(exp-histSubBits)
	lo := int64(histSubCount+sub) << uint(exp-histSubBits)
	return lo + width - 1
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	h.counts[bucketIdx(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// RecordExemplar records v and, when tid is non-zero (the sample was
// traced), remembers (v, tid, now) in v's octave slot, overwriting any
// earlier exemplar there. Untraced samples should use Record.
func (h *Hist) RecordExemplar(v int64, tid [16]byte, nowUnixNS int64) {
	h.Record(v)
	if tid == ([16]byte{}) {
		return
	}
	h.ex[octaveIdx(v)] = histExemplar{value: v, tid: tid, ts: nowUnixNS, set: true}
}

// ExemplarNear resolves a quantile value to a traced sample: the exemplar
// with the smallest value >= v, or failing that the largest recorded one.
// ok is false when no traced sample was ever recorded.
func (h *Hist) ExemplarNear(v int64) (value int64, tid [16]byte, tsUnixNS int64, ok bool) {
	bestAbove, bestBelow := -1, -1
	for i := range h.ex {
		e := &h.ex[i]
		if !e.set {
			continue
		}
		if e.value >= v {
			if bestAbove < 0 || e.value < h.ex[bestAbove].value {
				bestAbove = i
			}
		} else if bestBelow < 0 || e.value > h.ex[bestBelow].value {
			bestBelow = i
		}
	}
	idx := bestAbove
	if idx < 0 {
		idx = bestBelow
	}
	if idx < 0 {
		return 0, [16]byte{}, 0, false
	}
	e := &h.ex[idx]
	return e.value, e.tid, e.ts, true
}

// Merge folds o's samples into h. Merging is exact: the result is identical
// to having recorded every sample into h directly, in any order. Exemplars
// merge worst-first: each octave keeps the larger of the two values.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	for i := range o.ex {
		if o.ex[i].set && (!h.ex[i].set || o.ex[i].value > h.ex[i].value) {
			h.ex[i] = o.ex[i]
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count reports how many samples have been recorded.
func (h *Hist) Count() uint64 { return h.count }

// Min reports the smallest recorded sample (0 when empty).
func (h *Hist) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest recorded sample (0 when empty).
func (h *Hist) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean reports the exact arithmetic mean of the recorded samples.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile reports the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the ceil(q*count)-th smallest sample, clamped to the
// exact observed [min, max]. Quantiles are monotone in q and within 1/64
// relative error of the sort-based reference (see the property tests).
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == 0 && h.min < 0 {
				// Bucket 0 holds clamped negative samples (clock skew); report
				// the exact observed min rather than the bucket bound of 0.
				return h.min
			}
			v := bucketUpper(i)
			if v < h.min {
				return h.min
			}
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}
