package loadgen

import (
	"openmeta/internal/trace"
)

// Autopsy is the run's slowest-request autopsy: the traced sample closest to
// the overall p99 (smallest traced latency at or above it, else the worst
// traced one), resolved through the tracer's span ring into its assembled
// publish→route→deliver tree with a per-stage self-time breakdown for that
// one request. Nil when tracing was disabled or no traced record survived to
// the report.
type Autopsy struct {
	TraceID string `json:"trace_id"`
	// LatencyNS is the exemplar's measured end-to-end latency; P99NS is the
	// run-wide p99 it stands in for.
	LatencyNS int64 `json:"latency_ns"`
	P99NS     int64 `json:"p99_ns"`
	// SpanCount/Orphans summarize the assembly. SpanCount 0 means the trace's
	// spans were already overwritten in the ring — the TraceID link is still
	// reported, the tree is not.
	SpanCount int           `json:"spans"`
	Orphans   int           `json:"orphans,omitempty"`
	Tree      []AutopsySpan `json:"tree,omitempty"`
	// Stages is the self-time breakdown of this one request (not the run
	// aggregate), largest share first, summing to ~100%.
	Stages []StageShare `json:"stages,omitempty"`
}

// AutopsySpan is one span of the autopsy tree, pre-order with Depth giving
// the indentation.
type AutopsySpan struct {
	Depth  int    `json:"depth"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	DurNS  int64  `json:"dur_ns"`
}

// buildAutopsy picks the p99 exemplar out of the merged latency histogram
// and assembles its trace from the run's span snapshot.
func buildAutopsy(h *Hist, spans []trace.Span) *Autopsy {
	if h.Count() == 0 {
		return nil
	}
	p99 := h.Quantile(0.99)
	v, tid, _, ok := h.ExemplarNear(p99)
	if !ok {
		return nil
	}
	var id trace.TraceID = tid
	a := &Autopsy{TraceID: id.String(), LatencyNS: v, P99NS: p99}
	asm := trace.Assemble(id, trace.Tag("omload", spans))
	a.SpanCount = asm.Spans
	a.Orphans = asm.Orphans
	if asm.Spans == 0 {
		return a
	}
	var flat []trace.Span
	asm.Walk(func(n *trace.Node, depth int) {
		a.Tree = append(a.Tree, AutopsySpan{
			Depth: depth, Name: n.Name, Detail: n.Detail, DurNS: n.Dur.Nanoseconds(),
		})
		flat = append(flat, n.Span)
	})
	a.Stages = stageShares(flat)
	return a
}
