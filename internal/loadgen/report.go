package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ReportSchema versions the JSON report shape for downstream consumers
// (scripts/trajectory.sh, scripts/bench.sh).
const ReportSchema = "omload/v1"

// LatencySummary is the percentile digest of one latency distribution, in
// nanoseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

func summarize(h *Hist) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// ClassReport is one subscriber class's slice of the run.
type ClassReport struct {
	Subscribers  int            `json:"subscribers"`
	Received     int64          `json:"received"`
	Bytes        int64          `json:"bytes"`
	DecodeErrors int64          `json:"decode_errors,omitempty"`
	Latency      LatencySummary `json:"latency_ns"`

	hist Hist
}

// StageShare is one pipeline stage's share of the traced self time.
type StageShare struct {
	Name     string        `json:"name"`
	Total    time.Duration `json:"total_ns"`
	SharePct float64       `json:"share_pct"`
}

// Report is the result of one load run.
type Report struct {
	Schema  string        `json:"schema"`
	Spec    Spec          `json:"spec"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Published     int64 `json:"published"`
	PublishErrors int64 `json:"publish_errors,omitempty"`
	// Behind counts open-loop arrivals that fell behind schedule; MaxLag is
	// the worst backlog. Sustained lag means the generator, not the system,
	// became the bottleneck at this rate.
	Behind int64         `json:"behind"`
	MaxLag time.Duration `json:"max_lag_ns"`

	Delivered      int64 `json:"delivered"`
	DeliveredBytes int64 `json:"delivered_bytes"`
	// Dropped is the broker's slow-subscriber drop count (in-process runs
	// only; -1 would be unknowable but remote runs simply report 0 here and
	// BrokerPublished/BrokerDelivered stay 0).
	Dropped         int64 `json:"dropped"`
	BrokerPublished int64 `json:"broker_published,omitempty"`
	BrokerDelivered int64 `json:"broker_delivered,omitempty"`

	RecordsPerSec float64 `json:"records_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`

	Latency LatencySummary          `json:"latency_ns"`
	Classes map[string]*ClassReport `json:"classes"`
	// Stages is the encode/publish/route/convert/deliver self-time
	// breakdown from trace spans, largest share first; empty when tracing
	// was disabled or (for remote brokers) no spans were captured.
	Stages []StageShare `json:"stages,omitempty"`
	// Autopsy links the run's p99 to a real traced request: the nearest
	// traced sample's TraceID, its assembled span tree and that one
	// request's own stage breakdown. Nil when tracing was disabled.
	Autopsy *Autopsy `json:"autopsy,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// classNames returns the report's subscriber classes in display order.
func (r *Report) classNames() []string {
	names := make([]string, 0, len(r.Classes))
	for n := range r.Classes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return classOrder(names[i]) < classOrder(names[j]) })
	return names
}

func classOrder(c string) int {
	switch c {
	case ClassPlain:
		return 0
	case ClassScoped:
		return 1
	case ClassConverting:
		return 2
	default:
		return 3
	}
}

// fmtDur renders nanoseconds human-readably (µs/ms precision).
func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytesRate(bps float64) string {
	switch {
	case bps >= 1<<20:
		return fmt.Sprintf("%.2f MB/s", bps/(1<<20))
	case bps >= 1<<10:
		return fmt.Sprintf("%.1f KB/s", bps/(1<<10))
	default:
		return fmt.Sprintf("%.0f B/s", bps)
	}
}

// Table renders the report as an aligned plain-text table.
func (r *Report) Table() string {
	var b strings.Builder
	target := "max"
	if r.Spec.Rate > 0 {
		target = fmt.Sprintf("%.0f/s", r.Spec.Rate)
	}
	where := "in-process"
	if r.Spec.Addr != "" {
		where = r.Spec.Addr
	}
	fmt.Fprintf(&b, "omload  broker %s  elapsed %.2fs  target rate %s",
		where, r.Elapsed.Seconds(), target)
	if r.Spec.Chaos != "" {
		fmt.Fprintf(&b, "  chaos %s (seed %d)", r.Spec.Chaos, r.Spec.ChaosSeed)
	}
	fmt.Fprintf(&b, "\npublishers %d  subscribers %d plain / %d scoped / %d converting  payload %d×8B\n\n",
		r.Spec.Publishers, r.Spec.Subscribers, r.Spec.Scoped, r.Spec.Converting, r.Spec.Payload)

	fmt.Fprintf(&b, "%-16s %12d", "published", r.Published)
	if r.PublishErrors > 0 {
		fmt.Fprintf(&b, "   (%d publish errors)", r.PublishErrors)
	}
	fmt.Fprintf(&b, "\n%-16s %12d\n", "delivered", r.Delivered)
	fmt.Fprintf(&b, "%-16s %12d\n", "dropped", r.Dropped)
	fmt.Fprintf(&b, "%-16s %11.1f/s   %s\n", "throughput", r.RecordsPerSec, fmtBytesRate(r.BytesPerSec))
	if r.Behind > 0 {
		fmt.Fprintf(&b, "%-16s %12d   (max lag %s)\n", "behind schedule", r.Behind, fmtDur(int64(r.MaxLag)))
	}

	fmt.Fprintf(&b, "\ne2e latency (publish -> deliver)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"class", "count", "p50", "p95", "p99", "p999", "max")
	row := func(name string, l LatencySummary) {
		fmt.Fprintf(&b, "%-12s %10d %10s %10s %10s %10s %10s\n", name, l.Count,
			fmtDur(l.P50), fmtDur(l.P95), fmtDur(l.P99), fmtDur(l.P999), fmtDur(l.Max))
	}
	row("all", r.Latency)
	for _, name := range r.classNames() {
		row(name, r.Classes[name].Latency)
	}

	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "\nstage share (traced 1-in-%d, self time)\n", r.Spec.SampleEvery)
		var sum float64
		for _, st := range r.Stages {
			fmt.Fprintf(&b, "%-12s %9.1f%% %10s\n", st.Name, st.SharePct, fmtDur(int64(st.Total)))
			sum += st.SharePct
		}
		fmt.Fprintf(&b, "%-12s %9.1f%%\n", "total", sum)
	}

	if a := r.Autopsy; a != nil {
		fmt.Fprintf(&b, "\nslowest-request autopsy (p99 exemplar)\n")
		fmt.Fprintf(&b, "trace %s  e2e %s  (run p99 %s)  spans %d",
			a.TraceID, fmtDur(a.LatencyNS), fmtDur(a.P99NS), a.SpanCount)
		if a.Orphans > 0 {
			fmt.Fprintf(&b, "  orphans %d", a.Orphans)
		}
		fmt.Fprintf(&b, "\n")
		for _, sp := range a.Tree {
			name := sp.Name
			if sp.Detail != "" {
				name += " (" + sp.Detail + ")"
			}
			fmt.Fprintf(&b, "  %s%-*s %10s\n", strings.Repeat("  ", sp.Depth),
				28-2*sp.Depth, name, fmtDur(sp.DurNS))
		}
		for i, st := range a.Stages {
			if i == 0 {
				fmt.Fprintf(&b, "stage breakdown:")
			}
			fmt.Fprintf(&b, " %s %.1f%%", st.Name, st.SharePct)
		}
		if len(a.Stages) > 0 {
			fmt.Fprintf(&b, "\n")
		}
	}
	return b.String()
}

// Markdown renders the report as GitHub-flavored markdown tables.
func (r *Report) Markdown() string {
	var b strings.Builder
	where := "in-process"
	if r.Spec.Addr != "" {
		where = "`" + r.Spec.Addr + "`"
	}
	fmt.Fprintf(&b, "## omload run\n\n")
	fmt.Fprintf(&b, "- broker: %s, elapsed %.2fs\n", where, r.Elapsed.Seconds())
	fmt.Fprintf(&b, "- publishers %d, subscribers %d plain / %d scoped / %d converting\n",
		r.Spec.Publishers, r.Spec.Subscribers, r.Spec.Scoped, r.Spec.Converting)
	fmt.Fprintf(&b, "- published %d, delivered %d, dropped %d, %.1f records/s (%s)\n",
		r.Published, r.Delivered, r.Dropped, r.RecordsPerSec, fmtBytesRate(r.BytesPerSec))
	if r.Behind > 0 {
		fmt.Fprintf(&b, "- behind schedule %d times (max lag %s)\n", r.Behind, fmtDur(int64(r.MaxLag)))
	}
	fmt.Fprintf(&b, "\n| class | count | p50 | p95 | p99 | p999 | max |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	row := func(name string, l LatencySummary) {
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s | %s |\n", name, l.Count,
			fmtDur(l.P50), fmtDur(l.P95), fmtDur(l.P99), fmtDur(l.P999), fmtDur(l.Max))
	}
	row("all", r.Latency)
	for _, name := range r.classNames() {
		row(name, r.Classes[name].Latency)
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(&b, "\n| stage | share | self time |\n|---|---|---|\n")
		for _, st := range r.Stages {
			fmt.Fprintf(&b, "| %s | %.1f%% | %s |\n", st.Name, st.SharePct, fmtDur(int64(st.Total)))
		}
	}
	if a := r.Autopsy; a != nil {
		fmt.Fprintf(&b, "\n### slowest-request autopsy\n\n")
		fmt.Fprintf(&b, "- trace `%s`: e2e %s against a run p99 of %s (%d spans, %d orphans)\n",
			a.TraceID, fmtDur(a.LatencyNS), fmtDur(a.P99NS), a.SpanCount, a.Orphans)
		if len(a.Tree) > 0 {
			fmt.Fprintf(&b, "\n| span | self+children | depth |\n|---|---|---|\n")
			for _, sp := range a.Tree {
				fmt.Fprintf(&b, "| %s%s | %s | %d |\n",
					strings.Repeat("&nbsp;&nbsp;", sp.Depth), sp.Name, fmtDur(sp.DurNS), sp.Depth)
			}
		}
		if len(a.Stages) > 0 {
			fmt.Fprintf(&b, "\n| stage | share | self time |\n|---|---|---|\n")
			for _, st := range a.Stages {
				fmt.Fprintf(&b, "| %s | %.1f%% | %s |\n", st.Name, st.SharePct, fmtDur(int64(st.Total)))
			}
		}
	}
	return b.String()
}

// Render dispatches on format: "table" (default), "markdown" or "json".
func (r *Report) Render(format string) (string, error) {
	switch format {
	case "", "table":
		return r.Table(), nil
	case "markdown", "md":
		return r.Markdown(), nil
	case "json":
		data, err := r.JSON()
		if err != nil {
			return "", err
		}
		return string(data) + "\n", nil
	default:
		return "", fmt.Errorf("loadgen: unknown output format %q (table, markdown, json)", format)
	}
}
